// Quickstart: tune a black-box function with Bayesian optimization.
//
// Defines a tiny tuning problem (one task parameter, two tuning
// parameters), runs the NoTLA tuner for 20 evaluations, and prints the
// trajectory and the best configuration found.
//
//   $ ./quickstart
#include <cmath>
#include <cstdio>

#include "core/tuner.hpp"

using namespace gptc;

int main() {
  // 1. Describe the tuning problem: task space, parameter space, objective.
  space::TuningProblem problem;
  problem.name = "quickstart";
  problem.task_space =
      space::Space({space::Parameter::real("scale", 0.5, 2.0)});
  problem.param_space = space::Space({
      space::Parameter::real("x", -2.0, 2.0),
      space::Parameter::integer("k", 1, 8),
  });
  problem.output_name = "cost";
  problem.objective = [](const space::Config& task,
                         const space::Config& params) {
    const double scale = task[0].as_double();
    const double x = params[0].as_double();
    const auto k = static_cast<double>(params[1].as_int());
    // A bumpy 2-d surface with an integer axis: minimum near x=0.7, k=3.
    return scale * ((x - 0.7) * (x - 0.7) + 0.3 * std::abs(k - 3.0) +
                    0.1 * std::sin(8.0 * x) + 0.5);
  };

  // 2. Configure and run the tuner.
  core::TunerOptions options;
  options.budget = 20;
  options.algorithm = core::TlaKind::NoTLA;
  options.seed = 42;
  options.on_evaluation = [](int i, const core::EvalRecord& rec,
                             double best) {
    std::printf("  eval %2d: x=%6.3f k=%lld -> %.4f (best so far %.4f)\n",
                i + 1, rec.params[0].as_double(),
                static_cast<long long>(rec.params[1].as_int()), rec.output,
                best);
  };

  const space::Config task = {space::Value(1.0)};
  std::printf("Tuning '%s' for task scale=1.0, budget 20:\n",
              problem.name.c_str());
  const core::TuningResult result =
      core::Tuner(problem, options).tune(task);

  // 3. Report.
  const auto best = result.best_config().value();
  std::printf("\nBest: cost=%.4f at x=%.3f, k=%lld\n",
              result.best_output().value(), best[0].as_double(),
              static_cast<long long>(best[1].as_int()));
  return 0;
}
