// Transfer learning on ScaLAPACK's PDGEQRF (the paper's Sec. VI-B
// scenario, at example scale).
//
// Collects 100 crowd samples for a source task (m = n = 10000 on 8
// simulated Cori Haswell nodes), then tunes a new target task
// (m = n = 14000) with a 10-evaluation budget, comparing the non-transfer
// baseline against Multitask(TS) and the proposed ensemble.
//
//   $ ./transfer_learning
#include <cstdio>

#include "apps/pdgeqrf.hpp"
#include "core/tuner.hpp"

using namespace gptc;

int main() {
  const auto machine = hpcsim::MachineModel::cori_haswell();
  const space::TuningProblem problem = apps::make_pdgeqrf_problem(machine, 8);

  // The crowd has already tuned a related task: 100 random samples.
  const space::Config source_task = {space::Value(std::int64_t{10000}),
                                     space::Value(std::int64_t{10000})};
  std::printf("Collecting 100 crowd samples for source task m=n=10000...\n");
  const core::TaskHistory source =
      core::collect_random_samples(problem, source_task, 100, /*seed=*/7);
  std::printf("  source best: %.3f s\n\n", source.best_output().value());

  const space::Config target_task = {space::Value(std::int64_t{14000}),
                                     space::Value(std::int64_t{14000})};

  for (const core::TlaKind algorithm :
       {core::TlaKind::NoTLA, core::TlaKind::MultitaskTS,
        core::TlaKind::EnsembleProposed}) {
    core::TunerOptions options;
    options.budget = 10;
    options.algorithm = algorithm;
    options.seed = 1;
    const core::TuningResult r =
        core::Tuner(problem, options).tune(target_task, {source});
    std::printf("%-22s best runtime after 10 evals: %.3f s\n",
                std::string(core::to_string(algorithm)).c_str(),
                r.best_output().value());
    std::printf("  best-so-far:");
    for (double b : r.best_so_far) std::printf(" %.2f", b);
    std::printf("\n");
    const auto best = r.best_config().value();
    std::printf("  config: mb=%lld nb=%lld lg2npernode=%lld p=%lld\n\n",
                static_cast<long long>(best[0].as_int()),
                static_cast<long long>(best[1].as_int()),
                static_cast<long long>(best[2].as_int()),
                static_cast<long long>(best[3].as_int()));
  }
  std::printf(
      "With only 10 evaluations, the transfer learners start from the\n"
      "crowd's knowledge of the related task instead of from scratch.\n");
  return 0;
}
