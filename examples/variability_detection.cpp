// Performance-variability detection (the paper's stated future work,
// implemented in this repo): find noisy configurations and outlier
// measurements in crowd data before trusting it for transfer learning.
//
//   $ ./variability_detection
#include <cstdio>

#include "crowd/repo.hpp"
#include "crowd/variability.hpp"
#include "hpcsim/machine.hpp"

using namespace gptc;
using json::Json;

int main() {
  crowd::SharedRepo repo(7);
  const std::string key = repo.register_user("dana", "dana@hpc.org");

  // Simulate a crowd where the same configuration was measured repeatedly,
  // with one user's node suffering interference (a 6x runtime spike).
  hpcsim::Allocation alloc{hpcsim::MachineModel::cori_haswell(), 8, 32};
  rng::Rng rng(1);
  for (int config = 0; config < 3; ++config) {
    const double true_runtime = 1.0 + 0.8 * config;
    const int repeats = 6;
    for (int r = 0; r < repeats; ++r) {
      crowd::EvalUpload e;
      e.task_parameters = Json::parse(R"({"m":10000,"n":10000})");
      Json tuning = Json::object();
      tuning["mb"] = std::int64_t{4 + config};
      e.tuning_parameters = std::move(tuning);
      double runtime = true_runtime * rng.lognoise(0.02);
      if (config == 1 && r == 3) runtime *= 6.0;  // the interference victim
      e.output = runtime;
      e.machine_configuration = alloc.machine.machine_configuration(8);
      repo.upload(key, "pdgeqrf", e);
    }
  }
  std::printf("Uploaded %zu records (3 configurations x 6 repeats).\n",
              repo.num_records("pdgeqrf"));

  crowd::MetaDescription meta;
  meta.api_key = key;
  meta.tuning_problem_name = "pdgeqrf";

  crowd::VariabilityOptions options;
  options.noisy_relative_mad = 0.05;
  const crowd::VariabilityReport report =
      repo.query_variability_report(meta, options);

  std::printf("\n%s\n\n", report.summary().c_str());
  for (const auto& group : report.groups) {
    std::printf("group median=%.3f s, relative MAD=%.4f%s\n", group.median,
                group.relative_mad,
                group.noisy(options.noisy_relative_mad) ? "  <-- noisy" : "");
    for (std::size_t i = 0; i < group.outputs.size(); ++i) {
      const bool outlier = std::find(group.outliers.begin(),
                                     group.outliers.end(),
                                     i) != group.outliers.end();
      std::printf("    record %lld: %.3f s%s\n",
                  static_cast<long long>(group.record_ids[i]),
                  group.outputs[i], outlier ? "  <-- OUTLIER" : "");
    }
  }
  std::printf(
      "\nDropping the flagged record ids before surrogate fitting protects\n"
      "every TLA algorithm from system-noise contamination.\n");
  return 0;
}
