// The crowd workflow (paper Secs. III & IV): users, API keys, automatic
// environment parsing, uploads with access control, meta-description
// queries, and the analytics utilities.
//
//   $ ./crowd_database
#include <cstdio>

#include "apps/pdgeqrf.hpp"
#include "core/tuner.hpp"
#include "crowd/envparse.hpp"
#include "crowd/repo.hpp"

using namespace gptc;

int main() {
  crowd::SharedRepo repo(/*seed=*/2024);

  // --- Users and API keys ----------------------------------------------------
  const std::string alice_key = repo.register_user("alice", "alice@lab.gov");
  const std::string bob_key = repo.register_user("bob", "bob@uni.edu");
  std::printf("Registered alice and bob; alice's API key: %s\n",
              alice_key.c_str());

  // --- Automatic environment parsing ------------------------------------------
  const json::Json machine_config = crowd::parse_slurm_env({
      {"SLURM_CLUSTER_NAME", "cori"},     // alias: normalized to "Cori"
      {"SLURM_JOB_PARTITION", "haswell"},
      {"SLURM_JOB_NUM_NODES", "8"},
      {"SLURM_CPUS_ON_NODE", "32"},
  });
  const json::Json software_config =
      crowd::parse_spack_manifest("scalapack@2.1.0%gcc@8.3.0\n");
  std::printf("Parsed Slurm machine config: %s\n",
              machine_config.dump().c_str());

  // --- Alice uploads tuning data -----------------------------------------------
  const auto machine = hpcsim::MachineModel::cori_haswell();
  const auto problem = apps::make_pdgeqrf_problem(machine, 8);
  const space::Config task = {space::Value(std::int64_t{10000}),
                              space::Value(std::int64_t{10000})};
  const core::TaskHistory samples =
      core::collect_random_samples(problem, task, 60, /*seed=*/11);

  for (const auto& eval : samples.evals()) {
    crowd::EvalUpload upload;
    upload.task_parameters = problem.task_space.config_to_json(task);
    upload.tuning_parameters =
        problem.param_space.config_to_json(eval.params);
    upload.output = eval.output;
    upload.machine_configuration = machine_config;
    upload.software_configuration = software_config;
    repo.upload(alice_key, "pdgeqrf", upload);
  }
  std::printf("Alice uploaded %zu evaluations (public).\n",
              repo.num_records("pdgeqrf"));

  // --- Bob queries with a meta description -------------------------------------
  crowd::MetaDescription meta = crowd::MetaDescription::from_json(
      json::Json::parse(R"({
        "api_key": "set-below",
        "tuning_problem_name": "pdgeqrf",
        "problem_space": {
          "input_space": [
            {"name":"m","type":"integer","lower_bound":1000,"upper_bound":20000},
            {"name":"n","type":"integer","lower_bound":1000,"upper_bound":20000}
          ],
          "parameter_space": [
            {"name":"mb","type":"integer","lower_bound":1,"upper_bound":16},
            {"name":"nb","type":"integer","lower_bound":1,"upper_bound":16},
            {"name":"lg2npernode","type":"integer","lower_bound":0,"upper_bound":5},
            {"name":"p","type":"integer","lower_bound":1,"upper_bound":256}
          ]
        },
        "configuration_space": {
          "machine_configurations": [
            {"Cori": {"haswell": {"nodes": 8, "cores": 32}}}
          ],
          "software_configurations": [
            {"gcc": {"version_from": [8,0,0], "version_to": [9,0,0]}}
          ]
        }
      })"));
  meta.api_key = bob_key;

  const auto records = repo.query_function_evaluations(meta);
  std::printf("Bob's query matched %zu records.\n", records.size());

  // --- Analytics: surrogate, prediction, sensitivity ---------------------------
  const auto surrogate = repo.query_surrogate_model(meta, /*seed=*/5);
  const space::Config candidate = {
      space::Value(std::int64_t{8}), space::Value(std::int64_t{8}),
      space::Value(std::int64_t{5}), space::Value(std::int64_t{16})};
  std::printf("QueryPredictOutput(mb=8,nb=8,lg2npernode=5,p=16) = %.3f s\n",
              repo.query_predict_output(meta, candidate, /*seed=*/5));

  sa::SobolOptions sa_options;
  sa_options.base_samples = 256;
  const sa::SobolResult sens =
      repo.query_sensitivity_analysis(meta, /*seed=*/5, sa_options);
  std::printf("\nQuerySensitivityAnalysis:\n%s", sens.to_table().c_str());

  // --- Crowd data feeds a transfer-learning run --------------------------------
  const auto sources = repo.query_source_histories(meta);
  core::TunerOptions options;
  options.budget = 8;
  options.algorithm = core::TlaKind::EnsembleProposed;
  options.seed = 3;
  const space::Config target_task = {space::Value(std::int64_t{12000}),
                                     space::Value(std::int64_t{12000})};
  const auto result =
      core::Tuner(problem, options).tune(target_task, sources);
  std::printf("\nBob tunes m=n=12000 with the crowd's data: best %.3f s\n",
              result.best_output().value());
  (void)surrogate;
  return 0;
}
