// Sensitivity-driven search-space reduction on Hypre (paper Sec. VI-E).
//
// Runs a Sobol analysis on a surrogate trained from pre-collected samples
// of the 12-parameter Hypre tuning problem, picks the most influential
// parameters, and compares tuning on the reduced space against the
// original space with the same small budget.
//
//   $ ./sensitivity_reduction
#include <cstdio>

#include "apps/hypre.hpp"
#include "core/tuner.hpp"
#include "gp/gaussian_process.hpp"
#include "sa/sobol.hpp"

using namespace gptc;

int main() {
  const auto machine = hpcsim::MachineModel::cori_haswell();
  const space::TuningProblem problem = apps::make_hypre_problem(machine);
  const space::Config task = {space::Value(std::int64_t{100}),
                              space::Value(std::int64_t{100}),
                              space::Value(std::int64_t{100})};

  // Pre-collected crowd data: 450 random samples on nx=ny=nz=100 (the
  // paper uses 1000; ~450 is where the surrogate's Sobol ranking becomes
  // stable on this 12-parameter mixed space).
  std::printf("Collecting 450 samples of the 12-parameter space...\n");
  const core::TaskHistory samples =
      core::collect_random_samples(problem, task, 450, /*seed=*/21);

  // Fit a surrogate and run the Sobol analysis on it.
  const core::TrainingData data = samples.valid_data(problem.param_space);
  gp::GaussianProcess surrogate(problem.param_space.dim());
  rng::Rng fit_rng(5);
  surrogate.fit(data.x, data.y, fit_rng);

  sa::SobolOptions sa_options;
  sa_options.base_samples = 512;
  rng::Rng sa_rng(6);
  const sa::SobolResult sens =
      sa::analyze_surrogate(surrogate, problem.param_space, sa_rng, sa_options);
  std::printf("\nSobol indices (surrogate, 300 samples):\n%s\n",
              sens.to_table().c_str());

  // Keep the three most sensitive parameters (the paper keeps smooth_type,
  // smooth_num_levels, agg_num_levels).
  const auto ranked = sens.ranked_by_total_effect();
  std::vector<std::string> keep;
  for (std::size_t i = 0; i < 3; ++i) keep.push_back(sens.names[ranked[i]]);
  std::printf("Keeping: %s, %s, %s\n\n", keep[0].c_str(), keep[1].c_str(),
              keep[2].c_str());

  // Freeze known defaults; everything else gets a fixed random value.
  json::Json frozen = json::Json::parse(R"({
    "strong_threshold": 0.25, "trunc_factor": 0.0, "P_max_elmts": 4,
    "coarsen_type": "Falgout", "relax_type": "hybrid-GS",
    "interp_type": "classical"
  })");
  const space::TuningProblem reduced =
      sa::reduce_problem(problem, keep, frozen, /*seed=*/3);

  // Same budget on both spaces.
  for (const auto* label : {"original", "reduced"}) {
    const space::TuningProblem& p =
        std::string(label) == "original" ? problem : reduced;
    double sum = 0.0;
    const int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      core::TunerOptions options;
      options.budget = 10;
      options.algorithm = core::TlaKind::NoTLA;
      options.seed = 100 + static_cast<std::uint64_t>(s);
      sum += core::Tuner(p, options).tune(task).best_output().value();
    }
    std::printf("%-8s space (%2zu params): mean best over %d seeds = %.4f s\n",
                label, p.param_space.dim(), kSeeds, sum / kSeeds);
  }
  std::printf(
      "\nWith a 10-evaluation budget, concentrating the search on the\n"
      "sensitive parameters finds better configurations (paper Fig. 7).\n");
  return 0;
}
