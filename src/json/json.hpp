// Minimal-but-complete JSON value model, parser and writer.
//
// The crowd database stores every performance sample as a JSON document
// (matching the paper's MongoDB records), and the tuner's meta description
// is itself JSON, so the library carries its own implementation instead of
// an external dependency. The parser is a recursive-descent parser over the
// full RFC 8259 grammar (with \uXXXX escapes and surrogate pairs); the
// writer round-trips everything the parser accepts.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gptc::json {

class Json;

/// Thrown on parse errors (with 1-based line/column info in the message) and
/// on type mismatches in checked accessors.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value. Integers and doubles are kept distinct so that integer
/// tuning parameters survive a database round trip exactly.
class Json {
 public:
  // Member aliases (namespace-level spellings below): declared before the
  // Type enumerators so `Type::Array` never shadows the alias (-Wshadow).
  using Array = std::vector<Json>;
  /// Object keys are kept sorted (std::map) — deterministic serialization
  /// is more valuable to the database layer than insertion order. The
  /// transparent comparator lets the query layer probe keys with a
  /// string_view (no temporary std::string per lookup on the hot path).
  using Object = std::map<std::string, Json, std::less<>>;

  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(const Json&) = default;
  Json(Json&&) = default;
  /// Assignment is self-aliasing-safe: `doc = doc.at("child")` must work
  /// even though the right-hand side lives inside the left-hand side's
  /// storage (copy-and-swap).
  Json& operator=(const Json& other) {
    auto tmp = other.value_;
    value_ = std::move(tmp);
    return *this;
  }
  Json& operator=(Json&& other) {
    auto tmp = std::move(other.value_);
    value_ = std::move(tmp);
    return *this;
  }
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::size_t i) : value_(static_cast<std::int64_t>(i)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array(std::initializer_list<Json> items = {}) {
    return Json(Array(items));
  }
  static Json object(
      std::initializer_list<std::pair<const std::string, Json>> items = {}) {
    return Json(Object(items));
  }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  /// Checked accessors: throw JsonError on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;     // accepts Int, and Double with integral value
  double as_double() const;        // accepts Int and Double
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object element access. The const form throws JsonError if the key is
  /// missing; the mutable form inserts (like std::map) and converts a Null
  /// value to an Object first so documents can be built up incrementally.
  const Json& at(const std::string& key) const;
  Json& operator[](const std::string& key);

  /// Array element access with bounds checking.
  const Json& at(std::size_t index) const;

  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Returns the value at `key` or `fallback` when missing/null.
  Json get_or(const std::string& key, Json fallback) const;

  /// Array/object element count; 0 for scalars.
  std::size_t size() const;

  void push_back(Json v);

  /// Structural equality. Int and Double compare equal when numerically
  /// equal (1 == 1.0), matching query semantics.
  bool operator==(const Json& other) const;

  /// Serializes. indent < 0 yields compact output; indent >= 0 pretty-prints
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

using Array = Json::Array;
using Object = Json::Object;

}  // namespace gptc::json
