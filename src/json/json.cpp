#include "json/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gptc::json {

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "bool";
    case Json::Type::Int: return "int";
    case Json::Type::Double: return "double";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw JsonError(std::string("expected ") + want + ", got " +
                  type_name(got));
}

}  // namespace

bool Json::as_bool() const {
  if (auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool", type());
}

std::int64_t Json::as_int() const {
  if (auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (auto* d = std::get_if<double>(&value_)) {
    if (std::nearbyint(*d) == *d && std::abs(*d) < 9.0e18)
      return static_cast<std::int64_t>(*d);
  }
  type_error("int", type());
}

double Json::as_double() const {
  if (auto* d = std::get_if<double>(&value_)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&value_))
    return static_cast<double>(*i);
  type_error("number", type());
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string", type());
}

const Array& Json::as_array() const {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", type());
}

Array& Json::as_array() {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", type());
}

const Object& Json::as_object() const {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  type_error("object", type());
}

Object& Json::as_object() {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  type_error("object", type());
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key: " + key);
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return as_object()[key];
}

const Json& Json::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) throw JsonError("array index out of range");
  return arr[index];
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

Json Json::get_or(const std::string& key, Json fallback) const {
  if (!is_object()) return fallback;
  auto it = as_object().find(key);
  if (it == as_object().end() || it->second.is_null()) return fallback;
  return it->second;
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(v));
}

bool Json::operator==(const Json& other) const {
  // Numeric cross-type comparison: 1 == 1.0.
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int())
      return std::get<std::int64_t>(value_) ==
             std::get<std::int64_t>(other.value_);
    return as_double() == other.as_double();
  }
  return value_ == other.value_;
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void write_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_double(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; the database stores failed evaluations as null,
    // but guard serialization anyway.
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  (void)ec;
  std::string_view sv(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
  out += sv;
  // Ensure a double stays a double on re-parse.
  if (sv.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

void dump_impl(const Json& j, int indent, int depth, std::string& out) {
  const auto newline_pad = [&](int d) {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (j.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::Int: out += std::to_string(j.as_int()); break;
    case Json::Type::Double: write_double(j.as_double(), out); break;
    case Json::Type::String: write_escaped(j.as_string(), out); break;
    case Json::Type::Array: {
      const auto& arr = j.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        dump_impl(arr[i], indent, depth + 1, out);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Json::Type::Object: {
      const auto& obj = j.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        write_escaped(k, out);
        out += indent >= 0 ? ": " : ":";
        dump_impl(v, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, indent, 0, out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (next() != '\\' || next() != 'u')
              fail("unpaired UTF-16 surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit expected after decimal point");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit expected in exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t iv = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(iv);
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size())
      fail("invalid number");
    return Json(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace gptc::json
