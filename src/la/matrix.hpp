// Dense row-major matrix and vector utilities.
//
// This is the numerical substrate for the Gaussian-process stack. It is a
// deliberately small, well-tested kernel set (BLAS-2/3 style operations,
// Cholesky, QR least squares) rather than a general linear-algebra library:
// GP fitting needs exactly these and nothing more.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gptc::la {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer data (row major). Ragged input
  /// throws.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  Matrix transposed() const;

  /// In-place += alpha * I. Requires a square matrix.
  void add_diagonal(double alpha);

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A * x.
Vector matvec(const Matrix& a, const Vector& x);

/// y = A^T * x.
Vector matvec_t(const Matrix& a, const Vector& x);

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * A (symmetric; computed as such).
Matrix gram(const Matrix& a);

/// Dot product. Sizes must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// r = a - b.
Vector subtract(const Vector& a, const Vector& b);

/// a += alpha * b.
void axpy(double alpha, const Vector& b, Vector& a);

/// Cholesky factor of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular L with A = L L^T. If the factorization hits
/// a non-positive pivot, progressively larger diagonal jitter is added
/// (starting at `initial_jitter` times the mean diagonal, growing 10x up to
/// `max_attempts` times) — the standard GP-library defence against nearly
/// singular kernel matrices. Throws std::runtime_error if all attempts fail.
class Cholesky {
 public:
  explicit Cholesky(Matrix a, double initial_jitter = 1e-10,
                    int max_attempts = 8);

  const Matrix& lower() const { return l_; }
  std::size_t order() const { return l_.rows(); }
  /// Total jitter that was added to the diagonal to make A factorizable.
  double jitter_added() const { return jitter_added_; }

  /// Solves A x = b via forward/back substitution.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Solves L y = b (forward substitution only).
  Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = y (back substitution only).
  Vector solve_lower_t(const Vector& y) const;

  /// log det(A) = 2 * sum(log(L_ii)).
  double log_det() const;

 private:
  bool try_factor(const Matrix& a, double jitter);

  Matrix l_;
  double jitter_added_ = 0.0;
};

/// Solves the linear least-squares problem min ||A x - b||_2 via Householder
/// QR with column pivoting disabled (A is expected to be well-scaled by the
/// caller; rank deficiency is handled by a small ridge fallback).
Vector least_squares(const Matrix& a, const Vector& b);

/// Ridge-regularized least squares: solves (A^T A + lambda I) x = A^T b.
Vector ridge_least_squares(const Matrix& a, const Vector& b, double lambda);

/// Non-negative least squares via projected coordinate descent on the normal
/// equations. Small-scale (used for TLA weight fitting with <= ~10 weights).
Vector nonneg_least_squares(const Matrix& a, const Vector& b,
                            double lambda = 1e-8, int max_iters = 500,
                            double tol = 1e-12);

}  // namespace gptc::la
