#include "la/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace gptc::la {

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols())
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::add_diagonal(double alpha) {
  if (rows_ != cols_)
    throw std::invalid_argument("add_diagonal: matrix not square");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += alpha;
}

Vector matvec(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: size mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector matvec_t(const Matrix& a, const Vector& x) {
  if (a.rows() != x.size())
    throw std::invalid_argument("matvec_t: size mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: size mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over rows of B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto row = a.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

Vector subtract(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("subtract: size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

void axpy(double alpha, const Vector& b, Vector& a) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

Cholesky::Cholesky(Matrix a, double initial_jitter, int max_attempts) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("Cholesky: matrix not square");
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  if (mean_diag <= 0.0) mean_diag = 1.0;

  if (try_factor(a, 0.0)) return;
  double jitter = initial_jitter * mean_diag;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (try_factor(a, jitter)) {
      jitter_added_ = jitter;
      return;
    }
    jitter *= 10.0;
  }
  throw std::runtime_error("Cholesky: matrix not positive definite");
}

bool Cholesky::try_factor(const Matrix& a, double jitter) {
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const auto li = l_.row(i);
      const auto lj = l_.row(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l_(i, j) = s / ljj;
    }
  }
  return true;
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = order();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

Vector Cholesky::solve_lower_t(const Vector& y) const {
  const std::size_t n = order();
  if (y.size() != n)
    throw std::invalid_argument("solve_lower_t: size mismatch");
  Vector x(y);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    x[i] /= l_(i, i);
    const double xi = x[i];
    for (std::size_t k = 0; k < i; ++k) x[k] -= l_(i, k) * xi;
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const {
  return solve_lower_t(solve_lower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  const std::size_t n = order();
  if (b.rows() != n) throw std::invalid_argument("solve: size mismatch");
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < order(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size())
    throw std::invalid_argument("least_squares: size mismatch");
  if (a.rows() < a.cols())
    return ridge_least_squares(a, b, 1e-10);  // underdetermined: regularize
  // Householder QR, transforming b alongside.
  Matrix r = a;
  Vector qtb = b;
  const std::size_t m = r.rows(), n = r.cols();
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) continue;
    if (r(k, k) > 0.0) alpha = -alpha;
    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vnorm2 = dot(v, v);
    if (vnorm2 == 0.0) continue;
    // Apply I - 2 v v^T / (v^T v) to the trailing columns and to b.
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, j);
      const double f = 2.0 * s / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += v[i - k] * qtb[i];
    const double f = 2.0 * s / vnorm2;
    for (std::size_t i = k; i < m; ++i) qtb[i] -= f * v[i - k];
    r(k, k) = alpha;
  }
  // Back substitution on the upper-triangular R; a tiny pivot means rank
  // deficiency — fall back to the ridge solution in that case.
  Vector x(n, 0.0);
  for (std::size_t jj = n; jj > 0; --jj) {
    const std::size_t j = jj - 1;
    if (std::abs(r(j, j)) < 1e-12)
      return ridge_least_squares(a, b, 1e-10);
    double s = qtb[j];
    for (std::size_t c = j + 1; c < n; ++c) s -= r(j, c) * x[c];
    x[j] = s / r(j, j);
  }
  return x;
}

Vector ridge_least_squares(const Matrix& a, const Vector& b, double lambda) {
  Matrix ata = gram(a);
  ata.add_diagonal(lambda);
  return Cholesky(std::move(ata)).solve(matvec_t(a, b));
}

Vector nonneg_least_squares(const Matrix& a, const Vector& b, double lambda,
                            int max_iters, double tol) {
  const std::size_t n = a.cols();
  Matrix ata = gram(a);
  ata.add_diagonal(lambda);
  const Vector atb = matvec_t(a, b);
  Vector x(n, 0.0);
  // Projected coordinate descent: exact coordinate minimization followed by
  // projection onto x_j >= 0. Converges for this strictly convex objective.
  for (int it = 0; it < max_iters; ++it) {
    double max_change = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double g = atb[j];
      for (std::size_t k = 0; k < n; ++k)
        if (k != j) g -= ata(j, k) * x[k];
      const double xj = std::max(0.0, g / ata(j, j));
      max_change = std::max(max_change, std::abs(xj - x[j]));
      x[j] = xj;
    }
    if (max_change < tol) break;
  }
  return x;
}

}  // namespace gptc::la
