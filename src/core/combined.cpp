#include "core/combined.hpp"

#include <cmath>
#include <stdexcept>

namespace gptc::core {

WeightedSurrogate::WeightedSurrogate(std::vector<gp::SurrogatePtr> models,
                                     la::Vector weights)
    : models_(std::move(models)), weights_(std::move(weights)) {
  if (models_.empty())
    throw std::invalid_argument("WeightedSurrogate: no models");
  if (models_.size() != weights_.size())
    throw std::invalid_argument("WeightedSurrogate: weight count mismatch");
  double total = 0.0;
  for (double w : weights_) {
    if (w < 0.0 || !std::isfinite(w))
      throw std::invalid_argument("WeightedSurrogate: weights must be >= 0");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("WeightedSurrogate: all weights zero");
  for (double& w : weights_) w /= total;
  for (const auto& m : models_) {
    if (!m) throw std::invalid_argument("WeightedSurrogate: null model");
    if (m->dim() != models_.front()->dim())
      throw std::invalid_argument("WeightedSurrogate: dim mismatch");
  }
}

std::shared_ptr<WeightedSurrogate> WeightedSurrogate::equal(
    std::vector<gp::SurrogatePtr> models) {
  la::Vector w(models.size(), 1.0);
  return std::make_shared<WeightedSurrogate>(std::move(models), std::move(w));
}

gp::Prediction WeightedSurrogate::predict(const la::Vector& x) const {
  double mean = 0.0;
  double log_sigma = 0.0;
  bool sigma_zero = false;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const gp::Prediction p = models_[i]->predict(x);
    mean += weights_[i] * p.mean;
    const double s = p.stddev();
    if (weights_[i] > 0.0) {
      if (s <= 1e-300)
        sigma_zero = true;
      else
        log_sigma += weights_[i] * std::log(s);
    }
  }
  gp::Prediction out;
  out.mean = mean;
  const double sigma = sigma_zero ? 0.0 : std::exp(log_sigma);
  out.variance = sigma * sigma;
  return out;
}

std::size_t WeightedSurrogate::dim() const { return models_.front()->dim(); }

void ResidualStack::add_layer(const la::Matrix& x, const la::Vector& y,
                              const gp::GpOptions& options, rng::Rng& rng) {
  if (x.rows() != y.size())
    throw std::invalid_argument("ResidualStack::add_layer: shape mismatch");
  if (x.rows() == 0)
    throw std::invalid_argument("ResidualStack::add_layer: empty layer");
  if (x.cols() != dim_)
    throw std::invalid_argument("ResidualStack::add_layer: dim mismatch");

  la::Vector residuals = y;
  if (!layers_.empty()) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      la::Vector xi(x.row(i).begin(), x.row(i).end());
      residuals[i] -= predict(xi).mean;
    }
  }
  auto model = std::make_shared<gp::GaussianProcess>(dim_, options);
  rng::Rng sub = rng.split("stack-layer").split(layers_.size());
  model->fit(x, std::move(residuals), sub);
  layers_.push_back(Layer{std::move(model), x.rows()});
}

gp::Prediction ResidualStack::predict(const la::Vector& x) const {
  if (layers_.empty())
    throw std::logic_error("ResidualStack::predict: no layers");
  double mean = 0.0;
  double sigma = 0.0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const gp::Prediction p = layers_[i].model->predict(x);
    mean += p.mean;
    const double s = p.stddev();
    if (i == 0) {
      sigma = s;
    } else {
      // Weighted geometric mean of the new layer's stddev and the previous
      // stack's stddev, beta = n_new / (n_new + n_prev).
      const double n_new = static_cast<double>(layers_[i].samples);
      const double n_prev = static_cast<double>(layers_[i - 1].samples);
      const double beta = n_new / (n_new + n_prev);
      if (s <= 1e-300 || sigma <= 1e-300)
        sigma = 0.0;
      else
        sigma = std::pow(s, beta) * std::pow(sigma, 1.0 - beta);
    }
  }
  gp::Prediction out;
  out.mean = mean;
  out.variance = sigma * sigma;
  return out;
}

}  // namespace gptc::core
