#include "core/tuner.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace gptc::core {

namespace {

/// Copies the TLA options with every model/search layer pointed at one
/// shared pool (no-op when num_threads == 0: all pool fields stay null and
/// every loop takes its serial path).
TlaOptions with_thread_pool(const TlaOptions& tla,
                            std::shared_ptr<parallel::ThreadPool> pool) {
  TlaOptions out = tla;
  out.gp.pool = pool;
  out.lcm.pool = pool;
  out.acquisition.pool = std::move(pool);
  return out;
}

std::shared_ptr<parallel::ThreadPool> make_pool(int num_threads) {
  if (num_threads <= 0) return nullptr;
  return std::make_shared<parallel::ThreadPool>(
      static_cast<std::size_t>(num_threads));
}

}  // namespace

Tuner::Tuner(const space::TuningProblem& problem, TunerOptions options)
    : problem_(&problem), options_(std::move(options)) {
  if (!problem.objective)
    throw std::invalid_argument("Tuner: problem has no objective");
  if (options_.budget <= 0)
    throw std::invalid_argument("Tuner: budget must be positive");
}

TuningResult Tuner::tune(const space::Config& task,
                         const std::vector<TaskHistory>& sources) const {
  if (!problem_->task_space.contains(task))
    throw std::invalid_argument("Tuner::tune: task outside task space");

  TuningResult result;
  result.history = TaskHistory(task);

  const bool have_sources = [&] {
    for (const auto& s : sources)
      if (s.num_valid() >= 2) return true;
    return false;
  }();
  const bool is_tla =
      options_.algorithm != TlaKind::NoTLA && have_sources;

  const auto pool = make_pool(options_.num_threads);
  const TlaOptions tla = with_thread_pool(options_.tla, pool);
  auto strategy = make_tla_strategy(
      is_tla ? options_.algorithm : TlaKind::NoTLA, tla);

  rng::Rng root(rng::splitmix64(options_.seed + 0x7f4a7c15ULL));
  TlaContext ctx;
  ctx.param_space = &problem_->param_space;
  ctx.sources = &sources;
  ctx.target = &result.history;

  for (int i = 0; i < options_.budget; ++i) {
    rng::Rng iter_rng = root.split("iteration").split(static_cast<std::uint64_t>(i));

    la::Vector x;
    std::string proposer(strategy->name());
    const bool no_valid_target = result.history.num_valid() == 0;
    if (is_tla && no_valid_target) {
      if (i == 0) {
        // First evaluation of every TLA algorithm uses the WeightedSum(equal)
        // combined model (paper Sec. VI-A).
        x = first_eval_proposal(ctx, tla, iter_rng);
        proposer = to_string(TlaKind::WeightedSumEqual);
      } else {
        // The first-eval proposal failed (e.g. the source's optimum is an
        // OOM configuration on the target — the Fig. 5(c) situation):
        // re-proposing the surrogate arg-min would fail forever, so fall
        // back to random sampling until one evaluation succeeds.
        rng::Rng rand_rng = iter_rng.split("failed-warmup");
        x = la::Vector(problem_->param_space.dim());
        for (double& v : x) v = rand_rng.uniform();
        proposer = "random(after-failures)";
      }
    } else if (!is_tla && no_valid_target) {
      x = strategy->propose(ctx, iter_rng);
      proposer = std::string(strategy->name());
    } else {
      x = strategy->propose(ctx, iter_rng);
    }

    // Duplicate avoidance: exact re-evaluation of a configuration wastes
    // budget in deterministic settings; retry with random points.
    space::Config params = problem_->param_space.decode(x);
    rng::Rng dup_rng = iter_rng.split("dedup");
    for (int r = 0;
         r < options_.duplicate_retries && result.history.contains(params);
         ++r) {
      la::Vector rand_x(problem_->param_space.dim());
      for (double& v : rand_x) v = dup_rng.uniform();
      params = problem_->param_space.decode(rand_x);
      x = rand_x;
    }

    const double y = problem_->objective(task, params);
    result.history.add(params, y);
    strategy->observe(x, y);

    result.proposed_by.emplace_back(
        is_tla && no_valid_target ? proposer
                                  : std::string(strategy->last_chosen()));
    const auto best = result.history.best_output();
    result.best_so_far.push_back(
        best.value_or(std::numeric_limits<double>::quiet_NaN()));
    if (options_.on_evaluation)
      options_.on_evaluation(i, result.history.evals().back(),
                             result.best_so_far.back());
  }
  return result;
}

std::vector<TuningResult> Tuner::tune_multitask(
    const std::vector<space::Config>& tasks,
    const std::vector<TaskHistory>& sources) const {
  if (tasks.empty())
    throw std::invalid_argument("tune_multitask: no tasks");
  for (const auto& t : tasks)
    if (!problem_->task_space.contains(t))
      throw std::invalid_argument("tune_multitask: task outside task space");

  const std::size_t n_tasks = tasks.size();
  std::vector<TuningResult> results(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t)
    results[t].history = TaskHistory(tasks[t]);

  rng::Rng root(rng::splitmix64(options_.seed + 0x317e9a7cULL));
  const auto pool = make_pool(options_.num_threads);
  const TlaOptions tla = with_thread_pool(options_.tla, pool);
  auto model = std::make_shared<gp::LcmModel>(
      problem_->param_space.dim(), sources.size() + n_tasks, tla.lcm);

  for (int i = 0; i < options_.budget; ++i) {
    rng::Rng iter_rng =
        root.split("mt-iteration").split(static_cast<std::uint64_t>(i));

    // Joint LCM over crowd sources + every target task's observations so
    // far. Skipped while no task has data (round 0 samples randomly).
    bool any_data = false;
    std::vector<gp::TaskData> data;
    for (const auto& src : sources) {
      const TrainingData d = src.valid_data(problem_->param_space);
      any_data = any_data || d.size() > 0;
      data.push_back(gp::TaskData{d.x, d.y});
    }
    for (const auto& r : results) {
      const TrainingData d = r.history.valid_data(problem_->param_space);
      any_data = any_data || d.size() > 0;
      data.push_back(gp::TaskData{d.x, d.y});
    }
    if (any_data) {
      rng::Rng fit_rng = iter_rng.split("mt-lcm");
      model->fit(std::move(data), fit_rng);
    }

    for (std::size_t t = 0; t < n_tasks; ++t) {
      rng::Rng task_rng = iter_rng.split("mt-task").split(t);
      la::Vector x(problem_->param_space.dim());
      const auto best = results[t].history.best_output();
      if (any_data && best) {
        const auto view = gp::LcmModel::task_view(model, sources.size() + t);
        std::vector<la::Vector> seeds;
        if (auto bc = results[t].history.best_config())
          seeds.push_back(problem_->param_space.encode(*bc));
        x = maximize_ei(*view, *best, task_rng, seeds,
                        tla.acquisition);
      } else if (any_data) {
        // Task has no valid data yet but the joint model exists: follow
        // the model's mean (cross-task transfer).
        const auto view = gp::LcmModel::task_view(model, sources.size() + t);
        x = minimize_mean(*view, task_rng, {}, tla.acquisition);
      } else {
        for (double& v : x) v = task_rng.uniform();
      }

      space::Config params = problem_->param_space.decode(x);
      rng::Rng dup_rng = task_rng.split("dedup");
      for (int r = 0; r < options_.duplicate_retries &&
                      results[t].history.contains(params);
           ++r) {
        la::Vector rand_x(problem_->param_space.dim());
        for (double& v : rand_x) v = dup_rng.uniform();
        params = problem_->param_space.decode(rand_x);
      }

      const double y = problem_->objective(tasks[t], params);
      results[t].history.add(params, y);
      results[t].proposed_by.emplace_back("Multitask(LCM)");
      const auto best_now = results[t].history.best_output();
      results[t].best_so_far.push_back(
          best_now.value_or(std::numeric_limits<double>::quiet_NaN()));
    }
  }
  return results;
}

TaskHistory collect_random_samples(const space::TuningProblem& problem,
                                   const space::Config& task, int n,
                                   std::uint64_t seed) {
  if (!problem.objective)
    throw std::invalid_argument("collect_random_samples: no objective");
  TaskHistory history(task);
  rng::Rng rng(rng::splitmix64(seed + 0x1234abcdULL));
  for (int i = 0; i < n; ++i) {
    const space::Config params = problem.param_space.sample(rng);
    history.add(params, problem.objective(task, params));
  }
  return history;
}

}  // namespace gptc::core
