// The Bayesian-optimization tuning loop (the tuner of Fig. 1).
//
// Given a TuningProblem, a target task, source-task histories (from the
// crowd database) and a TLA algorithm choice, the Tuner runs the paper's
// iterative loop: propose a configuration, evaluate the black-box
// objective, record the result (including failures), and repeat until the
// budget is spent. The per-evaluation best-so-far trace is what all of the
// paper's figures plot.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/tla.hpp"
#include "space/space.hpp"

namespace gptc::core {

struct TunerOptions {
  /// NS in Algorithm 1: the total number of function evaluations.
  int budget = 20;
  TlaKind algorithm = TlaKind::NoTLA;
  TlaOptions tla;
  std::uint64_t seed = 0;
  /// Worker threads for the tuner's inner loops (GP fit restarts,
  /// acquisition-search population evaluations, per-source surrogate fits,
  /// LCM covariance blocks). 0 = fully serial. Results are bitwise
  /// identical for every value: all parallel units draw from pre-split,
  /// index-keyed RNG streams and reductions run in fixed index order. The
  /// black-box objective itself is always called from the tuning thread.
  int num_threads = 0;
  /// Retry limit when a proposal duplicates an already-evaluated
  /// configuration (common in small integer spaces); after this many
  /// retries the duplicate is evaluated anyway.
  int duplicate_retries = 8;
  /// Optional callback after every evaluation: (index, record, best_so_far).
  std::function<void(int, const EvalRecord&, double)> on_evaluation;
};

struct TuningResult {
  TaskHistory history;
  /// best_so_far[i] = best valid output after evaluation i+1 (NaN until the
  /// first success — matching the paper's practice of not plotting points
  /// before the first successful run).
  std::vector<double> best_so_far;
  /// Name of the (pool-member) algorithm that proposed each evaluation.
  std::vector<std::string> proposed_by;

  std::optional<double> best_output() const { return history.best_output(); }
  std::optional<space::Config> best_config() const {
    return history.best_config();
  }
};

class Tuner {
 public:
  Tuner(const space::TuningProblem& problem, TunerOptions options);

  /// Tunes `task` using the given source histories. Source histories with
  /// no usable data are ignored; when none are usable, TLA algorithms fall
  /// back to NoTLA behaviour for the initial evaluations.
  TuningResult tune(const space::Config& task,
                    const std::vector<TaskHistory>& sources = {}) const;

  /// GPTune-style multitask autotuning (paper Sec. II-A: "tuning multiple
  /// correlated tuning problems simultaneously can benefit from each
  /// other"): tunes all `tasks` together under one LCM model. Each round
  /// fits the joint model on every task's observations (plus optional
  /// crowd sources) and proposes/evaluates one configuration per task, so
  /// correlated tasks share their samples from the very first rounds.
  /// `options.budget` is the number of evaluations PER TASK. The
  /// `options.algorithm` choice is ignored — multitask tuning is the LCM
  /// by construction.
  std::vector<TuningResult> tune_multitask(
      const std::vector<space::Config>& tasks,
      const std::vector<TaskHistory>& sources = {}) const;

 private:
  const space::TuningProblem* problem_;
  TunerOptions options_;
};

/// Collects `n` evaluations at uniformly random configurations for `task` —
/// how the paper builds source datasets ("randomly chosen parameter
/// configurations", Sec. VI-B).
TaskHistory collect_random_samples(const space::TuningProblem& problem,
                                   const space::Config& task, int n,
                                   std::uint64_t seed);

}  // namespace gptc::core
