// The transfer-learning-autotuning (TLA) algorithm pool (paper Table I).
//
// Each strategy answers one question per BO iteration: given the crowd's
// source-task histories and the target task's observations so far, which
// encoded point should be evaluated next? The Tuner owns the loop (evaluate,
// record, repeat); strategies own their models and any cross-iteration
// state (fitted source GPs, LCM warm starts, pseudo-sample sets, ensemble
// statistics).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/acquisition.hpp"
#include "core/history.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/lcm.hpp"
#include "rng/rng.hpp"
#include "space/space.hpp"

namespace gptc::core {

enum class TlaKind {
  NoTLA,             // plain single-task BO (the paper's baseline)
  MultitaskPS,       // LCM + pseudo samples from source surrogates [GPTune'21]
  MultitaskTS,       // LCM + true source samples [GPTuneCrowd]
  WeightedSumEqual,  // HiPerBOt weighted sum, equal weights
  WeightedSumStatic, // HiPerBOt weighted sum, user-supplied weights
  WeightedSumDynamic,// linear-regression weights [GPTuneCrowd]
  Stacking,          // Vizier residual stacking
  EnsembleProposed,  // Algorithm 1 [GPTuneCrowd]
  EnsembleToggling,  // naive round-robin ensemble (ablation)
  EnsembleProb,      // PDF-only ensemble, zero exploration (ablation)
};

std::string_view to_string(TlaKind kind);
std::optional<TlaKind> tla_from_string(std::string_view name);

/// All TlaKind values, in Table I order (plus baseline and ablations).
const std::vector<TlaKind>& all_tla_kinds();

/// Read-only view of the tuning state handed to a strategy each iteration.
struct TlaContext {
  const space::Space* param_space = nullptr;
  const std::vector<TaskHistory>* sources = nullptr;
  const TaskHistory* target = nullptr;
};

struct TlaOptions {
  gp::GpOptions gp;
  gp::LcmOptions lcm;
  AcquisitionOptions acquisition;
  /// WeightedSumStatic weights, ordered [source_1..source_n, target]. Empty
  /// means "not specified": static degenerates to equal weights, exactly as
  /// the paper describes HiPerBOt's behaviour.
  la::Vector static_weights;
  /// Initial pseudo-sample count per source for Multitask(PS).
  int multitask_ps_init_pseudo = 10;
  /// Cap on source samples used per single-task GP fit (weighted-sum,
  /// stacking, PS source surrogates, first-eval model). GP fitting is
  /// O(n^3); crowd source datasets (e.g. NIMROD's 500 samples) are
  /// deterministically subsampled to this many points. The LCM has its own
  /// cap (LcmOptions::max_samples_per_task).
  std::size_t max_source_samples = 150;
};

class TlaStrategy {
 public:
  virtual ~TlaStrategy() = default;

  virtual std::string_view name() const = 0;

  /// Proposes the next encoded point to evaluate for the target task.
  /// Requires at least one valid target observation (the Tuner handles the
  /// first evaluation via first_eval_proposal below).
  virtual la::Vector propose(const TlaContext& ctx, rng::Rng& rng) = 0;

  /// Feedback after the proposed point was evaluated. `y` is NaN on
  /// failure.
  virtual void observe(const la::Vector& x, double y);

  /// For ensembles: the name of the pool member used for the last
  /// proposal. Other strategies report their own name.
  virtual std::string_view last_chosen() const { return name(); }
};

std::unique_ptr<TlaStrategy> make_tla_strategy(TlaKind kind,
                                               const TlaOptions& options);

/// Proposal rule for the very first target evaluation of any TLA strategy:
/// the arg-min of the WeightedSum(equal) combined surrogate over the source
/// models (paper Sec. VI-A). Requires at least one source with data.
la::Vector first_eval_proposal(const TlaContext& ctx, const TlaOptions& options,
                               rng::Rng& rng);

/// Fits one GP per source task on its successful evaluations. Sources with
/// fewer than 2 valid samples are skipped (their index is dropped). Sources
/// larger than `max_samples` are randomly subsampled (0 = no cap).
std::vector<std::shared_ptr<gp::GaussianProcess>> fit_source_gps(
    const TlaContext& ctx, const gp::GpOptions& options, rng::Rng& rng,
    std::size_t max_samples = 150);

/// Randomly subsamples training data down to `max_samples` rows (returns
/// the input unchanged when it is already small enough or max_samples = 0).
TrainingData subsample_training_data(const TrainingData& data,
                                     std::size_t max_samples, rng::Rng& rng);

}  // namespace gptc::core
