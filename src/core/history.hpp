// Evaluation history of a tuning task.
//
// A TaskHistory is the in-memory form of the shared database's function-
// evaluation records for one (problem, task) pair: the task configuration,
// plus every (tuning configuration, output) pair measured so far. Failed
// evaluations (NaN output — e.g. the out-of-memory runs in the paper's
// NIMROD experiment) are kept in the record for the database but excluded
// from surrogate fitting via valid_data().
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "space/space.hpp"

namespace gptc::core {

struct EvalRecord {
  space::Config params;
  double output = std::numeric_limits<double>::quiet_NaN();

  bool failed() const;
};

/// (X, y) matrices of the successful evaluations, encoded into the unit
/// cube of the given parameter space.
struct TrainingData {
  la::Matrix x;
  la::Vector y;

  std::size_t size() const { return y.size(); }
};

class TaskHistory {
 public:
  TaskHistory() = default;
  explicit TaskHistory(space::Config task) : task_(std::move(task)) {}

  const space::Config& task() const { return task_; }
  const std::vector<EvalRecord>& evals() const { return evals_; }
  std::size_t size() const { return evals_.size(); }

  /// Number of successful (finite-output) evaluations.
  std::size_t num_valid() const;

  void add(space::Config params, double output);

  /// True if `params` was already evaluated (exact configuration match).
  bool contains(const space::Config& params) const;

  /// Best (minimum) output over successful evaluations, or nullopt.
  std::optional<double> best_output() const;
  std::optional<space::Config> best_config() const;

  /// Encoded successful evaluations for surrogate fitting.
  TrainingData valid_data(const space::Space& param_space) const;

 private:
  space::Config task_;
  std::vector<EvalRecord> evals_;
};

}  // namespace gptc::core
