#include "core/acquisition.hpp"

#include <cmath>
#include <numbers>

#include "opt/optimize.hpp"

namespace gptc::core {

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double expected_improvement(const gp::Prediction& p, double best) {
  const double sigma = p.stddev();
  if (sigma < 1e-12) return std::max(best - p.mean, 0.0);
  const double z = (best - p.mean) / sigma;
  return (best - p.mean) * normal_cdf(z) + sigma * normal_pdf(z);
}

double lower_confidence_bound(const gp::Prediction& p, double kappa) {
  return p.mean - kappa * p.stddev();
}

namespace {

la::Vector search(const opt::ObjectiveFn& objective, std::size_t dim,
                  rng::Rng& rng, const std::vector<la::Vector>& seeds,
                  const AcquisitionOptions& options) {
  opt::DifferentialEvolutionOptions de;
  de.population = options.de_population;
  de.generations = options.de_generations;
  de.seeds = seeds;
  de.pool = options.pool;
  rng::Rng sub = rng.split("acq-de");
  for (int i = 0; i < options.extra_random_seeds; ++i) {
    la::Vector x(dim);
    for (double& v : x) v = sub.uniform();
    de.seeds.push_back(std::move(x));
  }
  opt::Result r = opt::differential_evolution(objective, dim, sub, de);
  // Local refinement of the DE winner.
  opt::NelderMeadOptions nm;
  nm.max_evaluations = 60;
  nm.initial_step = 0.05;
  nm.clamp_unit_cube = true;
  const opt::Result refined = opt::nelder_mead(objective, r.x, nm);
  return refined.value < r.value ? refined.x : r.x;
}

}  // namespace

la::Vector maximize_ei(const gp::Surrogate& surrogate, double best,
                       rng::Rng& rng, const std::vector<la::Vector>& seeds,
                       const AcquisitionOptions& options) {
  const auto objective = [&](const la::Vector& x) {
    return -expected_improvement(surrogate.predict(x), best);
  };
  return search(objective, surrogate.dim(), rng, seeds, options);
}

la::Vector minimize_mean(const gp::Surrogate& surrogate, rng::Rng& rng,
                         const std::vector<la::Vector>& seeds,
                         const AcquisitionOptions& options) {
  const auto objective = [&](const la::Vector& x) {
    return surrogate.predict(x).mean;
  };
  return search(objective, surrogate.dim(), rng, seeds, options);
}

}  // namespace gptc::core
