// Acquisition functions and the acquisition-search step of the BO loop.
//
// All tuning problems in the paper are minimization problems (runtime), so
// Expected Improvement is defined with respect to the incumbent minimum.
// The acquisition is maximized over the encoded unit cube with differential
// evolution seeded by random points plus the incumbent, then snapped back to
// a valid configuration by Space::decode.
#pragma once

#include <memory>

#include "gp/surrogate.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace gptc::core {

/// Standard normal density.
double normal_pdf(double z);

/// Standard normal CDF (via erf).
double normal_cdf(double z);

/// Expected improvement below `best` for a minimization problem.
/// Returns 0 when the predictive stddev collapses.
double expected_improvement(const gp::Prediction& p, double best);

/// Lower confidence bound (mean - kappa * stddev); exposed for comparisons
/// and tests, not used as the paper's default.
double lower_confidence_bound(const gp::Prediction& p, double kappa = 2.0);

struct AcquisitionOptions {
  int de_population = 24;
  int de_generations = 30;
  int extra_random_seeds = 8;
  /// DE population evaluations (surrogate predictions) run concurrently on
  /// this pool (null = serial); the proposed point is bitwise identical for
  /// any pool size.
  std::shared_ptr<parallel::ThreadPool> pool;
};

/// Maximizes EI(surrogate, best) over [0,1]^dim. `seeds` (e.g. the incumbent
/// best point) are injected into the search population.
la::Vector maximize_ei(const gp::Surrogate& surrogate, double best,
                       rng::Rng& rng, const std::vector<la::Vector>& seeds = {},
                       const AcquisitionOptions& options = {});

/// Minimizes the surrogate posterior mean over [0,1]^dim — the proposal rule
/// used for the very first target evaluation, when there is no incumbent
/// (paper Sec. VI-A uses WeightedSum(equal)'s model for evaluation 1).
la::Vector minimize_mean(const gp::Surrogate& surrogate, rng::Rng& rng,
                         const std::vector<la::Vector>& seeds = {},
                         const AcquisitionOptions& options = {});

}  // namespace gptc::core
