// Combined surrogate models used by the weighted-sum and stacking TLA
// algorithms (paper Sec. V-B/V-D).
//
// Both are Surrogates themselves, so the acquisition search and the crowd
// utilities (QuerySurrogateModel) can consume them like any single-task GP.
#pragma once

#include <memory>
#include <vector>

#include "gp/gaussian_process.hpp"
#include "gp/surrogate.hpp"

namespace gptc::core {

/// Weighted sum of surrogate models (HiPerBOt-style, paper Eq. 1–2):
///   mu(x)    = sum_i w_i * mu_i(x)                (arithmetic)
///   sigma(x) = prod_i sigma_i(x)^{w_i}            (geometric)
/// Weights are normalized to sum to 1 at construction, which keeps the
/// combined output on the scale of the member models and makes the
/// geometric standard deviation well defined.
class WeightedSurrogate final : public gp::Surrogate {
 public:
  WeightedSurrogate(std::vector<gp::SurrogatePtr> models,
                    la::Vector weights);

  /// Convenience: equal weights over all models.
  static std::shared_ptr<WeightedSurrogate> equal(
      std::vector<gp::SurrogatePtr> models);

  gp::Prediction predict(const la::Vector& x) const override;
  std::size_t dim() const override;

  const la::Vector& weights() const { return weights_; }

 private:
  std::vector<gp::SurrogatePtr> models_;
  la::Vector weights_;
};

/// Residual-stacking surrogate (Vizier-style, paper Sec. V-D).
///
/// Built incrementally: the first layer is a GP on the first source task;
/// each following layer is a GP on the residuals between the next task's
/// observations and the stack-so-far's mean. The stacked mean is the sum of
/// layer means; the stacked stddev is the geometric mean of the newest
/// layer's stddev and the previous stack's stddev, weighted by sample
/// counts (beta = n_new / (n_new + n_prev)).
class ResidualStack final : public gp::Surrogate {
 public:
  explicit ResidualStack(std::size_t dim) : dim_(dim) {}

  /// Adds a task layer: fits a GP to (x, y - current_mean(x)) and pushes it
  /// onto the stack. `options`/`rng` control the GP fit.
  void add_layer(const la::Matrix& x, const la::Vector& y,
                 const gp::GpOptions& options, rng::Rng& rng);

  std::size_t num_layers() const { return layers_.size(); }

  gp::Prediction predict(const la::Vector& x) const override;
  std::size_t dim() const override { return dim_; }

 private:
  struct Layer {
    std::shared_ptr<gp::GaussianProcess> model;
    std::size_t samples;
  };

  std::size_t dim_;
  std::vector<Layer> layers_;
};

}  // namespace gptc::core
