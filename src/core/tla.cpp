#include "core/tla.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/combined.hpp"
#include "opt/optimize.hpp"
#include "parallel/thread_pool.hpp"

namespace gptc::core {

std::string_view to_string(TlaKind kind) {
  switch (kind) {
    case TlaKind::NoTLA: return "NoTLA";
    case TlaKind::MultitaskPS: return "Multitask(PS)";
    case TlaKind::MultitaskTS: return "Multitask(TS)";
    case TlaKind::WeightedSumEqual: return "WeightedSum(equal)";
    case TlaKind::WeightedSumStatic: return "WeightedSum(static)";
    case TlaKind::WeightedSumDynamic: return "WeightedSum(dynamic)";
    case TlaKind::Stacking: return "Stacking";
    case TlaKind::EnsembleProposed: return "Ensemble(proposed)";
    case TlaKind::EnsembleToggling: return "Ensemble(toggling)";
    case TlaKind::EnsembleProb: return "Ensemble(prob)";
  }
  return "?";
}

std::optional<TlaKind> tla_from_string(std::string_view name) {
  for (TlaKind k : all_tla_kinds())
    if (to_string(k) == name) return k;
  return std::nullopt;
}

const std::vector<TlaKind>& all_tla_kinds() {
  static const std::vector<TlaKind> kinds = {
      TlaKind::NoTLA,
      TlaKind::MultitaskPS,
      TlaKind::MultitaskTS,
      TlaKind::WeightedSumEqual,
      TlaKind::WeightedSumStatic,
      TlaKind::WeightedSumDynamic,
      TlaKind::Stacking,
      TlaKind::EnsembleProposed,
      TlaKind::EnsembleToggling,
      TlaKind::EnsembleProb,
  };
  return kinds;
}

void TlaStrategy::observe(const la::Vector& x, double y) {
  (void)x;
  (void)y;
}

TrainingData subsample_training_data(const TrainingData& data,
                                     std::size_t max_samples, rng::Rng& rng) {
  if (max_samples == 0 || data.size() <= max_samples) return data;
  auto keep = rng.permutation(data.size());
  keep.resize(max_samples);
  std::sort(keep.begin(), keep.end());
  TrainingData out;
  out.x = la::Matrix(max_samples, data.x.cols());
  out.y.resize(max_samples);
  for (std::size_t i = 0; i < max_samples; ++i) {
    for (std::size_t c = 0; c < data.x.cols(); ++c)
      out.x(i, c) = data.x(keep[i], c);
    out.y[i] = data.y[keep[i]];
  }
  return out;
}

std::vector<std::shared_ptr<gp::GaussianProcess>> fit_source_gps(
    const TlaContext& ctx, const gp::GpOptions& options, rng::Rng& rng,
    std::size_t max_samples) {
  // Every source draws from a stream keyed by its own index, so the fits
  // are independent of execution order and run concurrently across the
  // pool (one surrogate fit per source — the per-algorithm surrogates of
  // the WeightedSum / Stacking / Multitask(PS) ensemble members).
  auto fitted = parallel::parallel_map(
      options.pool, ctx.sources->size(),
      [&](std::size_t s) -> std::shared_ptr<gp::GaussianProcess> {
        TrainingData data = (*ctx.sources)[s].valid_data(*ctx.param_space);
        if (data.size() < 2) return nullptr;
        rng::Rng sub = rng.split("source-gp").split(s);
        data = subsample_training_data(data, max_samples, sub);
        auto gp = std::make_shared<gp::GaussianProcess>(ctx.param_space->dim(),
                                                        options);
        gp->fit(data.x, data.y, sub);
        return gp;
      });
  std::vector<std::shared_ptr<gp::GaussianProcess>> models;
  for (auto& m : fitted)
    if (m) models.push_back(std::move(m));
  return models;
}

namespace {

void check_context(const TlaContext& ctx) {
  if (!ctx.param_space || !ctx.sources || !ctx.target)
    throw std::invalid_argument("TlaContext: null members");
}

la::Vector random_point(std::size_t dim, rng::Rng& rng) {
  la::Vector x(dim);
  for (double& v : x) v = rng.uniform();
  return x;
}

std::vector<la::Vector> incumbent_seeds(const TlaContext& ctx) {
  std::vector<la::Vector> seeds;
  if (auto best = ctx.target->best_config())
    seeds.push_back(ctx.param_space->encode(*best));
  return seeds;
}

// ---------------------------------------------------------------------------
// NoTLA: plain GP-BO on the target task only.

class NoTlaStrategy final : public TlaStrategy {
 public:
  explicit NoTlaStrategy(TlaOptions options) : options_(std::move(options)) {}

  std::string_view name() const override { return to_string(TlaKind::NoTLA); }

  la::Vector propose(const TlaContext& ctx, rng::Rng& rng) override {
    check_context(ctx);
    const TrainingData data = ctx.target->valid_data(*ctx.param_space);
    // A GP needs at least two observations to say anything about
    // lengthscales; sample randomly until then.
    if (data.size() < 2) return random_point(ctx.param_space->dim(), rng);
    gp::GaussianProcess model(ctx.param_space->dim(), options_.gp);
    rng::Rng fit_rng = rng.split("target-gp");
    model.fit(data.x, data.y, fit_rng);
    return maximize_ei(model, *ctx.target->best_output(), rng,
                       incumbent_seeds(ctx), options_.acquisition);
  }

 private:
  TlaOptions options_;
};

// ---------------------------------------------------------------------------
// Multitask(TS): LCM over true source samples + target samples.

class MultitaskTsStrategy final : public TlaStrategy {
 public:
  explicit MultitaskTsStrategy(TlaOptions options)
      : options_(std::move(options)) {}

  std::string_view name() const override {
    return to_string(TlaKind::MultitaskTS);
  }

  la::Vector propose(const TlaContext& ctx, rng::Rng& rng) override {
    check_context(ctx);
    const std::size_t dim = ctx.param_space->dim();
    std::vector<gp::TaskData> tasks;
    for (const auto& src : *ctx.sources) {
      const TrainingData d = src.valid_data(*ctx.param_space);
      tasks.push_back(gp::TaskData{d.x, d.y});
    }
    const TrainingData target = ctx.target->valid_data(*ctx.param_space);
    tasks.push_back(gp::TaskData{target.x, target.y});

    if (!model_ || model_->num_tasks() != tasks.size())
      model_ = std::make_shared<gp::LcmModel>(dim, tasks.size(), options_.lcm);
    rng::Rng fit_rng = rng.split("lcm-ts");
    model_->fit(std::move(tasks), fit_rng);

    const auto view =
        gp::LcmModel::task_view(model_, model_->num_tasks() - 1);
    const double best = ctx.target->best_output().value();
    return maximize_ei(*view, best, rng, incumbent_seeds(ctx),
                       options_.acquisition);
  }

 private:
  TlaOptions options_;
  std::shared_ptr<gp::LcmModel> model_;
};

// ---------------------------------------------------------------------------
// Multitask(PS): LCM over pseudo samples generated by pre-trained source
// surrogates + true target samples (GPTune 2021).

class MultitaskPsStrategy final : public TlaStrategy {
 public:
  explicit MultitaskPsStrategy(TlaOptions options)
      : options_(std::move(options)) {}

  std::string_view name() const override {
    return to_string(TlaKind::MultitaskPS);
  }

  la::Vector propose(const TlaContext& ctx, rng::Rng& rng) override {
    check_context(ctx);
    const std::size_t dim = ctx.param_space->dim();
    ensure_sources(ctx, rng);

    std::vector<gp::TaskData> tasks;
    for (const auto& pseudo : pseudo_) {
      gp::TaskData td;
      td.x = la::Matrix::from_rows(pseudo.x);
      td.y = pseudo.y;
      tasks.push_back(std::move(td));
    }
    const TrainingData target = ctx.target->valid_data(*ctx.param_space);
    tasks.push_back(gp::TaskData{target.x, target.y});

    if (!model_ || model_->num_tasks() != tasks.size())
      model_ = std::make_shared<gp::LcmModel>(dim, tasks.size(), options_.lcm);
    rng::Rng fit_rng = rng.split("lcm-ps");
    model_->fit(std::move(tasks), fit_rng);

    // Predict the next sample for every task (source and target); source
    // proposals become new pseudo samples with outputs from the black-box
    // source surrogates.
    for (std::size_t s = 0; s < pseudo_.size(); ++s) {
      const auto view = gp::LcmModel::task_view(model_, s);
      const double src_best =
          *std::min_element(pseudo_[s].y.begin(), pseudo_[s].y.end());
      rng::Rng src_rng = rng.split("ps-src").split(s);
      la::Vector xs = maximize_ei(*view, src_best, src_rng, {},
                                  options_.acquisition);
      pseudo_[s].y.push_back(source_models_[s]->predict(xs).mean);
      pseudo_[s].x.push_back(std::move(xs));
    }

    const auto view =
        gp::LcmModel::task_view(model_, model_->num_tasks() - 1);
    const double best = ctx.target->best_output().value();
    return maximize_ei(*view, best, rng, incumbent_seeds(ctx),
                       options_.acquisition);
  }

 private:
  struct PseudoSamples {
    std::vector<la::Vector> x;
    la::Vector y;
  };

  void ensure_sources(const TlaContext& ctx, rng::Rng& rng) {
    if (!source_models_.empty()) return;
    rng::Rng fit_rng = rng.split("ps-sources");
    source_models_ = fit_source_gps(ctx, options_.gp, fit_rng,
                                      options_.max_source_samples);
    if (source_models_.empty())
      throw std::runtime_error(
          "Multitask(PS): no source task has enough samples");
    // Seed each source's pseudo-sample set from a Latin hypercube through
    // its surrogate.
    rng::Rng lhs_rng = rng.split("ps-init");
    const auto n0 = static_cast<std::size_t>(
        std::max(options_.multitask_ps_init_pseudo, 2));
    for (auto& model : source_models_) {
      PseudoSamples p;
      p.x = opt::latin_hypercube(n0, model->dim(), lhs_rng);
      p.y.reserve(n0);
      for (const auto& x : p.x) p.y.push_back(model->predict(x).mean);
      pseudo_.push_back(std::move(p));
    }
  }

  TlaOptions options_;
  std::vector<std::shared_ptr<gp::GaussianProcess>> source_models_;
  std::vector<PseudoSamples> pseudo_;
  std::shared_ptr<gp::LcmModel> model_;
};

// ---------------------------------------------------------------------------
// WeightedSum family.

class WeightedSumStrategy final : public TlaStrategy {
 public:
  enum class WeightMode { Equal, Static, Dynamic };

  WeightedSumStrategy(TlaOptions options, WeightMode mode)
      : options_(std::move(options)), mode_(mode) {}

  std::string_view name() const override {
    switch (mode_) {
      case WeightMode::Equal: return to_string(TlaKind::WeightedSumEqual);
      case WeightMode::Static: return to_string(TlaKind::WeightedSumStatic);
      case WeightMode::Dynamic: return to_string(TlaKind::WeightedSumDynamic);
    }
    return "?";
  }

  la::Vector propose(const TlaContext& ctx, rng::Rng& rng) override {
    check_context(ctx);
    if (source_models_.empty()) {
      rng::Rng fit_rng = rng.split("ws-sources");
      source_models_ = fit_source_gps(ctx, options_.gp, fit_rng,
                                      options_.max_source_samples);
      if (source_models_.empty())
        throw std::runtime_error(
            "WeightedSum: no source task has enough samples");
    }
    const TrainingData target = ctx.target->valid_data(*ctx.param_space);
    std::vector<gp::SurrogatePtr> models(source_models_.begin(),
                                         source_models_.end());
    std::shared_ptr<gp::GaussianProcess> target_model;
    if (target.size() >= 2) {
      target_model = std::make_shared<gp::GaussianProcess>(
          ctx.param_space->dim(), options_.gp);
      rng::Rng fit_rng = rng.split("ws-target");
      target_model->fit(target.x, target.y, fit_rng);
      models.push_back(target_model);
    }

    const la::Vector w = compute_weights(ctx, models, target);
    const WeightedSurrogate combined(models, w);
    const double best = ctx.target->best_output().value();
    return maximize_ei(combined, best, rng, incumbent_seeds(ctx),
                       options_.acquisition);
  }

 private:
  la::Vector compute_weights(const TlaContext& ctx,
                             const std::vector<gp::SurrogatePtr>& models,
                             const TrainingData& target) const {
    la::Vector equal(models.size(), 1.0);
    switch (mode_) {
      case WeightMode::Equal: return equal;
      case WeightMode::Static:
        if (options_.static_weights.size() == models.size())
          return options_.static_weights;
        return equal;  // "not specified (most cases)": fall back to equal
      case WeightMode::Dynamic: break;
    }
    // Dynamic weights (paper Sec. V-C): for each observed target sample j,
    //   (y* - y_j)/|y*| ~= sum_i w_i * (mu_i(x*) - mu_i(x_j))/|mu_i(x*)|
    // solved for w >= 0 by NNLS over the observed samples.
    if (target.size() < 2) return equal;
    const auto best_config = ctx.target->best_config();
    const la::Vector x_star = ctx.param_space->encode(*best_config);
    const double y_star = ctx.target->best_output().value();
    const double y_scale = std::max(std::abs(y_star), 1e-12);

    la::Matrix a(target.size(), models.size());
    la::Vector b(target.size());
    for (std::size_t j = 0; j < target.size(); ++j) {
      la::Vector xj(target.x.row(j).begin(), target.x.row(j).end());
      b[j] = (y_star - target.y[j]) / y_scale;
      for (std::size_t i = 0; i < models.size(); ++i) {
        const double mu_star = models[i]->predict(x_star).mean;
        const double mu_j = models[i]->predict(xj).mean;
        const double scale = std::max(std::abs(mu_star), 1e-12);
        a(j, i) = (mu_star - mu_j) / scale;
      }
    }
    la::Vector w = la::nonneg_least_squares(a, b, 1e-6);
    double total = 0.0;
    for (double v : w) total += v;
    if (total <= 1e-12) return equal;  // regression found no signal
    return w;
  }

  TlaOptions options_;
  WeightMode mode_;
  std::vector<std::shared_ptr<gp::GaussianProcess>> source_models_;
};

// ---------------------------------------------------------------------------
// Stacking (Vizier).

class StackingStrategy final : public TlaStrategy {
 public:
  explicit StackingStrategy(TlaOptions options)
      : options_(std::move(options)) {}

  std::string_view name() const override {
    return to_string(TlaKind::Stacking);
  }

  la::Vector propose(const TlaContext& ctx, rng::Rng& rng) override {
    check_context(ctx);
    ensure_source_stack(ctx, rng);

    // Copy the (immutable) source stack and push the target residual layer.
    ResidualStack stack = *source_stack_;
    const TrainingData target = ctx.target->valid_data(*ctx.param_space);
    if (target.size() >= 1) {
      rng::Rng fit_rng = rng.split("stack-target");
      stack.add_layer(target.x, target.y, options_.gp, fit_rng);
    }
    const double best = ctx.target->best_output().value();
    return maximize_ei(stack, best, rng, incumbent_seeds(ctx),
                       options_.acquisition);
  }

 private:
  void ensure_source_stack(const TlaContext& ctx, rng::Rng& rng) {
    if (source_stack_) return;
    // Order source tasks by descending sample count (paper Sec. V-D).
    std::vector<std::size_t> order;
    for (std::size_t s = 0; s < ctx.sources->size(); ++s)
      if ((*ctx.sources)[s].num_valid() >= 2) order.push_back(s);
    if (order.empty())
      throw std::runtime_error("Stacking: no source task has enough samples");
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return (*ctx.sources)[a].num_valid() > (*ctx.sources)[b].num_valid();
    });
    source_stack_ = std::make_shared<ResidualStack>(ctx.param_space->dim());
    rng::Rng fit_rng = rng.split("stack-sources");
    for (std::size_t s : order) {
      TrainingData d = (*ctx.sources)[s].valid_data(*ctx.param_space);
      rng::Rng sub_rng = fit_rng.split(s);
      d = subsample_training_data(d, options_.max_source_samples, sub_rng);
      source_stack_->add_layer(d.x, d.y, options_.gp, sub_rng);
    }
  }

  TlaOptions options_;
  std::shared_ptr<ResidualStack> source_stack_;
};

// ---------------------------------------------------------------------------
// Ensembles (Algorithm 1 and its two ablations).

class EnsembleStrategy final : public TlaStrategy {
 public:
  enum class Mode { Proposed, Toggling, Prob };

  EnsembleStrategy(TlaOptions options, Mode mode)
      : options_(options), mode_(mode) {
    // Default pool (paper Algorithm 1, line 1).
    pool_.push_back(std::make_unique<MultitaskTsStrategy>(options));
    pool_.push_back(std::make_unique<WeightedSumStrategy>(
        options, WeightedSumStrategy::WeightMode::Dynamic));
    pool_.push_back(std::make_unique<StackingStrategy>(options));
    best_.assign(pool_.size(), std::nullopt);
  }

  std::string_view name() const override {
    switch (mode_) {
      case Mode::Proposed: return to_string(TlaKind::EnsembleProposed);
      case Mode::Toggling: return to_string(TlaKind::EnsembleToggling);
      case Mode::Prob: return to_string(TlaKind::EnsembleProb);
    }
    return "?";
  }

  std::string_view last_chosen() const override {
    return pool_[last_]->name();
  }

  la::Vector propose(const TlaContext& ctx, rng::Rng& rng) override {
    check_context(ctx);
    last_ = choose(ctx, rng);
    rng::Rng sub = rng.split("ensemble-member").split(last_);
    return pool_[last_]->propose(ctx, sub);
  }

  void observe(const la::Vector& x, double y) override {
    pool_[last_]->observe(x, y);
    if (std::isfinite(y) && (!best_[last_] || y < *best_[last_]))
      best_[last_] = y;
  }

 private:
  std::size_t choose(const TlaContext& ctx, rng::Rng& rng) {
    if (mode_ == Mode::Toggling)
      return toggle_counter_++ % pool_.size();

    rng::Rng sel = rng.split("ensemble-select");
    if (mode_ == Mode::Proposed) {
      // Exploration rate (paper Eq. 4), decaying in the number of target
      // samples obtained so far.
      const double t = static_cast<double>(pool_.size());
      const double p = static_cast<double>(ctx.param_space->dim());
      const double n =
          std::max<double>(1.0, static_cast<double>(ctx.target->num_valid()));
      const double ratio = t * p / n;
      const double exploration = ratio / (1.0 + ratio);
      if (sel.uniform() < exploration)
        return static_cast<std::size_t>(
            sel.uniform_int(0, static_cast<std::int64_t>(pool_.size()) - 1));
    }
    // PDF over 1/best_output (paper Eq. 3). Members without a recorded best
    // get the most optimistic known weight so they are not starved.
    std::vector<double> weights(pool_.size(), 0.0);
    double max_w = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (best_[i] && *best_[i] > 0.0) {
        weights[i] = 1.0 / *best_[i];
        max_w = std::max(max_w, weights[i]);
        any = true;
      }
    }
    if (!any) {
      return static_cast<std::size_t>(
          sel.uniform_int(0, static_cast<std::int64_t>(pool_.size()) - 1));
    }
    for (double& w : weights)
      if (w == 0.0) w = max_w;
    return sel.categorical(weights);
  }

  TlaOptions options_;
  Mode mode_;
  std::vector<std::unique_ptr<TlaStrategy>> pool_;
  std::vector<std::optional<double>> best_;
  std::size_t last_ = 0;
  std::size_t toggle_counter_ = 0;
};

}  // namespace

std::unique_ptr<TlaStrategy> make_tla_strategy(TlaKind kind,
                                               const TlaOptions& options) {
  switch (kind) {
    case TlaKind::NoTLA:
      return std::make_unique<NoTlaStrategy>(options);
    case TlaKind::MultitaskPS:
      return std::make_unique<MultitaskPsStrategy>(options);
    case TlaKind::MultitaskTS:
      return std::make_unique<MultitaskTsStrategy>(options);
    case TlaKind::WeightedSumEqual:
      return std::make_unique<WeightedSumStrategy>(
          options, WeightedSumStrategy::WeightMode::Equal);
    case TlaKind::WeightedSumStatic:
      return std::make_unique<WeightedSumStrategy>(
          options, WeightedSumStrategy::WeightMode::Static);
    case TlaKind::WeightedSumDynamic:
      return std::make_unique<WeightedSumStrategy>(
          options, WeightedSumStrategy::WeightMode::Dynamic);
    case TlaKind::Stacking:
      return std::make_unique<StackingStrategy>(options);
    case TlaKind::EnsembleProposed:
      return std::make_unique<EnsembleStrategy>(options,
                                                EnsembleStrategy::Mode::Proposed);
    case TlaKind::EnsembleToggling:
      return std::make_unique<EnsembleStrategy>(options,
                                                EnsembleStrategy::Mode::Toggling);
    case TlaKind::EnsembleProb:
      return std::make_unique<EnsembleStrategy>(options,
                                                EnsembleStrategy::Mode::Prob);
  }
  throw std::invalid_argument("make_tla_strategy: unknown kind");
}

la::Vector first_eval_proposal(const TlaContext& ctx, const TlaOptions& options,
                               rng::Rng& rng) {
  if (!ctx.param_space || !ctx.sources || !ctx.target)
    throw std::invalid_argument("first_eval_proposal: null context");
  rng::Rng fit_rng = rng.split("first-eval");
  auto sources = fit_source_gps(ctx, options.gp, fit_rng,
                                options.max_source_samples);
  if (sources.empty())
    throw std::runtime_error("first_eval_proposal: no usable source task");
  std::vector<gp::SurrogatePtr> models(sources.begin(), sources.end());
  const auto combined = WeightedSurrogate::equal(std::move(models));
  return minimize_mean(*combined, rng, {}, options.acquisition);
}

}  // namespace gptc::core
