#include "core/history.hpp"

#include <cmath>

namespace gptc::core {

bool EvalRecord::failed() const { return !std::isfinite(output); }

std::size_t TaskHistory::num_valid() const {
  std::size_t n = 0;
  for (const auto& e : evals_)
    if (!e.failed()) ++n;
  return n;
}

void TaskHistory::add(space::Config params, double output) {
  evals_.push_back(EvalRecord{std::move(params), output});
}

bool TaskHistory::contains(const space::Config& params) const {
  for (const auto& e : evals_) {
    if (e.params.size() != params.size()) continue;
    bool same = true;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!(e.params[i] == params[i])) {
        same = false;
        break;
      }
    }
    if (same) return true;
  }
  return false;
}

std::optional<double> TaskHistory::best_output() const {
  std::optional<double> best;
  for (const auto& e : evals_)
    if (!e.failed() && (!best || e.output < *best)) best = e.output;
  return best;
}

std::optional<space::Config> TaskHistory::best_config() const {
  std::optional<double> best;
  std::optional<space::Config> config;
  for (const auto& e : evals_) {
    if (!e.failed() && (!best || e.output < *best)) {
      best = e.output;
      config = e.params;
    }
  }
  return config;
}

TrainingData TaskHistory::valid_data(const space::Space& param_space) const {
  std::vector<la::Vector> rows;
  std::vector<double> ys;
  for (const auto& e : evals_) {
    if (e.failed()) continue;
    rows.push_back(param_space.encode(e.params));
    ys.push_back(e.output);
  }
  TrainingData d;
  d.x = la::Matrix::from_rows(rows);
  d.y = la::Vector(ys.begin(), ys.end());
  return d;
}

}  // namespace gptc::core
