#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gptc::net {

namespace {

timeval timeout_from_ms(std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000u);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000u) * 1000u);
  return tv;
}

bool is_timeout_errno(int err) {
  // Blocking sockets with SO_RCVTIMEO/SO_SNDTIMEO report an expired
  // deadline as EAGAIN/EWOULDBLOCK.
  return err == EAGAIN || err == EWOULDBLOCK;
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: bad IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::set_recv_timeout_ms(std::uint32_t ms) {
  const timeval tv = timeout_from_ms(ms);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool Socket::set_send_timeout_ms(std::uint32_t ms) {
  const timeval tv = timeout_from_ms(ms);
  return ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::drain(std::size_t max_bytes) {
  char buf[4096];
  std::size_t consumed = 0;
  while (consumed < max_bytes) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      consumed += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF, timeout, or error: nothing more to wait for
  }
}

IoStatus Socket::recv_exact(void* out, std::size_t size) {
  char* cursor = static_cast<char*>(out);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::recv(fd_, cursor, remaining, 0);
    if (n > 0) {
      cursor += n;
      remaining -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::Eof;
    if (errno == EINTR) continue;
    if (is_timeout_errno(errno)) return IoStatus::Timeout;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::send_all(const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::send(fd_, cursor, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      cursor += n;
      remaining -= static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (is_timeout_errno(errno)) return IoStatus::Timeout;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::Eof;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

void TcpListener::listen(const std::string& address, std::uint16_t port,
                         int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw std::runtime_error("net: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = make_addr(address, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("net: bind() to " + address + " failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    throw std::runtime_error("net: listen() failed: " +
                             std::string(std::strerror(errno)));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw std::runtime_error("net: getsockname() failed");
  }
  bound_port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
}

Socket TcpListener::accept() {
  while (sock_.valid()) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EINVAL/EBADF: listener shut down under us (server stop). Anything
    // else is a transient accept failure; either way the caller rechecks
    // its stop flag.
    return Socket();
  }
  return Socket();
}

void TcpListener::shutdown() {
  // ::shutdown wakes a thread blocked in accept() (close() alone does
  // not on Linux). Only the syscall — fd_ stays untouched so a
  // concurrent accept() never reads a half-written descriptor.
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
}

void TcpListener::close() { sock_.close(); }

Socket tcp_connect(const std::string& address, std::uint16_t port,
                   std::uint32_t recv_timeout_ms,
                   std::uint32_t send_timeout_ms) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw std::runtime_error("net: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr = make_addr(address, port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw std::runtime_error("net: connect() to " + address + " failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) sock.set_recv_timeout_ms(recv_timeout_ms);
  if (send_timeout_ms > 0) sock.set_send_timeout_ms(send_timeout_ms);
  return sock;
}

}  // namespace gptc::net
