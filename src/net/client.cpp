#include "net/client.hpp"

#include <cmath>
#include <utility>

namespace gptc::net {

CrowdClient::CrowdClient(const std::string& host, std::uint16_t port,
                         ClientOptions options)
    : opts_(options) {
  try {
    sock_ = tcp_connect(host, port, opts_.recv_timeout_ms,
                        opts_.send_timeout_ms);
  } catch (const std::exception& e) {
    throw TransportError(e.what());
  }
}

json::Json CrowdClient::call(const json::Json& request) {
  const std::string frame = encode_frame(request);
  if (sock_.send_all(frame.data(), frame.size()) != IoStatus::Ok) {
    throw TransportError("send failed");
  }

  char header[kHeaderSize];
  IoStatus st = sock_.recv_exact(header, kHeaderSize);
  if (st == IoStatus::Timeout) throw TransportError("response timed out");
  if (st != IoStatus::Ok) throw TransportError("connection closed");
  const DecodedHeader h = decode_header(header);
  if (h.error) throw TransportError("malformed response header");
  if (h.payload_size > opts_.max_response_bytes) {
    throw TransportError("response exceeds max_response_bytes");
  }
  std::string body(h.payload_size, '\0');
  if (h.payload_size > 0) {
    st = sock_.recv_exact(body.data(), body.size());
    if (st == IoStatus::Timeout) throw TransportError("response timed out");
    if (st != IoStatus::Ok) throw TransportError("connection closed");
  }

  json::Json response;
  try {
    response = json::Json::parse(body);
  } catch (const json::JsonError& e) {
    throw TransportError(std::string("unparseable response: ") + e.what());
  }
  const json::Json ok = response.get_or("ok", json::Json(false));
  if (ok.is_bool() && ok.as_bool()) {
    return response.get_or("result", json::Json::object());
  }
  const json::Json err = response.get_or("error", json::Json::object());
  const std::string code_name =
      err.get_or("code", json::Json("internal")).as_string();
  const std::string message =
      err.get_or("message", json::Json("")).as_string();
  throw RpcError(parse_error_code(code_name).value_or(ErrorCode::Internal),
                 message);
}

json::Json CrowdClient::health() {
  json::Json req = json::Json::object();
  req["op"] = "health";
  return call(req);
}

json::Json CrowdClient::stats() {
  json::Json req = json::Json::object();
  req["op"] = "stats";
  return call(req);
}

std::vector<std::int64_t> CrowdClient::upload(
    const std::string& api_key, const std::string& problem,
    const std::vector<crowd::EvalUpload>& evals) {
  json::Json records = json::Json::array();
  for (const crowd::EvalUpload& e : evals) {
    records.as_array().push_back(eval_to_json(e));
  }
  json::Json req = json::Json::object();
  req["op"] = "upload";
  req["api_key"] = api_key;
  req["problem"] = problem;
  req["records"] = std::move(records);

  const json::Json result = call(req);
  std::vector<std::int64_t> ids;
  for (const json::Json& id : result.at("ids").as_array()) {
    ids.push_back(id.as_int());
  }
  return ids;
}

std::vector<json::Json> CrowdClient::query(const std::string& api_key,
                                           const std::string& problem,
                                           const std::string& where) {
  json::Json req = json::Json::object();
  req["op"] = "query_evaluations";
  req["api_key"] = api_key;
  req["problem"] = problem;
  req["where"] = where;

  json::Json result = call(req);
  std::vector<json::Json> records;
  for (json::Json& rec : result["records"].as_array()) {
    records.push_back(std::move(rec));
  }
  return records;
}

json::Json CrowdClient::explain(const std::string& api_key,
                                const std::string& problem,
                                const std::string& where) {
  json::Json req = json::Json::object();
  req["op"] = "explain";
  req["api_key"] = api_key;
  req["problem"] = problem;
  req["where"] = where;
  return call(req);
}

json::Json eval_to_json(const crowd::EvalUpload& e) {
  json::Json r = json::Json::object();
  r["task_parameters"] = e.task_parameters;
  r["tuning_parameters"] = e.tuning_parameters;
  r["output_name"] = e.output_name;
  r["output"] = std::isnan(e.output) ? json::Json(nullptr)
                                     : json::Json(e.output);
  r["machine_configuration"] = e.machine_configuration;
  r["software_configuration"] = e.software_configuration;
  r["accessibility"] = e.accessibility.to_json();
  return r;
}

}  // namespace gptc::net
