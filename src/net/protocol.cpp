#include "net/protocol.hpp"

#include <cstring>

namespace gptc::net {

std::string error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadFrame: return "bad_frame";
    case ErrorCode::BadVersion: return "bad_version";
    case ErrorCode::TooLarge: return "too_large";
    case ErrorCode::BadJson: return "bad_json";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Auth: return "auth";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

std::optional<ErrorCode> parse_error_code(const std::string& name) {
  for (const ErrorCode code :
       {ErrorCode::BadFrame, ErrorCode::BadVersion, ErrorCode::TooLarge,
        ErrorCode::BadJson, ErrorCode::BadRequest, ErrorCode::Auth,
        ErrorCode::Overloaded, ErrorCode::Timeout, ErrorCode::ShuttingDown,
        ErrorCode::Internal}) {
    if (error_code_name(code) == name) return code;
  }
  return std::nullopt;
}

std::string encode_header(std::uint32_t payload_size) {
  std::string h(kHeaderSize, '\0');
  std::memcpy(h.data(), kMagic, 4);
  h[4] = static_cast<char>(kProtocolVersion);
  h[5] = 0;  // flags
  h[6] = 0;  // reserved
  h[7] = 0;
  h[8] = static_cast<char>((payload_size >> 24) & 0xff);
  h[9] = static_cast<char>((payload_size >> 16) & 0xff);
  h[10] = static_cast<char>((payload_size >> 8) & 0xff);
  h[11] = static_cast<char>(payload_size & 0xff);
  return h;
}

std::string encode_frame(const json::Json& payload) {
  const std::string body = payload.dump();
  std::string frame =
      encode_header(static_cast<std::uint32_t>(body.size()));
  frame += body;
  return frame;
}

DecodedHeader decode_header(const char* header) {
  DecodedHeader out;
  if (std::memcmp(header, kMagic, 4) != 0) {
    out.error = ErrorCode::BadFrame;
    return out;
  }
  if (static_cast<std::uint8_t>(header[4]) != kProtocolVersion) {
    out.error = ErrorCode::BadVersion;
    return out;
  }
  // Flags and reserved bytes must be zero until a version bump assigns
  // them meaning: tolerating garbage here would let corrupt or
  // forward-version frames masquerade as valid v1 traffic.
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) {
    out.error = ErrorCode::BadFrame;
    return out;
  }
  out.payload_size = (static_cast<std::uint32_t>(
                          static_cast<std::uint8_t>(header[8]))
                      << 24) |
                     (static_cast<std::uint32_t>(
                          static_cast<std::uint8_t>(header[9]))
                      << 16) |
                     (static_cast<std::uint32_t>(
                          static_cast<std::uint8_t>(header[10]))
                      << 8) |
                     static_cast<std::uint32_t>(
                         static_cast<std::uint8_t>(header[11]));
  // Every frame carries a JSON document, and no JSON document is empty: a
  // declared length of zero is a malformed frame, not an empty message.
  if (out.payload_size == 0) out.error = ErrorCode::BadFrame;
  return out;
}

json::Json make_result(json::Json result) {
  json::Json r = json::Json::object();
  r["ok"] = true;
  r["result"] = std::move(result);
  return r;
}

json::Json make_error(ErrorCode code, const std::string& message) {
  json::Json e = json::Json::object();
  e["code"] = error_code_name(code);
  e["message"] = message;
  json::Json r = json::Json::object();
  r["ok"] = false;
  r["error"] = std::move(e);
  return r;
}

}  // namespace gptc::net
