#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "crowd/query_language.hpp"

namespace gptc::net {

namespace {

/// Builds the EvalUpload for one wire record, with the same field
/// defaults as `crowdctl upload` (missing output = failed run = NaN).
crowd::EvalUpload eval_from_json(const json::Json& r) {
  crowd::EvalUpload e;
  e.task_parameters = r.get_or("task_parameters", json::Json::object());
  e.tuning_parameters = r.get_or("tuning_parameters", json::Json::object());
  const json::Json name = r.get_or("output_name", json::Json("runtime"));
  e.output_name = name.as_string();
  const json::Json out = r.get_or("output", json::Json(nullptr));
  e.output = out.is_number() ? out.as_double()
                             : std::numeric_limits<double>::quiet_NaN();
  e.machine_configuration =
      r.get_or("machine_configuration", json::Json::object());
  e.software_configuration =
      r.get_or("software_configuration", json::Json::object());
  e.accessibility = crowd::Accessibility::from_json(
      r.get_or("accessibility", json::Json("public")));
  return e;
}

}  // namespace

CrowdServer::CrowdServer(crowd::SharedRepo& repo, ServerOptions options)
    : repo_(repo), opts_(std::move(options)) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.max_connections == 0) opts_.max_connections = 1;
}

CrowdServer::~CrowdServer() { stop(); }

void CrowdServer::start() {
  if (running_.load()) return;
  stopping_.store(false);
  listener_.listen(opts_.bind_address, opts_.port, /*backlog=*/128);
  pool_ = std::make_unique<parallel::ThreadPool>(opts_.workers);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void CrowdServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Wake the accept thread with shutdown() only; the descriptor itself
  // is closed after the join, when no other thread can touch it.
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Nudge blocked readers: in-flight requests keep their write side and
  // finish their response; idle connections see EOF and exit their loop.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& [fd, _] : live_fds_) ::shutdown(fd, SHUT_RD);
  }

  // The pool destructor drains every queued connection task and joins the
  // workers — after this, no request is half-served.
  pool_.reset();

  // Everything acked is already durable (upload waits on the committer);
  // a final sync flushes whatever the WAL buffered for non-acked paths.
  repo_.sync();
}

ServerStats CrowdServer::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load();
  s.connections_rejected = rejected_.load();
  s.requests_ok = requests_ok_.load();
  s.requests_error = requests_error_.load();
  s.records_uploaded = records_uploaded_.load();
  return s;
}

bool CrowdServer::track_connection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (live_fds_.size() >= opts_.max_connections) return false;
  live_fds_.emplace(fd, true);
  return true;
}

void CrowdServer::untrack_connection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  live_fds_.erase(fd);
}

void CrowdServer::accept_loop() noexcept {
  while (!stopping_.load()) {
    Socket sock = listener_.accept();
    if (!sock.valid()) {
      if (stopping_.load() || !listener_.valid()) break;
      continue;  // transient accept failure
    }

    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (opts_.read_timeout_ms > 0)
      sock.set_recv_timeout_ms(opts_.read_timeout_ms);
    if (opts_.write_timeout_ms > 0)
      sock.set_send_timeout_ms(opts_.write_timeout_ms);

    if (!track_connection(sock.fd())) {
      // Admission control: at the cap, answer with a typed error and
      // close. Best effort — never stall the accept loop on a slow peer.
      rejected_.fetch_add(1);
      const std::string frame = encode_frame(
          make_error(ErrorCode::Overloaded, "server connection cap reached"));
      sock.send_all(frame.data(), frame.size());
      continue;  // Socket dtor closes
    }

    accepted_.fetch_add(1);
    // The task owns the socket; untracking happens when it finishes.
    auto shared = std::make_shared<Socket>(std::move(sock));
    pool_->enqueue([this, shared] { serve_connection(std::move(*shared)); });
  }
}

void CrowdServer::serve_connection(Socket sock) noexcept {
  const int fd = sock.fd();
  try {
    std::string body;
    while (true) {
      char header[kHeaderSize];
      IoStatus st = sock.recv_exact(header, kHeaderSize);
      if (st == IoStatus::Timeout) {
        const std::string frame = encode_frame(
            make_error(ErrorCode::Timeout, "read deadline expired"));
        sock.send_all(frame.data(), frame.size());
        break;
      }
      if (st != IoStatus::Ok) break;  // Eof = clean close

      const DecodedHeader h = decode_header(header);
      if (h.error) {
        requests_error_.fetch_add(1);
        const std::string frame = encode_frame(make_error(
            *h.error, *h.error == ErrorCode::BadVersion
                          ? "unsupported protocol version"
                          : "bad frame header"));
        sock.send_all(frame.data(), frame.size());
        break;  // stream position is untrustworthy
      }
      if (h.payload_size > opts_.max_request_bytes) {
        requests_error_.fetch_add(1);
        const std::string frame = encode_frame(make_error(
            ErrorCode::TooLarge,
            "payload exceeds " + std::to_string(opts_.max_request_bytes) +
                " bytes"));
        sock.send_all(frame.data(), frame.size());
        break;  // cannot resynchronize without reading the payload
      }

      body.assign(h.payload_size, '\0');
      if (h.payload_size > 0) {
        st = sock.recv_exact(body.data(), body.size());
        if (st == IoStatus::Timeout) {
          requests_error_.fetch_add(1);
          const std::string frame = encode_frame(
              make_error(ErrorCode::Timeout, "read deadline expired"));
          sock.send_all(frame.data(), frame.size());
          break;
        }
        if (st != IoStatus::Ok) break;
      }

      json::Json response;
      bool close_after = false;
      if (stopping_.load()) {
        response =
            make_error(ErrorCode::ShuttingDown, "server is draining");
        close_after = true;
      } else {
        json::Json request;
        bool parsed = false;
        try {
          request = json::Json::parse(body);
          parsed = true;
        } catch (const json::JsonError& e) {
          response = make_error(ErrorCode::BadJson, e.what());
        }
        if (parsed) response = dispatch(request);
      }

      const json::Json ok = response.get_or("ok", json::Json(false));
      if (ok.is_bool() && ok.as_bool()) {
        requests_ok_.fetch_add(1);
      } else {
        requests_error_.fetch_add(1);
      }

      const std::string frame = encode_frame(response);
      if (sock.send_all(frame.data(), frame.size()) != IoStatus::Ok) break;
      if (close_after) break;
    }
  } catch (...) {
    // serve_connection is a pool task: never let an exception escape.
  }
  // Graceful close: flush our FIN, then drain (briefly — the deadline is
  // shortened first) whatever the client already queued. Closing with
  // unread bytes would RST the connection and could destroy the final
  // error frame before the client reads it.
  sock.shutdown_write();
  sock.set_recv_timeout_ms(250);
  sock.drain(1u << 20);
  untrack_connection(fd);
}

json::Json CrowdServer::dispatch(const json::Json& request) {
  try {
    if (!request.is_object()) {
      return make_error(ErrorCode::BadRequest,
                        "request must be a JSON object");
    }
    const json::Json op = request.get_or("op", json::Json(nullptr));
    if (!op.is_string()) {
      return make_error(ErrorCode::BadRequest, "missing \"op\" field");
    }
    const std::string& name = op.as_string();
    if (name == "health") {
      json::Json r = json::Json::object();
      r["status"] = "ok";
      return make_result(std::move(r));
    }
    if (name == "stats") return make_result(stats_json());
    if (name == "upload") return handle_upload(request);
    if (name == "query_evaluations") return handle_query(request);
    if (name == "explain") return handle_explain(request);
    return make_error(ErrorCode::BadRequest, "unknown op: " + name);
  } catch (const json::JsonError& e) {
    return make_error(ErrorCode::BadRequest, e.what());
  } catch (const std::exception& e) {
    return make_error(ErrorCode::Internal, e.what());
  }
}

json::Json CrowdServer::handle_upload(const json::Json& request) {
  const json::Json key = request.get_or("api_key", json::Json(nullptr));
  if (!key.is_string()) {
    return make_error(ErrorCode::Auth, "missing api_key");
  }
  const std::optional<crowd::AuthedUser> user =
      repo_.authenticate_user(key.as_string());
  if (!user) {
    return make_error(ErrorCode::Auth, "invalid or revoked API key");
  }
  const json::Json problem = request.get_or("problem", json::Json(nullptr));
  if (!problem.is_string()) {
    return make_error(ErrorCode::BadRequest, "missing problem name");
  }
  const json::Json records = request.get_or("records", json::Json(nullptr));
  if (!records.is_array() || records.as_array().empty()) {
    return make_error(ErrorCode::BadRequest,
                      "records must be a non-empty array");
  }
  std::vector<crowd::EvalUpload> evals;
  evals.reserve(records.as_array().size());
  for (const json::Json& r : records.as_array()) {
    if (!r.is_object()) {
      return make_error(ErrorCode::BadRequest,
                        "each record must be a JSON object");
    }
    try {
      evals.push_back(eval_from_json(r));
    } catch (const std::exception& e) {
      return make_error(ErrorCode::BadRequest,
                        std::string("bad record: ") + e.what());
    }
  }

  const crowd::SharedRepo::UploadReceipt receipt =
      repo_.upload_batch(*user, problem.as_string(), evals);
  // The ack gate: with async group commit this blocks until the commit
  // thread fsynced the batch's WAL — the shard WAL its frame lives in, or
  // the engine commit WAL when the upload spans shards or wrote catalog
  // descriptors. If durability fails (CrashInjected in tests, fsync error
  // in production) this throws and the client gets `internal`, not an ack.
  repo_.wait_uploads_durable(receipt);
  records_uploaded_.fetch_add(receipt.ids.size());

  json::Json ids = json::Json::array();
  for (const std::int64_t id : receipt.ids) ids.as_array().emplace_back(id);
  json::Json r = json::Json::object();
  r["ids"] = std::move(ids);
  r["count"] = static_cast<std::int64_t>(receipt.ids.size());
  return make_result(std::move(r));
}

json::Json CrowdServer::handle_query(const json::Json& request) {
  const json::Json key = request.get_or("api_key", json::Json(nullptr));
  if (!key.is_string()) {
    return make_error(ErrorCode::Auth, "missing api_key");
  }
  const std::optional<crowd::AuthedUser> user =
      repo_.authenticate_user(key.as_string());
  if (!user) {
    return make_error(ErrorCode::Auth, "invalid or revoked API key");
  }
  const json::Json problem = request.get_or("problem", json::Json(nullptr));
  if (!problem.is_string()) {
    return make_error(ErrorCode::BadRequest, "missing problem name");
  }
  const json::Json where = request.get_or("where", json::Json(""));
  if (!where.is_string()) {
    return make_error(ErrorCode::BadRequest, "where must be a string");
  }
  std::vector<json::Json> found;
  try {
    found = repo_.query_where(*user, problem.as_string(), where.as_string());
  } catch (const crowd::QueryParseError& e) {
    return make_error(ErrorCode::BadRequest, e.what());
  }
  json::Json arr = json::Json::array();
  for (json::Json& rec : found) arr.as_array().push_back(std::move(rec));
  json::Json r = json::Json::object();
  r["records"] = std::move(arr);
  r["count"] = static_cast<std::int64_t>(found.size());
  return make_result(std::move(r));
}

json::Json CrowdServer::handle_explain(const json::Json& request) {
  const json::Json key = request.get_or("api_key", json::Json(nullptr));
  if (!key.is_string()) {
    return make_error(ErrorCode::Auth, "missing api_key");
  }
  const std::optional<crowd::AuthedUser> user =
      repo_.authenticate_user(key.as_string());
  if (!user) {
    return make_error(ErrorCode::Auth, "invalid or revoked API key");
  }
  const json::Json problem = request.get_or("problem", json::Json(nullptr));
  if (!problem.is_string()) {
    return make_error(ErrorCode::BadRequest, "missing problem name");
  }
  const json::Json where = request.get_or("where", json::Json(""));
  if (!where.is_string()) {
    return make_error(ErrorCode::BadRequest, "where must be a string");
  }
  try {
    return make_result(
        repo_.explain_where(*user, problem.as_string(), where.as_string()));
  } catch (const crowd::QueryParseError& e) {
    return make_error(ErrorCode::BadRequest, e.what());
  }
}

json::Json CrowdServer::stats_json() const {
  const ServerStats s = stats();
  json::Json r = json::Json::object();
  r["connections_accepted"] = static_cast<std::int64_t>(s.connections_accepted);
  r["connections_rejected"] = static_cast<std::int64_t>(s.connections_rejected);
  r["requests_ok"] = static_cast<std::int64_t>(s.requests_ok);
  r["requests_error"] = static_cast<std::int64_t>(s.requests_error);
  r["records_uploaded"] = static_cast<std::int64_t>(s.records_uploaded);
  return r;
}

}  // namespace gptc::net
