// Wire protocol of the crowd-repo server: length-prefixed JSON frames.
//
// Every message — request or response — is one frame:
//
//   offset  size  field
//   0       4     magic "GPTC"
//   4       1     protocol version (kProtocolVersion, currently 1)
//   5       1     flags (0; reserved for compression/continuation)
//   6       2     reserved (0)
//   8       4     payload length, big-endian unsigned
//   12      n     payload: one compact JSON document (UTF-8)
//
// Requests are objects with an "op" field naming the endpoint
// (server.hpp); responses are either
//
//   {"ok": true,  "result": {...}}
//   {"ok": false, "error": {"code": "<ErrorCode>", "message": "..."}}
//
// The error codes are a closed set (ErrorCode below) so clients can switch
// on them; the message is human-readable detail. Framing errors (bad
// magic, bad version, oversized length) are answered with a typed error
// frame and the connection is closed — the stream position can no longer
// be trusted. A payload that frames correctly but fails to parse
// (BadJson) or names an unknown op (BadRequest) keeps the connection
// alive: the frame boundary was sound, so the next request can proceed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "json/json.hpp"

namespace gptc::net {

inline constexpr char kMagic[4] = {'G', 'P', 'T', 'C'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;

/// Typed error vocabulary of the protocol. Serialized as the snake_case
/// strings of error_code_name (README "Server" documents each).
enum class ErrorCode {
  BadFrame,      // magic mismatch or unreadable header
  BadVersion,    // header version != kProtocolVersion
  TooLarge,      // declared payload length exceeds the server's bound
  BadJson,       // payload is not valid JSON
  BadRequest,    // JSON is valid but not a well-formed request
  Auth,          // missing/invalid/revoked API key
  Overloaded,    // admission control rejected the connection
  Timeout,       // read or write deadline expired mid-request
  ShuttingDown,  // server is draining; no new requests accepted
  Internal,      // unexpected server-side failure
};

std::string error_code_name(ErrorCode code);
std::optional<ErrorCode> parse_error_code(const std::string& name);

/// Serializes a frame header for a payload of `payload_size` bytes.
std::string encode_header(std::uint32_t payload_size);

/// Encodes one complete frame (header + compact JSON payload).
std::string encode_frame(const json::Json& payload);

/// Outcome of decoding a 12-byte header buffer.
struct DecodedHeader {
  std::uint32_t payload_size = 0;
  std::optional<ErrorCode> error;  // BadFrame / BadVersion when malformed
};

/// Validates magic + version, requires the flags/reserved bytes to be
/// zero, and extracts the payload length. A declared length of zero is
/// BadFrame (every frame carries a JSON document, never empty). Does not
/// enforce an upper size bound — the caller compares against its own
/// limit so TooLarge can be reported with the limit in the message.
DecodedHeader decode_header(const char* header);

/// Builds the standard success / error response payloads.
json::Json make_result(json::Json result);
json::Json make_error(ErrorCode code, const std::string& message);

}  // namespace gptc::net
