// Concurrent crowd-repo server (the network face of crowd::SharedRepo).
//
// Architecture: one accept thread + a fixed parallel::ThreadPool of
// workers, connection-per-task. The accept thread never blocks on a
// client: admission control is a hard cap on concurrently served
// connections — at the cap a connection is answered with a best-effort
// `overloaded` error frame and closed immediately.
//
// Request handling is a read→dispatch→write loop per connection
// (protocol.hpp describes frames and the error vocabulary). Reads and
// writes run under kernel socket deadlines (socket.hpp), so a stalled
// client costs one worker for at most the timeout, then gets a typed
// `timeout` frame and a close.
//
// Durability of uploads: with EngineOptions::async_commit the repo's WAL
// appends are fsynced by the engine's group-commit thread; the upload
// handler blocks on wait_uploads_durable before acking, so a client that
// received {"ok":true} holds records that survive power loss.
//
// Endpoints (request {"op": ...}):
//   health             — liveness, no auth
//   stats              — request/error/connection counters, no auth
//   upload             — {api_key, problem, records:[...]} atomic batch
//   query_evaluations  — {api_key, problem, where?} via the query planner
//   explain            — {api_key, problem, where?} query-plan report
//                        (per shard: chosen index, selectivity estimates,
//                        candidate counts) without running the query
//
// Shutdown drains: stop() closes the listener, rejects new requests with
// `shutting_down`, half-closes idle connections, and waits for in-flight
// requests to finish writing their responses before returning.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "crowd/repo.hpp"
#include "json/json.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "parallel/thread_pool.hpp"

namespace gptc::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;       // 0 = ephemeral; CrowdServer::port() tells
  std::size_t workers = 4;      // connection-serving threads
  std::size_t max_connections = 64;   // admission-control cap
  std::size_t max_request_bytes = 4u << 20;  // frame payload bound
  std::uint32_t read_timeout_ms = 30'000;    // 0 = no deadline
  std::uint32_t write_timeout_ms = 30'000;
};

/// Snapshot of the server's monotonic counters (the `stats` endpoint).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // admission-control refusals
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;        // typed-error responses sent
  std::uint64_t records_uploaded = 0;
};

class CrowdServer {
 public:
  /// The repo must outlive the server. The server only ever *writes*
  /// func_eval records (upload_batch); user/alias tables must be fully
  /// populated before start() — authenticate() and the normalizers read
  /// them without locks.
  CrowdServer(crowd::SharedRepo& repo, ServerOptions options);
  ~CrowdServer();

  CrowdServer(const CrowdServer&) = delete;
  CrowdServer& operator=(const CrowdServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Throws on bind failure.
  void start();

  /// Drains and stops: no new connections, in-flight requests complete and
  /// their responses are written, then workers join. Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  /// The bound port (after start()); with options.port == 0 this is the
  /// kernel-assigned ephemeral port.
  std::uint16_t port() const { return listener_.bound_port(); }

  ServerStats stats() const;

 private:
  void accept_loop() noexcept;
  void serve_connection(Socket sock) noexcept;

  /// Dispatches one parsed request payload; always returns a response
  /// payload (make_result / make_error).
  json::Json dispatch(const json::Json& request);
  json::Json handle_upload(const json::Json& request);
  json::Json handle_query(const json::Json& request);
  json::Json handle_explain(const json::Json& request);
  json::Json stats_json() const;

  /// Registers / unregisters a live connection fd so stop() can
  /// half-close blocked readers. Returns false at the admission cap.
  bool track_connection(int fd);
  void untrack_connection(int fd);

  // guard-ok: reference bound at construction; SharedRepo locks internally
  crowd::SharedRepo& repo_;
  // guard-ok: finalized by start() before the worker/accept threads exist
  ServerOptions opts_;
  // guard-ok: opened by start() before the accept thread; stop()'s
  // shutdown(2) wake-up is the documented cross-thread close protocol
  TcpListener listener_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;  // guards live_fds_ (leaf lock)
  std::map<int, bool> live_fds_;  // guarded_by: conn_mu_

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> records_uploaded_{0};

  // guard-ok: created by start() before the accept thread; destroyed by
  // stop() after it joins
  std::unique_ptr<parallel::ThreadPool> pool_;
  std::thread accept_thread_;  // last: joined by stop()/dtor
};

}  // namespace gptc::net
