// Thin RAII layer over POSIX TCP sockets for the crowd-repo server.
//
// Deliberately minimal: blocking sockets with kernel-enforced deadlines
// (SO_RCVTIMEO / SO_SNDTIMEO) instead of a userspace timer wheel. The
// engine's lint rules forbid clock reads in src/ (determinism of the
// tuning core), and socket-option timeouts need none: a stalled peer
// surfaces as IoStatus::Timeout straight from recv/send.
//
// recv_exact / send_all loop over short reads/writes and retry EINTR;
// they report one of four outcomes (Ok, Eof, Timeout, Error) so the
// server can distinguish "client went away" from "client stalled".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gptc::net {

/// Outcome of a blocking socket transfer.
enum class IoStatus {
  Ok,       // transferred exactly the requested bytes
  Eof,      // peer closed the connection cleanly before completion
  Timeout,  // SO_RCVTIMEO / SO_SNDTIMEO deadline expired
  Error,    // any other socket error (errno-level)
};

/// Owning wrapper around a socket file descriptor. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Releases ownership of the descriptor without closing it.
  int release();

  void close();

  /// Sets the kernel receive/send deadline. 0 disables the timeout
  /// (blocking without bound). Returns false on setsockopt failure.
  bool set_recv_timeout_ms(std::uint32_t ms);
  bool set_send_timeout_ms(std::uint32_t ms);

  /// Half-closes the read side (shutdown(SHUT_RD)); a blocked reader on
  /// this socket wakes with Eof. Used to nudge idle connections during
  /// server drain without yanking in-flight responses.
  void shutdown_read();

  /// Half-closes the write side (shutdown(SHUT_WR)): queued data and a
  /// FIN are flushed to the peer. Part of the graceful-close sequence.
  void shutdown_write();

  /// Reads and discards until EOF, timeout, error, or `max_bytes`.
  /// Closing a socket with unread bytes in its receive buffer makes the
  /// kernel send RST, which can destroy a response the peer has not read
  /// yet — so error paths drain before closing to guarantee the final
  /// (typed error) frame is actually deliverable.
  void drain(std::size_t max_bytes);

  /// Reads exactly `size` bytes into `out`. Eof with partial data counts
  /// as Eof (the stream ended mid-frame).
  IoStatus recv_exact(void* out, std::size_t size);

  /// Writes all `size` bytes.
  IoStatus send_all(const void* data, std::size_t size);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to `address:port`. Port 0 binds an
/// ephemeral port; bound_port() reports the actual one.
class TcpListener {
 public:
  TcpListener() = default;

  /// Binds and listens. Throws std::runtime_error on failure.
  void listen(const std::string& address, std::uint16_t port, int backlog);

  /// Blocks until a connection arrives or the listener is closed.
  /// Returns an invalid Socket when the listener was closed (the
  /// server's shutdown path) or on a transient accept error.
  Socket accept();

  std::uint16_t bound_port() const { return bound_port_; }
  bool valid() const { return sock_.valid(); }

  /// Shuts the listening socket down without releasing the descriptor:
  /// a thread blocked in accept() wakes and gets an invalid Socket, but
  /// no Socket member is written, so it is safe to call concurrently
  /// with accept(). The shutdown path is shutdown() → join the accept
  /// thread → close().
  void shutdown();

  /// Closes the listening descriptor. NOT safe concurrently with
  /// accept() — call shutdown() and join the accepting thread first.
  void close();

 private:
  Socket sock_;
  std::uint16_t bound_port_ = 0;
};

/// Connects to `address:port` with the given timeouts applied to the
/// resulting socket. Throws std::runtime_error on failure.
Socket tcp_connect(const std::string& address, std::uint16_t port,
                   std::uint32_t recv_timeout_ms,
                   std::uint32_t send_timeout_ms);

}  // namespace gptc::net
