// Client library for the crowd-repo server (the `gptc-client` side of
// the wire protocol). Used by `crowdctl --remote` and bench_server.
//
// One CrowdClient owns one TCP connection and issues framed JSON
// requests synchronously (the protocol is strictly request/response per
// connection; open several clients for parallelism). Server-reported
// errors surface as RpcError carrying the typed ErrorCode; transport
// failures (connect refused, timeout, mid-frame EOF) throw
// TransportError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "crowd/repo.hpp"
#include "json/json.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace gptc::net {

/// The server answered with {"ok": false, ...}.
class RpcError : public std::runtime_error {
 public:
  RpcError(ErrorCode code, const std::string& message)
      : std::runtime_error(error_code_name(code) + ": " + message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// The connection itself failed (refused, reset, deadline, bad frame).
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  std::uint32_t recv_timeout_ms = 30'000;  // 0 = no deadline
  std::uint32_t send_timeout_ms = 30'000;
  std::size_t max_response_bytes = 64u << 20;
};

class CrowdClient {
 public:
  /// Connects immediately; throws TransportError on failure.
  CrowdClient(const std::string& host, std::uint16_t port,
              ClientOptions options = {});

  /// One request/response round trip. Returns the "result" payload of a
  /// successful response; throws RpcError on a typed server error and
  /// TransportError when the connection breaks.
  json::Json call(const json::Json& request);

  // --- Typed endpoint wrappers ---------------------------------------------

  json::Json health();
  json::Json stats();

  /// Uploads a batch; returns the assigned record ids. The server acks
  /// only after the batch is durable.
  std::vector<std::int64_t> upload(const std::string& api_key,
                                   const std::string& problem,
                                   const std::vector<crowd::EvalUpload>& evals);

  /// query_evaluations over the server's query planner.
  std::vector<json::Json> query(const std::string& api_key,
                                const std::string& problem,
                                const std::string& where);

  /// Query-plan report for a WHERE clause (SharedRepo::explain_where wire
  /// form): per shard the chosen index, every considered index with its
  /// selectivity estimate, and the candidate-set size.
  json::Json explain(const std::string& api_key, const std::string& problem,
                     const std::string& where);

 private:
  Socket sock_;
  ClientOptions opts_;
};

/// Serializes one EvalUpload into its wire-record form (the inverse of
/// the server's record mapping; shared with crowdctl --remote).
json::Json eval_to_json(const crowd::EvalUpload& e);

}  // namespace gptc::net
