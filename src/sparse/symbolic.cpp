#include "sparse/symbolic.hpp"

#include <algorithm>
#include <stdexcept>

namespace gptc::sparse {

std::size_t SymbolicFactor::fill() const {
  std::size_t total = 0;
  for (std::size_t c : col_count) total += c;
  return total;
}

double SymbolicFactor::factor_flops() const {
  double total = 0.0;
  for (std::size_t c : col_count) {
    const auto cd = static_cast<double>(c);
    total += cd * cd;
  }
  return total;
}

SymbolicFactor symbolic_factorize(const SparsityPattern& pattern,
                                  const Permutation& perm) {
  const std::size_t n = pattern.size();
  if (!is_permutation(perm, n))
    throw std::invalid_argument("symbolic_factorize: invalid permutation");

  // inverse permutation: old index -> new index.
  std::vector<int> inv(n);
  for (std::size_t k = 0; k < n; ++k)
    inv[static_cast<std::size_t>(perm[k])] = static_cast<int>(k);

  // Full symbolic elimination. struct_[j] holds the sorted row indices of
  // factor column j strictly below the diagonal. Each child's structure is
  // consumed exactly once by its parent, so total work is O(fill).
  std::vector<std::vector<int>> structure(n);
  std::vector<std::vector<int>> children(n);
  SymbolicFactor sym;
  sym.parent.assign(n, -1);
  sym.col_count.assign(n, 1);  // diagonal

  std::vector<int> mark(n, -1);
  std::vector<int> scratch;
  for (std::size_t j = 0; j < n; ++j) {
    scratch.clear();
    const int jj = static_cast<int>(j);
    mark[j] = jj;
    // Original matrix entries below the diagonal (in the new ordering).
    for (int nbr_old : pattern.neighbors(perm[j])) {
      const int i = inv[static_cast<std::size_t>(nbr_old)];
      if (i > jj && mark[static_cast<std::size_t>(i)] != jj) {
        mark[static_cast<std::size_t>(i)] = jj;
        scratch.push_back(i);
      }
    }
    // Children's structures minus their first entry (which is j itself).
    for (int c : children[j]) {
      const auto& cs = structure[static_cast<std::size_t>(c)];
      for (std::size_t k = 1; k < cs.size(); ++k) {
        const int i = cs[k];
        if (mark[static_cast<std::size_t>(i)] != jj) {
          mark[static_cast<std::size_t>(i)] = jj;
          scratch.push_back(i);
        }
      }
      structure[static_cast<std::size_t>(c)].clear();
      structure[static_cast<std::size_t>(c)].shrink_to_fit();
    }
    std::sort(scratch.begin(), scratch.end());
    sym.col_count[j] += scratch.size();
    if (!scratch.empty()) {
      sym.parent[j] = scratch.front();
      children[static_cast<std::size_t>(scratch.front())].push_back(jj);
    }
    structure[j] = scratch;
  }

  // Relabel columns by an etree postorder. A postorder is an equivalent
  // elimination order (same fill, same tree shape) but it makes every
  // subtree a contiguous column range — which is what lets relaxed
  // supernode amalgamation find its subtrees (solvers do exactly this).
  std::vector<int> postorder;
  postorder.reserve(n);
  {
    for (std::size_t r = 0; r < n; ++r) {
      if (sym.parent[r] != -1) continue;
      // Iterative DFS emitting children before parents.
      std::vector<std::pair<int, std::size_t>> frames;
      frames.emplace_back(static_cast<int>(r), 0);
      while (!frames.empty()) {
        auto& [node, next_child] = frames.back();
        const auto& kids = children[static_cast<std::size_t>(node)];
        if (next_child < kids.size()) {
          const int c = kids[next_child++];
          frames.emplace_back(c, 0);
        } else {
          postorder.push_back(node);
          frames.pop_back();
        }
      }
    }
  }
  std::vector<int> rank(n);  // old label -> postorder label
  for (std::size_t k = 0; k < n; ++k)
    rank[static_cast<std::size_t>(postorder[k])] = static_cast<int>(k);
  SymbolicFactor out;
  out.parent.assign(n, -1);
  out.col_count.assign(n, 0);
  for (std::size_t old = 0; old < n; ++old) {
    const auto nw = static_cast<std::size_t>(rank[old]);
    out.col_count[nw] = sym.col_count[old];
    out.parent[nw] = sym.parent[old] < 0
                         ? -1
                         : rank[static_cast<std::size_t>(sym.parent[old])];
  }
  return out;
}

double SupernodePartition::average_width() const {
  if (supernodes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : supernodes) total += s.width();
  return total / static_cast<double>(supernodes.size());
}

SupernodePartition build_supernodes(const SymbolicFactor& symbolic,
                                    int max_supernode, int relax) {
  const std::size_t n = symbolic.n();
  if (max_supernode < 1)
    throw std::invalid_argument("build_supernodes: max_supernode < 1");
  if (relax < 1) throw std::invalid_argument("build_supernodes: relax < 1");

  // Number of children per etree node (needed for the fundamental test:
  // merging j into j+1 also requires j to be the only child, otherwise
  // another subtree's structure flows into j+1).
  std::vector<int> num_children(n, 0);
  for (std::size_t j = 0; j < n; ++j)
    if (symbolic.parent[j] >= 0)
      ++num_children[static_cast<std::size_t>(symbolic.parent[j])];

  // Subtree sizes for relaxed amalgamation (columns are in a topological
  // order: parent > child, so one backward-to-forward pass accumulates).
  std::vector<int> subtree(n, 1);
  for (std::size_t j = 0; j < n; ++j)
    if (symbolic.parent[j] >= 0)
      subtree[static_cast<std::size_t>(symbolic.parent[j])] += subtree[j];

  // Relaxed roots: maximal etree subtrees of at most `relax` columns. The
  // columns are postordered, so the subtree of root r is exactly the
  // contiguous range [r - subtree[r] + 1, r]. range_root[s] = r marks a
  // relaxed range starting at column s.
  std::vector<int> range_root(n, -1);
  for (std::size_t r = 0; r < n; ++r) {
    // Single-column subtrees gain nothing from relaxation and would only
    // break fundamental chains crossing them, so require >= 2 columns.
    const bool small = subtree[r] <= relax && subtree[r] >= 2;
    const bool parent_big =
        symbolic.parent[r] < 0 ||
        subtree[static_cast<std::size_t>(symbolic.parent[r])] > relax;
    if (small && parent_big)
      range_root[r + 1 - static_cast<std::size_t>(subtree[r])] =
          static_cast<int>(r);
  }

  SupernodePartition part;
  const auto emit = [&](std::size_t begin, std::size_t end) {
    // Emit [begin, end) in chunks of at most max_supernode columns.
    std::size_t s = begin;
    while (s < end) {
      const std::size_t e =
          std::min(end, s + static_cast<std::size_t>(max_supernode));
      Supernode sn;
      sn.begin = static_cast<int>(s);
      sn.end = static_cast<int>(e);
      std::size_t max_count = 0;
      for (std::size_t c = s; c < e; ++c)
        max_count = std::max(max_count, symbolic.col_count[c] + (c - s));
      sn.rows = max_count;
      // Every column is stored with the supernode's union structure; the
      // padding beyond its own count is artificial (relaxation) fill.
      for (std::size_t c = s; c < e; ++c) {
        const std::size_t stored = max_count - (c - s);
        if (stored > symbolic.col_count[c])
          part.relax_fill += stored - symbolic.col_count[c];
      }
      part.supernodes.push_back(sn);
      s = e;
    }
  };

  std::size_t j = 0;
  while (j < n) {
    if (range_root[j] >= 0) {
      // A relaxed subtree: one (possibly split) supernode.
      emit(j, static_cast<std::size_t>(range_root[j]) + 1);
      j = static_cast<std::size_t>(range_root[j]) + 1;
      continue;
    }
    // Fundamental supernode: extend while the next column is the parent
    // with a single child and a structure that shrinks by exactly one.
    std::size_t k = j;
    while (k + 1 < n && static_cast<int>(k + 1 - j) < max_supernode &&
           range_root[k + 1] < 0 &&
           symbolic.parent[k] == static_cast<int>(k + 1) &&
           num_children[k + 1] == 1 &&
           symbolic.col_count[k + 1] == symbolic.col_count[k] - 1) {
      ++k;
    }
    emit(j, k + 1);
    j = k + 1;
  }
  return part;
}

}  // namespace gptc::sparse
