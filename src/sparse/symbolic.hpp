// Symbolic factorization: elimination tree, exact fill, supernodes.
//
// Given a (symmetric) pattern and an ordering, this computes the structure
// a sparse direct solver would compute in its analysis phase:
//   * the elimination tree,
//   * exact per-column factor counts (via full symbolic elimination —
//     affordable at the reduced matrix sizes this repo uses),
//   * fundamental supernodes (parent[j] == j+1 and |L_{j+1}| == |L_j| - 1),
//   * relaxed supernodes (small etree subtrees amalgamated, SuperLU's
//     `relax`/NREL knob) with the extra artificial fill they introduce,
//   * a cap on supernode width (SuperLU's NSUP / maxsup knob).
// The SuperLU_DIST cost model consumes the resulting supernode partition.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/ordering.hpp"
#include "sparse/pattern.hpp"

namespace gptc::sparse {

struct SymbolicFactor {
  /// parent[j] in the elimination tree, -1 for roots (post-ordering
  /// indices, i.e. after applying the permutation).
  std::vector<int> parent;
  /// Number of nonzeros in factor column j, including the diagonal.
  std::vector<std::size_t> col_count;

  std::size_t n() const { return parent.size(); }
  /// Total factor nonzeros (one triangle).
  std::size_t fill() const;
  /// Cholesky-style factorization flops: sum_j col_count[j]^2. (An LU on a
  /// symmetric pattern costs ~2x; the cost model applies that factor.)
  double factor_flops() const;
};

/// Symbolic elimination of the permuted pattern.
SymbolicFactor symbolic_factorize(const SparsityPattern& pattern,
                                  const Permutation& perm);

/// One supernode: columns [begin, end) plus the column count of its first
/// column after any relaxation padding.
struct Supernode {
  int begin = 0;
  int end = 0;
  std::size_t rows = 0;  // |struct(L_{:,begin})| incl. diagonal block

  int width() const { return end - begin; }
};

struct SupernodePartition {
  std::vector<Supernode> supernodes;
  /// Artificial nonzeros introduced by relaxed amalgamation.
  std::size_t relax_fill = 0;

  std::size_t count() const { return supernodes.size(); }
  double average_width() const;
};

/// Builds the supernode partition under SuperLU's knobs:
///   max_supernode (NSUP): hard cap on supernode width;
///   relax (NREL): etree subtrees of at most this many columns are
///     amalgamated into one supernode even when structures differ,
///     padding columns to the supernode's union structure (counted in
///     relax_fill).
SupernodePartition build_supernodes(const SymbolicFactor& symbolic,
                                    int max_supernode, int relax);

}  // namespace gptc::sparse
