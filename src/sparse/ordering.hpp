// Fill-reducing orderings for the SuperLU_DIST simulator's COLPERM
// parameter.
//
// COLPERM in SuperLU_DIST selects among NATURAL, MMD_AT+A-style minimum
// degree and METIS-style orderings. Here NATURAL and RCM are exact
// classical algorithms; MMD is a (non-approximate) minimum-degree
// elimination with explicit clique formation, which on the reduced-size
// matrices is affordable and produces genuinely lower fill — so the
// dominant sensitivity of COLPERM in Table IV emerges from real ordering
// quality differences, not from a hard-coded lookup.
#pragma once

#include <string>
#include <vector>

#include "sparse/pattern.hpp"

namespace gptc::sparse {

/// A permutation: perm[new_index] = old_index.
using Permutation = std::vector<int>;

/// Identity ordering.
Permutation natural_ordering(const SparsityPattern& pattern);

/// Reverse Cuthill–McKee from a pseudo-peripheral start vertex: reduces
/// bandwidth (and usually fill, moderately).
Permutation rcm_ordering(const SparsityPattern& pattern);

/// Minimum-degree elimination ordering with explicit fill cliques — the
/// strong fill reducer, standing in for MMD/METIS.
Permutation minimum_degree_ordering(const SparsityPattern& pattern);

/// Resolves a COLPERM choice by name ("NATURAL", "RCM", "MMD_AT_PLUS_A",
/// "METIS_AT_PLUS_A" — the latter two both map to minimum degree, with
/// METIS modeled as a slightly better variant via a tie-break seed).
Permutation colperm_ordering(const SparsityPattern& pattern,
                             const std::string& name);

/// True if perm is a permutation of [0, n).
bool is_permutation(const Permutation& perm, std::size_t n);

}  // namespace gptc::sparse
