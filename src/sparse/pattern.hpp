// Sparse-matrix substrate for the SuperLU_DIST / NIMROD simulators.
//
// SuperLU_DIST's tuning parameters act through the symbolic structure of
// the factorization: COLPERM picks a fill-reducing ordering, NSUP/NREL
// shape the supernode partition. To reproduce Table IV's sensitivity
// structure honestly, this module runs the real pipeline — pattern
// generation, ordering (natural / RCM / minimum degree), elimination tree,
// exact symbolic fill, fundamental + relaxed supernodes — on synthetic
// matrices whose statistics mimic the paper's PARSEC matrices (Si5H12,
// H2O: DFT Hamiltonians, ~30-40 nonzeros/row, banded with long-range
// couplings), scaled down so the analysis runs on one core in milliseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rng/rng.hpp"

namespace gptc::sparse {

/// Symmetric sparsity pattern in CSR form. Only the pattern is stored —
/// the simulators cost out numerics analytically. Diagonal entries are
/// implicit. Column indices within a row are sorted and unique, and the
/// pattern is symmetric by construction (a_ij present iff a_ji present).
class SparsityPattern {
 public:
  SparsityPattern() = default;

  /// Builds from an edge list (both directions inserted automatically;
  /// self-loops and duplicates dropped).
  static SparsityPattern from_edges(
      std::size_t n, const std::vector<std::pair<int, int>>& edges);

  std::size_t size() const { return n_; }
  /// Off-diagonal nonzeros (both triangles).
  std::size_t num_nonzeros() const { return col_idx_.size(); }

  /// Neighbors of row i (excluding i itself), sorted.
  std::vector<int> const& neighbors(int i) const { return adj_[i]; }

  double average_degree() const;

 private:
  std::size_t n_ = 0;
  std::vector<int> col_idx_;            // flattened (for nnz accounting)
  std::vector<std::vector<int>> adj_;   // adjacency lists
};

/// 2-D five-point grid Laplacian pattern (nx * ny unknowns).
SparsityPattern grid_2d(int nx, int ny);

/// 3-D seven-point grid Laplacian pattern.
SparsityPattern grid_3d(int nx, int ny, int nz);

/// PARSEC-like pattern: banded core (local couplings in a real-space DFT
/// Hamiltonian) plus random long-range entries. `band` controls the
/// half-bandwidth, `long_range_per_row` the average number of distant
/// couplings.
SparsityPattern parsec_like(std::size_t n, int band, double long_range_per_row,
                            std::uint64_t seed);

/// The two evaluation matrices of Sec. VI-D at reduced scale. Both use the
/// same generator family (same sparsity character — the paper stresses the
/// matrices share a sparsity pattern family), with different sizes/seeds.
SparsityPattern si5h12_like();  // analysis matrix (Table IV)
SparsityPattern h2o_like();     // tuning matrix (Fig. 6)

}  // namespace gptc::sparse
