#include "sparse/ordering.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace gptc::sparse {

bool is_permutation(const Permutation& perm, std::size_t n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (int v : perm) {
    if (v < 0 || static_cast<std::size_t>(v) >= n || seen[static_cast<std::size_t>(v)])
      return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

Permutation natural_ordering(const SparsityPattern& pattern) {
  Permutation p(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) p[i] = static_cast<int>(i);
  return p;
}

namespace {

/// BFS levels from a start vertex; returns (order, eccentricity).
std::pair<std::vector<int>, int> bfs_order(const SparsityPattern& pattern,
                                           int start,
                                           std::vector<int>& level) {
  const std::size_t n = pattern.size();
  level.assign(n, -1);
  std::vector<int> order;
  order.reserve(n);
  std::deque<int> queue{start};
  level[static_cast<std::size_t>(start)] = 0;
  int ecc = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    order.push_back(v);
    ecc = std::max(ecc, level[static_cast<std::size_t>(v)]);
    // Visit neighbors in increasing-degree order (classic CM refinement).
    std::vector<int> nbrs = pattern.neighbors(v);
    std::sort(nbrs.begin(), nbrs.end(), [&](int a, int b) {
      return pattern.neighbors(a).size() < pattern.neighbors(b).size();
    });
    for (int w : nbrs) {
      if (level[static_cast<std::size_t>(w)] < 0) {
        level[static_cast<std::size_t>(w)] =
            level[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
      }
    }
  }
  return {order, ecc};
}

int pseudo_peripheral_vertex(const SparsityPattern& pattern, int component_seed) {
  std::vector<int> level;
  int start = component_seed;
  auto [order, ecc] = bfs_order(pattern, start, level);
  // Iterate: jump to a min-degree vertex in the last level until the
  // eccentricity stops growing.
  for (int iter = 0; iter < 8; ++iter) {
    int far = order.back();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (level[static_cast<std::size_t>(*it)] != ecc) break;
      if (pattern.neighbors(*it).size() <
          pattern.neighbors(far).size())
        far = *it;
    }
    auto [order2, ecc2] = bfs_order(pattern, far, level);
    if (ecc2 <= ecc) return far;
    start = far;
    order = std::move(order2);
    ecc = ecc2;
  }
  return start;
}

}  // namespace

Permutation rcm_ordering(const SparsityPattern& pattern) {
  const std::size_t n = pattern.size();
  Permutation perm;
  perm.reserve(n);
  std::vector<bool> done(n, false);
  std::vector<int> level;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (done[seed]) continue;
    // One BFS per connected component.
    const int start = pseudo_peripheral_vertex(pattern, static_cast<int>(seed));
    const auto [order, ecc] = bfs_order(pattern, start, level);
    (void)ecc;
    for (int v : order) {
      if (!done[static_cast<std::size_t>(v)]) {
        done[static_cast<std::size_t>(v)] = true;
        perm.push_back(v);
      }
    }
  }
  std::reverse(perm.begin(), perm.end());
  return perm;
}

Permutation minimum_degree_ordering(const SparsityPattern& pattern) {
  const std::size_t n = pattern.size();
  // Working adjacency with fill edges added as cliques form.
  std::vector<std::set<int>> adj(n);
  for (std::size_t i = 0; i < n; ++i)
    adj[i] = std::set<int>(pattern.neighbors(static_cast<int>(i)).begin(),
                           pattern.neighbors(static_cast<int>(i)).end());

  std::vector<bool> eliminated(n, false);
  // Degree buckets for amortized min-degree extraction.
  std::multimap<std::size_t, int> by_degree;
  std::vector<std::multimap<std::size_t, int>::iterator> where(n);
  for (std::size_t i = 0; i < n; ++i)
    where[i] = by_degree.emplace(adj[i].size(), static_cast<int>(i));

  Permutation perm;
  perm.reserve(n);
  const auto redegree = [&](int v) {
    by_degree.erase(where[static_cast<std::size_t>(v)]);
    where[static_cast<std::size_t>(v)] =
        by_degree.emplace(adj[static_cast<std::size_t>(v)].size(), v);
  };

  while (!by_degree.empty()) {
    const int v = by_degree.begin()->second;
    by_degree.erase(by_degree.begin());
    eliminated[static_cast<std::size_t>(v)] = true;
    perm.push_back(v);

    // Form the elimination clique among v's remaining neighbors.
    std::vector<int> nbrs(adj[static_cast<std::size_t>(v)].begin(),
                          adj[static_cast<std::size_t>(v)].end());
    for (int a : nbrs) {
      auto& sa = adj[static_cast<std::size_t>(a)];
      sa.erase(v);
      for (int b : nbrs)
        if (b != a) sa.insert(b);
      redegree(a);
    }
    adj[static_cast<std::size_t>(v)].clear();
  }
  return perm;
}

Permutation colperm_ordering(const SparsityPattern& pattern,
                             const std::string& name) {
  if (name == "NATURAL") return natural_ordering(pattern);
  if (name == "RCM" || name == "RCM_AT_PLUS_A") return rcm_ordering(pattern);
  if (name == "MMD_AT_PLUS_A" || name == "MMD" ||
      name == "METIS_AT_PLUS_A" || name == "METIS")
    return minimum_degree_ordering(pattern);
  throw std::invalid_argument("colperm_ordering: unknown COLPERM " + name);
}

}  // namespace gptc::sparse
