#include "sparse/pattern.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gptc::sparse {

SparsityPattern SparsityPattern::from_edges(
    std::size_t n, const std::vector<std::pair<int, int>>& edges) {
  SparsityPattern p;
  p.n_ = n;
  p.adj_.assign(n, {});
  for (const auto& [a, b] : edges) {
    if (a == b) continue;
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= n ||
        static_cast<std::size_t>(b) >= n)
      throw std::invalid_argument("SparsityPattern: edge out of range");
    p.adj_[static_cast<std::size_t>(a)].push_back(b);
    p.adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& row : p.adj_) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (int c : row) p.col_idx_.push_back(c);
  }
  return p;
}

double SparsityPattern::average_degree() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(num_nonzeros()) / static_cast<double>(n_);
}

SparsityPattern grid_2d(int nx, int ny) {
  std::vector<std::pair<int, int>> edges;
  const auto id = [nx](int x, int y) { return y * nx + x; };
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      if (x + 1 < nx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  return SparsityPattern::from_edges(static_cast<std::size_t>(nx) * ny, edges);
}

SparsityPattern grid_3d(int nx, int ny, int nz) {
  std::vector<std::pair<int, int>> edges;
  const auto id = [nx, ny](int x, int y, int z) {
    return (z * ny + y) * nx + x;
  };
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        if (x + 1 < nx) edges.emplace_back(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) edges.emplace_back(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) edges.emplace_back(id(x, y, z), id(x, y, z + 1));
      }
  return SparsityPattern::from_edges(
      static_cast<std::size_t>(nx) * ny * nz, edges);
}

SparsityPattern parsec_like(std::size_t n, int band, double long_range_per_row,
                            std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("parsec_like: n too small");
  rng::Rng rng(rng::splitmix64(seed + 0xba5eba11ULL));
  std::vector<std::pair<int, int>> edges;
  const auto ni = static_cast<int>(n);
  for (int i = 0; i < ni; ++i) {
    // Banded core: couple to a handful of nearby rows within the band.
    for (int d = 1; d <= band; ++d) {
      if (i + d >= ni) break;
      // Density decays with distance inside the band, as in real-space
      // Hamiltonians where overlap decays with atom distance.
      const double p = 1.0 / (1.0 + 0.15 * d);
      if (rng.uniform() < p) edges.emplace_back(i, i + d);
    }
    // Long-range couplings.
    const int extra = static_cast<int>(long_range_per_row / 2.0 +
                                       (rng.uniform() < (long_range_per_row / 2.0 -
                                                         std::floor(long_range_per_row / 2.0))
                                            ? 1
                                            : 0));
    for (int k = 0; k < extra; ++k) {
      const int j = static_cast<int>(rng.uniform_int(0, ni - 1));
      if (j != i) edges.emplace_back(i, j);
    }
  }
  return SparsityPattern::from_edges(n, edges);
}

SparsityPattern si5h12_like() {
  // Si5H12 is 19,896 rows with ~37 nnz/row; scaled to 1,500 rows. The band
  // half-width and the sparse long-range couplings are chosen so that the
  // fill-reducing orderings separate cleanly (minimum degree ~2.5x fewer
  // factorization flops than natural), as they do on the real matrix.
  return parsec_like(1500, 15, 1.0, /*seed=*/20230501);
}

SparsityPattern h2o_like() {
  // H2O is 67,024 rows with ~33 nnz/row; scaled to 2,000 rows. Same
  // generator family => similar sparsity pattern, as the paper requires
  // for transferring the sensitivity conclusions.
  return parsec_like(2000, 15, 1.0, /*seed=*/20230502);
}

}  // namespace gptc::sparse
