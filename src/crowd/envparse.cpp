#include "crowd/envparse.hpp"

#include <cctype>

namespace gptc::crowd {

std::vector<int> parse_version(std::string_view text) {
  std::vector<int> parts;
  std::size_t i = 0;
  while (i < text.size() && parts.size() < 4) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) break;
    int v = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      v = v * 10 + (text[i] - '0');
      ++i;
    }
    parts.push_back(v);
    if (i < text.size() && text[i] == '.')
      ++i;
    else
      break;
  }
  return parts;
}

int compare_versions(const std::vector<int>& a, const std::vector<int>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int av = i < a.size() ? a[i] : 0;
    const int bv = i < b.size() ? b[i] : 0;
    if (av != bv) return av < bv ? -1 : 1;
  }
  return 0;
}

bool version_in_range(const std::vector<int>& v, const std::vector<int>& from,
                      const std::vector<int>& to) {
  if (!from.empty() && compare_versions(v, from) < 0) return false;
  if (!to.empty() && compare_versions(v, to) > 0) return false;
  return true;
}

json::Json SpackSpec::to_json() const {
  json::Json j = json::Json::object();
  j["name"] = name;
  json::Json ver = json::Json::array();
  for (int v : version) ver.push_back(std::int64_t{v});
  j["version"] = std::move(ver);
  if (!compiler.empty()) {
    json::Json c = json::Json::object();
    c["name"] = compiler;
    json::Json cv = json::Json::array();
    for (int v : compiler_version) cv.push_back(std::int64_t{v});
    c["version"] = std::move(cv);
    j["compiler"] = std::move(c);
  }
  if (!variants.empty()) {
    json::Json vs = json::Json::array();
    for (const auto& v : variants) vs.push_back(v);
    j["variants"] = std::move(vs);
  }
  if (!arch.empty()) j["arch"] = arch;
  return j;
}

namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.';
}

std::string_view take_while(std::string_view& s, bool (*pred)(char)) {
  std::size_t n = 0;
  while (n < s.size() && pred(s[n])) ++n;
  const std::string_view token = s.substr(0, n);
  s.remove_prefix(n);
  return token;
}

}  // namespace

std::optional<SpackSpec> parse_spack_spec(std::string_view line) {
  // Trim whitespace.
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front())))
    line.remove_prefix(1);
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
    line.remove_suffix(1);
  if (line.empty() || line.front() == '#') return std::nullopt;

  SpackSpec spec;
  spec.name = std::string(take_while(line, is_name_char));
  if (spec.name.empty()) return std::nullopt;

  while (!line.empty()) {
    const char c = line.front();
    if (c == '@') {
      line.remove_prefix(1);
      spec.version = parse_version(take_while(line, is_name_char));
    } else if (c == '%') {
      line.remove_prefix(1);
      // compiler name up to '@'
      std::string comp;
      while (!line.empty() && is_name_char(line.front()) &&
             line.front() != '@') {
        // '@' is not a name char, so this loop is just take_while
        comp += line.front();
        line.remove_prefix(1);
      }
      spec.compiler = comp;
      if (!line.empty() && line.front() == '@') {
        line.remove_prefix(1);
        spec.compiler_version = parse_version(take_while(line, is_name_char));
      }
    } else if (c == '+' || c == '~') {
      line.remove_prefix(1);
      std::string v(1, c);
      v += std::string(take_while(line, is_name_char));
      if (v.size() > 1) spec.variants.push_back(std::move(v));
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      line.remove_prefix(1);
    } else if (line.starts_with("arch=")) {
      line.remove_prefix(5);
      spec.arch = std::string(take_while(line, is_name_char));
    } else {
      // Unknown token (e.g. ^dependency): skip to next whitespace.
      while (!line.empty() &&
             !std::isspace(static_cast<unsigned char>(line.front())))
        line.remove_prefix(1);
    }
  }
  return spec;
}

json::Json parse_spack_manifest(std::string_view text) {
  json::Json out = json::Json::object();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        text.substr(start, nl == std::string_view::npos ? nl : nl - start);
    if (const auto spec = parse_spack_spec(line)) {
      out[spec->name] = spec->to_json();
      if (!spec->compiler.empty() && !out.contains(spec->compiler)) {
        SpackSpec comp;
        comp.name = spec->compiler;
        comp.version = spec->compiler_version;
        out[comp.name] = comp.to_json();
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return out;
}

json::Json parse_slurm_env(const std::map<std::string, std::string>& env) {
  json::Json j = json::Json::object();
  const auto get = [&](const char* key) -> const std::string* {
    const auto it = env.find(key);
    return it == env.end() ? nullptr : &it->second;
  };
  if (const auto* v = get("SLURM_CLUSTER_NAME")) j["machine_name"] = *v;
  if (const auto* v = get("SLURM_JOB_PARTITION")) j["partition"] = *v;
  if (const auto* v = get("SLURM_JOB_NUM_NODES")) {
    const auto ver = parse_version(*v);
    if (!ver.empty()) j["nodes"] = std::int64_t{ver[0]};
  }
  if (const auto* v = get("SLURM_CPUS_ON_NODE")) {
    const auto ver = parse_version(*v);
    if (!ver.empty()) j["cores"] = std::int64_t{ver[0]};
  }
  if (const auto* v = get("SLURM_JOB_ID")) j["job_id"] = *v;
  j["scheduler"] = "slurm";
  return j;
}

}  // namespace gptc::crowd
