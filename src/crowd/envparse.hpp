// Automatic runtime-environment parsing (paper Sec. III / IV-A).
//
// GPTuneCrowd records the machine and software configuration of every
// performance sample so that crowd data is reproducible and queryable.
// Hand-written descriptions are error-prone, so the paper parses them from
// the HPC environment automatically: Spack spec strings for software and
// SLURM_* environment variables for the job's machine allocation. These
// parsers accept the same formats; tests feed them synthetic fixtures.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace gptc::crowd {

/// "9.3.0" -> {9, 3, 0}. Tolerates 1–4 numeric components and ignores
/// trailing non-numeric suffixes ("3.11.2-rc1" -> {3, 11, 2}).
std::vector<int> parse_version(std::string_view text);

/// Lexicographic comparison, missing components treated as 0:
/// negative/zero/positive like strcmp.
int compare_versions(const std::vector<int>& a, const std::vector<int>& b);

/// from <= v <= to, with empty bounds meaning unconstrained.
bool version_in_range(const std::vector<int>& v, const std::vector<int>& from,
                      const std::vector<int>& to);

/// One parsed Spack spec: name@version%compiler@cversion±variants arch=...
struct SpackSpec {
  std::string name;
  std::vector<int> version;
  std::string compiler;
  std::vector<int> compiler_version;
  std::vector<std::string> variants;  // with leading +/~
  std::string arch;

  json::Json to_json() const;
};

/// Parses a single Spack spec string, e.g.
/// "superlu-dist@7.2.0%gcc@9.3.0+openmp~cuda arch=cray-cnl7-haswell".
/// Returns nullopt for lines that do not look like a spec.
std::optional<SpackSpec> parse_spack_spec(std::string_view line);

/// Parses a multi-line `spack find`-style manifest (comments with '#',
/// blank lines ignored) into a software_configuration object:
/// {"superlu-dist": {"version": [7,2,0], ...}, "gcc": {...}}.
/// Compilers referenced by %... are recorded as software entries too.
json::Json parse_spack_manifest(std::string_view text);

/// Extracts a machine_configuration object from SLURM_* environment
/// variables (SLURM_CLUSTER_NAME, SLURM_JOB_PARTITION,
/// SLURM_JOB_NUM_NODES, SLURM_CPUS_ON_NODE, SLURM_JOB_ID). Missing keys are
/// simply omitted from the result.
json::Json parse_slurm_env(const std::map<std::string, std::string>& env);

}  // namespace gptc::crowd
