#include "crowd/meta.hpp"

#include <stdexcept>

namespace gptc::crowd {

namespace {

using json::Json;

void parse_range(const Json& j, std::optional<std::int64_t>& lo,
                 std::optional<std::int64_t>& hi) {
  if (j.is_number()) {
    lo = j.as_int();
    hi = j.as_int();
  } else if (j.is_array() && j.size() == 2) {
    lo = j.at(std::size_t{0}).as_int();
    hi = j.at(std::size_t{1}).as_int();
  } else {
    throw json::JsonError(
        "machine filter: expected number or [min, max] pair");
  }
}

std::vector<MachineFilter> parse_machine_filters(const Json& arr) {
  // Schema: [{"Cori": {"haswell": {"nodes": 1, "cores": 32}}}, ...]
  std::vector<MachineFilter> filters;
  for (const auto& entry : arr.as_array()) {
    for (const auto& [machine, partitions] : entry.as_object()) {
      if (!partitions.is_object() || partitions.as_object().empty()) {
        MachineFilter f;
        f.machine_name = machine;
        filters.push_back(std::move(f));
        continue;
      }
      for (const auto& [partition, limits] : partitions.as_object()) {
        MachineFilter f;
        f.machine_name = machine;
        f.partition = partition;
        if (limits.contains("nodes"))
          parse_range(limits.at("nodes"), f.nodes_min, f.nodes_max);
        if (limits.contains("cores"))
          parse_range(limits.at("cores"), f.cores_min, f.cores_max);
        filters.push_back(std::move(f));
      }
    }
  }
  return filters;
}

std::vector<SoftwareFilter> parse_software_filters(const Json& arr) {
  // Schema: [{"gcc": {"version_from": [8,0,0], "version_to": [9,0,0]}}]
  std::vector<SoftwareFilter> filters;
  for (const auto& entry : arr.as_array()) {
    for (const auto& [name, cond] : entry.as_object()) {
      SoftwareFilter f;
      f.name = name;
      const auto read_version = [&](const char* key, std::vector<int>& out) {
        if (!cond.contains(key)) return;
        for (const auto& part : cond.at(key).as_array())
          out.push_back(static_cast<int>(part.as_int()));
      };
      read_version("version_from", f.version_from);
      read_version("version_to", f.version_to);
      filters.push_back(std::move(f));
    }
  }
  return filters;
}

}  // namespace

MetaDescription MetaDescription::from_json(const Json& j) {
  MetaDescription m;
  m.api_key = j.get_or("api_key", Json("")).as_string();
  m.tuning_problem_name =
      j.at("tuning_problem_name").as_string();

  if (j.contains("problem_space")) {
    const Json& ps = j.at("problem_space");
    if (ps.contains("input_space"))
      m.input_space = space::Space::from_json(ps.at("input_space"));
    if (ps.contains("parameter_space"))
      m.parameter_space = space::Space::from_json(ps.at("parameter_space"));
    if (ps.contains("output_space") && ps.at("output_space").size() > 0)
      m.output_name =
          ps.at("output_space").at(std::size_t{0}).at("name").as_string();
  }
  if (j.contains("configuration_space")) {
    const Json& cs = j.at("configuration_space");
    if (cs.contains("machine_configurations"))
      m.machine_filters =
          parse_machine_filters(cs.at("machine_configurations"));
    if (cs.contains("software_configurations"))
      m.software_filters =
          parse_software_filters(cs.at("software_configurations"));
    if (cs.contains("user_configurations"))
      for (const auto& u : cs.at("user_configurations").as_array())
        m.user_filters.push_back(u.as_string());
  }
  m.machine_configuration =
      j.get_or("machine_configuration", Json::object());
  m.software_configuration =
      j.get_or("software_configuration", Json::object());
  m.sync_crowd_repo =
      j.get_or("sync_crowd_repo", Json("no")).as_string() == "yes";
  return m;
}

json::Json MetaDescription::to_json() const {
  Json j = Json::object();
  j["api_key"] = api_key;
  j["tuning_problem_name"] = tuning_problem_name;

  Json ps = Json::object();
  ps["input_space"] = input_space.to_json();
  ps["parameter_space"] = parameter_space.to_json();
  Json out_space = Json::array();
  Json out = Json::object();
  out["name"] = output_name;
  out["type"] = "real";
  out_space.push_back(std::move(out));
  ps["output_space"] = std::move(out_space);
  j["problem_space"] = std::move(ps);

  Json cs = Json::object();
  Json machines = Json::array();
  for (const auto& f : machine_filters) {
    Json limits = Json::object();
    const auto range = [](std::optional<std::int64_t> lo,
                          std::optional<std::int64_t> hi) {
      Json r = Json::array();
      r.push_back(lo.value());
      r.push_back(hi.value());
      return r;
    };
    if (f.nodes_min) limits["nodes"] = range(f.nodes_min, f.nodes_max);
    if (f.cores_min) limits["cores"] = range(f.cores_min, f.cores_max);
    Json partition = Json::object();
    partition[f.partition.empty() ? "any" : f.partition] = std::move(limits);
    Json machine = Json::object();
    machine[f.machine_name] = std::move(partition);
    machines.push_back(std::move(machine));
  }
  cs["machine_configurations"] = std::move(machines);
  Json softwares = Json::array();
  for (const auto& f : software_filters) {
    Json cond = Json::object();
    const auto ver = [](const std::vector<int>& v) {
      Json a = Json::array();
      for (int x : v) a.push_back(std::int64_t{x});
      return a;
    };
    if (!f.version_from.empty()) cond["version_from"] = ver(f.version_from);
    if (!f.version_to.empty()) cond["version_to"] = ver(f.version_to);
    Json sw = Json::object();
    sw[f.name] = std::move(cond);
    softwares.push_back(std::move(sw));
  }
  cs["software_configurations"] = std::move(softwares);
  Json users = Json::array();
  for (const auto& u : user_filters) users.push_back(u);
  cs["user_configurations"] = std::move(users);
  j["configuration_space"] = std::move(cs);

  j["machine_configuration"] = machine_configuration;
  j["software_configuration"] = software_configuration;
  j["sync_crowd_repo"] = sync_crowd_repo ? "yes" : "no";
  return j;
}

}  // namespace gptc::crowd
