#include "crowd/variability.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "db/document_store.hpp"

namespace gptc::crowd {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(),
                          values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

double mad_of(const std::vector<double>& values, double median) {
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - median));
  return median_of(std::move(deviations));
}

std::vector<const RepeatedGroup*> VariabilityReport::noisy_groups() const {
  std::vector<const RepeatedGroup*> out;
  for (const auto& g : groups)
    if (g.noisy(options.noisy_relative_mad)) out.push_back(&g);
  return out;
}

std::vector<std::int64_t> VariabilityReport::outlier_record_ids() const {
  std::vector<std::int64_t> ids;
  for (const auto& g : groups)
    for (std::size_t i : g.outliers) ids.push_back(g.record_ids[i]);
  return ids;
}

std::size_t VariabilityReport::total_outliers() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.outliers.size();
  return n;
}

std::string VariabilityReport::summary() const {
  std::ostringstream os;
  os << groups.size() << " repeated-measurement group(s), "
     << noisy_groups().size() << " noisy (relative MAD > "
     << options.noisy_relative_mad << "), " << total_outliers()
     << " outlier record(s) (|z| > " << options.outlier_z << ")";
  return os.str();
}

VariabilityReport detect_variability(const std::vector<json::Json>& records,
                                     const VariabilityOptions& options) {
  // Group by the full configuration: same task, same tuning parameters,
  // same recorded environment.
  struct Entry {
    std::int64_t id;
    double output;
  };
  std::map<std::string, std::vector<Entry>> by_key;
  for (const auto& r : records) {
    const json::Json* output = db::lookup_path(r, "output");
    if (!output || !output->is_object()) continue;
    double y = std::numeric_limits<double>::quiet_NaN();
    for (const auto& [name, v] : output->as_object()) {
      (void)name;
      if (v.is_number()) {
        y = v.as_double();
        break;
      }
    }
    if (!std::isfinite(y)) continue;  // failures are not variability

    json::Json key = json::Json::object();
    key["task"] = r.get_or("task_parameters", json::Json::object());
    key["tuning"] = r.get_or("tuning_parameters", json::Json::object());
    key["machine"] = r.get_or("machine_configuration", json::Json::object());
    key["software"] = r.get_or("software_configuration", json::Json::object());
    by_key[key.dump()].push_back(
        Entry{r.get_or("_id", json::Json(std::int64_t{-1})).as_int(), y});
  }

  VariabilityReport report;
  report.options = options;
  for (auto& [key, entries] : by_key) {
    if (entries.size() < std::max<std::size_t>(options.min_repeats, 2))
      continue;
    RepeatedGroup g;
    g.key = key;
    for (const auto& e : entries) {
      g.record_ids.push_back(e.id);
      g.outputs.push_back(e.output);
    }
    g.median = median_of(g.outputs);
    g.mad = mad_of(g.outputs, g.median);
    g.relative_mad =
        std::abs(g.median) > 1e-300 ? g.mad / std::abs(g.median) : 0.0;
    if (g.mad > 1e-300) {
      for (std::size_t i = 0; i < g.outputs.size(); ++i) {
        // Iglewicz–Hoaglin modified z-score.
        const double z = 0.6745 * (g.outputs[i] - g.median) / g.mad;
        if (std::abs(z) > options.outlier_z) g.outliers.push_back(i);
      }
    }
    report.groups.push_back(std::move(g));
  }
  return report;
}

}  // namespace gptc::crowd
