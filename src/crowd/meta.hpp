// The tuner-facing meta description (paper Sec. IV-A).
//
// A user describes the tuning problem once — API key, problem name, the
// problem_space to query, the configuration_space restricting which crowd
// data to trust, and their own machine/software configuration to record —
// and the crowd layer turns that into database queries and upload stamps.
// The JSON schema is the paper's code-snippet schema verbatim.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "space/space.hpp"

namespace gptc::crowd {

/// One machine filter from configuration_space, e.g. parsed from
/// {"Cori": {"haswell": {"nodes": 1, "cores": 32}}}. Numeric fields may be
/// an exact value or a [min, max] pair (inclusive).
struct MachineFilter {
  std::string machine_name;
  std::string partition;            // empty = any
  std::optional<std::int64_t> nodes_min, nodes_max;
  std::optional<std::int64_t> cores_min, cores_max;
};

/// One software filter, e.g. {"gcc": {"version_from": [8,0,0],
/// "version_to": [9,0,0]}}.
struct SoftwareFilter {
  std::string name;
  std::vector<int> version_from;  // empty = unconstrained
  std::vector<int> version_to;
};

struct MetaDescription {
  std::string api_key;
  std::string tuning_problem_name;

  /// Query ranges for task and tuning parameters (problem_space).
  space::Space input_space;
  space::Space parameter_space;
  std::string output_name = "runtime";

  /// configuration_space filters; empty vectors mean "no restriction".
  std::vector<MachineFilter> machine_filters;
  std::vector<SoftwareFilter> software_filters;
  std::vector<std::string> user_filters;

  /// The user's own environment, recorded on upload.
  json::Json machine_configuration = json::Json::object();
  json::Json software_configuration = json::Json::object();
  bool sync_crowd_repo = false;

  /// Parses the paper's meta-description JSON schema.
  static MetaDescription from_json(const json::Json& j);
  json::Json to_json() const;
};

}  // namespace gptc::crowd
