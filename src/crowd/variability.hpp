// Performance-variability detection for crowd samples.
//
// The paper's conclusion names this as future work: "Detecting/diagnosing
// performance variability of performance samples (caused by system noise)".
// Crowd databases accumulate repeated measurements of the same
// configuration (same problem, task, tuning parameters and environment)
// from different runs and users; system noise makes those repeats
// disagree, and a single noisy outlier can mislead every TLA algorithm
// that trusts the data.
//
// This module groups records by configuration, computes robust dispersion
// statistics per group (median, median absolute deviation, coefficient of
// variation) and flags
//   * outlier records (modified z-score |0.6745 (x - median) / MAD| above
//     a threshold — the standard Iglewicz–Hoaglin rule), and
//   * noisy configurations (relative dispersion above a threshold),
// so tuners can drop or down-weight suspect samples before model fitting.
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"

namespace gptc::crowd {

struct VariabilityOptions {
  /// Modified z-score above which a record is an outlier (3.5 is the
  /// textbook default).
  double outlier_z = 3.5;
  /// Groups with MAD/median above this are "noisy configurations".
  double noisy_relative_mad = 0.05;
  /// Ignore groups with fewer repeated measurements than this.
  std::size_t min_repeats = 2;
};

struct RepeatedGroup {
  /// Canonical JSON of the grouping key (task + tuning parameters +
  /// machine/software configuration).
  std::string key;
  std::vector<std::int64_t> record_ids;
  std::vector<double> outputs;
  double median = 0.0;
  /// Median absolute deviation (unscaled).
  double mad = 0.0;
  /// Robust relative dispersion: MAD / |median|.
  double relative_mad = 0.0;
  /// Indices into outputs/record_ids of flagged outliers.
  std::vector<std::size_t> outliers;

  bool noisy(double threshold) const { return relative_mad > threshold; }
};

struct VariabilityReport {
  std::vector<RepeatedGroup> groups;  // every group with >= min_repeats
  VariabilityOptions options;

  /// Groups whose dispersion exceeds options.noisy_relative_mad.
  std::vector<const RepeatedGroup*> noisy_groups() const;

  /// Record ids of every flagged outlier across all groups.
  std::vector<std::int64_t> outlier_record_ids() const;

  std::size_t total_outliers() const;

  /// Human-readable summary.
  std::string summary() const;
};

/// Robust statistics helpers (exposed for tests).
double median_of(std::vector<double> values);
double mad_of(const std::vector<double>& values, double median);

/// Analyzes function-evaluation records (the schema SharedRepo stores):
/// groups by (task_parameters, tuning_parameters, machine_configuration,
/// software_configuration), skipping failed (null-output) records.
VariabilityReport detect_variability(const std::vector<json::Json>& records,
                                     const VariabilityOptions& options = {});

}  // namespace gptc::crowd
