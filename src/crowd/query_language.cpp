#include "crowd/query_language.hpp"

#include <cctype>

namespace gptc::crowd {

namespace {

using json::Json;

enum class TokenKind {
  Identifier,  // field path or keyword
  Number,
  String,
  Operator,  // = == != <> < <= > >=
  LParen,
  RParen,
  Comma,
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw QueryParseError("query parse error at position " +
                          std::to_string(current_.position) + ": " + message);
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    current_ = Token{};
    current_.position = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = TokenKind::End;
      return;
    }
    const char c = text_[pos_];
    if (c == '(') {
      current_ = {TokenKind::LParen, "(", pos_++};
      return;
    }
    if (c == ')') {
      current_ = {TokenKind::RParen, ")", pos_++};
      return;
    }
    if (c == ',') {
      current_ = {TokenKind::Comma, ",", pos_++};
      return;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::string out;
      ++pos_;
      while (true) {
        if (pos_ >= text_.size())
          throw QueryParseError("query parse error: unterminated string at " +
                                std::to_string(current_.position));
        if (text_[pos_] == quote) {
          // Doubled quote escapes itself, SQL style ('it''s').
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == quote) {
            out += quote;
            pos_ += 2;
            continue;
          }
          ++pos_;  // closing quote
          break;
        }
        out += text_[pos_++];
      }
      current_ = {TokenKind::String, std::move(out), current_.position};
      return;
    }
    if (c == '=' || c == '!' || c == '<' || c == '>') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '=' || (c == '<' && text_[pos_] == '>'))) {
        op += text_[pos_++];
      }
      if (op == "!")
        throw QueryParseError("query parse error: '!' must be '!=' at " +
                              std::to_string(current_.position));
      current_ = {TokenKind::Operator, std::move(op), current_.position};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      std::string num;
      num += text_[pos_++];
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              ((text_[pos_] == '-' || text_[pos_] == '+') &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
        num += text_[pos_++];
      current_ = {TokenKind::Number, std::move(num), current_.position};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.'))
        ident += text_[pos_++];
      current_ = {TokenKind::Identifier, std::move(ident), current_.position};
      return;
    }
    throw QueryParseError("query parse error: unexpected character '" +
                          std::string(1, c) + "' at " + std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

std::string upper(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool is_keyword(const Token& t, const char* kw) {
  return t.kind == TokenKind::Identifier && upper(t.text) == kw;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Json parse() {
    if (lexer_.peek().kind == TokenKind::End) return Json::object();
    Json q = parse_or();
    if (lexer_.peek().kind != TokenKind::End)
      lexer_.fail("trailing input after condition");
    return q;
  }

 private:
  Json parse_or() {
    Json first = parse_and();
    if (!is_keyword(lexer_.peek(), "OR")) return first;
    Json list = Json::array();
    list.push_back(std::move(first));
    while (is_keyword(lexer_.peek(), "OR")) {
      lexer_.take();
      list.push_back(parse_and());
    }
    Json q = Json::object();
    q["$or"] = std::move(list);
    return q;
  }

  Json parse_and() {
    Json first = parse_unary();
    if (!is_keyword(lexer_.peek(), "AND")) return first;
    Json list = Json::array();
    list.push_back(std::move(first));
    while (is_keyword(lexer_.peek(), "AND")) {
      lexer_.take();
      list.push_back(parse_unary());
    }
    Json q = Json::object();
    q["$and"] = std::move(list);
    return q;
  }

  Json parse_unary() {
    if (is_keyword(lexer_.peek(), "NOT")) {
      lexer_.take();
      Json q = Json::object();
      q["$not"] = parse_unary();
      return q;
    }
    if (lexer_.peek().kind == TokenKind::LParen) {
      lexer_.take();
      Json inner = parse_or();
      if (lexer_.peek().kind != TokenKind::RParen)
        lexer_.fail("expected ')'");
      lexer_.take();
      return inner;
    }
    return parse_comparison();
  }

  Json parse_value_token() {
    const Token t = lexer_.take();
    switch (t.kind) {
      case TokenKind::Number:
        return Json::parse(t.text);  // reuse the JSON number grammar
      case TokenKind::String:
        return Json(t.text);
      case TokenKind::Identifier: {
        const std::string kw = upper(t.text);
        if (kw == "TRUE") return Json(true);
        if (kw == "FALSE") return Json(false);
        if (kw == "NULL") return Json(nullptr);
        lexer_.fail("expected a value, got identifier '" + t.text + "'");
      }
      default: lexer_.fail("expected a value");
    }
  }

  Json parse_comparison() {
    const Token field = lexer_.take();
    if (field.kind != TokenKind::Identifier)
      lexer_.fail("expected a field name");

    // field EXISTS / field NOT EXISTS
    if (is_keyword(lexer_.peek(), "EXISTS")) {
      lexer_.take();
      Json cond = Json::object();
      cond["$exists"] = true;
      Json q = Json::object();
      q[field.text] = std::move(cond);
      return q;
    }
    if (is_keyword(lexer_.peek(), "NOT")) {
      lexer_.take();
      if (!is_keyword(lexer_.peek(), "EXISTS"))
        lexer_.fail("expected EXISTS after NOT");
      lexer_.take();
      Json cond = Json::object();
      cond["$exists"] = false;
      Json q = Json::object();
      q[field.text] = std::move(cond);
      return q;
    }

    // field IN ( v1, v2, ... )
    if (is_keyword(lexer_.peek(), "IN")) {
      lexer_.take();
      if (lexer_.peek().kind != TokenKind::LParen)
        lexer_.fail("expected '(' after IN");
      lexer_.take();
      Json values = Json::array();
      values.push_back(parse_value_token());
      while (lexer_.peek().kind == TokenKind::Comma) {
        lexer_.take();
        values.push_back(parse_value_token());
      }
      if (lexer_.peek().kind != TokenKind::RParen)
        lexer_.fail("expected ')' to close IN list");
      lexer_.take();
      Json cond = Json::object();
      cond["$in"] = std::move(values);
      Json q = Json::object();
      q[field.text] = std::move(cond);
      return q;
    }

    const Token op = lexer_.take();
    if (op.kind != TokenKind::Operator)
      lexer_.fail("expected a comparison operator after '" + field.text + "'");
    Json value = parse_value_token();

    Json q = Json::object();
    const std::string& o = op.text;
    if (o == "=" || o == "==") {
      q[field.text] = std::move(value);
    } else {
      const char* mongo = nullptr;
      if (o == "!=" || o == "<>") mongo = "$ne";
      else if (o == "<") mongo = "$lt";
      else if (o == "<=") mongo = "$lte";
      else if (o == ">") mongo = "$gt";
      else if (o == ">=") mongo = "$gte";
      else lexer_.fail("unknown operator '" + o + "'");
      Json cond = Json::object();
      cond[mongo] = std::move(value);
      q[field.text] = std::move(cond);
    }
    return q;
  }

  Lexer lexer_;
};

}  // namespace

json::Json parse_where_clause(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace gptc::crowd
