// The shared crowd-tuning repository (paper Sec. III, Fig. 2).
//
// Manages user accounts with API keys, per-record access control
// (public / private / shared-with), tag-normalization databases for machine
// and software names, the function-evaluation store, and the analytics
// utilities of Sec. IV-B (QueryFunctionEvaluations, QuerySurrogateModel,
// QueryPredictOutput, QuerySensitivityAnalysis).
//
// The backing store is the JSON document store in src/db — the single-node
// equivalent of the paper's MongoDB deployment. open_durable() opens it on
// the src/db/engine storage engine (write-ahead log + atomic snapshots +
// crash recovery) and declares the secondary indexes the crowd queries
// route through; load()/save() remain the legacy diffable-JSON mode. API
// keys are random 20-character strings; only a salted SipHash-2-4 hash is
// stored (hash_version 2 — stores written by older builds with the fast
// FNV stand-in still authenticate via the versioned fallback).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "crowd/meta.hpp"
#include "crowd/variability.hpp"
#include "db/document_store.hpp"
#include "gp/gaussian_process.hpp"
#include "rng/rng.hpp"
#include "sa/sobol.hpp"
#include "space/space.hpp"

namespace gptc::crowd {

/// Visibility of one uploaded record.
struct Accessibility {
  enum class Level { Public, Private, Shared };
  Level level = Level::Public;
  std::vector<std::string> shared_with;  // usernames, for Level::Shared

  json::Json to_json() const;
  static Accessibility from_json(const json::Json& j);
};

/// A function evaluation as uploaded to / downloaded from the repo.
struct EvalUpload {
  json::Json task_parameters;      // {"m": 10000, "n": 10000}
  json::Json tuning_parameters;    // {"mb": 4, ...}
  std::string output_name = "runtime";
  double output = 0.0;             // NaN = failed run (recorded as null)
  json::Json machine_configuration = json::Json::object();
  json::Json software_configuration = json::Json::object();
  Accessibility accessibility;
};

class SharedRepo;

/// Proof of a completed API-key authentication: carries the resolved
/// username and can only be minted by SharedRepo::authenticate_user(), so
/// an endpoint taking AuthedUser is unreachable without paying the salted
/// key hash — and taking it BY token means paying it exactly once per
/// request instead of once per layer. Copyable; the proof covers the whole
/// request it was minted for.
class AuthedUser {
 public:
  const std::string& username() const { return username_; }

 private:
  friend class SharedRepo;
  explicit AuthedUser(std::string username) : username_(std::move(username)) {}
  std::string username_;
};

class SharedRepo {
 public:
  explicit SharedRepo(std::uint64_t seed = 0x6a09e667f3bcc908ULL);

  // --- User management -----------------------------------------------------

  /// Registers a user and returns a fresh API key (shown once, like the
  /// website; only its hash is stored). Throws if the username is taken.
  std::string register_user(const std::string& username,
                            const std::string& email);

  /// Issues an additional API key for an existing user.
  std::string issue_api_key(const std::string& username);

  /// Resolves an API key to a username, or nullopt if invalid/revoked.
  std::optional<std::string> authenticate(const std::string& api_key) const;

  /// Resolves an API key to an AuthedUser proof token, or nullopt if
  /// invalid/revoked. The token drives the authenticated overloads of
  /// upload_batch/query_where/explain_where without re-hashing the key:
  /// the server authenticates each request once and reuses the proof.
  std::optional<AuthedUser> authenticate_user(const std::string& api_key) const;

  /// Number of stored-key hash verifications performed by this process —
  /// observability for the one-hash-per-request contract (each
  /// authentication scans the key documents and hashes once per candidate).
  static std::uint64_t auth_hash_invocations();

  /// Revokes one API key. Returns false if it was not valid.
  bool revoke_api_key(const std::string& api_key);

  std::size_t num_users() const;

  // --- Tag normalization (machine / software alias databases) --------------

  void add_machine_alias(const std::string& canonical,
                         const std::vector<std::string>& aliases);
  void add_software_alias(const std::string& canonical,
                          const std::vector<std::string>& aliases);

  /// Maps a user-provided tag to its canonical name (case-insensitive over
  /// the alias table); unknown tags pass through unchanged.
  std::string normalize_machine(const std::string& tag) const;
  std::string normalize_software(const std::string& tag) const;

  // --- Function evaluations -------------------------------------------------

  /// Uploads one evaluation under the given problem name. Machine/software
  /// names inside the configurations are normalized. Returns the record id.
  /// The first upload naming a problem (or a machine) also writes its
  /// catalog descriptor — problem + machine + run land as ONE logical
  /// commit (DocumentStore::insert_atomic), so a crash can never leave a
  /// run whose problem or machine entry is missing, or vice versa.
  /// Throws std::invalid_argument on a bad API key.
  std::int64_t upload(const std::string& api_key,
                      const std::string& problem_name, const EvalUpload& e);

  /// Receipt for an upload batch: the func_eval record ids plus the
  /// durability ticket (the engine WAL the commit frame lives in and its
  /// sequence; seq 0 when the repository is not durable). commit_seq
  /// mirrors ticket.seq for callers that only test for zero.
  struct UploadReceipt {
    std::vector<std::int64_t> ids;
    db::engine::CommitTicket ticket;
    std::uint64_t commit_seq = 0;
  };

  /// Uploads a batch of evaluations atomically: the records (and any
  /// first-seen problem/machine catalog descriptors) are covered by one
  /// WAL commit frame and applied under the affected shard writer locks,
  /// so concurrent readers and crash recovery observe either none or all
  /// of the batch (the server's multi-record upload endpoint).
  /// Authentication happens once for the whole batch.
  UploadReceipt upload_batch(const std::string& api_key,
                             const std::string& problem_name,
                             const std::vector<EvalUpload>& evals);

  /// Authenticated-caller form: the AuthedUser proof replaces the API key,
  /// so no key hash is paid here (the caller already authenticated).
  UploadReceipt upload_batch(const AuthedUser& user,
                             const std::string& problem_name,
                             const std::vector<EvalUpload>& evals);

  /// Blocks until every record of a receipt is durable (WAL fsync or
  /// covering snapshot). No-op for non-durable repositories. With async
  /// group commit this is where the server's upload ack waits; see
  /// db::engine::GroupCommitter.
  void wait_uploads_durable(const UploadReceipt& receipt);

  /// All records matching a meta description and visible to its API key's
  /// user. This is the paper's QueryFunctionEvaluations.
  std::vector<json::Json> query_function_evaluations(
      const MetaDescription& meta) const;

  /// SQL-like programmable query (paper Sec. II-B): returns the records of
  /// `problem_name` visible to the API key's user that satisfy the WHERE
  /// clause, e.g.
  ///   repo.query_where(key, "pdgeqrf",
  ///       "tuning_parameters.mb >= 4 AND "
  ///       "machine_configuration.machine_name = 'Cori'");
  /// Throws QueryParseError on bad syntax.
  std::vector<json::Json> query_where(const std::string& api_key,
                                      const std::string& problem_name,
                                      std::string_view where_clause) const;

  /// Authenticated-caller form of query_where: no key hash is paid here.
  std::vector<json::Json> query_where(const AuthedUser& user,
                                      const std::string& problem_name,
                                      std::string_view where_clause) const;

  /// Query-plan introspection for a WHERE clause: parses and plans exactly
  /// the query query_where() would run and returns Collection::explain()'s
  /// report (per shard: index scan or full scan, every considered index
  /// with its selectivity estimate, which were applied, candidate counts).
  /// Requires the same authentication; throws QueryParseError on bad
  /// syntax.
  json::Json explain_where(const std::string& api_key,
                           const std::string& problem_name,
                           std::string_view where_clause) const;

  /// Authenticated-caller form of explain_where: no key hash is paid here.
  json::Json explain_where(const AuthedUser& user,
                           const std::string& problem_name,
                           std::string_view where_clause) const;

  /// Total records for a problem (any visibility) — diagnostics.
  std::size_t num_records(const std::string& problem_name) const;

  // --- Analytics utilities (Sec. IV-B) --------------------------------------

  /// Fits a GP surrogate to the queried records over meta.parameter_space.
  /// Throws std::runtime_error if fewer than 2 usable records match.
  gp::SurrogatePtr query_surrogate_model(const MetaDescription& meta,
                                         std::uint64_t seed = 0,
                                         gp::GpOptions options = {}) const;

  /// Predicted output at one configuration (QueryPredictOutput).
  double query_predict_output(const MetaDescription& meta,
                              const space::Config& params,
                              std::uint64_t seed = 0) const;

  /// Sobol analysis of the surrogate (QuerySensitivityAnalysis).
  sa::SobolResult query_sensitivity_analysis(
      const MetaDescription& meta, std::uint64_t seed = 0,
      const sa::SobolOptions& options = {}) const;

  /// Variability diagnosis over the queried records (the paper's stated
  /// future work, implemented here): repeated measurements of the same
  /// configuration are grouped and checked for noise and outliers.
  VariabilityReport query_variability_report(
      const MetaDescription& meta,
      const VariabilityOptions& options = {}) const;

  /// Groups queried records into per-task histories for the Tuner's TLA
  /// source input: one TaskHistory per distinct task-parameter combination,
  /// ordered by descending sample count.
  std::vector<core::TaskHistory> query_source_histories(
      const MetaDescription& meta) const;

  // --- Persistence -----------------------------------------------------------

  void save(const std::filesystem::path& dir) const;
  static SharedRepo load(const std::filesystem::path& dir,
                         std::uint64_t seed = 0x6a09e667f3bcc908ULL);

  /// Opens `dir` on the storage engine (WAL + snapshots + crash recovery;
  /// see src/db/engine/engine.hpp) and declares the default secondary
  /// indexes. A directory written by save() is migrated on first open.
  static SharedRepo open_durable(const std::filesystem::path& dir,
                                 std::uint64_t seed = 0x6a09e667f3bcc908ULL,
                                 db::engine::EngineOptions options = {});

  /// Declares the ordered secondary indexes the crowd queries are planned
  /// against: func_eval.problem (the partition key of every repo query),
  /// func_eval."machine_configuration.machine_name", and — from the
  /// parameter names persisted in each problems-catalog descriptor — the
  /// per-problem "task_parameters.<p>" / "tuning_parameters.<p>" path
  /// indexes that let WHERE clauses narrow below the problem partition.
  /// Idempotent; indexing never changes query results, only how candidates
  /// are found.
  void declare_default_indexes();

  /// Declares an index on one task parameter ("task_parameters.<name>") for
  /// meta queries that range over task sizes within a problem partition.
  void declare_task_parameter_index(const std::string& parameter_name);

  /// Durable mode: fsync pending WAL batches / force snapshot + compaction.
  /// No-ops on a legacy in-memory repo.
  void sync() { store_.sync(); }
  void checkpoint() { store_.checkpoint_all(); }

  const db::DocumentStore& store() const { return store_; }

 private:
  std::string random_token(std::size_t length, std::uint64_t stream_tag);
  std::string generate_api_key();
  json::Json build_record(const std::string& user,
                          const std::string& problem_name,
                          const EvalUpload& e) const;
  bool record_visible(const json::Json& record,
                      const std::string& username) const;
  bool record_matches_meta(const json::Json& record,
                           const MetaDescription& meta) const;
  std::string require_user(const std::string& api_key) const;
  core::TrainingData to_training_data(const std::vector<json::Json>& records,
                                      const space::Space& param_space) const;
  /// Catalog descriptors (problems / machine_catalog docs) this upload
  /// would introduce — empty when everything is already known.
  std::map<std::string, std::vector<json::Json>> missing_catalog_docs(
      const std::string& user, const std::string& problem_name,
      const std::vector<json::Json>& records) const;
  UploadReceipt upload_records(const std::string& user,
                               const std::string& problem_name,
                               std::vector<json::Json> records);
  /// The query find_filtered actually plans for a WHERE clause:
  /// {"problem": name, "$and": [condition]} — collision-free merge with an
  /// identical match set, and the planner sees the clause's conjuncts.
  static json::Json planned_where(const std::string& problem_name,
                                  const json::Json& condition);
  /// Sorted union of parameter names ({"task"|"tuning"}_parameters object
  /// keys) across an upload batch, as stored in the problem descriptor.
  static json::Json parameter_names(const std::vector<json::Json>& records,
                                    const char* field);
  /// Appends the "task_parameters.<p>" / "tuning_parameters.<p>" index
  /// paths a problem descriptor declares.
  static void collect_index_paths(const json::Json& problem_doc,
                                  std::vector<std::string>& out);

  /// First-seen problem/machine catalog descriptors for one upload are
  /// detected and inserted atomically; this serializes the detect-and-
  /// insert window so two racing first uploads cannot both write the
  /// descriptor. Ordinary uploads (descriptors already present) skip it.
  /// Heap-held so SharedRepo stays movable (load/open_durable return by
  /// value).
  std::unique_ptr<std::mutex> catalog_mu_ = std::make_unique<std::mutex>();
  // guard-ok: DocumentStore/Collection synchronize internally (shard locks)
  db::DocumentStore store_;
  // guard-ok: seeded once at construction; split() derives child streams
  // via const calls, so concurrent readers never mutate it
  rng::Rng key_rng_;
};

}  // namespace gptc::crowd
