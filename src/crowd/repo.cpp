#include "crowd/repo.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "crowd/envparse.hpp"
#include "crowd/query_language.hpp"
#include "db/engine/checksum.hpp"
#include "db/engine/siphash.hpp"

namespace gptc::crowd {

using json::Json;

json::Json Accessibility::to_json() const {
  switch (level) {
    case Level::Public: return Json("public");
    case Level::Private: return Json("private");
    case Level::Shared: {
      Json j = Json::object();
      Json list = Json::array();
      for (const auto& u : shared_with) list.push_back(u);
      j["shared_with"] = std::move(list);
      return j;
    }
  }
  return Json("public");
}

Accessibility Accessibility::from_json(const Json& j) {
  Accessibility a;
  if (j.is_string()) {
    a.level = j.as_string() == "private" ? Level::Private : Level::Public;
  } else if (j.is_object() && j.contains("shared_with")) {
    a.level = Level::Shared;
    for (const auto& u : j.at("shared_with").as_array())
      a.shared_with.push_back(u.as_string());
  }
  return a;
}

SharedRepo::SharedRepo(std::uint64_t seed)
    : key_rng_(rng::splitmix64(seed ^ 0x243f6a8885a308d3ULL)) {
  // Seed the alias databases with the machines/software the paper's
  // experiments use; deployments add their own via add_*_alias.
  add_machine_alias("Cori", {"cori", "cori-nersc", "CoriHaswell"});
  add_software_alias("gcc", {"GCC", "gnu-gcc"});
  add_software_alias("cray-mpich", {"CrayMPICH", "craympich"});
  add_software_alias("scalapack", {"ScaLAPACK"});
  add_software_alias("superlu-dist", {"SuperLU_DIST", "superlu_dist"});
  add_software_alias("hypre", {"Hypre", "HYPRE"});
  add_software_alias("nimrod", {"NIMROD"});
}

std::string SharedRepo::random_token(std::size_t length,
                                     std::uint64_t stream_tag) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  // Salt the stream with persistent store state (how many keys exist), so a
  // reloaded repository never re-mints a previously issued key: without
  // this, two `crowdctl register` runs against the same directory would
  // derive identical keys from the freshly seeded generator. stream_tag
  // separates the API-key stream from the hash-salt stream.
  const auto* keys = store_.find_collection("api_keys");
  rng::Rng stream = key_rng_.split(
      (keys ? static_cast<std::uint64_t>(keys->size()) : 0) * 2 + stream_tag);
  std::string token(length, '\0');
  for (char& c : token)
    c = kAlphabet[static_cast<std::size_t>(
        stream.uniform_int(0, sizeof(kAlphabet) - 2))];
  return token;
}

std::string SharedRepo::generate_api_key() { return random_token(20, 0); }

namespace {

/// Salted SipHash-2-4 of an API key, stored as 16 hex digits (the current
/// hash_version 2 format).
std::string hash_api_key_v2(const std::string& salt,
                            const std::string& api_key) {
  return db::engine::hex64(db::engine::siphash24(
      db::engine::siphash_key_from_salt(salt), api_key));
}

/// Verifies an API key against one stored key document, honouring the
/// stored hash_version: 2 = salted SipHash-2-4; absent/1 = the legacy fast
/// FNV hash, kept so repository directories written by older builds still
/// authenticate.
/// Process-wide count of stored-key hash verifications; the server tests
/// assert one per request (the AuthedUser proof token elides re-hashing).
std::atomic<std::uint64_t> g_auth_hash_invocations{0};

bool key_doc_matches(const Json& doc, const std::string& api_key) {
  g_auth_hash_invocations.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t version = doc.get_or("hash_version", Json(1)).as_int();
  if (version == 2)
    return doc.get_or("key_hash", Json("")).as_string() ==
           hash_api_key_v2(doc.get_or("key_salt", Json("")).as_string(),
                           api_key);
  return doc.get_or("key_hash", Json("")).as_string() ==
         std::to_string(rng::hash_tag(api_key));
}

}  // namespace

std::string SharedRepo::register_user(const std::string& username,
                                      const std::string& email) {
  auto& users = store_.collection("users");
  Json q = Json::object();
  q["username"] = username;
  if (users.count(q) > 0)
    throw std::invalid_argument("register_user: username taken: " + username);
  Json doc = Json::object();
  doc["username"] = username;
  doc["email"] = email;
  users.insert(std::move(doc));
  return issue_api_key(username);
}

std::string SharedRepo::issue_api_key(const std::string& username) {
  auto& users = store_.collection("users");
  Json q = Json::object();
  q["username"] = username;
  if (users.count(q) == 0)
    throw std::invalid_argument("issue_api_key: unknown user: " + username);
  const std::string key = generate_api_key();
  const std::string salt = random_token(16, 1);
  Json doc = Json::object();
  doc["username"] = username;
  // Only the salted hash is stored; the plaintext key exists solely in the
  // return value, mirroring the website's show-once behaviour. The format
  // is versioned so directories written with the legacy FNV hash
  // (hash_version absent) keep authenticating — see key_doc_matches.
  doc["hash_version"] = 2;
  doc["key_salt"] = salt;
  doc["key_hash"] = hash_api_key_v2(salt, key);
  doc["revoked"] = false;
  store_.collection("api_keys").insert(std::move(doc));
  return key;
}

std::optional<std::string> SharedRepo::authenticate(
    const std::string& api_key) const {
  const auto* keys = store_.find_collection("api_keys");
  if (!keys) return std::nullopt;
  // Salted hashes cannot be equality-queried (each document has its own
  // salt), so verification walks the key documents in insertion order —
  // the collection holds one document per issued key, not per record.
  std::optional<std::string> user;
  keys->for_each([&](const Json& doc) {
    if (doc.get_or("revoked", Json(false)).as_bool()) return true;
    if (key_doc_matches(doc, api_key)) {
      user = doc.at("username").as_string();
      return false;
    }
    return true;
  });
  return user;
}

std::optional<AuthedUser> SharedRepo::authenticate_user(
    const std::string& api_key) const {
  auto user = authenticate(api_key);
  if (!user) return std::nullopt;
  return AuthedUser(std::move(*user));
}

std::uint64_t SharedRepo::auth_hash_invocations() {
  return g_auth_hash_invocations.load(std::memory_order_relaxed);
}

bool SharedRepo::revoke_api_key(const std::string& api_key) {
  auto& keys = store_.collection("api_keys");
  std::int64_t id = -1;
  keys.for_each([&](const Json& doc) {
    if (doc.get_or("revoked", Json(false)).as_bool()) return true;
    if (key_doc_matches(doc, api_key)) {
      id = doc.at("_id").as_int();
      return false;
    }
    return true;
  });
  if (id < 0) return false;
  Json q = Json::object();
  q["_id"] = id;
  Json upd = Json::object();
  upd["revoked"] = true;
  return keys.update(q, upd) > 0;
}

std::size_t SharedRepo::num_users() const {
  const auto* users = store_.find_collection("users");
  return users ? users->size() : 0;
}

void SharedRepo::add_machine_alias(const std::string& canonical,
                                   const std::vector<std::string>& aliases) {
  Json doc = Json::object();
  doc["canonical"] = canonical;
  Json list = Json::array();
  for (const auto& a : aliases) list.push_back(a);
  doc["aliases"] = std::move(list);
  store_.collection("machines").insert(std::move(doc));
}

void SharedRepo::add_software_alias(const std::string& canonical,
                                    const std::vector<std::string>& aliases) {
  Json doc = Json::object();
  doc["canonical"] = canonical;
  Json list = Json::array();
  for (const auto& a : aliases) list.push_back(a);
  doc["aliases"] = std::move(list);
  store_.collection("software").insert(std::move(doc));
}

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string normalize_with(const db::Collection* table,
                           const std::string& tag) {
  if (!table) return tag;
  const std::string needle = lower(tag);
  std::string canonical;
  table->for_each([&](const Json& doc) {
    if (lower(doc.at("canonical").as_string()) == needle) {
      canonical = doc.at("canonical").as_string();
      return false;
    }
    for (const auto& alias : doc.at("aliases").as_array())
      if (lower(alias.as_string()) == needle) {
        canonical = doc.at("canonical").as_string();
        return false;
      }
    return true;
  });
  return canonical.empty() ? tag : canonical;
}

}  // namespace

std::string SharedRepo::normalize_machine(const std::string& tag) const {
  return normalize_with(store_.find_collection("machines"), tag);
}

std::string SharedRepo::normalize_software(const std::string& tag) const {
  return normalize_with(store_.find_collection("software"), tag);
}

std::string SharedRepo::require_user(const std::string& api_key) const {
  const auto user = authenticate(api_key);
  if (!user) throw std::invalid_argument("invalid API key");
  return *user;
}

json::Json SharedRepo::build_record(const std::string& user,
                                    const std::string& problem_name,
                                    const EvalUpload& e) const {
  Json record = Json::object();
  record["problem"] = problem_name;
  record["user"] = user;
  record["accessibility"] = e.accessibility.to_json();
  record["task_parameters"] = e.task_parameters;
  record["tuning_parameters"] = e.tuning_parameters;
  Json out = Json::object();
  out[e.output_name] =
      std::isfinite(e.output) ? Json(e.output) : Json(nullptr);
  record["output"] = std::move(out);

  // Normalize machine/software tags before storing (Sec. III: "the shared
  // database internally parses the user provided information to match the
  // tag names").
  Json machine = e.machine_configuration;
  if (machine.contains("machine_name"))
    machine["machine_name"] =
        normalize_machine(machine.at("machine_name").as_string());
  record["machine_configuration"] = std::move(machine);

  Json software = Json::object();
  if (e.software_configuration.is_object()) {
    for (const auto& [name, spec] : e.software_configuration.as_object())
      software[normalize_software(name)] = spec;
  }
  record["software_configuration"] = std::move(software);
  return record;
}

Json SharedRepo::parameter_names(const std::vector<Json>& records,
                                 const char* field) {
  std::vector<std::string> names;
  for (const auto& r : records) {
    const Json* params = db::lookup_path(r, field);
    if (!params || !params->is_object()) continue;
    for (const auto& [name, v] : params->as_object()) {
      (void)v;
      if (std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  Json out = Json::array();
  for (auto& n : names) out.push_back(std::move(n));
  return out;
}

std::map<std::string, std::vector<Json>> SharedRepo::missing_catalog_docs(
    const std::string& user, const std::string& problem_name,
    const std::vector<Json>& records) const {
  // The catalog collections are indexed on their name field, so these
  // presence probes are index-only (Collection::exists fast path).
  std::map<std::string, std::vector<Json>> docs;
  Json pq = Json::object();
  pq["name"] = problem_name;
  const auto* problems = store_.find_collection("problems");
  if (!problems || !problems->exists(pq)) {
    Json doc = Json::object();
    doc["name"] = problem_name;
    doc["first_user"] = user;
    // Union of parameter names across the batch. These drive the
    // per-problem path indexes ("tuning_parameters.<p>", ...) the query
    // planner ranges over, and persisting them in the descriptor lets
    // declare_default_indexes() re-declare the indexes on reopen (index
    // definitions themselves are in-memory only).
    doc["task_parameters"] = parameter_names(records, "task_parameters");
    doc["tuning_parameters"] = parameter_names(records, "tuning_parameters");
    docs["problems"].push_back(std::move(doc));
  }
  std::vector<std::string> seen;
  for (const auto& r : records) {
    const Json* mn = db::lookup_path(r, "machine_configuration.machine_name");
    if (!mn || !mn->is_string()) continue;
    const std::string& name = mn->as_string();
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
    seen.push_back(name);
    Json mq = Json::object();
    mq["machine_name"] = name;
    const auto* machines = store_.find_collection("machine_catalog");
    if (!machines || !machines->exists(mq)) {
      Json doc = Json::object();
      doc["machine_name"] = name;
      docs["machine_catalog"].push_back(std::move(doc));
    }
  }
  return docs;
}

std::int64_t SharedRepo::upload(const std::string& api_key,
                                const std::string& problem_name,
                                const EvalUpload& e) {
  const std::string user = require_user(api_key);
  std::vector<Json> records;
  records.push_back(build_record(user, problem_name, e));
  return upload_records(user, problem_name, std::move(records)).ids[0];
}

SharedRepo::UploadReceipt SharedRepo::upload_batch(
    const std::string& api_key, const std::string& problem_name,
    const std::vector<EvalUpload>& evals) {
  const auto user = authenticate_user(api_key);
  if (!user) throw std::invalid_argument("invalid API key");
  return upload_batch(*user, problem_name, evals);
}

SharedRepo::UploadReceipt SharedRepo::upload_batch(
    const AuthedUser& user, const std::string& problem_name,
    const std::vector<EvalUpload>& evals) {
  std::vector<Json> records;
  records.reserve(evals.size());
  for (const auto& e : evals)
    records.push_back(build_record(user.username(), problem_name, e));
  return upload_records(user.username(), problem_name, std::move(records));
}

SharedRepo::UploadReceipt SharedRepo::upload_records(
    const std::string& user, const std::string& problem_name,
    std::vector<Json> records) {
  // Fast path: every catalog descriptor this upload implies already
  // exists, so the runs alone are the commit — no catalog lock, writers
  // to different shards proceed concurrently.
  if (missing_catalog_docs(user, problem_name, records).empty()) {
    auto batch = store_.collection("func_eval").insert_batch(std::move(records));
    return UploadReceipt{std::move(batch.ids), std::move(batch.ticket),
                         batch.commit_seq};
  }
  // First sighting of this problem or machine: catalog descriptors and
  // runs go down as ONE logical commit, whole-or-nothing under crash.
  // Serialized so two racing first uploads cannot both pass the existence
  // probe and double-insert the descriptor.
  std::lock_guard<std::mutex> lock(*catalog_mu_);
  auto docs = missing_catalog_docs(user, problem_name, records);  // re-probe
  // A new problem descriptor carries the parameter names: declare their
  // path indexes (after the commit, outside the insert's shard locks) so
  // this problem's queries plan against them from the first record on.
  std::vector<std::string> new_index_paths;
  const auto pit = docs.find("problems");
  if (pit != docs.end())
    for (const auto& pdoc : pit->second) collect_index_paths(pdoc, new_index_paths);
  docs["func_eval"] = std::move(records);
  auto result = store_.insert_atomic(std::move(docs));
  for (const auto& path : new_index_paths)
    store_.collection("func_eval").create_index(path);
  const std::uint64_t seq = result.ticket.seq;
  return UploadReceipt{std::move(result.ids["func_eval"]),
                       std::move(result.ticket), seq};
}

void SharedRepo::collect_index_paths(const Json& problem_doc,
                                     std::vector<std::string>& out) {
  for (const char* field : {"task_parameters", "tuning_parameters"}) {
    const Json* names = db::lookup_path(problem_doc, field);
    if (!names || !names->is_array()) continue;  // pre-existing descriptors
    for (const auto& n : names->as_array())
      if (n.is_string()) out.push_back(std::string(field) + "." + n.as_string());
  }
}

void SharedRepo::wait_uploads_durable(const UploadReceipt& receipt) {
  if (receipt.ticket.seq == 0 || !store_.durable()) return;
  store_.storage_engine()->wait_durable(receipt.ticket);
}

bool SharedRepo::record_visible(const Json& record,
                                const std::string& username) const {
  // Runs per candidate inside the collection's shared lock on every crowd
  // query, so it walks the record in place: no get_or subtree copies and
  // no Accessibility materialization. Missing/null accessibility means
  // public; a string is "private" or public; an object is Shared exactly
  // when it carries "shared_with" — the same reading as
  // Accessibility::from_json.
  const Json* acc = db::lookup_path(record, "accessibility");
  const Json* shared = nullptr;
  bool is_private = false;
  if (acc && !acc->is_null()) {
    if (acc->is_string()) {
      is_private = acc->as_string() == "private";
    } else if (acc->is_object() && acc->contains("shared_with")) {
      shared = &acc->at("shared_with");
    }
  }
  if (!is_private && !shared) return true;  // public
  const Json* user = db::lookup_path(record, "user");
  const std::string_view owner = (user && !user->is_null())
                                     ? std::string_view(user->as_string())
                                     : std::string_view();
  if (owner == username) return true;
  if (shared) {
    for (const auto& u : shared->as_array())
      if (u.as_string() == username) return true;
  }
  return false;
}

bool SharedRepo::record_matches_meta(const Json& record,
                                     const MetaDescription& meta) const {
  // Problem name.
  if (record.get_or("problem", Json("")).as_string() !=
      meta.tuning_problem_name)
    return false;

  // problem_space ranges: every declared task/tuning parameter must be
  // present and inside the queried range.
  const auto check_space = [&](const space::Space& sp, const char* field) {
    const Json* params = db::lookup_path(record, field);
    if (sp.dim() == 0) return true;
    if (!params) return false;
    for (const auto& p : sp.params()) {
      if (!params->contains(p.name())) return false;
      if (!p.contains(params->at(p.name()))) return false;
    }
    return true;
  };
  if (!check_space(meta.input_space, "task_parameters")) return false;
  if (!check_space(meta.parameter_space, "tuning_parameters")) return false;

  // Machine filters (any-of).
  if (!meta.machine_filters.empty()) {
    const Json* mc = db::lookup_path(record, "machine_configuration");
    bool any = false;
    for (const auto& f : meta.machine_filters) {
      if (!mc) break;
      if (normalize_machine(
              mc->get_or("machine_name", Json("")).as_string()) !=
          normalize_machine(f.machine_name))
        continue;
      if (!f.partition.empty() &&
          lower(mc->get_or("partition", Json("")).as_string()) !=
              lower(f.partition))
        continue;
      const auto in_range = [&](const char* key,
                                std::optional<std::int64_t> lo,
                                std::optional<std::int64_t> hi) {
        if (!lo && !hi) return true;
        if (!mc->contains(key)) return false;
        const std::int64_t v = mc->at(key).as_int();
        if (lo && v < *lo) return false;
        if (hi && v > *hi) return false;
        return true;
      };
      if (!in_range("nodes", f.nodes_min, f.nodes_max)) continue;
      if (!in_range("cores", f.cores_min, f.cores_max)) continue;
      any = true;
      break;
    }
    if (!any) return false;
  }

  // Software filters (all must be satisfied).
  for (const auto& f : meta.software_filters) {
    const Json* sc = db::lookup_path(record, "software_configuration");
    if (!sc) return false;
    const std::string canon = normalize_software(f.name);
    if (!sc->contains(canon)) return false;
    std::vector<int> version;
    const Json& spec = sc->at(canon);
    if (spec.is_object() && spec.contains("version"))
      for (const auto& part : spec.at("version").as_array())
        version.push_back(static_cast<int>(part.as_int()));
    if (!version_in_range(version, f.version_from, f.version_to))
      return false;
  }

  // User filters (any-of over username or email).
  if (!meta.user_filters.empty()) {
    const std::string owner = record.get_or("user", Json("")).as_string();
    if (std::find(meta.user_filters.begin(), meta.user_filters.end(),
                  owner) == meta.user_filters.end())
      return false;
  }
  return true;
}

std::vector<Json> SharedRepo::query_function_evaluations(
    const MetaDescription& meta) const {
  const std::string user = require_user(meta.api_key);
  const auto* evals = store_.find_collection("func_eval");
  std::vector<Json> out;
  if (!evals) return out;
  // Partition by problem name through the store's query planner: with the
  // default indexes declared this is an index lookup instead of a full
  // scan, and results come back in insertion order either way, so they
  // are byte-identical with indexes on or off. The visibility and meta
  // filters run inside the collection's shared lock via find_filtered so
  // only actual hits are copied out — find() would materialise the whole
  // problem partition first, which dominates query latency once the
  // partition is large relative to the hit count.
  Json q = Json::object();
  q["problem"] = meta.tuning_problem_name;
  out = evals->find_filtered(q, [&](const Json& record) {
    return record_visible(record, user) && record_matches_meta(record, meta);
  });
  return out;
}

std::vector<Json> SharedRepo::query_where(const std::string& api_key,
                                          const std::string& problem_name,
                                          std::string_view where_clause) const {
  const auto user = authenticate_user(api_key);
  if (!user) throw std::invalid_argument("invalid API key");
  return query_where(*user, problem_name, where_clause);
}

std::vector<Json> SharedRepo::query_where(const AuthedUser& authed,
                                          const std::string& problem_name,
                                          std::string_view where_clause) const {
  const std::string& user = authed.username();
  const Json condition = parse_where_clause(where_clause);
  const auto* evals = store_.find_collection("func_eval");
  std::vector<Json> out;
  if (!evals) return out;
  // The WHERE condition goes INTO the planned query rather than running as
  // a post-predicate: the planner then sees every conjunct, so an indexed
  // tuning/task parameter narrows the candidate set below the whole
  // problem partition. Wrapping in $and keeps the merge collision-free
  // (the clause may itself constrain "problem") with an identical match
  // set, so results stay byte-for-byte those of the post-filter form.
  out = evals->find_filtered(planned_where(problem_name, condition),
                             [&](const Json& record) {
                               return record_visible(record, user);
                             });
  return out;
}

Json SharedRepo::planned_where(const std::string& problem_name,
                               const Json& condition) {
  Json q = Json::object();
  q["problem"] = problem_name;
  q["$and"] = Json::array({condition});
  return q;
}

Json SharedRepo::explain_where(const std::string& api_key,
                               const std::string& problem_name,
                               std::string_view where_clause) const {
  const auto user = authenticate_user(api_key);
  if (!user) throw std::invalid_argument("invalid API key");
  return explain_where(*user, problem_name, where_clause);
}

Json SharedRepo::explain_where(const AuthedUser&,
                               const std::string& problem_name,
                               std::string_view where_clause) const {
  const Json condition = parse_where_clause(where_clause);
  const Json q = planned_where(problem_name, condition);
  const auto* evals = store_.find_collection("func_eval");
  if (!evals) {
    Json out = Json::object();
    out["query"] = q;
    out["shards"] = Json::array();
    return out;
  }
  return evals->explain(q);
}

std::size_t SharedRepo::num_records(const std::string& problem_name) const {
  const auto* evals = store_.find_collection("func_eval");
  if (!evals) return 0;
  Json q = Json::object();
  q["problem"] = problem_name;
  return evals->count(q);
}

core::TrainingData SharedRepo::to_training_data(
    const std::vector<Json>& records, const space::Space& param_space) const {
  std::vector<la::Vector> rows;
  std::vector<double> ys;
  for (const auto& r : records) {
    const Json* tuning = db::lookup_path(r, "tuning_parameters");
    const Json* output = db::lookup_path(r, "output");
    if (!tuning || !output || !output->is_object()) continue;
    // First numeric output field is the objective.
    double y = std::numeric_limits<double>::quiet_NaN();
    for (const auto& [name, v] : output->as_object()) {
      (void)name;
      if (v.is_number()) {
        y = v.as_double();
        break;
      }
    }
    if (!std::isfinite(y)) continue;
    try {
      rows.push_back(param_space.encode(param_space.config_from_json(*tuning)));
    } catch (const json::JsonError&) {
      continue;  // record lacks one of the queried parameters
    }
    ys.push_back(y);
  }
  core::TrainingData d;
  d.x = la::Matrix::from_rows(rows);
  d.y = la::Vector(ys.begin(), ys.end());
  return d;
}

gp::SurrogatePtr SharedRepo::query_surrogate_model(
    const MetaDescription& meta, std::uint64_t seed,
    gp::GpOptions options) const {
  const auto records = query_function_evaluations(meta);
  const core::TrainingData data = to_training_data(records, meta.parameter_space);
  if (data.size() < 2)
    throw std::runtime_error(
        "query_surrogate_model: fewer than 2 usable records match");
  auto model = std::make_shared<gp::GaussianProcess>(
      meta.parameter_space.dim(), options);
  rng::Rng rng(rng::splitmix64(seed + 0x9e3779b9ULL));
  model->fit(data.x, data.y, rng);
  return model;
}

double SharedRepo::query_predict_output(const MetaDescription& meta,
                                        const space::Config& params,
                                        std::uint64_t seed) const {
  const auto model = query_surrogate_model(meta, seed);
  return model->predict(meta.parameter_space.encode(params)).mean;
}

sa::SobolResult SharedRepo::query_sensitivity_analysis(
    const MetaDescription& meta, std::uint64_t seed,
    const sa::SobolOptions& options) const {
  const auto model = query_surrogate_model(meta, seed);
  rng::Rng rng(rng::splitmix64(seed + 0x51ab1edULL));
  return sa::analyze_surrogate(*model, meta.parameter_space, rng, options);
}

VariabilityReport SharedRepo::query_variability_report(
    const MetaDescription& meta, const VariabilityOptions& options) const {
  return detect_variability(query_function_evaluations(meta), options);
}

std::vector<core::TaskHistory> SharedRepo::query_source_histories(
    const MetaDescription& meta) const {
  const auto records = query_function_evaluations(meta);
  // Group records by their task-parameter JSON (canonical dump).
  std::vector<std::pair<std::string, core::TaskHistory>> groups;
  for (const auto& r : records) {
    const Json* task = db::lookup_path(r, "task_parameters");
    const Json* tuning = db::lookup_path(r, "tuning_parameters");
    const Json* output = db::lookup_path(r, "output");
    if (!task || !tuning || !output) continue;

    space::Config task_config, tuning_config;
    try {
      task_config = meta.input_space.config_from_json(*task);
      tuning_config = meta.parameter_space.config_from_json(*tuning);
    } catch (const json::JsonError&) {
      continue;
    }
    double y = std::numeric_limits<double>::quiet_NaN();
    if (output->is_object()) {
      for (const auto& [name, v] : output->as_object()) {
        (void)name;
        if (v.is_number()) {
          y = v.as_double();
          break;
        }
      }
    }
    const std::string key = task->dump();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.emplace_back(key, core::TaskHistory(task_config));
      it = std::prev(groups.end());
    }
    it->second.add(std::move(tuning_config), y);
  }
  std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
    return a.second.num_valid() > b.second.num_valid();
  });
  std::vector<core::TaskHistory> out;
  out.reserve(groups.size());
  for (auto& [key, h] : groups) {
    (void)key;
    out.push_back(std::move(h));
  }
  return out;
}

void SharedRepo::save(const std::filesystem::path& dir) const {
  store_.save(dir);
}

SharedRepo SharedRepo::load(const std::filesystem::path& dir,
                            std::uint64_t seed) {
  SharedRepo repo(seed);
  repo.store_ = db::DocumentStore::load(dir);
  return repo;
}

SharedRepo SharedRepo::open_durable(const std::filesystem::path& dir,
                                    std::uint64_t seed,
                                    db::engine::EngineOptions options) {
  SharedRepo repo(seed);
  repo.store_ = db::DocumentStore::open_durable(dir, std::move(options));
  repo.declare_default_indexes();
  return repo;
}

void SharedRepo::declare_default_indexes() {
  auto& evals = store_.collection("func_eval");
  evals.create_index("problem");
  evals.create_index("machine_configuration.machine_name");
  store_.collection("users").create_index("username");
  // The upload path probes these on every batch (missing_catalog_docs);
  // with the index the probe is answered from posting lists alone.
  store_.collection("problems").create_index("name");
  store_.collection("machine_catalog").create_index("machine_name");
  // Per-problem parameter indexes, re-declared from the persisted problem
  // descriptors (index definitions are in-memory only). Paths are collected
  // first: create_index takes func_eval's shard writer locks and must not
  // run inside for_each's reader locks on `problems`.
  const auto* problems = store_.find_collection("problems");
  if (!problems) return;
  std::vector<std::string> paths;
  problems->for_each([&](const Json& doc) {
    collect_index_paths(doc, paths);
    return true;
  });
  for (const auto& path : paths) evals.create_index(path);
}

void SharedRepo::declare_task_parameter_index(
    const std::string& parameter_name) {
  store_.collection("func_eval").create_index("task_parameters." +
                                              parameter_name);
}

}  // namespace gptc::crowd
