// SQL-like query language for the shared repository (paper Sec. II-B:
// "a programmable interface that enables users to write an SQL-like query
// to retrieve relevant performance data").
//
// A WHERE-clause grammar compiled to the document store's Mongo-style
// match expressions:
//
//   tuning_parameters.mb >= 4 AND machine_configuration.machine_name = 'Cori'
//   task_parameters.m IN (8000, 10000) OR NOT (output.runtime < 2.0)
//
// Grammar (case-insensitive keywords):
//   condition  := or_expr
//   or_expr    := and_expr ( OR and_expr )*
//   and_expr   := unary ( AND unary )*
//   unary      := NOT unary | '(' condition ')' | comparison
//   comparison := field op value
//              |  field IN '(' value ( ',' value )* ')'
//              |  field EXISTS | field NOT EXISTS
//   op         := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//   field      := identifier ( '.' identifier )*
//   value      := number | 'single-quoted' | "double-quoted"
//              |  TRUE | FALSE | NULL
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "json/json.hpp"

namespace gptc::crowd {

/// Thrown on syntax errors, with position information in the message.
class QueryParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Compiles a WHERE clause into a match expression accepted by
/// db::matches / Collection::find. An empty (all-whitespace) clause
/// compiles to the match-everything query {}.
json::Json parse_where_clause(std::string_view text);

}  // namespace gptc::crowd
