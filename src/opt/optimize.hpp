// Derivative-free optimizers and space-filling samplers.
//
// Two very different optimization jobs live in the tuner:
//   1. GP hyperparameter fitting — smooth, low-dimensional, expensive
//      objective (log marginal likelihood): multistart Nelder–Mead.
//   2. Acquisition maximization over the (encoded) unit cube — cheap,
//      multimodal objective with plateaus from integer/categorical
//      encoding: differential evolution seeded with random + incumbent
//      points, refined by Nelder–Mead.
// Plus the space-filling designs used for initial samples and for the
// Saltelli sensitivity design (Latin hypercube, scrambled Halton).
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace gptc::opt {

/// Objective for all optimizers in this module: minimize f(x).
using ObjectiveFn = std::function<double(const la::Vector&)>;

struct Result {
  la::Vector x;
  double value = std::numeric_limits<double>::infinity();
  int evaluations = 0;
};

struct NelderMeadOptions {
  int max_evaluations = 400;
  double initial_step = 0.1;   // simplex edge relative to bound width
  double f_tolerance = 1e-9;   // stop when simplex f-spread is below this
  double x_tolerance = 1e-8;   // ... or simplex diameter is below this
  bool clamp_unit_cube = false;  // project iterates into [0,1]^d
  /// Used by multistart_nelder_mead only: restarts run concurrently on this
  /// pool (null = serial). The objective must then be thread-safe. Results
  /// are bitwise identical for any pool size.
  std::shared_ptr<parallel::ThreadPool> pool;
};

/// Nelder–Mead simplex minimization from the given start point.
Result nelder_mead(const ObjectiveFn& f, const la::Vector& start,
                   const NelderMeadOptions& options = {});

/// Multistart Nelder–Mead over [0,1]^d (or over starts supplied by the
/// caller): runs NM from each start and returns the best result. Ties on
/// the objective value resolve to the lowest start index, so the winner is
/// independent of the order in which the restarts execute (and of
/// `options.pool` size).
Result multistart_nelder_mead(const ObjectiveFn& f,
                              const std::vector<la::Vector>& starts,
                              const NelderMeadOptions& options = {});

struct DifferentialEvolutionOptions {
  int population = 32;
  int generations = 40;
  double crossover = 0.8;
  double differential_weight = 0.6;
  /// Additional points injected into the initial population (e.g. the
  /// incumbent best and previously evaluated configurations).
  std::vector<la::Vector> seeds;
  /// Population evaluations run concurrently on this pool (null = serial).
  /// The objective must then be thread-safe. Results are bitwise identical
  /// for any pool size.
  std::shared_ptr<parallel::ThreadPool> pool;
};

/// Differential evolution (rand/1/bin) over the unit cube [0,1]^d.
///
/// Synchronous (generational) variant: every trial vector of a generation
/// is built from the previous generation's population before any selection
/// is applied, so the population evaluations are independent and can run in
/// parallel without changing the result.
Result differential_evolution(const ObjectiveFn& f, std::size_t dim,
                              rng::Rng& rng,
                              const DifferentialEvolutionOptions& options = {});

/// n uniform random points in [0,1]^dim.
std::vector<la::Vector> random_design(std::size_t n, std::size_t dim,
                                      rng::Rng& rng);

/// Latin hypercube design: n points, each of the dim coordinates stratified
/// into n equal bins with one point per bin, jittered within the bin.
std::vector<la::Vector> latin_hypercube(std::size_t n, std::size_t dim,
                                        rng::Rng& rng);

/// Deterministic low-discrepancy sequence: Halton with per-dimension
/// digit-permutation scrambling (seeded), which removes the well-known
/// correlation artifacts of plain Halton in higher dimensions. Supports up
/// to 64 dimensions. `skip` drops the first points of the sequence.
std::vector<la::Vector> scrambled_halton(std::size_t n, std::size_t dim,
                                         rng::Rng& rng, std::size_t skip = 16);

}  // namespace gptc::opt
