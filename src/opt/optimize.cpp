#include "opt/optimize.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace gptc::opt {

namespace {

void clamp01(la::Vector& x) {
  for (double& v : x) v = std::clamp(v, 0.0, 1.0);
}

double safe_eval(const ObjectiveFn& f, const la::Vector& x) {
  const double v = f(x);
  // Treat non-finite objective values as very bad rather than poisoning the
  // simplex / population.
  return std::isfinite(v) ? v : std::numeric_limits<double>::max();
}

}  // namespace

Result nelder_mead(const ObjectiveFn& f, const la::Vector& start,
                   const NelderMeadOptions& options) {
  const std::size_t d = start.size();
  if (d == 0) throw std::invalid_argument("nelder_mead: empty start point");

  // Standard coefficients.
  constexpr double kReflect = 1.0, kExpand = 2.0, kContract = 0.5,
                   kShrink = 0.5;

  struct Vertex {
    la::Vector x;
    double fx;
  };

  Result result;
  result.evaluations = 0;
  const auto eval = [&](la::Vector x) {
    if (options.clamp_unit_cube) clamp01(x);
    const double v = safe_eval(f, x);
    ++result.evaluations;
    if (v < result.value) {
      result.value = v;
      result.x = x;
    }
    return Vertex{std::move(x), v};
  };

  std::vector<Vertex> simplex;
  simplex.reserve(d + 1);
  simplex.push_back(eval(start));
  for (std::size_t i = 0; i < d; ++i) {
    la::Vector x = start;
    // Step away from the boundary if perturbing would leave the cube.
    double step = options.initial_step;
    if (options.clamp_unit_cube && x[i] + step > 1.0) step = -step;
    x[i] += step;
    if (x[i] == start[i]) x[i] += 1e-3;  // degenerate range guard
    simplex.push_back(eval(std::move(x)));
  }

  const auto by_f = [](const Vertex& a, const Vertex& b) {
    return a.fx < b.fx;
  };

  while (result.evaluations < options.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(), by_f);
    const double f_spread = simplex.back().fx - simplex.front().fx;
    double diameter = 0.0;
    for (std::size_t i = 0; i < d; ++i)
      diameter = std::max(diameter, std::abs(simplex.back().x[i] -
                                             simplex.front().x[i]));
    // Stop only when the simplex has collapsed in BOTH objective value and
    // position: f-values can agree to machine precision while the vertices
    // are still far apart (e.g. symmetric points around a quadratic
    // minimum), and stopping there returns a poor vertex.
    if (f_spread < options.f_tolerance && diameter < options.x_tolerance)
      break;

    // Centroid of all but the worst vertex.
    la::Vector centroid(d, 0.0);
    for (std::size_t v = 0; v < d; ++v)
      for (std::size_t i = 0; i < d; ++i) centroid[i] += simplex[v].x[i];
    for (double& c : centroid) c /= static_cast<double>(d);

    const auto blend = [&](double coef) {
      la::Vector x(d);
      for (std::size_t i = 0; i < d; ++i)
        x[i] = centroid[i] + coef * (centroid[i] - simplex.back().x[i]);
      return x;
    };

    Vertex reflected = eval(blend(kReflect));
    if (reflected.fx < simplex.front().fx) {
      Vertex expanded = eval(blend(kExpand));
      simplex.back() = expanded.fx < reflected.fx ? std::move(expanded)
                                                  : std::move(reflected);
      continue;
    }
    if (reflected.fx < simplex[d - 1].fx) {
      simplex.back() = std::move(reflected);
      continue;
    }
    Vertex contracted = eval(blend(reflected.fx < simplex.back().fx
                                       ? kContract
                                       : -kContract));
    if (contracted.fx < std::min(reflected.fx, simplex.back().fx)) {
      simplex.back() = std::move(contracted);
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v <= d; ++v) {
      la::Vector x(d);
      for (std::size_t i = 0; i < d; ++i)
        x[i] = simplex[0].x[i] +
               kShrink * (simplex[v].x[i] - simplex[0].x[i]);
      simplex[v] = eval(std::move(x));
      if (result.evaluations >= options.max_evaluations) break;
    }
  }
  return result;
}

Result multistart_nelder_mead(const ObjectiveFn& f,
                              const std::vector<la::Vector>& starts,
                              const NelderMeadOptions& options) {
  if (starts.empty())
    throw std::invalid_argument("multistart_nelder_mead: no starts");
  // Each restart is an independent, deterministic NM run; they may execute
  // concurrently in any order.
  std::vector<Result> runs = parallel::parallel_map(
      options.pool, starts.size(),
      [&](std::size_t i) { return nelder_mead(f, starts[i], options); });
  // Reduce in fixed index order, breaking value ties toward the lowest
  // start index: the winner is a function of the runs alone, not of which
  // restart happened to finish (or be scanned) last.
  Result best;
  std::size_t best_index = runs.size();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    best.evaluations += runs[i].evaluations;
    if (best_index == runs.size() || runs[i].value < best.value) {
      best.value = runs[i].value;
      best_index = i;
    }
  }
  best.x = std::move(runs[best_index].x);
  return best;
}

Result differential_evolution(const ObjectiveFn& f, std::size_t dim,
                              rng::Rng& rng,
                              const DifferentialEvolutionOptions& options) {
  if (dim == 0)
    throw std::invalid_argument("differential_evolution: dim == 0");
  const int pop_size = std::max(options.population, 4);

  Result result;
  std::vector<la::Vector> pop;
  std::vector<double> fitness;
  pop.reserve(static_cast<std::size_t>(pop_size));

  for (const auto& s : options.seeds) {
    if (s.size() != dim)
      throw std::invalid_argument("differential_evolution: bad seed dim");
    if (pop.size() < static_cast<std::size_t>(pop_size)) {
      la::Vector x = s;
      clamp01(x);
      pop.push_back(std::move(x));
    }
  }
  while (pop.size() < static_cast<std::size_t>(pop_size)) {
    la::Vector x(dim);
    for (double& v : x) v = rng.uniform();
    pop.push_back(std::move(x));
  }
  parallel::ThreadPool* pool = options.pool.get();
  fitness = parallel::parallel_map(
      pool, pop.size(), [&](std::size_t i) { return safe_eval(f, pop[i]); });
  result.evaluations += static_cast<int>(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (fitness[i] < result.value) {
      result.value = fitness[i];
      result.x = pop[i];
    }
  }

  // Synchronous (generational) loop: all of a generation's trial vectors
  // are built from the previous generation's population by the calling
  // thread's RNG, then evaluated — possibly concurrently — and selection is
  // applied in index order. Evaluation order can therefore never influence
  // the result.
  std::vector<la::Vector> trials(pop.size(), la::Vector(dim));
  for (int gen = 0; gen < options.generations; ++gen) {
    for (int i = 0; i < pop_size; ++i) {
      la::Vector& trial = trials[static_cast<std::size_t>(i)];
      // Pick three distinct partners != i.
      int a, b, c;
      do { a = static_cast<int>(rng.uniform_int(0, pop_size - 1)); } while (a == i);
      do { b = static_cast<int>(rng.uniform_int(0, pop_size - 1)); } while (b == i || b == a);
      do { c = static_cast<int>(rng.uniform_int(0, pop_size - 1)); } while (c == i || c == a || c == b);
      const auto jrand =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(dim) - 1));
      for (std::size_t j = 0; j < dim; ++j) {
        if (j == jrand || rng.uniform() < options.crossover) {
          trial[j] = pop[static_cast<std::size_t>(a)][j] +
                     options.differential_weight *
                         (pop[static_cast<std::size_t>(b)][j] -
                          pop[static_cast<std::size_t>(c)][j]);
          trial[j] = std::clamp(trial[j], 0.0, 1.0);
        } else {
          trial[j] = pop[static_cast<std::size_t>(i)][j];
        }
      }
    }
    const std::vector<double> trial_fitness = parallel::parallel_map(
        pool, trials.size(),
        [&](std::size_t i) { return safe_eval(f, trials[i]); });
    result.evaluations += pop_size;
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (trial_fitness[i] <= fitness[i]) {
        pop[i] = trials[i];
        fitness[i] = trial_fitness[i];
        if (trial_fitness[i] < result.value) {
          result.value = trial_fitness[i];
          result.x = trials[i];
        }
      }
    }
  }
  return result;
}

std::vector<la::Vector> random_design(std::size_t n, std::size_t dim,
                                      rng::Rng& rng) {
  std::vector<la::Vector> pts(n, la::Vector(dim));
  for (auto& p : pts)
    for (double& v : p) v = rng.uniform();
  return pts;
}

std::vector<la::Vector> latin_hypercube(std::size_t n, std::size_t dim,
                                        rng::Rng& rng) {
  std::vector<la::Vector> pts(n, la::Vector(dim));
  for (std::size_t d = 0; d < dim; ++d) {
    const auto perm = rng.permutation(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts[i][d] = (static_cast<double>(perm[i]) + rng.uniform()) /
                  static_cast<double>(n);
    }
  }
  return pts;
}

namespace {

constexpr std::array<int, 64> kPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
    43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
    103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
    173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311};

/// Radical-inverse of `index` in base `base` with a fixed digit permutation.
double permuted_radical_inverse(std::uint64_t index, int base,
                                const std::vector<int>& perm) {
  double inv_base = 1.0 / base;
  double inv = inv_base;
  double value = 0.0;
  while (index > 0) {
    const auto digit = static_cast<std::size_t>(index % static_cast<std::uint64_t>(base));
    value += perm[digit] * inv;
    index /= static_cast<std::uint64_t>(base);
    inv *= inv_base;
  }
  return value;
}

}  // namespace

std::vector<la::Vector> scrambled_halton(std::size_t n, std::size_t dim,
                                         rng::Rng& rng, std::size_t skip) {
  if (dim > kPrimes.size())
    throw std::invalid_argument("scrambled_halton: dim > 64 unsupported");
  // One random digit permutation per dimension, with perm[0] == 0 so that 0
  // maps to 0 (keeps the sequence inside [0,1)).
  std::vector<std::vector<int>> perms(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const int base = kPrimes[d];
    auto& perm = perms[d];
    perm.resize(static_cast<std::size_t>(base));
    rng::Rng sub = rng.split(d + 1);
    const auto shuffled = sub.permutation(static_cast<std::size_t>(base) - 1);
    perm[0] = 0;
    for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(base); ++i)
      perm[i + 1] = static_cast<int>(shuffled[i]) + 1;
  }
  std::vector<la::Vector> pts(n, la::Vector(dim));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < dim; ++d)
      pts[i][d] = permuted_radical_inverse(i + skip + 1, kPrimes[d], perms[d]);
  return pts;
}

}  // namespace gptc::opt
