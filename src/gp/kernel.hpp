// Covariance kernels for Gaussian-process surrogates.
//
// Inputs are points in the encoded unit cube (see space::Space), so ARD
// lengthscales live on a common scale across parameters. Hyperparameters
// are exposed in log space — the fit optimizers work on unconstrained
// vectors.
#pragma once

#include <memory>
#include <string>

#include "la/matrix.hpp"

namespace gptc::gp {

enum class KernelKind { SquaredExponential, Matern52 };

/// Stationary ARD kernel: k(x, x') = s_f^2 * g(r), with
/// r^2 = sum_i ((x_i - x'_i) / l_i)^2 and g either the squared-exponential
/// exp(-r^2/2) or the Matérn-5/2 correlation.
class Kernel {
 public:
  Kernel(KernelKind kind, std::size_t dim);

  std::size_t dim() const { return dim_; }
  KernelKind kind() const { return kind_; }

  /// Number of hyperparameters: dim lengthscales + 1 signal variance.
  std::size_t num_hyper() const { return dim_ + 1; }

  /// Log-space hyperparameters, layout [log l_1..log l_d, log s_f^2].
  const la::Vector& log_hyper() const { return log_hyper_; }
  void set_log_hyper(la::Vector h);

  double signal_variance() const;
  double lengthscale(std::size_t i) const;

  /// k(x, x').
  double operator()(std::span<const double> x, std::span<const double> y) const;

  /// Dense kernel matrix K(X, X) for row-stacked points.
  la::Matrix gram(const la::Matrix& x) const;

  /// Cross-kernel matrix K(X, Z).
  la::Matrix cross(const la::Matrix& x, const la::Matrix& z) const;

 private:
  KernelKind kind_;
  std::size_t dim_;
  la::Vector log_hyper_;
};

/// Bounds used by hyperparameter optimizers (log space), wide enough for
/// unit-cube inputs: lengthscales in [e^-4.6, e^2] ~ [0.01, 7.4].
struct HyperBounds {
  double log_lengthscale_min = -4.6;
  double log_lengthscale_max = 2.0;
  double log_signal_min = -6.0;
  double log_signal_max = 4.0;
  double log_noise_min = -14.0;
  double log_noise_max = 1.0;
};

}  // namespace gptc::gp
