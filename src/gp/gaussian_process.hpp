// Single-task Gaussian-process regression.
//
// This is the NoTLA surrogate of the paper and the building block of the
// WeightedSum and Stacking TLA algorithms. Outputs are standardized
// internally (zero mean, unit variance) so kernel hyperparameter bounds are
// scale-free; predictions are returned in original units.
//
// Hyperparameters (ARD lengthscales, signal variance, noise variance) are
// fitted by maximizing the log marginal likelihood with multistart
// Nelder–Mead in log space — the same estimator GP libraries use, minus
// analytic gradients, which at tuning-scale data sizes (tens to a few
// hundred samples) is a fine trade.
#pragma once

#include <cmath>
#include <memory>
#include <optional>

#include "gp/kernel.hpp"
#include "gp/surrogate.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace gptc::gp {

struct GpOptions {
  KernelKind kernel = KernelKind::Matern52;
  /// Number of random restarts for hyperparameter optimization (the
  /// incumbent hyperparameters are always one of the starts).
  int fit_restarts = 2;
  /// Nelder–Mead budget per restart.
  int fit_evaluations = 150;
  /// Lower bound applied to the learned noise variance (relative to the
  /// standardized outputs).
  double min_noise = 1e-8;
  HyperBounds bounds;
  /// Fit restarts run concurrently on this pool (null = serial; the Tuner
  /// wires this from TunerOptions::num_threads). Fitted hyperparameters are
  /// bitwise identical for any pool size.
  std::shared_ptr<parallel::ThreadPool> pool;
};

class GaussianProcess final : public Surrogate {
 public:
  GaussianProcess(std::size_t dim, GpOptions options = {});

  /// Fits hyperparameters to (X, y) and precomputes the predictive state.
  /// X rows are encoded points; y are raw outputs. Requires at least one
  /// sample. Non-finite outputs must be filtered out by the caller.
  void fit(la::Matrix x, la::Vector y, rng::Rng& rng);

  /// Refits the predictive state for the current hyperparameters with new
  /// data (no hyperparameter optimization) — used for fast incremental
  /// updates and by the stacking algorithm.
  void refit_state(la::Matrix x, la::Vector y);

  Prediction predict(const la::Vector& x) const override;
  std::size_t dim() const override { return kernel_.dim(); }

  bool is_fitted() const { return fitted_; }
  std::size_t num_samples() const { return x_.rows(); }
  const la::Matrix& train_x() const { return x_; }
  const la::Vector& train_y() const { return y_raw_; }

  /// Log marginal likelihood of the standardized training data under the
  /// current hyperparameters.
  double log_marginal_likelihood() const;

  const Kernel& kernel() const { return kernel_; }
  double noise_variance() const;  // standardized units

  /// Direct hyperparameter control (log space, layout: kernel hypers then
  /// log noise variance). Used by tests and by warm-started refits.
  la::Vector log_hyper() const;
  void set_log_hyper(const la::Vector& h);

 private:
  double neg_log_marginal_likelihood(const la::Vector& log_hyper,
                                     const la::Matrix& x,
                                     const la::Vector& y_std) const;
  void compute_state();

  GpOptions options_;
  Kernel kernel_;
  double log_noise_ = std::log(1e-4);

  bool fitted_ = false;
  la::Matrix x_;       // training inputs
  la::Vector y_raw_;   // original outputs
  la::Vector y_std_;   // standardized outputs
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  std::optional<la::Cholesky> chol_;  // of K + noise I
  la::Vector alpha_;                  // (K + noise I)^-1 y_std
};

}  // namespace gptc::gp
