#include "gp/lcm.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "opt/optimize.hpp"

namespace gptc::gp {

namespace {

/// Surrogate adapter exposing one task of a shared LCM model.
class LcmTaskView final : public Surrogate {
 public:
  LcmTaskView(std::shared_ptr<const LcmModel> model, std::size_t task)
      : model_(std::move(model)), task_(task) {}

  Prediction predict(const la::Vector& x) const override {
    return model_->predict(task_, x);
  }
  std::size_t dim() const override { return model_->dim(); }

 private:
  std::shared_ptr<const LcmModel> model_;
  std::size_t task_;
};

}  // namespace

LcmModel::LcmModel(std::size_t dim, std::size_t num_tasks, LcmOptions options)
    : dim_(dim), num_tasks_(num_tasks), options_(options) {
  if (dim == 0) throw std::invalid_argument("LcmModel: dim == 0");
  if (num_tasks == 0) throw std::invalid_argument("LcmModel: no tasks");
  if (options_.num_latent == 0)
    throw std::invalid_argument("LcmModel: num_latent == 0");
}

std::size_t LcmModel::theta_size() const {
  // Per latent: d lengthscales + T coregionalization weights + T diagonals;
  // plus T per-task noise terms.
  return options_.num_latent * (dim_ + 2 * num_tasks_) + num_tasks_;
}

double LcmModel::coreg(const la::Vector& theta, std::size_t q, std::size_t i,
                       std::size_t j) const {
  const std::size_t base = q * (dim_ + 2 * num_tasks_);
  const double ai = theta[base + dim_ + i];
  const double aj = theta[base + dim_ + j];
  double v = ai * aj;
  if (i == j) v += std::exp(theta[base + dim_ + num_tasks_ + i]);
  return v;
}

double LcmModel::latent_kernel(const la::Vector& theta, std::size_t q,
                               std::span<const double> x,
                               std::span<const double> y) const {
  const std::size_t base = q * (dim_ + 2 * num_tasks_);
  double r2 = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double d = (x[i] - y[i]) / std::exp(theta[base + i]);
    r2 += d * d;
  }
  switch (options_.kernel) {
    case KernelKind::SquaredExponential:
      return std::exp(-0.5 * r2);
    case KernelKind::Matern52: {
      const double r = std::sqrt(r2);
      const double a = std::sqrt(5.0) * r;
      return (1.0 + a + 5.0 * r2 / 3.0) * std::exp(-a);
    }
  }
  return 0.0;
}

double LcmModel::cov_entry(const la::Vector& theta, std::size_t task_i,
                           std::span<const double> xi, std::size_t task_j,
                           std::span<const double> xj) const {
  double v = 0.0;
  for (std::size_t q = 0; q < options_.num_latent; ++q)
    v += coreg(theta, q, task_i, task_j) * latent_kernel(theta, q, xi, xj);
  return v;
}

double LcmModel::neg_log_likelihood(const la::Vector& theta) const {
  const std::size_t n = x_.rows();
  // Smooth out-of-bounds penalty (same scheme as the single-task GP).
  const auto& b = options_.bounds;
  double penalty = 0.0;
  const auto pen = [&](double v, double lo, double hi) {
    if (v < lo) penalty += (lo - v) * (lo - v);
    if (v > hi) penalty += (v - hi) * (v - hi);
  };
  for (std::size_t q = 0; q < options_.num_latent; ++q) {
    const std::size_t base = q * (dim_ + 2 * num_tasks_);
    for (std::size_t i = 0; i < dim_; ++i)
      pen(theta[base + i], b.log_lengthscale_min, b.log_lengthscale_max);
    for (std::size_t t = 0; t < num_tasks_; ++t) {
      pen(theta[base + dim_ + t], -4.0, 4.0);  // a weights
      pen(theta[base + dim_ + num_tasks_ + t], b.log_signal_min, 2.0);
    }
  }
  const std::size_t noise_base =
      options_.num_latent * (dim_ + 2 * num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t)
    pen(theta[noise_base + t], b.log_noise_min, b.log_noise_max);

  la::Matrix km = stacked_covariance(theta);
  try {
    const la::Cholesky chol(std::move(km));
    const la::Vector alpha = chol.solve(y_std_);
    const double nll =
        0.5 * la::dot(y_std_, alpha) + 0.5 * chol.log_det() +
        0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
    return nll + 100.0 * penalty;
  } catch (const std::runtime_error&) {
    return std::numeric_limits<double>::max();
  }
}

void LcmModel::fit(std::vector<TaskData> tasks, rng::Rng& rng) {
  if (tasks.size() != num_tasks_)
    throw std::invalid_argument("LcmModel::fit: task count mismatch");

  // Subsample, standardize and stack.
  x_ = la::Matrix();
  task_of_.clear();
  y_std_.clear();
  y_mean_.assign(num_tasks_, 0.0);
  y_scale_.assign(num_tasks_, 1.0);
  n_per_task_.assign(num_tasks_, 0);

  std::vector<la::Vector> rows;
  std::vector<double> ys;
  for (std::size_t t = 0; t < num_tasks_; ++t) {
    auto& td = tasks[t];
    if (td.x.rows() != td.y.size())
      throw std::invalid_argument("LcmModel::fit: shape mismatch");
    if (td.x.rows() > 0 && td.x.cols() != dim_)
      throw std::invalid_argument("LcmModel::fit: dim mismatch");
    for (double v : td.y)
      if (!std::isfinite(v))
        throw std::invalid_argument("LcmModel::fit: non-finite output");

    std::vector<std::size_t> keep(td.x.rows());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
    if (keep.size() > options_.max_samples_per_task) {
      rng::Rng sub = rng.split("lcm-subsample").split(t);
      keep = sub.permutation(keep.size());
      keep.resize(options_.max_samples_per_task);
      std::sort(keep.begin(), keep.end());
    }

    const auto nt = static_cast<double>(keep.size());
    if (!keep.empty()) {
      double mean = 0.0;
      for (auto i : keep) mean += td.y[i];
      mean /= nt;
      double var = 0.0;
      for (auto i : keep) var += (td.y[i] - mean) * (td.y[i] - mean);
      var /= nt;
      y_mean_[t] = mean;
      y_scale_[t] = var > 1e-24 ? std::sqrt(var) : 1.0;
    }
    for (auto i : keep) {
      rows.emplace_back(td.x.row(i).begin(), td.x.row(i).end());
      ys.push_back((td.y[i] - y_mean_[t]) / y_scale_[t]);
      task_of_.push_back(t);
    }
    n_per_task_[t] = keep.size();
  }
  if (rows.empty())
    throw std::invalid_argument("LcmModel::fit: no samples in any task");
  x_ = la::Matrix::from_rows(rows);
  y_std_ = la::Vector(ys.begin(), ys.end());

  // Initial hyperparameters: medium lengthscales, positive cross-task
  // correlation, small diagonals and noise.
  la::Vector theta0(theta_size(), 0.0);
  for (std::size_t q = 0; q < options_.num_latent; ++q) {
    const std::size_t base = q * (dim_ + 2 * num_tasks_);
    for (std::size_t i = 0; i < dim_; ++i) theta0[base + i] = std::log(0.3);
    for (std::size_t t = 0; t < num_tasks_; ++t) {
      theta0[base + dim_ + t] = 0.8;
      theta0[base + dim_ + num_tasks_ + t] = std::log(0.2);
    }
  }
  const std::size_t noise_base =
      options_.num_latent * (dim_ + 2 * num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t)
    theta0[noise_base + t] = std::log(1e-2);

  const auto objective = [&](const la::Vector& th) {
    return neg_log_likelihood(th);
  };
  std::vector<la::Vector> starts;
  if (fitted_ && theta_.size() == theta_size())
    starts.push_back(theta_);  // warm start across BO iterations
  starts.push_back(theta0);
  rng::Rng sub = rng.split("lcm-fit");
  for (int r = 0; r < options_.fit_restarts; ++r) {
    la::Vector th = theta0;
    for (double& v : th) v += sub.normal(0.0, 0.4);
    starts.push_back(std::move(th));
  }
  opt::NelderMeadOptions nm;
  nm.max_evaluations = options_.fit_evaluations;
  nm.initial_step = 0.4;
  nm.pool = options_.pool;  // objective is const over the stacked data
  const opt::Result best = opt::multistart_nelder_mead(objective, starts, nm);
  theta_ = best.x;
  fitted_ = true;
  compute_state();
}

la::Matrix LcmModel::stacked_covariance(const la::Vector& theta) const {
  const std::size_t n = x_.rows();
  const std::size_t noise_base =
      options_.num_latent * (dim_ + 2 * num_tasks_);
  la::Matrix km(n, n);
  // Row block i fills the diagonal entry plus the upper row i and its
  // mirrored column — disjoint writes per i, so the blocks parallelize
  // without changing a single bit of the matrix.
  parallel::parallel_for(options_.pool.get(), n, [&](std::size_t i) {
    km(i, i) = cov_entry(theta, task_of_[i], x_.row(i), task_of_[i],
                         x_.row(i)) +
               std::max(std::exp(theta[noise_base + task_of_[i]]),
                        options_.min_noise);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v =
          cov_entry(theta, task_of_[i], x_.row(i), task_of_[j], x_.row(j));
      km(i, j) = v;
      km(j, i) = v;
    }
  });
  return km;
}

void LcmModel::compute_state() {
  chol_.emplace(stacked_covariance(theta_));
  alpha_ = chol_->solve(y_std_);
}

std::size_t LcmModel::num_samples(std::size_t task) const {
  if (task >= num_tasks_) throw std::out_of_range("LcmModel::num_samples");
  return fitted_ ? n_per_task_[task] : 0;
}

double LcmModel::task_covariance(std::size_t i, std::size_t j) const {
  if (!fitted_) throw std::logic_error("LCM not fitted");
  double v = 0.0;
  for (std::size_t q = 0; q < options_.num_latent; ++q)
    v += coreg(theta_, q, i, j);
  return v;
}

Prediction LcmModel::predict(std::size_t task, const la::Vector& x) const {
  if (!fitted_) throw std::logic_error("LCM not fitted");
  if (task >= num_tasks_) throw std::out_of_range("LcmModel::predict: task");
  if (x.size() != dim_)
    throw std::invalid_argument("LcmModel::predict: dim mismatch");

  const std::size_t n = x_.rows();
  const std::span<const double> xs(x.data(), x.size());
  la::Vector kstar(n);
  for (std::size_t i = 0; i < n; ++i)
    kstar[i] = cov_entry(theta_, task, xs, task_of_[i], x_.row(i));
  const double mean_std = la::dot(kstar, alpha_);
  const la::Vector v = chol_->solve_lower(kstar);
  const double kss = cov_entry(theta_, task, xs, task, xs);
  const double var_std = std::max(kss - la::dot(v, v), 0.0);

  Prediction p;
  p.mean = y_mean_[task] + y_scale_[task] * mean_std;
  p.variance = y_scale_[task] * y_scale_[task] * var_std;
  return p;
}

SurrogatePtr LcmModel::task_view(std::shared_ptr<const LcmModel> model,
                                 std::size_t task) {
  if (!model) throw std::invalid_argument("LcmModel::task_view: null model");
  if (task >= model->num_tasks())
    throw std::out_of_range("LcmModel::task_view: task");
  return std::make_shared<LcmTaskView>(std::move(model), task);
}

}  // namespace gptc::gp
