#include "gp/gaussian_process.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "opt/optimize.hpp"

namespace gptc::gp {

double Prediction::stddev() const {
  return std::sqrt(std::max(variance, 0.0));
}

GaussianProcess::GaussianProcess(std::size_t dim, GpOptions options)
    : options_(options), kernel_(options.kernel, dim) {}

la::Vector GaussianProcess::log_hyper() const {
  la::Vector h = kernel_.log_hyper();
  h.push_back(log_noise_);
  return h;
}

void GaussianProcess::set_log_hyper(const la::Vector& h) {
  if (h.size() != kernel_.num_hyper() + 1)
    throw std::invalid_argument("GaussianProcess::set_log_hyper: bad size");
  la::Vector kh(h.begin(), h.end() - 1);
  kernel_.set_log_hyper(std::move(kh));
  log_noise_ = h.back();
  if (fitted_) compute_state();
}

double GaussianProcess::noise_variance() const {
  return std::max(std::exp(log_noise_), options_.min_noise);
}

double GaussianProcess::neg_log_marginal_likelihood(
    const la::Vector& log_hyper, const la::Matrix& x,
    const la::Vector& y_std) const {
  // Penalize out-of-bounds hyperparameters smoothly so Nelder–Mead can walk
  // back inside the box.
  const auto& b = options_.bounds;
  double penalty = 0.0;
  const auto pen = [&](double v, double lo, double hi) {
    if (v < lo) penalty += (lo - v) * (lo - v);
    if (v > hi) penalty += (v - hi) * (v - hi);
  };
  const std::size_t d = kernel_.dim();
  for (std::size_t i = 0; i < d; ++i)
    pen(log_hyper[i], b.log_lengthscale_min, b.log_lengthscale_max);
  pen(log_hyper[d], b.log_signal_min, b.log_signal_max);
  pen(log_hyper[d + 1], b.log_noise_min, b.log_noise_max);

  Kernel k = kernel_;
  la::Vector kh(log_hyper.begin(), log_hyper.end() - 1);
  k.set_log_hyper(std::move(kh));
  const double noise =
      std::max(std::exp(log_hyper.back()), options_.min_noise);

  la::Matrix km = k.gram(x);
  km.add_diagonal(noise);
  try {
    const la::Cholesky chol(std::move(km));
    const la::Vector alpha = chol.solve(y_std);
    const auto n = static_cast<double>(x.rows());
    const double nll = 0.5 * la::dot(y_std, alpha) + 0.5 * chol.log_det() +
                       0.5 * n * std::log(2.0 * std::numbers::pi);
    return nll + 100.0 * penalty;
  } catch (const std::runtime_error&) {
    return std::numeric_limits<double>::max();
  }
}

void GaussianProcess::fit(la::Matrix x, la::Vector y, rng::Rng& rng) {
  if (x.rows() == 0 || x.rows() != y.size())
    throw std::invalid_argument("GaussianProcess::fit: bad data shape");
  if (x.cols() != kernel_.dim())
    throw std::invalid_argument("GaussianProcess::fit: dim mismatch");
  for (double v : y)
    if (!std::isfinite(v))
      throw std::invalid_argument(
          "GaussianProcess::fit: non-finite output (filter failures first)");

  x_ = std::move(x);
  y_raw_ = std::move(y);

  // Standardize outputs.
  const auto n = static_cast<double>(y_raw_.size());
  y_mean_ = 0.0;
  for (double v : y_raw_) y_mean_ += v;
  y_mean_ /= n;
  double var = 0.0;
  for (double v : y_raw_) var += (v - y_mean_) * (v - y_mean_);
  var /= n;
  y_scale_ = var > 1e-24 ? std::sqrt(var) : 1.0;
  y_std_.resize(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i)
    y_std_[i] = (y_raw_[i] - y_mean_) / y_scale_;

  // Hyperparameter optimization (skip for a single sample — the marginal
  // likelihood is then uninformative about lengthscales).
  if (x_.rows() >= 2) {
    const auto objective = [&](const la::Vector& h) {
      return neg_log_marginal_likelihood(h, x_, y_std_);
    };
    std::vector<la::Vector> starts;
    starts.push_back(log_hyper());  // warm start from incumbent hypers
    rng::Rng sub = rng.split("gp-fit");
    for (int r = 0; r < options_.fit_restarts; ++r) {
      la::Vector h(kernel_.num_hyper() + 1);
      const auto& b = options_.bounds;
      for (std::size_t i = 0; i < kernel_.dim(); ++i)
        h[i] = sub.uniform(std::log(0.05), std::log(2.0));
      h[kernel_.dim()] = sub.uniform(-1.0, 1.0);       // log signal var
      h[kernel_.dim() + 1] = sub.uniform(b.log_noise_min / 2.0, -2.0);
      starts.push_back(std::move(h));
    }
    opt::NelderMeadOptions nm;
    nm.max_evaluations = options_.fit_evaluations;
    nm.initial_step = 0.5;
    nm.pool = options_.pool;  // objective is const over (x_, y_std_)
    const opt::Result best = opt::multistart_nelder_mead(objective, starts, nm);
    la::Vector kh(best.x.begin(), best.x.end() - 1);
    kernel_.set_log_hyper(std::move(kh));
    log_noise_ = best.x.back();
  }

  fitted_ = true;
  compute_state();
}

void GaussianProcess::refit_state(la::Matrix x, la::Vector y) {
  if (x.rows() == 0 || x.rows() != y.size())
    throw std::invalid_argument("GaussianProcess::refit_state: bad shape");
  x_ = std::move(x);
  y_raw_ = std::move(y);
  const auto n = static_cast<double>(y_raw_.size());
  y_mean_ = 0.0;
  for (double v : y_raw_) y_mean_ += v;
  y_mean_ /= n;
  double var = 0.0;
  for (double v : y_raw_) var += (v - y_mean_) * (v - y_mean_);
  var /= n;
  y_scale_ = var > 1e-24 ? std::sqrt(var) : 1.0;
  y_std_.resize(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i)
    y_std_[i] = (y_raw_[i] - y_mean_) / y_scale_;
  fitted_ = true;
  compute_state();
}

void GaussianProcess::compute_state() {
  la::Matrix km = kernel_.gram(x_);
  km.add_diagonal(noise_variance());
  chol_.emplace(std::move(km));
  alpha_ = chol_->solve(y_std_);
}

double GaussianProcess::log_marginal_likelihood() const {
  if (!fitted_) throw std::logic_error("GP not fitted");
  const auto n = static_cast<double>(x_.rows());
  return -0.5 * la::dot(y_std_, alpha_) - 0.5 * chol_->log_det() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

Prediction GaussianProcess::predict(const la::Vector& x) const {
  if (!fitted_) throw std::logic_error("GP not fitted");
  if (x.size() != kernel_.dim())
    throw std::invalid_argument("GaussianProcess::predict: dim mismatch");

  const std::size_t n = x_.rows();
  la::Vector kstar(n);
  for (std::size_t i = 0; i < n; ++i)
    kstar[i] = kernel_(x_.row(i), std::span<const double>(x.data(), x.size()));

  const double mean_std = la::dot(kstar, alpha_);
  const la::Vector v = chol_->solve_lower(kstar);
  const double kss =
      kernel_(std::span<const double>(x.data(), x.size()),
              std::span<const double>(x.data(), x.size()));
  const double var_std = std::max(kss - la::dot(v, v), 0.0);

  Prediction p;
  p.mean = y_mean_ + y_scale_ * mean_std;
  p.variance = y_scale_ * y_scale_ * var_std;
  return p;
}

}  // namespace gptc::gp
