// Linear Coregionalization Model (LCM) — the multitask Gaussian process
// behind GPTune's transfer learning (paper Sec. V-A).
//
// Given T tasks with (possibly unequal) sample sets {(X_t, y_t)}, the joint
// covariance between (task i, x) and (task j, x') is
//
//     K[(i,x),(j,x')] = sum_q B_q[i,j] * k_q(x, x') + delta * noise_i,
//
// with Q latent unit-variance kernels k_q and coregionalization matrices
// B_q = a_q a_q^T + diag(kappa_q) (rank-1 plus diagonal, guaranteeing
// positive semi-definiteness). The a_q entries model cross-task
// correlation — which is exactly what lets samples from a source task (say,
// NIMROD on 32 Haswell nodes) inform predictions for a target task (64
// nodes): correlated tasks share the latent processes.
//
// Supporting an unequal number of samples per task is the Multitask(TS)
// contribution of the paper: the model is built over the stacked sample
// set, not over a shared design.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "gp/kernel.hpp"
#include "gp/surrogate.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace gptc::gp {

/// Per-task training data (raw outputs; caller filters failures).
struct TaskData {
  la::Matrix x;
  la::Vector y;
};

struct LcmOptions {
  /// Number of latent kernels Q. 1–2 is enough for the task counts in the
  /// paper's experiments; cost grows linearly in Q.
  std::size_t num_latent = 1;
  KernelKind kernel = KernelKind::Matern52;
  int fit_restarts = 1;
  int fit_evaluations = 220;
  /// Cap on samples used per task. LCM likelihood evaluation is
  /// O((sum_t n_t)^3); large crowd-sourced source datasets are randomly
  /// subsampled to this many points (see DESIGN.md ablation).
  std::size_t max_samples_per_task = 120;
  double min_noise = 1e-8;
  HyperBounds bounds;
  /// Fit restarts and the stacked-covariance row blocks run concurrently on
  /// this pool (null = serial). Results are bitwise identical for any pool
  /// size: each row block writes disjoint entries, and per-task subsampling
  /// already draws from index-keyed RNG streams.
  std::shared_ptr<parallel::ThreadPool> pool;
};

class LcmModel {
 public:
  LcmModel(std::size_t dim, std::size_t num_tasks, LcmOptions options = {});

  /// Fits hyperparameters and predictive state to the stacked task data.
  /// Tasks with zero samples are allowed (e.g. the target task before its
  /// first evaluation) as long as at least one task has data.
  void fit(std::vector<TaskData> tasks, rng::Rng& rng);

  /// Predictive distribution for `task` at encoded point x (original output
  /// units of that task).
  Prediction predict(std::size_t task, const la::Vector& x) const;

  std::size_t dim() const { return dim_; }
  std::size_t num_tasks() const { return num_tasks_; }
  bool is_fitted() const { return fitted_; }
  std::size_t num_samples(std::size_t task) const;

  /// Cross-task covariance B[i][j] = sum_q B_q[i,j] under the fitted
  /// hyperparameters (standardized units) — exposed for tests/diagnostics.
  double task_covariance(std::size_t i, std::size_t j) const;

  /// A Surrogate view of one task, sharing this model.
  static SurrogatePtr task_view(std::shared_ptr<const LcmModel> model,
                                std::size_t task);

 private:
  struct Hyper {
    // Layout per latent q: [log l_1..log l_d, a_1..a_T, log kappa_1..log
    // kappa_T], then [log noise_1..log noise_T].
    la::Vector theta;
  };

  std::size_t theta_size() const;
  double coreg(const la::Vector& theta, std::size_t q, std::size_t i,
               std::size_t j) const;
  double latent_kernel(const la::Vector& theta, std::size_t q,
                       std::span<const double> x,
                       std::span<const double> y) const;
  double cov_entry(const la::Vector& theta, std::size_t task_i,
                   std::span<const double> xi, std::size_t task_j,
                   std::span<const double> xj) const;
  double neg_log_likelihood(const la::Vector& theta) const;
  /// K + noise over the stacked samples; rows built in parallel.
  la::Matrix stacked_covariance(const la::Vector& theta) const;
  void compute_state();

  std::size_t dim_;
  std::size_t num_tasks_;
  LcmOptions options_;

  bool fitted_ = false;
  la::Vector theta_;

  // Stacked (subsampled, standardized) training data.
  la::Matrix x_;                    // all points, row stacked
  std::vector<std::size_t> task_of_;  // task index per stacked row
  la::Vector y_std_;
  std::vector<double> y_mean_, y_scale_;  // per task
  std::vector<std::size_t> n_per_task_;
  std::optional<la::Cholesky> chol_;
  la::Vector alpha_;
};

}  // namespace gptc::gp
