#include "gp/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace gptc::gp {

Kernel::Kernel(KernelKind kind, std::size_t dim) : kind_(kind), dim_(dim) {
  if (dim == 0) throw std::invalid_argument("Kernel: dim == 0");
  log_hyper_.assign(num_hyper(), 0.0);
  // Default: lengthscale 0.3 (a third of the unit cube), unit variance.
  for (std::size_t i = 0; i < dim_; ++i) log_hyper_[i] = std::log(0.3);
}

void Kernel::set_log_hyper(la::Vector h) {
  if (h.size() != num_hyper())
    throw std::invalid_argument("Kernel::set_log_hyper: size mismatch");
  log_hyper_ = std::move(h);
}

double Kernel::signal_variance() const { return std::exp(log_hyper_[dim_]); }

double Kernel::lengthscale(std::size_t i) const {
  return std::exp(log_hyper_[i]);
}

double Kernel::operator()(std::span<const double> x,
                          std::span<const double> y) const {
  if (x.size() != dim_ || y.size() != dim_)
    throw std::invalid_argument("Kernel: point dimension mismatch");
  double r2 = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double d = (x[i] - y[i]) / std::exp(log_hyper_[i]);
    r2 += d * d;
  }
  const double sf2 = signal_variance();
  switch (kind_) {
    case KernelKind::SquaredExponential:
      return sf2 * std::exp(-0.5 * r2);
    case KernelKind::Matern52: {
      const double r = std::sqrt(r2);
      const double a = std::sqrt(5.0) * r;
      return sf2 * (1.0 + a + 5.0 * r2 / 3.0) * std::exp(-a);
    }
  }
  return 0.0;
}

la::Matrix Kernel::gram(const la::Matrix& x) const {
  const std::size_t n = x.rows();
  la::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = (*this)(x.row(i), x.row(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = (*this)(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

la::Matrix Kernel::cross(const la::Matrix& x, const la::Matrix& z) const {
  la::Matrix k(x.rows(), z.rows());
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < z.rows(); ++j)
      k(i, j) = (*this)(x.row(i), z.row(j));
  return k;
}

}  // namespace gptc::gp
