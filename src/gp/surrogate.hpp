// The surrogate-model abstraction shared by the BO loop, the TLA algorithms
// and the sensitivity analyzer.
//
// A surrogate maps an encoded point (unit cube) to a predictive mean and
// variance in the *original output units* (e.g. seconds). All TLA model
// combinations in the paper — weighted sums, residual stacks, LCM task
// views — are surrogates, which is what lets the acquisition search treat
// them uniformly.
#pragma once

#include <memory>

#include "la/matrix.hpp"

namespace gptc::gp {

struct Prediction {
  double mean = 0.0;
  double variance = 0.0;

  double stddev() const;
};

class Surrogate {
 public:
  virtual ~Surrogate() = default;

  /// Predictive distribution at an encoded point.
  virtual Prediction predict(const la::Vector& x) const = 0;

  /// Input dimensionality.
  virtual std::size_t dim() const = 0;
};

using SurrogatePtr = std::shared_ptr<const Surrogate>;

}  // namespace gptc::gp
