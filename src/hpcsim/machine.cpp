#include "hpcsim/machine.hpp"

#include <algorithm>
#include <cmath>

namespace gptc::hpcsim {

MachineModel MachineModel::cori_haswell() {
  MachineModel m;
  m.name = "Cori";
  m.partition = "haswell";
  m.cores_per_node = 32;
  // 2.3 GHz x 16 DP flop/cycle, derated to a sustainable DGEMM rate.
  m.flops_per_core = 28e9;
  m.mem_bw_per_node = 120e9;
  m.mem_per_node = 128e9;
  m.net_latency = 1.3e-6;
  m.net_inv_bandwidth = 1.0 / 8e9;  // ~8 GB/s effective point-to-point
  m.noise_sigma = 0.03;
  return m;
}

MachineModel MachineModel::cori_knl() {
  MachineModel m;
  m.name = "Cori";
  m.partition = "knl";
  m.cores_per_node = 68;
  // 1.4 GHz, wide vectors but poor serial efficiency: weaker per core.
  m.flops_per_core = 9e9;
  m.mem_bw_per_node = 400e9;  // MCDRAM
  m.mem_per_node = 96e9;
  m.net_latency = 2.0e-6;
  m.net_inv_bandwidth = 1.0 / 6e9;
  m.noise_sigma = 0.05;  // KNL is noisier in practice
  return m;
}

json::Json MachineModel::machine_configuration(int nodes) const {
  json::Json j = json::Json::object();
  j["machine_name"] = name;
  j["partition"] = partition;
  j["nodes"] = std::int64_t{nodes};
  j["cores"] = std::int64_t{cores_per_node};
  return j;
}

double Allocation::rank_flops(double kernel_efficiency,
                              double bytes_per_flop) const {
  const double compute = machine.flops_per_core *
                         std::clamp(kernel_efficiency, 0.01, 1.0);
  if (bytes_per_flop <= 0.0) return compute;
  // Roofline: a rank's streaming share of node bandwidth caps flop rate.
  const double bw_share =
      machine.mem_bw_per_node / std::max(ranks_per_node, 1);
  const double bw_bound = bw_share / bytes_per_flop;
  return std::min(compute, bw_bound);
}

double Allocation::message_time(double bytes) const {
  return machine.net_latency + bytes * machine.net_inv_bandwidth;
}

double Allocation::broadcast_time(double bytes, int group) const {
  if (group <= 1) return 0.0;
  const double hops = std::ceil(std::log2(static_cast<double>(group)));
  return hops * message_time(bytes);
}

double Allocation::allreduce_time(double bytes, int group) const {
  if (group <= 1) return 0.0;
  const double hops = std::ceil(std::log2(static_cast<double>(group)));
  return 2.0 * hops * message_time(bytes);
}

double Allocation::mem_per_rank() const {
  return machine.mem_per_node / std::max(ranks_per_node, 1);
}

double Allocation::noise(std::uint64_t seed, std::uint64_t config_tag) const {
  rng::Rng r(rng::splitmix64(seed ^ rng::splitmix64(config_tag) ^
                             rng::hash_tag(machine.name + machine.partition)));
  return r.lognoise(machine.noise_sigma);
}

}  // namespace gptc::hpcsim
