// Machine models — the substitute for the paper's NERSC Cori testbed.
//
// The TLA algorithms only ever see a black-box objective, so what the
// machine substrate must reproduce is the *structure* of HPC runtime:
// per-core compute rates, memory-bandwidth contention when many MPI ranks
// share a node, alpha-beta network costs, per-node memory capacity (for
// OOM-style failures) and lognormal run-to-run noise. Two concrete models
// mirror the paper's platforms: Cori Haswell (32 cores/node, strong cores)
// and Cori KNL (68 cores/node, weak cores, fast MCDRAM) — different enough
// that the tuned optimum moves across architectures, which is exactly the
// transfer scenario of Fig. 5(b).
#pragma once

#include <cstdint>
#include <string>

#include "json/json.hpp"
#include "rng/rng.hpp"

namespace gptc::hpcsim {

struct MachineModel {
  std::string name;
  std::string partition;
  int cores_per_node = 1;
  double flops_per_core = 1e9;      // sustainable flop/s per core (BLAS-3)
  double mem_bw_per_node = 1e10;    // bytes/s
  double mem_per_node = 64e9;       // bytes
  double net_latency = 1e-6;        // seconds per message
  double net_inv_bandwidth = 1e-10; // seconds per byte
  double noise_sigma = 0.03;        // lognormal run-to-run noise

  /// Cori Haswell: 2x16-core Xeon E5-2698v3, 128 GB DDR4, Aries.
  static MachineModel cori_haswell();
  /// Cori KNL: 68-core Xeon Phi 7250, 96 GB DDR4 + 16 GB MCDRAM, Aries.
  static MachineModel cori_knl();

  /// machine_configuration JSON for crowd-database records.
  json::Json machine_configuration(int nodes) const;
};

/// A job allocation: a machine, a node count and an MPI layout.
struct Allocation {
  MachineModel machine;
  int nodes = 1;
  int ranks_per_node = 1;

  int total_ranks() const { return nodes * ranks_per_node; }

  /// Effective flop/s one rank sustains for dense kernels, given the kernel
  /// efficiency (0..1, e.g. from block size) and node-level bandwidth
  /// contention: with r ranks per node each rank's streaming share is
  /// bw/r, and kernels with low arithmetic intensity become bandwidth
  /// bound. `bytes_per_flop` expresses that intensity (0 = fully
  /// compute-bound).
  double rank_flops(double kernel_efficiency, double bytes_per_flop) const;

  /// Alpha-beta time for one message of `bytes`.
  double message_time(double bytes) const;

  /// Time for a broadcast of `bytes` among `group` ranks (binomial tree).
  double broadcast_time(double bytes, int group) const;

  /// Time for an all-reduce of `bytes` among `group` ranks.
  double allreduce_time(double bytes, int group) const;

  /// Memory available to each rank (bytes).
  double mem_per_rank() const;

  /// Deterministic run-to-run noise factor for one measured configuration:
  /// the same (seed, config_tag) always sees the same noise, so recorded
  /// crowd data is reproducible, while different configurations see
  /// independent lognormal draws.
  double noise(std::uint64_t seed, std::uint64_t config_tag) const;
};

}  // namespace gptc::hpcsim
