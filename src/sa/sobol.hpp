// Variance-based global sensitivity analysis (paper Sec. IV-B).
//
// GPTuneCrowd's QuerySensitivityAnalysis trains a surrogate on crowd data
// and runs a Sobol analysis on it (via SALib in the paper). This module is
// the SALib-equivalent: a Saltelli sample design over the encoded parameter
// space and the standard first-order (S1, Saltelli 2010) and total-effect
// (ST, Jansen 1999) estimators with bootstrap confidence intervals — the
// same estimators SALib's `sobol.analyze` implements.
//
// Discrete parameters are handled by snapping each unit-cube sample through
// Space::decode/encode before evaluation, so the indices reflect the
// parameter's actual (quantized) effect — e.g. Hypre's categorical
// smoother choices.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gp/surrogate.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "space/space.hpp"

namespace gptc::sa {

struct SobolOptions {
  /// Base sample count N; total model evaluations are N * (dim + 2).
  std::size_t base_samples = 512;
  /// Bootstrap resamples for the confidence intervals.
  int bootstrap = 100;
  /// z-score of the reported confidence radius (1.96 ~ 95%).
  double z_score = 1.96;
  /// Saltelli-design rows (the N * (dim + 2) model evaluations) run
  /// concurrently on this pool (null = serial). The analyzed function must
  /// then be thread-safe — surrogate predictions are; arbitrary CubeFns
  /// must be pure. Indices are bitwise identical for any pool size.
  std::shared_ptr<parallel::ThreadPool> pool;
};

/// Per-parameter Sobol indices, in the parameter order of the analyzed
/// space/function. Mirrors the columns of the paper's Tables IV and V.
struct SobolResult {
  std::vector<std::string> names;
  la::Vector s1;        // first-order (main effect) index
  la::Vector s1_conf;   // bootstrap confidence radius
  la::Vector st;        // total-effect index
  la::Vector st_conf;

  std::size_t dim() const { return names.size(); }

  /// Indices of parameters ranked by descending total effect.
  std::vector<std::size_t> ranked_by_total_effect() const;

  /// Parameters whose S1 or ST exceeds the thresholds — the paper's rule
  /// for picking what to keep tuning (e.g. Hypre keeps ST >= 0.3).
  std::vector<std::string> influential(double s1_threshold,
                                       double st_threshold) const;

  /// Formats an aligned table like Table IV/V.
  std::string to_table() const;
};

/// A real-valued function of an encoded (unit-cube) point.
using CubeFn = std::function<double(const la::Vector&)>;

/// Sobol analysis of an arbitrary function over [0,1]^dim (no snapping).
/// Used for estimator validation against analytic test functions.
SobolResult analyze_function(const CubeFn& f, std::size_t dim,
                             std::vector<std::string> names, rng::Rng& rng,
                             const SobolOptions& options = {});

/// Sobol analysis of a surrogate's predictive mean over a parameter space,
/// with unit-cube samples snapped to valid configurations.
SobolResult analyze_surrogate(const gp::Surrogate& model,
                              const space::Space& space, rng::Rng& rng,
                              const SobolOptions& options = {});

/// Builds the reduced tuning problem of the paper's Sec. VI-D/E: keeps only
/// `keep` parameters tunable and freezes every other parameter at the value
/// given in `frozen` (an object {"name": value, ...}). Parameters that are
/// neither kept nor frozen are fixed at a uniformly random value drawn once
/// at construction (the paper does this for Hypre's Px/Py/Nproc, whose
/// defaults are unknown), using a deterministic stream derived from `seed`.
space::TuningProblem reduce_problem(const space::TuningProblem& problem,
                                    const std::vector<std::string>& keep,
                                    const json::Json& frozen,
                                    std::uint64_t seed = 0);

}  // namespace gptc::sa
