#include "sa/sobol.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "opt/optimize.hpp"

namespace gptc::sa {

std::vector<std::size_t> SobolResult::ranked_by_total_effect() const {
  std::vector<std::size_t> idx(dim());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return st[a] > st[b]; });
  return idx;
}

std::vector<std::string> SobolResult::influential(double s1_threshold,
                                                  double st_threshold) const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < dim(); ++i)
    if (s1[i] >= s1_threshold || st[i] >= st_threshold)
      out.push_back(names[i]);
  return out;
}

std::string SobolResult::to_table() const {
  std::ostringstream os;
  std::size_t width = 9;
  for (const auto& n : names) width = std::max(width, n.size());
  os << std::string(width, ' ') << "    S1  S1.conf     ST  ST.conf\n";
  char buf[128];
  for (std::size_t i = 0; i < dim(); ++i) {
    std::snprintf(buf, sizeof buf, "%-*s  %5.2f  %7.2f  %5.2f  %7.2f\n",
                  static_cast<int>(width), names[i].c_str(), s1[i],
                  s1_conf[i], st[i], st_conf[i]);
    os << buf;
  }
  return os.str();
}

namespace {

struct SaltelliEvaluations {
  la::Vector f_a;                  // N
  la::Vector f_b;                  // N
  std::vector<la::Vector> f_ab;    // dim vectors of N
};

/// Runs the Saltelli design: base matrices A and B come from a scrambled
/// low-discrepancy sequence in 2*dim dimensions; AB_i replaces column i of
/// A with column i of B.
SaltelliEvaluations saltelli_evaluate(const CubeFn& f, std::size_t dim,
                                      rng::Rng& rng,
                                      const SobolOptions& options) {
  const std::size_t n = options.base_samples;
  if (n < 8) throw std::invalid_argument("sobol: base_samples too small");
  rng::Rng design_rng = rng.split("saltelli-design");
  const auto base = opt::scrambled_halton(n, 2 * dim, design_rng);

  SaltelliEvaluations ev;
  ev.f_a.resize(n);
  ev.f_b.resize(n);
  ev.f_ab.assign(dim, la::Vector(n));
  // Each design row j owns the slots f_a[j], f_b[j], f_ab[*][j] — disjoint
  // writes, so the dim+2 model evaluations per row batch across the pool.
  parallel::parallel_for(options.pool.get(), n, [&](std::size_t j) {
    la::Vector a(dim), b(dim), ab(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      a[i] = base[j][i];
      b[i] = base[j][dim + i];
    }
    ev.f_a[j] = f(a);
    ev.f_b[j] = f(b);
    for (std::size_t i = 0; i < dim; ++i) {
      ab = a;
      ab[i] = b[i];
      ev.f_ab[i][j] = f(ab);
    }
  });
  return ev;
}

struct Indices {
  double s1;
  double st;
};

/// Saltelli-2010 S1 and Jansen ST estimators over a subset of sample rows.
Indices estimate(const SaltelliEvaluations& ev, std::size_t param,
                 const std::vector<std::size_t>& rows) {
  const auto n = static_cast<double>(rows.size());
  double mean = 0.0;
  for (auto j : rows) mean += ev.f_a[j] + ev.f_b[j];
  mean /= 2.0 * n;
  double var = 0.0;
  for (auto j : rows) {
    var += (ev.f_a[j] - mean) * (ev.f_a[j] - mean);
    var += (ev.f_b[j] - mean) * (ev.f_b[j] - mean);
  }
  var /= 2.0 * n;
  if (var < 1e-24) return {0.0, 0.0};

  double s1_acc = 0.0, st_acc = 0.0;
  const auto& fab = ev.f_ab[param];
  for (auto j : rows) {
    s1_acc += ev.f_b[j] * (fab[j] - ev.f_a[j]);
    const double d = ev.f_a[j] - fab[j];
    st_acc += d * d;
  }
  return {s1_acc / n / var, st_acc / (2.0 * n) / var};
}

SobolResult analyze_impl(const CubeFn& f, std::size_t dim,
                         std::vector<std::string> names, rng::Rng& rng,
                         const SobolOptions& options) {
  if (names.size() != dim)
    throw std::invalid_argument("sobol: name count != dim");
  const SaltelliEvaluations ev = saltelli_evaluate(f, dim, rng, options);
  const std::size_t n = options.base_samples;

  SobolResult result;
  result.names = std::move(names);
  result.s1.resize(dim);
  result.s1_conf.resize(dim);
  result.st.resize(dim);
  result.st_conf.resize(dim);

  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  rng::Rng boot_rng = rng.split("bootstrap");

  for (std::size_t i = 0; i < dim; ++i) {
    const Indices point = estimate(ev, i, all);
    result.s1[i] = point.s1;
    result.st[i] = point.st;

    // Bootstrap over sample rows.
    double s1_sum = 0.0, s1_sum2 = 0.0, st_sum = 0.0, st_sum2 = 0.0;
    std::vector<std::size_t> rows(n);
    for (int b = 0; b < options.bootstrap; ++b) {
      for (auto& r : rows)
        r = static_cast<std::size_t>(
            boot_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const Indices e = estimate(ev, i, rows);
      s1_sum += e.s1;
      s1_sum2 += e.s1 * e.s1;
      st_sum += e.st;
      st_sum2 += e.st * e.st;
    }
    const auto nb = static_cast<double>(options.bootstrap);
    const double s1_var = std::max(s1_sum2 / nb - (s1_sum / nb) * (s1_sum / nb), 0.0);
    const double st_var = std::max(st_sum2 / nb - (st_sum / nb) * (st_sum / nb), 0.0);
    result.s1_conf[i] = options.z_score * std::sqrt(s1_var);
    result.st_conf[i] = options.z_score * std::sqrt(st_var);
  }
  return result;
}

}  // namespace

SobolResult analyze_function(const CubeFn& f, std::size_t dim,
                             std::vector<std::string> names, rng::Rng& rng,
                             const SobolOptions& options) {
  return analyze_impl(f, dim, std::move(names), rng, options);
}

SobolResult analyze_surrogate(const gp::Surrogate& model,
                              const space::Space& space, rng::Rng& rng,
                              const SobolOptions& options) {
  if (model.dim() != space.dim())
    throw std::invalid_argument("analyze_surrogate: dim mismatch");
  const CubeFn f = [&](const la::Vector& u) {
    // Snap to a valid configuration so discrete parameters contribute their
    // quantized effect.
    const space::Config c = space.decode(u);
    return model.predict(space.encode(c)).mean;
  };
  std::vector<std::string> names;
  for (const auto& p : space.params()) names.push_back(p.name());
  return analyze_impl(f, space.dim(), std::move(names), rng, options);
}

space::TuningProblem reduce_problem(const space::TuningProblem& problem,
                                    const std::vector<std::string>& keep,
                                    const json::Json& frozen,
                                    std::uint64_t seed) {
  std::vector<space::Parameter> kept_params;
  for (const auto& name : keep) {
    const auto idx = problem.param_space.index_of(name);
    if (!idx)
      throw std::invalid_argument("reduce_problem: unknown parameter " + name);
    kept_params.push_back(problem.param_space[*idx]);
  }
  if (kept_params.empty())
    throw std::invalid_argument("reduce_problem: nothing to tune");

  // Precompute the full-space value for every non-kept parameter: the
  // frozen value when given, otherwise one random draw (fixed for the
  // lifetime of the reduced problem).
  rng::Rng rng(rng::splitmix64(seed + 0x5eed5eedULL));
  const std::size_t full_dim = problem.param_space.dim();
  std::vector<std::optional<space::Value>> fixed(full_dim);
  for (std::size_t i = 0; i < full_dim; ++i) {
    const auto& p = problem.param_space[i];
    if (std::find(keep.begin(), keep.end(), p.name()) != keep.end()) continue;
    if (frozen.contains(p.name())) {
      if (!p.contains(frozen.at(p.name())))
        throw std::invalid_argument("reduce_problem: frozen value for " +
                                    p.name() + " outside range");
      fixed[i] = frozen.at(p.name());
    } else {
      fixed[i] = p.sample(rng);
    }
  }

  space::TuningProblem reduced;
  reduced.name = problem.name + "-reduced";
  reduced.task_space = problem.task_space;
  reduced.param_space = space::Space(std::move(kept_params));
  reduced.output_name = problem.output_name;

  const space::Space full_space = problem.param_space;
  const space::Space kept_space = reduced.param_space;
  reduced.objective = [full_space, kept_space, fixed,
                       base = problem.objective](
                          const space::Config& task,
                          const space::Config& params) {
    space::Config full(full_space.dim());
    for (std::size_t i = 0; i < full_space.dim(); ++i) {
      if (fixed[i]) {
        full[i] = *fixed[i];
      } else {
        const auto k = kept_space.index_of(full_space[i].name());
        full[i] = params[k.value()];
      }
    }
    return base(task, full);
  };
  return reduced;
}

}  // namespace gptc::sa
