// Deterministic fixed-size thread pool and data-parallel helpers.
//
// The tuner's hot loops (multistart Nelder–Mead restarts, differential-
// evolution population evaluation, per-source GP fits, Saltelli-matrix
// predictions) are embarrassingly parallel: every unit of work is a pure
// function of its index. This module runs such loops across a fixed set of
// worker threads while keeping results BITWISE IDENTICAL to a serial run:
//
//   - every parallel unit writes only to its own index's slot;
//   - reductions happen on the calling thread in fixed index order;
//   - any randomness is drawn from a pre-split, index-keyed RNG stream
//     (rng::Rng::split), never from a shared sequential generator.
//
// There is deliberately no work stealing and no task dependency graph: a
// simple shared-counter loop is deterministic-by-construction and is all the
// tuner needs. Nested parallel_for calls (e.g. an LCM likelihood evaluated
// inside a parallel multistart) run inline on the worker thread, so nesting
// can never deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gptc::parallel {

/// Fixed set of worker threads consuming a shared FIFO task queue. Tasks
/// queued before destruction are drained; the destructor joins all workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. A pool of size 0 is legal and makes every
  /// parallel_for/parallel_map run serially on the calling thread.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True when called from one of *any* pool's worker threads. Used to run
  /// nested parallel loops inline instead of re-entering the queue (which
  /// could deadlock: the outer tasks occupy every worker).
  static bool on_worker_thread();

  /// Schedules an arbitrary task. The returned future rethrows any
  /// exception the task throws.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Low-level: pushes a type-erased task onto the queue (parallel_for's
  /// building block; prefer submit / parallel_for).
  void enqueue(std::function<void()> task);

 private:
  void worker_loop() noexcept;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded_by: mutex_
  bool stop_ = false;                        // guarded_by: mutex_
  // guard-ok: written by the constructor and destructor only
  std::vector<std::thread> workers_;
};

/// Runs body(0) .. body(n-1), each exactly once, across the pool's workers.
/// Blocks until all iterations finish. Iterations must be independent (no
/// iteration may read state another writes). Serial fallback — identical
/// code path, identical results — when `pool` is null, has no workers, n<=1,
/// or the caller is itself a pool worker (nested loop).
///
/// If iterations throw, the exception with the lowest iteration index among
/// those that ran is rethrown on the calling thread and remaining iterations
/// are abandoned.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

inline void parallel_for(const std::shared_ptr<ThreadPool>& pool,
                         std::size_t n,
                         const std::function<void(std::size_t)>& body) {
  parallel_for(pool.get(), n, body);
}

/// parallel_for that collects fn(i) into a vector, in index order. The
/// result type must be default-constructible.
template <typename F>
auto parallel_map(ThreadPool* pool, std::size_t n, F&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
  std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

template <typename F>
auto parallel_map(const std::shared_ptr<ThreadPool>& pool, std::size_t n,
                  F&& fn) {
  return parallel_map(pool.get(), n, std::forward<F>(fn));
}

}  // namespace gptc::parallel
