#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdio>
#include <exception>

namespace gptc::parallel {

namespace {
thread_local bool tls_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() noexcept {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Tasks own their error handling (parallel_for captures exceptions into
    // its State); anything escaping here would unwind through a noexcept
    // frame anyway, so name the contract violation before dying.
    try {
      task();
    } catch (...) {
      std::fputs("gptc: fatal: exception escaped a thread-pool task\n",
                 stderr);
      std::terminate();
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (!pool || pool->size() == 0 || n == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t active = 0;
    std::exception_ptr error;
    std::size_t error_index = 0;
  };
  auto state = std::make_shared<State>();
  const std::size_t runners = std::min(pool->size(), n);
  state->active = runners;

  // Each runner pulls the next un-claimed index from a shared counter until
  // the range is exhausted. Every index runs exactly once, on exactly one
  // thread, so bodies that only touch their own index's state behave
  // identically to the serial loop.
  const auto run = [state, n, &body] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || state->failed.load(std::memory_order_relaxed)) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error || i < state->error_index) {
          state->error = std::current_exception();
          state->error_index = i;
        }
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard lock(state->mutex);
    if (--state->active == 0) state->done.notify_all();
  };

  for (std::size_t r = 0; r < runners; ++r) pool->enqueue(run);

  std::unique_lock lock(state->mutex);
  state->done.wait(lock, [&] { return state->active == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace gptc::parallel
