// NIMROD simulator (paper Sec. VI-C, Table III).
//
// NIMROD advances extended-MHD equations with a high-order finite-element
// poloidal plane and pseudo-spectral toroidal direction. Each time step
// assembles matrices (blocked by nbx/nby) and solves nonsymmetric sparse
// systems per Fourier mode with block-Jacobi-preconditioned GMRES; each
// Jacobi block is factorized with SuperLU_DIST's 3-D algorithm.
//
// Task parameters (fixing geometry and 30 time steps, as the paper does):
//   mx, my  — 2^mx x 2^my poloidal mesh DoF;
//   lphi    — floor(2^lphi / 3) + 1 toroidal Fourier modes.
// Tuning parameters (Table III):
//   NSUP, NREL — SuperLU supernode knobs (through the real symbolic
//                pipeline of src/sparse on the task's mesh);
//   nbx, nby   — 2^nbx x 2^nby assembly blocking (cache working set);
//   npz        — 2^npz z-layers of the SuperLU 3-D process grid:
//                communication avoidance vs per-layer memory replication —
//                large problems + large npz run out of memory and FAIL
//                (NaN), reproducing the failed runs of Fig. 5(c).
#pragma once

#include <memory>

#include "apps/superlu.hpp"
#include "hpcsim/machine.hpp"
#include "space/space.hpp"

namespace gptc::apps {

struct NimrodConfig {
  int nsup = 128;
  int nrel = 20;
  int nbx = 1;  // assembly blocking 2^nbx
  int nby = 1;
  int npz = 0;  // 2^npz z-layers in the SuperLU 3-D grid
};

struct NimrodTask {
  int mx = 5;
  int my = 7;
  int lphi = 1;

  int mesh_x() const { return 1 << mx; }
  int mesh_y() const { return 1 << my; }
  int fourier_modes() const { return (1 << lphi) / 3 + 1; }
};

class NimrodSim {
 public:
  /// `steps`: time steps in the main loop (the paper fixes 30).
  NimrodSim(const hpcsim::MachineModel& machine, int nodes,
            std::uint64_t noise_seed = 3, int steps = 30);

  /// Wall time of the time-marching loop; NaN when a SuperLU 3-D layer
  /// does not fit in per-rank memory (OOM failure).
  double run_time(const NimrodTask& task, const NimrodConfig& config) const;

 private:
  const SuperluDistSim& solver_for(const NimrodTask& task) const;

  hpcsim::MachineModel machine_;
  int nodes_;
  std::uint64_t noise_seed_;
  int steps_;
  mutable std::map<std::pair<int, int>, std::unique_ptr<SuperluDistSim>>
      solver_cache_;
};

/// TuningProblem of Table III over a fixed machine/node allocation.
space::TuningProblem make_nimrod_problem(const hpcsim::MachineModel& machine,
                                         int nodes,
                                         std::uint64_t noise_seed = 3);

}  // namespace gptc::apps
