#include "apps/superlu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gptc::apps {

const std::vector<std::string>& superlu_colperm_choices() {
  static const std::vector<std::string> choices = {
      "NATURAL", "RCM_AT_PLUS_A", "MMD_AT_PLUS_A", "METIS_AT_PLUS_A"};
  return choices;
}

SuperluDistSim::SuperluDistSim(sparse::SparsityPattern pattern,
                               std::uint64_t noise_seed)
    : pattern_(std::move(pattern)), noise_seed_(noise_seed) {}

const sparse::SymbolicFactor& SuperluDistSim::symbolic(
    const std::string& colperm) const {
  // MMD and METIS both resolve to the minimum-degree ordering; cache under
  // the canonical algorithm so the expensive ordering runs once.
  std::string key = colperm;
  if (colperm == "METIS_AT_PLUS_A" || colperm == "METIS" ||
      colperm == "MMD" || colperm == "MMD_AT_PLUS_A")
    key = "MMD_AT_PLUS_A";
  auto it = symbolic_cache_.find(key);
  if (it == symbolic_cache_.end()) {
    const auto perm = sparse::colperm_ordering(pattern_, key);
    it = symbolic_cache_
             .emplace(key, sparse::symbolic_factorize(pattern_, perm))
             .first;
  }
  return it->second;
}

sparse::SupernodePartition SuperluDistSim::partition(
    const SuperluConfig& config) const {
  // NSUP/NREL are expressed in matrix columns; the pattern's vertices are
  // dof-blocks (see kDofPerVertex below), so convert.
  const int nsup_vertices = std::max(1, config.nsup / 12);
  const int nrel_vertices = std::max(1, config.nrel / 12);
  return sparse::build_supernodes(symbolic(config.colperm), nsup_vertices,
                                  nrel_vertices);
}

namespace {

/// Each pattern vertex stands for a small dense block of degrees of freedom
/// (the reduced-size pattern represents the real matrix's supernodal
/// block structure): flops scale with dof^3, bytes with dof^2. This puts
/// simulated runtimes in the paper's seconds range without growing the
/// symbolic problem.
constexpr double kDofPerVertex = 12.0;

/// BLAS-3 efficiency of a panel of `width` columns: grows with width
/// (amortized latency, wider GEMMs) and degrades past the cache-friendly
/// regime.
double panel_efficiency(double width) {
  const double w = width;
  const double rampup = w / (w + 96.0);
  const double cache_penalty = 1.0 / (1.0 + std::max(0.0, w - 256.0) / 256.0);
  return rampup * cache_penalty;
}

struct Grid {
  int pr = 1, pc = 1;
  int active() const { return pr * pc; }
};

/// SuperLU uses a pr x pc grid with pr*pc <= P; ranks beyond the grid idle.
Grid make_grid(int nprows, int total_ranks) {
  Grid g;
  g.pr = std::clamp(nprows, 1, total_ranks);
  g.pc = std::max(total_ranks / g.pr, 1);
  return g;
}

}  // namespace

double SuperluDistSim::memory_per_rank(const SuperluConfig& config,
                                       int grid_ranks) const {
  const auto part = partition(config);
  const auto& sym = symbolic(config.colperm);
  const double dof2 = kDofPerVertex * kDofPerVertex;
  const double factor_bytes =
      8.0 * dof2 *
      (static_cast<double>(sym.fill()) +
       static_cast<double>(part.relax_fill));
  // Lookahead buffers hold that many panels in flight.
  double panel_bytes = 0.0;
  for (const auto& s : part.supernodes)
    panel_bytes = std::max(
        panel_bytes, 8.0 * dof2 * static_cast<double>(s.rows) * s.width());
  return factor_bytes / std::max(grid_ranks, 1) +
         panel_bytes * (1.0 + config.lookahead);
}

SuperluDistSim::FactorBreakdown SuperluDistSim::factor_breakdown(
    const SuperluConfig& config, const hpcsim::Allocation& alloc,
    int grid_ranks) const {
  if (config.nsup < 1 || config.nrel < 1 || config.lookahead < 0)
    throw std::invalid_argument("SuperluDistSim: invalid config");
  const Grid grid = make_grid(config.nprows, grid_ranks);
  const auto part = partition(config);

  double compute = 0.0;
  double comm = 0.0;
  const double dof = kDofPerVertex;
  for (const auto& s : part.supernodes) {
    const double w = s.width() * dof;   // columns
    const double r = static_cast<double>(s.rows) * dof;  // rows
    // Panel factorization (sequential along the column of pr ranks, width-w
    // GETRF-like kernel) + Schur update GEMM spread over the grid.
    const double panel_flops = 2.0 * r * w * w;
    const double update_flops = 2.0 * w * (r - w > 0 ? (r - w) : 0) * r;
    const double eff = panel_efficiency(w);
    // Panels are latency/bandwidth sensitive: higher bytes-per-flop.
    const double panel_rate = alloc.rank_flops(eff, 0.20);
    const double gemm_rate = alloc.rank_flops(eff, 0.02);
    compute += panel_flops / (panel_rate * grid.pr) +
               update_flops / (gemm_rate * grid.active());
    // Panel broadcast along the process row; U-row broadcast along the
    // process column.
    comm += alloc.broadcast_time(8.0 * r * w / grid.pr, grid.pc) +
            alloc.broadcast_time(8.0 * w * r / grid.pc, grid.pr);
  }
  // Block-cyclic load imbalance: lumpy supernode widths leave ranks idle;
  // a taller/wider grid mismatch makes it worse.
  const double aspect =
      static_cast<double>(std::max(grid.pr, grid.pc)) /
      static_cast<double>(std::min(grid.pr, grid.pc));
  const double imbalance = 1.0 + 0.05 * (aspect - 1.0);
  // Unused ranks (P not divisible by pr) waste allocation but not time;
  // however a grid using fewer ranks computes slower, already reflected in
  // grid.active().

  // Lookahead pipelines panel broadcasts behind updates, with diminishing
  // returns; zero lookahead pays full serialization.
  const double overlap = 1.0 + 0.45 * std::log2(1.0 + config.lookahead);
  const double pipelined_comm = comm / overlap;
  // Deep lookahead adds scheduling overhead per pending panel.
  const double lookahead_overhead = 0.25 * config.lookahead *
                                    static_cast<double>(part.count()) *
                                    alloc.machine.net_latency;

  FactorBreakdown bd;
  bd.compute = compute * imbalance;
  bd.comm = pipelined_comm + lookahead_overhead;
  bd.mem_per_rank = memory_per_rank(config, grid.active());
  bd.supernodes = part.count();
  return bd;
}

double SuperluDistSim::factor_time(const SuperluConfig& config,
                                   const hpcsim::Allocation& alloc) const {
  const FactorBreakdown bd =
      factor_breakdown(config, alloc, alloc.total_ranks());
  if (bd.mem_per_rank > alloc.mem_per_rank())
    return std::numeric_limits<double>::quiet_NaN();  // OOM

  const double time = bd.compute + bd.comm;
  const std::uint64_t tag =
      rng::hash_tag(config.colperm) ^
      rng::splitmix64(static_cast<std::uint64_t>(config.nsup) * 1315423911u +
                      static_cast<std::uint64_t>(config.nrel) * 2654435761u +
                      static_cast<std::uint64_t>(config.nprows) * 97531u +
                      static_cast<std::uint64_t>(config.lookahead));
  return time * alloc.noise(noise_seed_, tag);
}

double SuperluDistSim::solve_time(const SuperluConfig& config,
                                  const hpcsim::Allocation& alloc) const {
  const Grid grid = make_grid(config.nprows, alloc.total_ranks());
  const auto& sym = symbolic(config.colperm);
  const auto part = partition(config);
  // Two triangular sweeps over the factor; poorly parallel (pipeline along
  // the elimination tree), so only ~sqrt(active) effective speedup.
  const double flops =
      4.0 * kDofPerVertex * kDofPerVertex *
      (static_cast<double>(sym.fill()) +
       static_cast<double>(part.relax_fill));
  const double parallel =
      std::max(1.0, std::sqrt(static_cast<double>(grid.active())));
  const double rate = alloc.rank_flops(0.15, 0.5);  // bandwidth bound
  const double comm = 2.0 * static_cast<double>(part.count()) *
                      alloc.message_time(2048.0) / parallel;
  return flops / (rate * parallel) + comm;
}

space::TuningProblem make_superlu_problem(const hpcsim::Allocation& alloc,
                                          std::uint64_t noise_seed) {
  auto si = std::make_shared<SuperluDistSim>(sparse::si5h12_like(),
                                             noise_seed);
  auto h2o = std::make_shared<SuperluDistSim>(sparse::h2o_like(), noise_seed);

  space::TuningProblem p;
  p.name = "superlu-dist-2d";
  p.task_space = space::Space(
      {space::Parameter::categorical("matrix", {"si5h12", "h2o"})});
  p.param_space = space::Space({
      space::Parameter::categorical("COLPERM", superlu_colperm_choices()),
      space::Parameter::integer("LOOKAHEAD", 5, 20),
      space::Parameter::integer("nprows", 1, alloc.total_ranks() + 1),
      space::Parameter::integer("NSUP", 30, 300),
      space::Parameter::integer("NREL", 10, 40),
  });
  p.output_name = "runtime";
  p.objective = [si, h2o, alloc](const space::Config& task,
                                 const space::Config& params) {
    const auto& sim = task[0].as_string() == "si5h12" ? *si : *h2o;
    SuperluConfig c;
    c.colperm = params[0].as_string();
    c.lookahead = static_cast<int>(params[1].as_int());
    c.nprows = static_cast<int>(params[2].as_int());
    c.nsup = static_cast<int>(params[3].as_int());
    c.nrel = static_cast<int>(params[4].as_int());
    return sim.factor_time(c, alloc);
  };
  return p;
}

}  // namespace gptc::apps
