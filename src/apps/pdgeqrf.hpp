// ScaLAPACK PDGEQRF simulator (paper Sec. VI-B, Table II).
//
// Models distributed Householder QR of an m x n matrix on a pr x pc
// process grid with 2-D block-cyclic distribution. The simulation walks
// the panel loop like the real routine, so the tuning parameters act
// through the same mechanisms:
//   mb, nb        — row/column block sizes (x8, per Table II): BLAS-3
//                   efficiency vs pipeline granularity and latency count;
//   lg2npernode   — MPI ranks per node (2^lg2npernode): parallelism vs
//                   memory-bandwidth contention within a node;
//   p             — process-grid rows (q = P/p): panel-factorization
//                   parallelism vs broadcast group sizes and load balance.
// Invalid layouts (p > available ranks) are clamped the way ScaLAPACK
// users do; per-rank memory overflow returns NaN (failed run).
#pragma once

#include "hpcsim/machine.hpp"
#include "space/space.hpp"

namespace gptc::apps {

struct PdgeqrfConfig {
  int mb = 4;           // row block = 8 * mb
  int nb = 4;           // column block = 8 * nb
  int lg2npernode = 5;  // ranks per node = 2^lg2npernode
  int p = 16;           // process grid rows
};

/// Simulated wall time of PDGEQRF(m, n) on `nodes` nodes of `machine`.
/// Returns NaN if the distributed matrix does not fit in memory.
double pdgeqrf_time(const hpcsim::MachineModel& machine, int nodes,
                    std::int64_t m, std::int64_t n,
                    const PdgeqrfConfig& config, std::uint64_t noise_seed);

/// TuningProblem of Table II: tasks (m, n), parameters
/// [mb, nb, lg2npernode, p]. Ranges follow the paper:
/// mb, nb in [1, 16), lg2npernode in [0, log2(cores)), p in
/// [1, nodes * cores).
space::TuningProblem make_pdgeqrf_problem(const hpcsim::MachineModel& machine,
                                          int nodes,
                                          std::uint64_t noise_seed = 2);

}  // namespace gptc::apps
