#include "apps/nimrod.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/pattern.hpp"

namespace gptc::apps {

namespace {

/// GMRES iterations per linear solve: fixed physics (geometry and time
/// step are pinned), so the preconditioner quality — and therefore the
/// iteration count — does not depend on the tuning parameters.
constexpr int kGmresIters = 40;
/// The matrices change as the plasma evolves; refactorize every few steps.
constexpr int kRefactorPeriod = 5;
/// Finite-element fields per mesh vertex (velocity, B, pressure, ...).
constexpr double kFieldsPerVertex = 8.0;

/// The symbolic mesh is ~100x smaller than NIMROD's production meshes, but
/// the memory pressure that causes the paper's failed runs (Fig. 5(c)) is
/// a production-scale phenomenon. Factor memory is therefore accounted at
/// production scale (each reduced-mesh vertex stands for a patch of
/// high-order element DoF) while compute is calibrated to wall seconds.
constexpr double kMemoryScale = 450.0;

/// Cache efficiency of the assembly blocking: the 2^nbx x 2^nby element
/// block's working set should sit near the L2 sweet spot; too small wastes
/// loop overhead, too large spills.
double assembly_efficiency(int nbx, int nby) {
  const double block_elems = static_cast<double>(1 << nbx) *
                             static_cast<double>(1 << nby);
  const double ideal = 8.0;  // elements whose matrices fit in L2
  const double miss = std::abs(std::log2(block_elems / ideal));
  return 1.0 / (1.0 + 0.35 * miss);
}

}  // namespace

NimrodSim::NimrodSim(const hpcsim::MachineModel& machine, int nodes,
                     std::uint64_t noise_seed, int steps)
    : machine_(machine),
      nodes_(nodes),
      noise_seed_(noise_seed),
      steps_(steps) {}

const SuperluDistSim& NimrodSim::solver_for(const NimrodTask& task) const {
  const auto key = std::make_pair(task.mx, task.my);
  auto it = solver_cache_.find(key);
  if (it == solver_cache_.end()) {
    it = solver_cache_
             .emplace(key, std::make_unique<SuperluDistSim>(
                               sparse::grid_2d(task.mesh_x(), task.mesh_y()),
                               noise_seed_))
             .first;
  }
  return *it->second;
}

double NimrodSim::run_time(const NimrodTask& task,
                           const NimrodConfig& config) const {
  hpcsim::Allocation alloc;
  alloc.machine = machine_;
  alloc.nodes = nodes_;
  alloc.ranks_per_node = machine_.cores_per_node;
  const int total_ranks = alloc.total_ranks();

  const SuperluDistSim& solver = solver_for(task);
  const int modes = task.fourier_modes();
  const double vertices =
      static_cast<double>(task.mesh_x()) * task.mesh_y();

  // --- SuperLU 3-D factorization cost -------------------------------------
  // 2^npz z-layers, each holding a 2-D grid of P / 2^npz ranks. The layers
  // factor independent subtrees concurrently (compute stays ~P-parallel,
  // with a dependency-loss factor), while communication happens inside the
  // much smaller 2-D grids plus an inter-layer reduction of the top
  // separator.
  const int pz = 1 << config.npz;
  const int ranks_2d = std::max(total_ranks / pz, 1);
  SuperluConfig slu;
  slu.colperm = "RCM_AT_PLUS_A";  // NIMROD uses a fixed internal ordering
  slu.nsup = config.nsup;
  slu.nrel = config.nrel;
  slu.lookahead = 8;
  slu.nprows = std::max(1, static_cast<int>(std::sqrt(ranks_2d)));
  const auto bd = solver.factor_breakdown(slu, alloc, ranks_2d);

  // Per-layer memory: a full 2-D factor spread over ranks_2d ranks — npz
  // trades communication for replication, and the replication is what
  // breaks large problems (Fig. 5(c)).
  if (bd.mem_per_rank * modes * kMemoryScale > alloc.mem_per_rank())
    return std::numeric_limits<double>::quiet_NaN();

  const double dependency_loss = 1.0 + 0.25 * config.npz;
  const double factor_compute = bd.compute / pz * dependency_loss;
  const double interlayer =
      alloc.allreduce_time(8.0 * std::sqrt(vertices) * kFieldsPerVertex *
                               kFieldsPerVertex * 64.0,
                           pz);
  const double factor_time = (factor_compute + bd.comm + interlayer) * modes;

  // --- Per-iteration solve costs -------------------------------------------
  const double solve_time = solver.solve_time(slu, alloc) / pz;
  const double spmv_flops = vertices * 9.0 * kFieldsPerVertex *
                            kFieldsPerVertex * 2.0;  // 9-point block stencil
  const double spmv = spmv_flops /
                      (alloc.rank_flops(0.25, 0.6) * total_ranks);
  const double dots = 4.0 * alloc.allreduce_time(8.0, total_ranks);
  const double gmres_step = (spmv + solve_time + dots) * kGmresIters * modes;

  // --- Assembly -------------------------------------------------------------
  const double elem_flops = vertices * 600.0 * kFieldsPerVertex;
  const double assembly =
      elem_flops / (alloc.rank_flops(assembly_efficiency(config.nbx,
                                                         config.nby),
                                     0.15) *
                    total_ranks) *
      modes;

  const double per_step = assembly + gmres_step;
  const double refactors =
      std::ceil(static_cast<double>(steps_) / kRefactorPeriod);
  const double total = steps_ * per_step + refactors * factor_time;

  const std::uint64_t tag = rng::splitmix64(
      (static_cast<std::uint64_t>(config.nsup) << 40) ^
      (static_cast<std::uint64_t>(config.nrel) << 28) ^
      (static_cast<std::uint64_t>(config.nbx) << 20) ^
      (static_cast<std::uint64_t>(config.nby) << 12) ^
      (static_cast<std::uint64_t>(config.npz) << 4) ^
      (static_cast<std::uint64_t>(task.mx) << 56) ^
      (static_cast<std::uint64_t>(task.my) << 48) ^
      static_cast<std::uint64_t>(task.lphi));
  return total * alloc.noise(noise_seed_, tag);
}

space::TuningProblem make_nimrod_problem(const hpcsim::MachineModel& machine,
                                         int nodes,
                                         std::uint64_t noise_seed) {
  auto sim = std::make_shared<NimrodSim>(machine, nodes, noise_seed);
  space::TuningProblem p;
  p.name = "nimrod";
  p.task_space = space::Space({
      space::Parameter::integer("mx", 4, 8),
      space::Parameter::integer("my", 4, 10),
      space::Parameter::integer("lphi", 0, 4),
  });
  p.param_space = space::Space({
      space::Parameter::integer("NSUP", 30, 300),
      space::Parameter::integer("NREL", 10, 40),
      space::Parameter::integer("nbx", 1, 3),
      space::Parameter::integer("nby", 1, 3),
      space::Parameter::integer("npz", 0, 5),
  });
  p.output_name = "runtime";
  p.objective = [sim](const space::Config& task, const space::Config& params) {
    NimrodTask t;
    t.mx = static_cast<int>(task[0].as_int());
    t.my = static_cast<int>(task[1].as_int());
    t.lphi = static_cast<int>(task[2].as_int());
    NimrodConfig c;
    c.nsup = static_cast<int>(params[0].as_int());
    c.nrel = static_cast<int>(params[1].as_int());
    c.nbx = static_cast<int>(params[2].as_int());
    c.nby = static_cast<int>(params[3].as_int());
    c.npz = static_cast<int>(params[4].as_int());
    return sim->run_time(t, c);
  };
  return p;
}

}  // namespace gptc::apps
