// SuperLU_DIST 2-D simulator (paper Sec. VI-D).
//
// Reproduces the tuning surface of SuperLU_DIST's numeric factorization:
//   COLPERM    — fill-reducing ordering; drives fill and flops through the
//                real orderings in src/sparse (dominant, as in Table IV);
//   nprows     — process-grid shape (pr x pc = P/pr); drives communication
//                volume and load balance (second most sensitive);
//   NSUP       — max supernode width; drives BLAS-3 efficiency vs cache
//                pressure (moderate);
//   NREL       — relaxed-supernode size; small extra fill vs wider panels
//                (weak);
//   LOOKAHEAD  — pipeline depth; overlaps panel communication (weak).
//
// The cost model walks the actual supernode partition produced by the
// symbolic phase, charging per-supernode panel/update flops and broadcast
// costs on the process grid, with machine noise on top. Symbolic results
// are cached per COLPERM (they do not depend on the other knobs).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "hpcsim/machine.hpp"
#include "space/space.hpp"
#include "sparse/symbolic.hpp"

namespace gptc::apps {

struct SuperluConfig {
  std::string colperm = "MMD_AT_PLUS_A";
  int lookahead = 10;
  int nprows = 1;
  int nsup = 128;  // max supernode width (columns)
  int nrel = 20;   // relaxation size
};

/// The COLPERM choices exposed to the tuner.
const std::vector<std::string>& superlu_colperm_choices();

class SuperluDistSim {
 public:
  SuperluDistSim(sparse::SparsityPattern pattern, std::uint64_t noise_seed);

  /// Wall time of the distributed numeric factorization on the allocation.
  /// Returns NaN when the per-rank memory estimate exceeds the machine's
  /// (OOM failure).
  double factor_time(const SuperluConfig& config,
                     const hpcsim::Allocation& alloc) const;

  /// Decomposed factorization cost on a process grid of `grid_ranks` ranks
  /// (compute seconds, communication seconds, bytes per rank) with no noise
  /// applied. This is what the NIMROD simulator composes into the SuperLU
  /// 3-D cost model (the 2-D grid of each z-layer has P / 2^npz ranks).
  struct FactorBreakdown {
    double compute = 0.0;
    double comm = 0.0;
    double mem_per_rank = 0.0;
    std::size_t supernodes = 0;
  };
  FactorBreakdown factor_breakdown(const SuperluConfig& config,
                                   const hpcsim::Allocation& alloc,
                                   int grid_ranks) const;

  /// Wall time of one triangular solve (used by the NIMROD simulator's
  /// preconditioner applications).
  double solve_time(const SuperluConfig& config,
                    const hpcsim::Allocation& alloc) const;

  /// Estimated factor memory per rank (bytes) for OOM checks. `grid_ranks`
  /// is the number of ranks holding one factor copy.
  double memory_per_rank(const SuperluConfig& config, int grid_ranks) const;

  const sparse::SparsityPattern& pattern() const { return pattern_; }

  /// Cached symbolic analysis for one COLPERM.
  const sparse::SymbolicFactor& symbolic(const std::string& colperm) const;

 private:
  sparse::SupernodePartition partition(const SuperluConfig& config) const;

  sparse::SparsityPattern pattern_;
  std::uint64_t noise_seed_;
  mutable std::map<std::string, sparse::SymbolicFactor> symbolic_cache_;
};

/// TuningProblem for Fig. 6: tune [COLPERM, LOOKAHEAD, nprows, NSUP, NREL]
/// for factorization time on the given allocation. The task space carries a
/// matrix selector ("si5h12" / "h2o") so crowd records are grouped per
/// matrix.
space::TuningProblem make_superlu_problem(const hpcsim::Allocation& alloc,
                                          std::uint64_t noise_seed = 1);

}  // namespace gptc::apps
