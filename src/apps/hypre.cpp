#include "apps/hypre.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace gptc::apps {

const std::vector<std::string>& hypre_coarsen_types() {
  static const std::vector<std::string> v = {"CLJP",  "Ruge-Stueben", "Falgout",
                                             "PMIS",  "HMIS",         "CGC",
                                             "CGC-E", "PMIS-agg"};
  return v;
}

const std::vector<std::string>& hypre_relax_types() {
  static const std::vector<std::string> v = {
      "Jacobi", "hybrid-GS", "hybrid-SGS", "l1-GS", "Chebyshev", "l1-Jacobi"};
  return v;
}

const std::vector<std::string>& hypre_smooth_types() {
  static const std::vector<std::string> v = {"none", "Schwarz", "Pilut",
                                             "ParaSails", "Euclid"};
  return v;
}

const std::vector<std::string>& hypre_interp_types() {
  static const std::vector<std::string> v = {
      "classical", "direct",   "multipass", "extended+i",
      "standard",  "FF",       "extended"};
  return v;
}

namespace {

struct CoarsenProps {
  double ratio;  // points ratio fine/coarse per level
  double rho;    // base two-grid convergence factor with simple smoothing
  double op_density;  // growth of nnz/row on coarse levels
};

CoarsenProps coarsen_props(const std::string& type) {
  // Qualitative hypre lore: Falgout/Ruge-Stueben coarsen slowly (better
  // convergence, higher complexity); PMIS/HMIS coarsen fast (lower
  // complexity, needs stronger interpolation/smoothing).
  // On a well-behaved Poisson problem the coarsening variants differ only
  // mildly (which is why Table V scores coarsen_type near zero): they
  // trade a little complexity against a little convergence.
  static const std::map<std::string, CoarsenProps> props = {
      {"CLJP", {3.4, 0.26, 1.90}},
      {"Ruge-Stueben", {3.2, 0.23, 1.95}},
      {"Falgout", {3.3, 0.23, 1.90}},
      {"PMIS", {4.2, 0.30, 1.78}},
      {"HMIS", {4.3, 0.29, 1.78}},
      {"CGC", {3.5, 0.26, 1.86}},
      {"CGC-E", {3.6, 0.25, 1.84}},
      {"PMIS-agg", {4.4, 0.31, 1.75}},
  };
  const auto it = props.find(type);
  if (it == props.end())
    throw std::invalid_argument("hypre: unknown coarsen_type " + type);
  return it->second;
}

struct SmootherProps {
  double cost;  // per-point cost multiple of a Jacobi sweep
  double rho_power;  // convergence factor exponent (>1 = stronger)
};

SmootherProps smooth_props(const std::string& type) {
  // Complex smoothers in hypre are far more expensive per sweep than point
  // relaxation (Schwarz solves local subdomain problems, Euclid/Pilut apply
  // approximate factorizations) but contract much harder.
  static const std::map<std::string, SmootherProps> props = {
      {"none", {1.0, 1.0}},
      {"Schwarz", {100.0, 3.0}},
      {"Pilut", {40.0, 2.0}},
      {"ParaSails", {20.0, 2.2}},
      {"Euclid", {60.0, 2.5}},
  };
  const auto it = props.find(type);
  if (it == props.end())
    throw std::invalid_argument("hypre: unknown smooth_type " + type);
  return it->second;
}

double relax_cost(const std::string& type) {
  static const std::map<std::string, double> cost = {
      {"Jacobi", 1.0},     {"hybrid-GS", 1.15}, {"hybrid-SGS", 2.1},
      {"l1-GS", 1.25},     {"Chebyshev", 2.3},  {"l1-Jacobi", 1.05}};
  const auto it = cost.find(type);
  if (it == cost.end())
    throw std::invalid_argument("hypre: unknown relax_type " + type);
  return it->second;
}

double relax_rho_adjust(const std::string& type) {
  // Simple relaxations differ only mildly on Poisson.
  static const std::map<std::string, double> adj = {
      {"Jacobi", 1.06},    {"hybrid-GS", 1.0},  {"hybrid-SGS", 0.96},
      {"l1-GS", 1.0},      {"Chebyshev", 0.95}, {"l1-Jacobi", 1.04}};
  return adj.at(type);
}

double interp_rho_adjust(const std::string& type) {
  static const std::map<std::string, double> adj = {
      {"classical", 1.0},  {"direct", 1.05}, {"multipass", 1.03},
      {"extended+i", 0.96}, {"standard", 1.0}, {"FF", 1.01},
      {"extended", 0.97}};
  const auto it = adj.find(type);
  if (it == adj.end())
    throw std::invalid_argument("hypre: unknown interp_type " + type);
  return it->second;
}

}  // namespace

double hypre_time(const hpcsim::MachineModel& machine, int nx, int ny, int nz,
                  const HypreConfig& config, std::uint64_t noise_seed) {
  if (nx < 2 || ny < 2 || nz < 2)
    throw std::invalid_argument("hypre_time: grid too small");
  if (config.px < 1 || config.py < 1 || config.nproc < 1 ||
      config.smooth_num_levels < 0 || config.agg_num_levels < 0)
    throw std::invalid_argument("hypre_time: bad config");

  hpcsim::Allocation alloc;
  alloc.machine = machine;
  alloc.nodes = 1;
  alloc.ranks_per_node = std::min(config.nproc, machine.cores_per_node);

  // Domain decomposition: Px x Py x Pz with Pz = Nproc / (Px * Py). A
  // topology needing more processes than Nproc leaves Pz = 1 and idles the
  // excess Px*Py - Nproc ranks (hypre would still run, slower).
  const int px = config.px, py = config.py;
  const int pz = std::max(config.nproc / (px * py), 1);
  const int active = std::min(px * py * pz, config.nproc);

  const CoarsenProps coarsen = coarsen_props(config.coarsen_type);
  const SmootherProps smoother = smooth_props(config.smooth_type);

  // strong_threshold: on Poisson, ~0.25 is the sweet spot; deviating
  // inflates either the operator stencils (small theta) or the iteration
  // count (large theta). Mild effects.
  const double theta_miss = std::abs(config.strong_threshold - 0.25);
  const double density_theta = 1.0 + 0.2 * std::max(0.0, 0.25 - config.strong_threshold);
  // Interpolation truncation prunes operator growth a little and costs a
  // little convergence.
  const double trunc_density =
      1.0 / (1.0 + 0.3 * config.trunc_factor +
             0.02 * std::max(0, 8 - config.p_max_elmts));
  const double trunc_rho =
      1.0 + 0.08 * config.trunc_factor +
      0.005 * std::max(0, 4 - config.p_max_elmts);

  // --- Build the hierarchy ---------------------------------------------------
  double points = static_cast<double>(nx) * ny * nz;
  double nnz_per_row = 7.0;
  double cycle_flops = 0.0;       // one V-cycle, fine-to-coarse and back
  double setup_flops = 0.0;
  double rho = coarsen.rho * relax_rho_adjust(config.relax_type) *
               interp_rho_adjust(config.interp_type) * trunc_rho *
               (1.0 + 0.25 * theta_miss);
  int level = 0;
  double coarse_grid_ops = 0.0;
  while (points > 64.0 && level < 25) {
    const bool aggressive = level < config.agg_num_levels;
    const double ratio = coarsen.ratio * (aggressive ? 4.0 : 1.0);
    // Complex smoothers are applied below the finest level (their setup on
    // the full fine grid would dwarf everything); this also couples their
    // cost to how fast the hierarchy shrinks (agg_num_levels).
    const bool smoothed = level >= 1 && level <= config.smooth_num_levels &&
                          config.smooth_type != "none";
    const double sweep_cost =
        smoothed ? smoother.cost : relax_cost(config.relax_type);
    // Two smoothing sweeps + residual + restrict/prolong per level visit.
    cycle_flops += points * nnz_per_row * 2.0 * (2.0 * sweep_cost + 2.0);
    // Galerkin RAP: quadratic in the operator density, so the denser
    // coarse operators of slow coarsening keep costing — this is what
    // aggressive coarsening buys its complexity reduction against.
    setup_flops += points * nnz_per_row * (4.0 + 0.8 * nnz_per_row);
    if (smoothed)  // smoother setup (subdomain factorizations etc.)
      setup_flops += points * nnz_per_row * smoother.cost * 6.0;
    coarse_grid_ops += points * nnz_per_row;
    // Aggressive coarsening hurts convergence a bit; complex smoothers
    // recover a lot of it (their rho_power strengthens every smoothed
    // level visit).
    if (aggressive) rho = std::min(rho * 1.22, 0.93);
    if (smoothed)
      rho = std::pow(rho, smoother.rho_power > 1.0
                              ? 1.0 + (smoother.rho_power - 1.0) * 0.5
                              : 1.0);
    points /= ratio;
    nnz_per_row = std::min(nnz_per_row * coarsen.op_density * density_theta *
                               trunc_density,
                           45.0);
    ++level;
  }
  rho = std::clamp(rho, 0.02, 0.93);

  // GMRES(k) to 1e-8: iteration count from the effective contraction.
  const int iters = static_cast<int>(
      std::ceil(std::log(1e-8) / std::log(rho))) + 2;

  // --- Charge time ------------------------------------------------------------
  // Sparse kernels stream ~8 bytes per flop: a handful of ranks saturates
  // the node's memory bandwidth, so Nproc scaling flattens early (which is
  // why Nproc's sensitivity is only moderate in Table V).
  const double rate = alloc.rank_flops(0.22, 8.0);
  // Splitting the y dimension shortens the contiguous stencil sweeps and
  // defeats the hardware prefetcher; x stays the unit-stride dimension and
  // z splits whole planes, so only Py carries this penalty.
  const double y_sweep_penalty =
      1.0 + 0.22 * std::log2(static_cast<double>(py));
  const double compute_per_cycle =
      cycle_flops * y_sweep_penalty / (rate * active);

  // Halo exchange per cycle: x-faces are contiguous, z-faces are planes
  // (cheap pack), y-faces are strided line-by-line packs (expensive) —
  // this is what makes Py matter and Px not.
  const double hx = static_cast<double>(nx) / px;
  const double hy = static_cast<double>(ny) / py;
  const double hz = static_cast<double>(nz) / pz;
  const double bytes_x = 8.0 * hy * hz;
  const double bytes_y = 8.0 * hx * hz;
  const double bytes_z = 8.0 * hx * hy;
  const double pack_y = 20.0;  // strided pack penalty
  double comm_per_cycle = 0.0;
  if (px > 1) comm_per_cycle += 2.0 * alloc.message_time(bytes_x);
  if (py > 1) comm_per_cycle += 2.0 * alloc.message_time(bytes_y * pack_y);
  if (pz > 1) comm_per_cycle += 2.0 * alloc.message_time(bytes_z * 1.5);
  comm_per_cycle *= level;  // every level exchanges halos

  // GMRES orthogonalization: dots + norms all-reduce across ranks.
  const double gmres_overhead =
      6.0 * alloc.allreduce_time(8.0, active) +
      2.0 * static_cast<double>(nx) * ny * nz / (rate * active);

  const double setup_time = setup_flops * y_sweep_penalty / (rate * active);
  (void)coarse_grid_ops;

  const double total =
      setup_time + iters * (compute_per_cycle + comm_per_cycle + gmres_overhead);

  const std::uint64_t tag = rng::hash_tag(
      config.coarsen_type + "|" + config.relax_type + "|" +
      config.smooth_type + "|" + config.interp_type) ^
      rng::splitmix64((static_cast<std::uint64_t>(config.px) << 48) ^
                      (static_cast<std::uint64_t>(config.py) << 40) ^
                      (static_cast<std::uint64_t>(config.nproc) << 32) ^
                      (static_cast<std::uint64_t>(config.p_max_elmts) << 24) ^
                      (static_cast<std::uint64_t>(config.smooth_num_levels) << 16) ^
                      (static_cast<std::uint64_t>(config.agg_num_levels) << 8) ^
                      static_cast<std::uint64_t>(config.strong_threshold * 255) ^
                      (static_cast<std::uint64_t>(config.trunc_factor * 255) << 4));
  return total * alloc.noise(noise_seed, tag);
}

space::TuningProblem make_hypre_problem(const hpcsim::MachineModel& machine,
                                        std::uint64_t noise_seed) {
  space::TuningProblem p;
  p.name = "hypre";
  p.task_space = space::Space({
      space::Parameter::integer("nx", 10, 200),
      space::Parameter::integer("ny", 10, 200),
      space::Parameter::integer("nz", 10, 200),
  });
  p.param_space = space::Space({
      space::Parameter::integer("Px", 1, 32),
      space::Parameter::integer("Py", 1, 32),
      space::Parameter::integer("Nproc", 1, 32),
      space::Parameter::real("strong_threshold", 0.0, 1.0),
      space::Parameter::real("trunc_factor", 0.0, 1.0),
      space::Parameter::integer("P_max_elmts", 1, 12),
      space::Parameter::categorical("coarsen_type", hypre_coarsen_types()),
      space::Parameter::categorical("relax_type", hypre_relax_types()),
      space::Parameter::categorical("smooth_type", hypre_smooth_types()),
      space::Parameter::integer("smooth_num_levels", 0, 5),
      space::Parameter::categorical("interp_type", hypre_interp_types()),
      space::Parameter::integer("agg_num_levels", 0, 5),
  });
  p.output_name = "runtime";
  p.objective = [machine, noise_seed](const space::Config& task,
                                      const space::Config& params) {
    HypreConfig c;
    c.px = static_cast<int>(params[0].as_int());
    c.py = static_cast<int>(params[1].as_int());
    c.nproc = static_cast<int>(params[2].as_int());
    c.strong_threshold = params[3].as_double();
    c.trunc_factor = params[4].as_double();
    c.p_max_elmts = static_cast<int>(params[5].as_int());
    c.coarsen_type = params[6].as_string();
    c.relax_type = params[7].as_string();
    c.smooth_type = params[8].as_string();
    c.smooth_num_levels = static_cast<int>(params[9].as_int());
    c.interp_type = params[10].as_string();
    c.agg_num_levels = static_cast<int>(params[11].as_int());
    return hypre_time(machine, static_cast<int>(task[0].as_int()),
                      static_cast<int>(task[1].as_int()),
                      static_cast<int>(task[2].as_int()), c, noise_seed);
  };
  return p;
}

}  // namespace gptc::apps
