#include "apps/pdgeqrf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gptc::apps {

namespace {

/// DGEMM efficiency as a function of the inner (panel) dimension: narrow
/// updates are latency/bandwidth bound, wide ones approach peak, very wide
/// blocks spill L2 and taper.
double gemm_efficiency(double block) {
  const double ramp = block / (block + 48.0);
  const double cache = 1.0 / (1.0 + std::max(0.0, block - 384.0) / 384.0);
  return ramp * cache;
}

}  // namespace

double pdgeqrf_time(const hpcsim::MachineModel& machine, int nodes,
                    std::int64_t m, std::int64_t n,
                    const PdgeqrfConfig& config, std::uint64_t noise_seed) {
  if (m <= 0 || n <= 0) throw std::invalid_argument("pdgeqrf_time: bad size");
  if (config.mb < 1 || config.nb < 1 || config.lg2npernode < 0 ||
      config.p < 1)
    throw std::invalid_argument("pdgeqrf_time: bad config");

  hpcsim::Allocation alloc;
  alloc.machine = machine;
  alloc.nodes = nodes;
  alloc.ranks_per_node =
      std::min(1 << config.lg2npernode, machine.cores_per_node);
  const int total_ranks = alloc.total_ranks();

  // Grid: pr rows, pc = floor(P / pr) columns; leftover ranks idle (that
  // is what ScaLAPACK does when the grid does not use every rank).
  const int pr = std::clamp(config.p, 1, total_ranks);
  const int pc = std::max(total_ranks / pr, 1);
  const int active = pr * pc;

  // Threads per rank: unused cores help the per-rank DGEMM rate when fewer
  // ranks than cores are launched (ScaLAPACK + threaded BLAS).
  const double threads =
      std::max(1.0, static_cast<double>(machine.cores_per_node) /
                        alloc.ranks_per_node);

  const double row_block = 8.0 * config.mb;
  const double col_block = 8.0 * config.nb;

  // Memory check: each rank stores ~ m*n/active doubles plus panel/work
  // buffers.
  const double bytes_per_rank =
      8.0 * static_cast<double>(m) * static_cast<double>(n) / active +
      8.0 * (static_cast<double>(m) / pr) * col_block * 4.0;
  if (bytes_per_rank > alloc.mem_per_rank())
    return std::numeric_limits<double>::quiet_NaN();

  double compute = 0.0;
  double comm = 0.0;
  const double md = static_cast<double>(m);
  const std::int64_t kmax = std::min(m, n);
  // Walk the panel loop in column-block steps.
  for (std::int64_t k = 0; k < kmax; k += static_cast<std::int64_t>(col_block)) {
    const double rows_left = md - static_cast<double>(k);
    const double cols_this = std::min<double>(col_block,
                                              static_cast<double>(kmax - k));
    const double cols_right = static_cast<double>(n - k) - cols_this;
    if (rows_left <= 0.0) break;

    // 1. Panel factorization: tall-skinny QR on the pr ranks owning the
    //    panel column. Level-2-ish kernel: memory bound, row_block sets
    //    the dlarfg/dlarf blocking granularity.
    const double panel_flops = 2.0 * rows_left * cols_this * cols_this;
    const double panel_eff = gemm_efficiency(std::min(row_block, cols_this));
    const double panel_rate =
        alloc.rank_flops(panel_eff, 0.35) * std::min(threads, 4.0);
    compute += panel_flops / (panel_rate * pr);
    // Per-column norm all-reduce down the process column.
    comm += cols_this * alloc.allreduce_time(8.0, pr) / 4.0;

    // 2. Broadcast the panel (V factors) along process rows, and form T.
    const double panel_bytes = 8.0 * (rows_left / pr) * cols_this;
    comm += alloc.broadcast_time(panel_bytes, pc);

    if (cols_right > 0.0) {
      // 3. Trailing-matrix update: (I - V T V^T) applied to the right
      //    columns; two big GEMMs distributed over the whole grid.
      const double update_flops = 4.0 * rows_left * cols_right * cols_this;
      const double upd_eff = gemm_efficiency(cols_this) *
                             (0.75 + 0.25 * gemm_efficiency(row_block));
      const double upd_rate = alloc.rank_flops(upd_eff, 0.04) * threads;
      compute += update_flops / (upd_rate * active);
      // W = V^T C reduction along process columns.
      comm += alloc.allreduce_time(8.0 * cols_this * (cols_right / pc), pr);
    }
  }

  // Block-cyclic load imbalance: with few blocks per rank the edge ranks
  // idle. blocks_per_rank_row ~ m/(row_block*pr).
  const double blocks_row = md / (row_block * pr);
  const double blocks_col = static_cast<double>(n) / (col_block * pc);
  const double imbalance =
      (1.0 + 0.5 / std::max(blocks_row, 0.5)) *
      (1.0 + 0.5 / std::max(blocks_col, 0.5));

  const double time = compute * imbalance + comm;
  const std::uint64_t tag =
      rng::splitmix64(static_cast<std::uint64_t>(config.mb) * 1000003ULL +
                      static_cast<std::uint64_t>(config.nb) * 10007ULL +
                      static_cast<std::uint64_t>(config.lg2npernode) * 101ULL +
                      static_cast<std::uint64_t>(config.p)) ^
      rng::splitmix64(static_cast<std::uint64_t>(m) * 31 +
                      static_cast<std::uint64_t>(n));
  return time * alloc.noise(noise_seed, tag);
}

space::TuningProblem make_pdgeqrf_problem(const hpcsim::MachineModel& machine,
                                          int nodes,
                                          std::uint64_t noise_seed) {
  const int lg2cores =
      static_cast<int>(std::round(std::log2(machine.cores_per_node)));
  space::TuningProblem p;
  p.name = "pdgeqrf";
  p.task_space = space::Space({
      space::Parameter::integer("m", 1000, 100000),
      space::Parameter::integer("n", 1000, 100000),
  });
  p.param_space = space::Space({
      space::Parameter::integer("mb", 1, 16),
      space::Parameter::integer("nb", 1, 16),
      space::Parameter::integer("lg2npernode", 0, lg2cores),
      space::Parameter::integer(
          "p", 1, static_cast<std::int64_t>(nodes) * machine.cores_per_node),
  });
  p.output_name = "runtime";
  p.objective = [machine, nodes, noise_seed](const space::Config& task,
                                             const space::Config& params) {
    PdgeqrfConfig c;
    c.mb = static_cast<int>(params[0].as_int());
    c.nb = static_cast<int>(params[1].as_int());
    c.lg2npernode = static_cast<int>(params[2].as_int());
    c.p = static_cast<int>(params[3].as_int());
    return pdgeqrf_time(machine, nodes, task[0].as_int(), task[1].as_int(),
                        c, noise_seed);
  };
  return p;
}

}  // namespace gptc::apps
