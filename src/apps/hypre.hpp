// Hypre (BoomerAMG-preconditioned GMRES) simulator — paper Sec. VI-E,
// Table V.
//
// Solves the Poisson equation on an [nx, ny, nz] structured grid. The
// simulator constructs the AMG hierarchy level by level — coarsening
// ratio and operator complexity per coarsen_type / agg_num_levels /
// strong_threshold / interp_type / trunc_factor / P_max_elmts — assigns a
// smoother cost and strength per level (smooth_type on the first
// smooth_num_levels levels, relax_type elsewhere), derives the GMRES
// iteration count from the resulting convergence factor, and charges
// compute plus halo-exchange communication for the Px x Py x Pz domain
// decomposition (Pz = Nproc / (Px*Py)).
//
// The sensitivity structure of Table V is emergent: smooth_type and
// smooth_num_levels move both per-iteration cost and iteration count;
// agg_num_levels moves operator complexity strongly; Py is comm-sensitive
// because y-face halos pack strided data while x-faces are contiguous (the
// asymmetry the paper measures); strong_threshold / trunc_factor /
// P_max_elmts / coarsen_type / relax_type / interp_type nudge the
// hierarchy only mildly on a well-behaved Poisson problem.
#pragma once

#include "hpcsim/machine.hpp"
#include "space/space.hpp"

namespace gptc::apps {

struct HypreConfig {
  int px = 2;
  int py = 2;
  int nproc = 8;
  double strong_threshold = 0.25;
  double trunc_factor = 0.0;
  int p_max_elmts = 4;
  std::string coarsen_type = "Falgout";
  std::string relax_type = "hybrid-GS";
  std::string smooth_type = "none";
  int smooth_num_levels = 0;
  std::string interp_type = "classical";
  int agg_num_levels = 0;
};

const std::vector<std::string>& hypre_coarsen_types();   // 8 choices
const std::vector<std::string>& hypre_relax_types();     // 6 choices
const std::vector<std::string>& hypre_smooth_types();    // 5 choices
const std::vector<std::string>& hypre_interp_types();    // 7 choices

/// Simulated wall time of the GMRES+BoomerAMG solve to 1e-8 relative
/// residual on one node of `machine`.
double hypre_time(const hpcsim::MachineModel& machine, int nx, int ny, int nz,
                  const HypreConfig& config, std::uint64_t noise_seed);

/// TuningProblem of Table V: task (nx, ny, nz), the 12 tuning parameters.
space::TuningProblem make_hypre_problem(const hpcsim::MachineModel& machine,
                                        std::uint64_t noise_seed = 4);

}  // namespace gptc::apps
