#include "apps/synthetic.hpp"

#include <cmath>
#include <numbers>

namespace gptc::apps {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double demo_function(double t, double x) {
  double s = 0.0;
  for (int i = 1; i <= 3; ++i)
    s += std::sin(kTwoPi * x * std::pow(t + 2.0, i));
  return 1.0 + std::exp(-std::pow(x + 1.0, t + 1.0)) * std::cos(kTwoPi * x) * s;
}

double branin_function(double a, double b, double c, double r, double s,
                       double t, double x1, double x2) {
  const double u = x2 - b * x1 * x1 + c * x1 - r;
  return a * u * u + s * (1.0 - t) * std::cos(x1) + s;
}

space::TuningProblem make_demo_problem() {
  space::TuningProblem p;
  p.name = "demo";
  p.task_space = space::Space({space::Parameter::real("t", 0.0, 10.0)});
  p.param_space = space::Space({space::Parameter::real("x", 0.0, 1.0)});
  p.output_name = "y";
  p.objective = [](const space::Config& task, const space::Config& params) {
    return demo_function(task[0].as_double(), params[0].as_double());
  };
  return p;
}

space::TuningProblem make_branin_problem() {
  space::TuningProblem p;
  p.name = "branin";
  // Standard constants: a=1, b=5.1/(4 pi^2)~0.1292, c=5/pi~1.5915, r=6,
  // s=10, t=1/(8 pi)~0.0398. Ranges bracket them.
  p.task_space = space::Space({
      space::Parameter::real("a", 0.5, 1.5),
      space::Parameter::real("b", 0.08, 0.2),
      space::Parameter::real("c", 1.0, 2.2),
      space::Parameter::real("r", 4.0, 8.0),
      space::Parameter::real("s", 5.0, 15.0),
      space::Parameter::real("t", 0.02, 0.06),
  });
  p.param_space = space::Space({
      space::Parameter::real("x1", -5.0, 10.0),
      space::Parameter::real("x2", 0.0, 15.0),
  });
  p.output_name = "y";
  p.objective = [](const space::Config& task, const space::Config& params) {
    return branin_function(task[0].as_double(), task[1].as_double(),
                           task[2].as_double(), task[3].as_double(),
                           task[4].as_double(), task[5].as_double(),
                           params[0].as_double(), params[1].as_double());
  };
  return p;
}

space::Config branin_standard_task() {
  const double pi = std::numbers::pi;
  return {space::Value(1.0),
          space::Value(5.1 / (4.0 * pi * pi)),
          space::Value(5.0 / pi),
          space::Value(6.0),
          space::Value(10.0),
          space::Value(1.0 / (8.0 * pi))};
}

}  // namespace gptc::apps
