// The paper's two synthetic tuning problems (Sec. VI-A):
//
//  * the GPTune "demo" function
//        y(t, x) = 1 + e^{-(x+1)^{t+1}} cos(2 pi x)
//                    * sum_{i=1..3} sin(2 pi x (t+2)^i)
//    with one task parameter t in [0, 10) and one tuning parameter
//    x in [0, 1);
//
//  * the Branin function
//        y = a (x2 - b x1^2 + c x1 - r)^2 + s (1 - t) cos(x1) + s
//    with six task parameters (a, b, c, r, s, t) around the standard
//    Branin constants and two tuning parameters x1 in [-5, 10),
//    x2 in [0, 15).
//
// These are cheap, deterministic, and strongly task-correlated — exactly
// what Fig. 3's TLA algorithm comparison needs.
#pragma once

#include "space/space.hpp"

namespace gptc::apps {

/// Direct evaluation of the demo function.
double demo_function(double t, double x);

/// Direct evaluation of the Branin function.
double branin_function(double a, double b, double c, double r, double s,
                       double t, double x1, double x2);

/// TuningProblem wrapper for the demo function.
space::TuningProblem make_demo_problem();

/// TuningProblem wrapper for the Branin task family. Task parameter ranges
/// bracket the standard Branin constants (+/- ~25%), so randomly drawn
/// source/target tasks (the paper's S1–S3 / T1–T2) are correlated variants
/// of the same landscape.
space::TuningProblem make_branin_problem();

/// The standard Branin constants, as a task configuration for
/// make_branin_problem's task space: {a, b, c, r, s, t}.
space::Config branin_standard_task();

}  // namespace gptc::apps
