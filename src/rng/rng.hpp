// Deterministic, splittable random number generation.
//
// Every stochastic component in the tuner (initial sampling, acquisition
// search restarts, ensemble selection, simulated machine noise) draws from a
// named sub-stream of a counter-based generator, so experiments are exactly
// reproducible from a single seed and independent of evaluation order.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace gptc::rng {

/// Mixes a 64-bit value through the splitmix64 finalizer (a strong,
/// well-tested bijective mixer). Used as the basis of stream derivation.
std::uint64_t splitmix64(std::uint64_t x);

/// Hashes a string to a 64-bit stream tag (FNV-1a followed by splitmix64).
std::uint64_t hash_tag(std::string_view tag);

/// Counter-based pseudo-random generator.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can be handed to
/// <random> distributions, but also provides the handful of distributions
/// the tuner needs directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return splitmix64(state_);
  }

  /// Derives an independent child stream from a string tag. Children with
  /// different tags (or derived from different parents) are statistically
  /// independent; deriving twice with the same tag gives the same stream.
  Rng split(std::string_view tag) const {
    return Rng(splitmix64(state_ ^ hash_tag(tag)));
  }

  /// Derives an independent child stream from an integer tag.
  Rng split(std::uint64_t tag) const {
    return Rng(splitmix64(state_ ^ splitmix64(tag + 0x632be59bd9b4e019ULL)));
  }

  /// Pre-splits `n` child streams, one per index: stream i == split(i).
  ///
  /// This is the stream contract parallel loops rely on: each parallel unit
  /// draws only from its own index-keyed stream, so the numbers it sees are
  /// a function of (parent state, index) alone — independent of execution
  /// order and of thread count. Splitting is const: deriving streams never
  /// perturbs the parent.
  std::vector<Rng> split_streams(std::size_t n) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (no cached spare: keeps the generator
  /// stateless across calls so split-streams stay order-independent).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal multiplicative factor with median 1 and the given sigma of
  /// the underlying normal. Used for simulated machine noise.
  double lognoise(double sigma);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles indices [0, n) and returns them.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace gptc::rng
