#include "rng/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace gptc::rng {

std::uint64_t splitmix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return splitmix64(h);
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = 0;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  // Box–Muller; u1 in (0,1] to keep the log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognoise(double sigma) { return std::exp(sigma * normal()); }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w))
      throw std::invalid_argument("categorical: weights must be finite, >= 0");
    total += w;
  }
  if (weights.empty() || total <= 0.0)
    throw std::invalid_argument("categorical: no positive weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

std::vector<Rng> Rng::split_streams(std::size_t n) const {
  std::vector<Rng> streams;
  streams.reserve(n);
  for (std::size_t i = 0; i < n; ++i) streams.push_back(split(i));
  return streams;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace gptc::rng
