// Tuning-parameter spaces: typed parameters (Real / Integer / Categorical),
// encoding to the unit cube, and the task/parameter/output space triple that
// defines a GPTuneCrowd tuning problem (paper Sec. IV-A).
//
// Conventions follow the paper's tables: Integer and Real ranges are
// half-open [lower, upper); Categorical parameters carry an explicit list of
// choices. Values are represented as JSON scalars so configurations flow
// into and out of the shared database without conversion layers.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "la/matrix.hpp"
#include "rng/rng.hpp"

namespace gptc::space {

/// One value of one parameter (int / double / string as a JSON scalar).
using Value = json::Json;

/// A full configuration: values aligned with the parameter order of a Space.
using Config = std::vector<Value>;

enum class ParamKind { Real, Integer, Categorical };

/// A single tunable (or task) parameter.
class Parameter {
 public:
  /// Real parameter over [lower, upper).
  static Parameter real(std::string name, double lower, double upper);
  /// Integer parameter over [lower, upper) — upper is exclusive, matching
  /// the paper's tables (e.g. mb in [1,16)).
  static Parameter integer(std::string name, std::int64_t lower,
                           std::int64_t upper);
  /// Categorical parameter with the given choices.
  static Parameter categorical(std::string name,
                               std::vector<std::string> categories);

  const std::string& name() const { return name_; }
  ParamKind kind() const { return kind_; }
  double lower() const { return lower_; }
  double upper() const { return upper_; }
  const std::vector<std::string>& categories() const { return categories_; }
  std::size_t num_categories() const { return categories_.size(); }

  /// Maps a typed value into [0, 1). Integers and categoricals map to bin
  /// centers so that rounding on decode is unbiased. Out-of-range values
  /// clamp.
  double encode(const Value& v) const;

  /// Inverse of encode: maps u in [0, 1] back to a typed value.
  Value decode(double u) const;

  /// True if `v` has the right type and lies inside the range/choices.
  bool contains(const Value& v) const;

  /// Uniformly random valid value.
  Value sample(rng::Rng& rng) const;

  /// Number of distinct values (Integer/Categorical) or 0 for Real.
  std::size_t cardinality() const;

  /// Serialization to/from the meta-description JSON schema of Sec. IV-A:
  /// {"name": ..., "type": "integer", "lower_bound": ..., "upper_bound": ...}
  /// or {"name": ..., "type": "categorical", "categories": [...]}.
  json::Json to_json() const;
  static Parameter from_json(const json::Json& j);

 private:
  Parameter() = default;

  std::string name_;
  ParamKind kind_ = ParamKind::Real;
  double lower_ = 0.0;
  double upper_ = 1.0;  // exclusive
  std::vector<std::string> categories_;
};

/// An ordered set of parameters.
class Space {
 public:
  Space() = default;
  explicit Space(std::vector<Parameter> params);

  std::size_t dim() const { return params_.size(); }
  const Parameter& operator[](std::size_t i) const { return params_[i]; }
  const std::vector<Parameter>& params() const { return params_; }

  /// Index of the parameter with the given name, or nullopt.
  std::optional<std::size_t> index_of(const std::string& name) const;

  /// Encodes a full configuration into the unit cube.
  la::Vector encode(const Config& c) const;

  /// Decodes a unit-cube point into a configuration (clamping to [0,1]).
  Config decode(const la::Vector& u) const;

  /// Validates types and ranges of a configuration.
  bool contains(const Config& c) const;

  /// Uniform random configuration.
  Config sample(rng::Rng& rng) const;

  /// Configuration <-> named JSON object ({"mb": 4, "nb": 8, ...}).
  json::Json config_to_json(const Config& c) const;
  Config config_from_json(const json::Json& obj) const;

  /// Space <-> meta-description JSON array.
  json::Json to_json() const;
  static Space from_json(const json::Json& arr);

 private:
  std::vector<Parameter> params_;
};

/// A black-box objective: given (task configuration, tuning configuration),
/// returns the measured output (e.g. runtime in seconds). NaN signals a
/// failed evaluation (OOM, crash) — the tuner records it but excludes it
/// from surrogate fitting, as in the paper's NIMROD experiments.
using Objective = std::function<double(const Config& task, const Config& params)>;

/// The full tuning-problem definition of the paper's meta description:
/// input (task) space, tuning-parameter space, output space and objective.
struct TuningProblem {
  std::string name;
  Space task_space;    // "input_space"
  Space param_space;   // "parameter_space"
  std::string output_name = "runtime";  // single-objective, minimized
  Objective objective;

  /// The problem_space block of a meta description (Sec. IV-A).
  json::Json problem_space_json() const;
};

}  // namespace gptc::space
