#include "space/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gptc::space {

Parameter Parameter::real(std::string name, double lower, double upper) {
  if (!(lower < upper))
    throw std::invalid_argument("Parameter::real: lower must be < upper");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Real;
  p.lower_ = lower;
  p.upper_ = upper;
  return p;
}

Parameter Parameter::integer(std::string name, std::int64_t lower,
                             std::int64_t upper) {
  if (!(lower < upper))
    throw std::invalid_argument("Parameter::integer: lower must be < upper");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Integer;
  p.lower_ = static_cast<double>(lower);
  p.upper_ = static_cast<double>(upper);
  return p;
}

Parameter Parameter::categorical(std::string name,
                                 std::vector<std::string> categories) {
  if (categories.empty())
    throw std::invalid_argument("Parameter::categorical: no categories");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::Categorical;
  p.categories_ = std::move(categories);
  p.lower_ = 0.0;
  p.upper_ = static_cast<double>(p.categories_.size());
  return p;
}

std::size_t Parameter::cardinality() const {
  switch (kind_) {
    case ParamKind::Real: return 0;
    case ParamKind::Integer:
      return static_cast<std::size_t>(upper_ - lower_);
    case ParamKind::Categorical: return categories_.size();
  }
  return 0;
}

double Parameter::encode(const Value& v) const {
  switch (kind_) {
    case ParamKind::Real: {
      const double x = std::clamp(v.as_double(), lower_,
                                  std::nexttoward(upper_, lower_));
      return (x - lower_) / (upper_ - lower_);
    }
    case ParamKind::Integer: {
      const auto n = static_cast<double>(cardinality());
      double i = static_cast<double>(v.as_int()) - lower_;
      i = std::clamp(i, 0.0, n - 1.0);
      return (i + 0.5) / n;  // bin center
    }
    case ParamKind::Categorical: {
      const auto& s = v.as_string();
      const auto it = std::find(categories_.begin(), categories_.end(), s);
      if (it == categories_.end())
        throw std::invalid_argument("unknown category '" + s + "' for " +
                                    name_);
      const auto idx =
          static_cast<double>(std::distance(categories_.begin(), it));
      return (idx + 0.5) / static_cast<double>(categories_.size());
    }
  }
  return 0.0;
}

Value Parameter::decode(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (kind_) {
    case ParamKind::Real: {
      const double x = lower_ + u * (upper_ - lower_);
      return Value(std::min(x, std::nexttoward(upper_, lower_)));
    }
    case ParamKind::Integer: {
      const auto n = static_cast<double>(cardinality());
      auto i = static_cast<std::int64_t>(std::floor(u * n));
      i = std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(n) - 1);
      return Value(static_cast<std::int64_t>(lower_) + i);
    }
    case ParamKind::Categorical: {
      const auto n = categories_.size();
      auto i = static_cast<std::size_t>(
          std::floor(u * static_cast<double>(n)));
      i = std::min(i, n - 1);
      return Value(categories_[i]);
    }
  }
  return Value();
}

bool Parameter::contains(const Value& v) const {
  switch (kind_) {
    case ParamKind::Real:
      return v.is_number() && v.as_double() >= lower_ && v.as_double() < upper_;
    case ParamKind::Integer: {
      if (!v.is_number()) return false;
      const double d = v.as_double();
      if (std::nearbyint(d) != d) return false;
      return d >= lower_ && d < upper_;
    }
    case ParamKind::Categorical:
      return v.is_string() &&
             std::find(categories_.begin(), categories_.end(),
                       v.as_string()) != categories_.end();
  }
  return false;
}

Value Parameter::sample(rng::Rng& rng) const { return decode(rng.uniform()); }

json::Json Parameter::to_json() const {
  json::Json j = json::Json::object();
  j["name"] = name_;
  switch (kind_) {
    case ParamKind::Real:
      j["type"] = "real";
      j["lower_bound"] = lower_;
      j["upper_bound"] = upper_;
      break;
    case ParamKind::Integer:
      j["type"] = "integer";
      j["lower_bound"] = static_cast<std::int64_t>(lower_);
      j["upper_bound"] = static_cast<std::int64_t>(upper_);
      break;
    case ParamKind::Categorical: {
      j["type"] = "categorical";
      json::Json cats = json::Json::array();
      for (const auto& c : categories_) cats.push_back(c);
      j["categories"] = std::move(cats);
      break;
    }
  }
  return j;
}

Parameter Parameter::from_json(const json::Json& j) {
  const auto& name = j.at("name").as_string();
  const auto& type = j.at("type").as_string();
  if (type == "real")
    return real(name, j.at("lower_bound").as_double(),
                j.at("upper_bound").as_double());
  if (type == "integer" || type == "int")
    return integer(name, j.at("lower_bound").as_int(),
                   j.at("upper_bound").as_int());
  if (type == "categorical") {
    std::vector<std::string> cats;
    for (const auto& c : j.at("categories").as_array())
      cats.push_back(c.as_string());
    return categorical(name, std::move(cats));
  }
  throw std::invalid_argument("Parameter::from_json: unknown type " + type);
}

Space::Space(std::vector<Parameter> params) : params_(std::move(params)) {
  for (std::size_t i = 0; i < params_.size(); ++i)
    for (std::size_t k = i + 1; k < params_.size(); ++k)
      if (params_[i].name() == params_[k].name())
        throw std::invalid_argument("Space: duplicate parameter name " +
                                    params_[i].name());
}

std::optional<std::size_t> Space::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i].name() == name) return i;
  return std::nullopt;
}

la::Vector Space::encode(const Config& c) const {
  if (c.size() != dim())
    throw std::invalid_argument("Space::encode: config size mismatch");
  la::Vector u(dim());
  for (std::size_t i = 0; i < dim(); ++i) u[i] = params_[i].encode(c[i]);
  return u;
}

Config Space::decode(const la::Vector& u) const {
  if (u.size() != dim())
    throw std::invalid_argument("Space::decode: point size mismatch");
  Config c(dim());
  for (std::size_t i = 0; i < dim(); ++i) c[i] = params_[i].decode(u[i]);
  return c;
}

bool Space::contains(const Config& c) const {
  if (c.size() != dim()) return false;
  for (std::size_t i = 0; i < dim(); ++i)
    if (!params_[i].contains(c[i])) return false;
  return true;
}

Config Space::sample(rng::Rng& rng) const {
  Config c(dim());
  for (std::size_t i = 0; i < dim(); ++i) c[i] = params_[i].sample(rng);
  return c;
}

json::Json Space::config_to_json(const Config& c) const {
  if (c.size() != dim())
    throw std::invalid_argument("config_to_json: size mismatch");
  json::Json obj = json::Json::object();
  for (std::size_t i = 0; i < dim(); ++i) obj[params_[i].name()] = c[i];
  return obj;
}

Config Space::config_from_json(const json::Json& obj) const {
  Config c(dim());
  for (std::size_t i = 0; i < dim(); ++i)
    c[i] = obj.at(params_[i].name());
  return c;
}

json::Json Space::to_json() const {
  json::Json arr = json::Json::array();
  for (const auto& p : params_) arr.push_back(p.to_json());
  return arr;
}

Space Space::from_json(const json::Json& arr) {
  std::vector<Parameter> params;
  for (const auto& p : arr.as_array()) params.push_back(Parameter::from_json(p));
  return Space(std::move(params));
}

json::Json TuningProblem::problem_space_json() const {
  json::Json j = json::Json::object();
  j["input_space"] = task_space.to_json();
  j["parameter_space"] = param_space.to_json();
  json::Json out = json::Json::array();
  json::Json y = json::Json::object();
  y["name"] = output_name;
  y["type"] = "real";
  out.push_back(std::move(y));
  j["output_space"] = std::move(out);
  return j;
}

}  // namespace gptc::space
