// JSON document store — the single-node equivalent of the paper's MongoDB
// backend (Fig. 2).
//
// Collections hold JSON object documents with an auto-assigned integer
// "_id". Queries are Mongo-style match expressions, which is what the
// crowd layer translates the paper's problem_space / configuration_space
// meta descriptions into:
//
//   {"task_parameters.m": {"$gte": 1000, "$lt": 20000},
//    "machine_configuration.machine_name": {"$in": ["Cori", "cori"]}}
//
// Supported operators: $eq, $ne, $gt, $gte, $lt, $lte, $in, $nin, $exists,
// plus top-level/nested $and, $or, $not. Field paths use dot notation and
// may step through arrays with numeric segments ("tuning_parameters.grid.0").
//
// A collection is internally split into N shards (N = 1 unless the store
// was opened with more): documents hash to a shard by id, and each shard
// owns its docs, its secondary-index set, its shared_mutex and — in
// durable mode — its own WAL and snapshot, so writers to different shards
// never contend. The split is invisible at this API: queries fan out under
// every shard's reader lock and merge by id, which IS insertion order
// (ids are assigned from one monotone counter), so results are
// byte-identical to the unsharded store. Mutations that span shards (a
// batch insert whose documents hash apart, update/remove at N > 1) are
// logged as one logical commit record and applied under every affected
// shard's writer lock — readers and crash recovery observe none or all of
// such a mutation.
//
// Two persistence modes:
//  - export_json()/load(): one pretty-printed JSON file per collection —
//    diffable and inspectable, but the rewrite is not crash-atomic. Kept as
//    the explicit export format.
//  - open_durable(): the storage engine in src/db/engine — per-shard
//    write-ahead logs with CRC32/SipHash-framed records and group commit,
//    atomic snapshots + compaction, parallel crash recovery that tolerates
//    a torn final record per log, and cross-collection atomic batches
//    (insert_atomic). The Collection/DocumentStore API is identical in
//    both modes.
//
// Collections also support ordered secondary indexes on dot-paths
// (create_index): $eq/$in/$gt/$gte/$lt/$lte predicates on an indexed path
// are routed through the index (results stay byte-identical to a scan —
// the index only narrows candidates), everything else falls back to the
// full scan; count()/exists() additionally answer straight from the index
// (no document materialization) when the index serves the query exactly.
//
// Queries execute as compiled programs (src/db/query): find/count/exists/
// update/remove lower the filter once into a flat program over pre-split
// paths, then a selectivity-aware planner (query::plan_shard) ranks every
// usable index by estimated candidate count, materializes the narrowest
// and intersects further id lists while profitable. explain() reports the
// chosen plan.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/engine/engine.hpp"
#include "db/engine/index.hpp"
#include "db/query/program.hpp"
#include "json/json.hpp"

namespace gptc::db {

using json::Json;

/// Evaluates a Mongo-style match expression against a document. This is the
/// reference interpreter: the collection read/write paths run compiled
/// programs (query::CompiledQuery) instead, and the differential test in
/// tests/test_query_compile.cpp holds the two to identical verdicts.
/// Exposed for reuse (the crowd layer post-filters nested arrays with it).
bool matches(const Json& document, const Json& query);

/// Looks up a dot-separated path ("a.b.c") in a document. Purely numeric
/// segments index into arrays ("grid.0" is grid[0]). Returns nullptr if any
/// step is missing, out of bounds, or applied to a non-container.
/// Delegates to query::lookup — one allocation-free walk shared with the
/// compiled path and the index maintenance hot loops.
const Json* lookup_path(const Json& document, const std::string& path);

class Collection {
 public:
  explicit Collection(std::string name, std::size_t shards = 1);

  Collection(Collection&&) noexcept;
  Collection& operator=(Collection&&) noexcept;

  const std::string& name() const { return name_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Inserts a document (must be a JSON object); assigns and returns its
  /// "_id". In durable mode the op is WAL-logged before it is applied.
  std::int64_t insert(Json document);

  /// Result of an atomic batch insert: the assigned ids plus the
  /// durability ticket callers hand to StorageEngine::wait_durable for an
  /// ack (ticket.seq 0 when the store is not durable). commit_seq mirrors
  /// ticket.seq for callers that only care whether there is anything to
  /// wait for.
  struct BatchInsert {
    std::vector<std::int64_t> ids;
    engine::CommitTicket ticket;
    std::uint64_t commit_seq = 0;
  };

  /// Inserts every document atomically: WAL-logged as ONE record (a shard
  /// batch frame, or a logical commit record when the batch spans shards)
  /// before any is applied, and applied under every affected shard's
  /// writer lock. Readers can never observe a half-applied batch, and
  /// crash recovery replays it entirely or not at all. Throws before any
  /// mutation if a document is not an object.
  BatchInsert insert_batch(std::vector<Json> documents);

  /// All documents matching the query, in insertion order.
  std::vector<Json> find(const Json& query) const;

  /// Like find(), but additionally applies `pred` to each query match
  /// while still holding the shared lock(s), copying only documents that
  /// pass both. Callers filtering an indexed partition down to a few
  /// hits avoid materialising the whole partition (find() copies every
  /// candidate's JSON tree; on hot read paths that copy dominates the
  /// query cost). `pred` must not call back into the collection.
  std::vector<Json> find_filtered(
      const Json& query, const std::function<bool(const Json&)>& pred) const;

  /// First match or null Json.
  Json find_one(const Json& query) const;

  /// Matching-document count. Served index-only — without touching a
  /// single document — when the query is one indexed field whose condition
  /// the index answers exactly (OrderedIndex::exact); otherwise it falls
  /// back to the candidate/scan path with the full predicate.
  std::size_t count(const Json& query) const;

  /// Whether any document matches. Index-only when count() would be, and
  /// an early-exit scan otherwise — either way it stops at the first hit.
  bool exists(const Json& query) const;

  /// Removes matching documents; returns how many were removed. The query
  /// is compiled (and thus validated) BEFORE anything is WAL-logged, so a
  /// malformed query throws without leaving a poisoned op in the log.
  std::size_t remove(const Json& query);

  /// Applies `update` (an object whose fields overwrite the document's) to
  /// all matches; returns how many documents changed. Like remove(), the
  /// query compiles before the op is WAL-logged.
  std::size_t update(const Json& query, const Json& update);

  /// Query-plan introspection: compiles the query and reports, per shard,
  /// whether an index scan was chosen, which indexes were considered with
  /// their selectivity estimates, which were applied, and the final
  /// candidate-set size. Read-only (takes the shard reader locks); shape:
  ///   {"query": ..., "shards": [{"shard": 0, "index_scan": true,
  ///     "candidates": 3, "shard_size": 120,
  ///     "indexes": [{"path": ..., "estimate": 8, "applied": true}, ...]},
  ///    ...]}
  Json explain(const Json& query) const;

  /// Declares (or rebuilds) an ordered secondary index on a dot-path
  /// (maintained per shard). Idempotent; existing documents are indexed
  /// immediately. Index definitions are in-memory only — reopening a store
  /// re-declares them.
  void create_index(const std::string& path);
  bool has_index(const std::string& path) const;
  std::vector<std::string> index_paths() const;

  /// Copies every document, in insertion order. (Pre-sharding this
  /// returned a reference into the single doc vector; with shards the
  /// merged view has to be materialized.)
  std::vector<Json> all() const;

  /// Visits every document in insertion order under the shard reader
  /// locks, without copying; `fn` returns false to stop early and must not
  /// call back into the collection.
  void for_each(const std::function<bool(const Json&)>& fn) const;

  /// Serialization for persistence: {"name":..., "next_id":..., "docs":[...]}
  /// with docs merged across shards in insertion order. Takes the shard
  /// reader locks itself unless the caller already holds them exclusively.
  Json to_json() const;
  static Collection from_json(const Json& j);

 private:
  friend class DocumentStore;
  friend class engine::StorageEngine;

  /// One hash partition of the collection. Documents route by
  /// `_id % shard_count`, so sequential ids round-robin across shards and
  /// concurrent writers spread evenly; within a shard docs stay in
  /// insertion order (= ascending id, since ids are monotone).
  struct Shard {
    std::vector<Json> docs;                               // guarded_by: mu
    std::map<std::int64_t, std::size_t> id_pos;           // guarded_by: mu
    std::map<std::string, engine::OrderedIndex> indexes;  // guarded_by: mu
    mutable std::shared_mutex mu;
  };

  // --- engine plumbing (all called with or before any concurrent use) ----
  void attach_engine(engine::StorageEngine* e) { engine_ = e; }
  /// Re-buckets the collection into `shards` empty shards (must be called
  /// before concurrent use; existing docs are redistributed).
  // guard-ok: runs single-threaded, before any concurrent use
  void configure_shards(std::size_t shards);
  /// Replaces state from a full snapshot / legacy export (to_json shape),
  /// distributing docs across the current shards.
  // guard-ok: single-threaded recovery/import path
  void restore(const Json& j);
  /// Replaces ONE shard's state from its snapshot (to_json shape whose
  /// docs are that shard's subset); folds next_id forward.
  // guard-ok: single-threaded recovery path
  void restore_shard(std::size_t shard, const Json& j);
  /// Applies one WAL op payload to one shard during replay (no logging).
  // guard-ok: single-threaded recovery replay
  void replay_shard_op(std::size_t shard, const Json& op);
  /// to_json() restricted to one shard (snapshot payload). Caller holds
  /// the shard lock or has exclusive use.
  // requires_lock: Shard::mu shared
  Json shard_to_json(std::size_t shard) const;

  // --- internals ---------------------------------------------------------
  std::size_t shard_of(std::int64_t id) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(id)) %
           shards_.size();
  }
  void insert_into_shard(Shard& s, Json document);  // requires_lock: Shard::mu
  // requires_lock: Shard::mu
  std::size_t update_shard_locked(Shard& s, const query::CompiledQuery& query,
                                  const Json& update);
  // requires_lock: Shard::mu
  std::size_t remove_shard_locked(Shard& s, const query::CompiledQuery& query);
  static void index_doc(Shard& s, const Json& doc);    // requires_lock: Shard::mu
  static void unindex_doc(Shard& s, const Json& doc);  // requires_lock: Shard::mu
  // guard-ok: single-threaded recovery/migration rebuild
  void rebuild_shard_derived(Shard& s);
  // requires_lock: Shard::mu shared
  static const Json* doc_by_id(const Shard& s, std::int64_t id);
  /// The single {path: condition} entry an index answers exactly for
  /// count()/exists(), or nullptr.
  // requires_lock: Shard::mu shared
  const engine::OrderedIndex* exact_index(const Shard& s,
                                          const Json& query,
                                          const Json** condition) const;
  /// Merges per-shard result vectors (each in ascending-id order) into
  /// global insertion order.
  static std::vector<Json> merge_by_id(std::vector<std::vector<Json>> parts);
  /// Routes an already-built per-shard op set through the engine's logical
  /// commit record (durable) and applies it; `apply` runs under all
  /// affected shard writer locks.
  engine::CommitTicket commit_multi(
      const std::map<std::size_t, Json>& ops_by_shard,
      const std::function<void()>& apply);

  std::string name_;  // guard-ok: immutable after construction
  std::atomic<std::int64_t> next_id_{1};
  // guard-ok: vector shape fixed by single-threaded configure_shards;
  // concurrent phases only dereference the stable unique_ptrs
  std::vector<std::unique_ptr<Shard>> shards_;
  // guard-ok: declared during single-threaded setup, read-only afterwards
  std::vector<std::string> index_paths_;  // declared defs, mirrored per shard
  // guard-ok: attached once before any concurrent use
  engine::StorageEngine* engine_ = nullptr;  // owned by the DocumentStore
};

class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Gets (creating on demand) a collection.
  Collection& collection(const std::string& name);
  const Collection* find_collection(const std::string& name) const;
  std::vector<std::string> collection_names() const;

  /// Result of insert_atomic: assigned ids per collection plus the
  /// durability ticket of the commit record.
  struct AtomicInsert {
    std::map<std::string, std::vector<std::int64_t>> ids;
    engine::CommitTicket ticket;
  };

  /// Inserts documents into SEVERAL collections as one logical commit —
  /// the paper's crowd upload writes problem, machine, and run records
  /// that must land whole-or-nothing. In durable mode every member is
  /// covered by ONE engine commit-WAL record, so crash recovery yields
  /// all of them or none; in-memory visibility is all-or-nothing per
  /// collection (each collection's members apply under all of its shard
  /// writer locks). Throws before any mutation on a non-object document.
  AtomicInsert insert_atomic(std::map<std::string, std::vector<Json>> docs);

  /// Writes every collection as <dir>/<name>.json (creating dir) — the
  /// diffable, inspectable export. Not crash-atomic; durable stores persist
  /// through their WAL/snapshots and use this only for exports.
  void export_json(const std::filesystem::path& dir) const;
  /// Backwards-compatible alias for export_json().
  void save(const std::filesystem::path& dir) const { export_json(dir); }

  /// Loads every *.json collection file from the directory (legacy /
  /// in-memory mode; no durability attached).
  static DocumentStore load(const std::filesystem::path& dir);

  /// Opens a directory with the storage engine: replays snapshots + shard
  /// WALs (bootstrapping from *.json exports if no engine files exist yet)
  /// and WAL-logs every subsequent mutation. See src/db/engine/engine.hpp.
  static DocumentStore open_durable(const std::filesystem::path& dir,
                                    engine::EngineOptions options = {});

  bool durable() const { return engine_ != nullptr; }
  engine::StorageEngine* storage_engine() { return engine_.get(); }

  /// Durable mode: fsync pending group-commit batches / force snapshots
  /// and WAL truncation for every shard of every collection. No-ops when
  /// not durable.
  void sync();
  void checkpoint_all();

 private:
  friend class engine::StorageEngine;

  // guard-ok: map shape fixed during single-threaded setup (open/load or
  // pre-traffic collection() calls); concurrent phases only look up entries
  std::map<std::string, Collection> collections_;
  // guard-ok: set once by open_durable before any concurrent use
  std::unique_ptr<engine::StorageEngine> engine_;
};

}  // namespace gptc::db
