// JSON document store — the single-node equivalent of the paper's MongoDB
// backend (Fig. 2).
//
// Collections hold JSON object documents with an auto-assigned integer
// "_id". Queries are Mongo-style match expressions, which is what the
// crowd layer translates the paper's problem_space / configuration_space
// meta descriptions into:
//
//   {"task_parameters.m": {"$gte": 1000, "$lt": 20000},
//    "machine_configuration.machine_name": {"$in": ["Cori", "cori"]}}
//
// Supported operators: $eq, $ne, $gt, $gte, $lt, $lte, $in, $nin, $exists,
// plus top-level/nested $and, $or, $not. Field paths use dot notation and
// may step through arrays with numeric segments ("tuning_parameters.grid.0").
//
// Two persistence modes:
//  - export_json()/load(): one pretty-printed JSON file per collection —
//    diffable and inspectable, but the rewrite is not crash-atomic. Kept as
//    the explicit export format.
//  - open_durable(): the storage engine in src/db/engine — per-collection
//    write-ahead log with CRC32/SipHash-framed records and group commit,
//    atomic snapshot + compaction, and crash recovery that tolerates a torn
//    final record. The Collection/DocumentStore API is identical in both
//    modes.
//
// Collections also support ordered secondary indexes on dot-paths
// (create_index): $eq/$in/$gt/$gte/$lt/$lte predicates on an indexed path
// are routed through the index (results stay byte-identical to a scan —
// the index only narrows candidates), everything else falls back to the
// full scan. Reads take a shared lock and mutations an exclusive lock, so
// many readers / one writer per collection is safe.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/engine/engine.hpp"
#include "db/engine/index.hpp"
#include "json/json.hpp"

namespace gptc::db {

using json::Json;

/// Evaluates a Mongo-style match expression against a document. Exposed for
/// reuse (the crowd layer post-filters nested arrays with it).
bool matches(const Json& document, const Json& query);

/// Looks up a dot-separated path ("a.b.c") in a document. Purely numeric
/// segments index into arrays ("grid.0" is grid[0]). Returns nullptr if any
/// step is missing, out of bounds, or applied to a non-container.
const Json* lookup_path(const Json& document, const std::string& path);

class Collection {
 public:
  explicit Collection(std::string name)
      : name_(std::move(name)), mu_(std::make_unique<std::shared_mutex>()) {}

  Collection(Collection&&) = default;
  Collection& operator=(Collection&&) = default;

  const std::string& name() const { return name_; }
  std::size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Inserts a document (must be a JSON object); assigns and returns its
  /// "_id". In durable mode the op is WAL-logged before it is applied.
  std::int64_t insert(Json document);

  /// Result of an atomic batch insert: the assigned ids plus the WAL
  /// sequence of the batch record (0 when the store is not durable) — the
  /// token a caller hands to StorageEngine::wait_durable for a durability
  /// ack.
  struct BatchInsert {
    std::vector<std::int64_t> ids;
    std::uint64_t commit_seq = 0;
  };

  /// Inserts every document under ONE writer lock, WAL-logged as ONE
  /// record before any is applied. Readers — who take the shared lock —
  /// can never observe a half-applied batch, and because the whole batch
  /// is a single WAL frame, crash recovery replays it entirely or not at
  /// all (never a partial batch). Throws before any mutation if a
  /// document is not an object.
  BatchInsert insert_batch(std::vector<Json> documents);

  /// All documents matching the query, in insertion order.
  std::vector<Json> find(const Json& query) const;

  /// Like find(), but additionally applies `pred` to each query match
  /// while still holding the shared lock, copying only documents that
  /// pass both. Callers filtering an indexed partition down to a few
  /// hits avoid materialising the whole partition (find() copies every
  /// candidate's JSON tree; on hot read paths that copy dominates the
  /// query cost). `pred` must not call back into the collection.
  std::vector<Json> find_filtered(
      const Json& query, const std::function<bool(const Json&)>& pred) const;

  /// First match or null Json.
  Json find_one(const Json& query) const;

  std::size_t count(const Json& query) const;

  /// Removes matching documents; returns how many were removed.
  std::size_t remove(const Json& query);

  /// Applies `update` (an object whose fields overwrite the document's) to
  /// all matches; returns how many documents changed.
  std::size_t update(const Json& query, const Json& update);

  /// Declares (or rebuilds) an ordered secondary index on a dot-path.
  /// Idempotent; existing documents are indexed immediately. Index
  /// definitions are in-memory only — reopening a store re-declares them.
  void create_index(const std::string& path);
  bool has_index(const std::string& path) const;
  std::vector<std::string> index_paths() const;

  /// Raw document access, in insertion order. NOT thread-safe against
  /// concurrent writers: unlike find/count, iteration of the returned
  /// reference happens outside the collection lock.
  const std::vector<Json>& all() const { return docs_; }

  /// Serialization for persistence: {"name":..., "next_id":..., "docs":[...]}.
  /// Not internally locked (snapshots call it under the writer lock).
  Json to_json() const;
  static Collection from_json(const Json& j);

 private:
  friend class DocumentStore;
  friend class engine::StorageEngine;

  // --- engine plumbing (all called with or before any concurrent use) ----
  void attach_engine(engine::StorageEngine* e) { engine_ = e; }
  /// Replaces state from a snapshot / legacy export (to_json shape).
  void restore(const Json& j);
  /// Applies one WAL op payload during replay (logging suppressed by the
  /// engine's replay flag).
  void apply_op(const Json& op);
  /// Insert preserving the already-assigned "_id" (WAL replay).
  void replay_insert(Json document);

  // --- internals (callers hold the appropriate lock) ---------------------
  std::size_t update_locked(const Json& query, const Json& update);
  std::size_t remove_locked(const Json& query);
  void index_doc(const Json& doc);
  void unindex_doc(const Json& doc);
  void rebuild_derived();  // id lookup + all indexes, from docs_
  const Json* doc_by_id(std::int64_t id) const;
  /// Index-served candidate ids (sorted = insertion order) for a query, or
  /// nullopt when no declared index can narrow it.
  std::optional<std::vector<std::int64_t>> plan(const Json& query) const;

  std::string name_;
  std::int64_t next_id_ = 1;
  std::vector<Json> docs_;
  std::map<std::int64_t, std::size_t> id_pos_;
  std::map<std::string, engine::OrderedIndex> indexes_;
  engine::StorageEngine* engine_ = nullptr;  // owned by the DocumentStore
  mutable std::unique_ptr<std::shared_mutex> mu_;
};

class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Gets (creating on demand) a collection.
  Collection& collection(const std::string& name);
  const Collection* find_collection(const std::string& name) const;
  std::vector<std::string> collection_names() const;

  /// Writes every collection as <dir>/<name>.json (creating dir) — the
  /// diffable, inspectable export. Not crash-atomic; durable stores persist
  /// through their WAL/snapshots and use this only for exports.
  void export_json(const std::filesystem::path& dir) const;
  /// Backwards-compatible alias for export_json().
  void save(const std::filesystem::path& dir) const { export_json(dir); }

  /// Loads every *.json collection file from the directory (legacy /
  /// in-memory mode; no durability attached).
  static DocumentStore load(const std::filesystem::path& dir);

  /// Opens a directory with the storage engine: replays snapshots + WALs
  /// (bootstrapping from *.json exports if no engine files exist yet) and
  /// WAL-logs every subsequent mutation. See src/db/engine/engine.hpp.
  static DocumentStore open_durable(const std::filesystem::path& dir,
                                    engine::EngineOptions options = {});

  bool durable() const { return engine_ != nullptr; }
  engine::StorageEngine* storage_engine() { return engine_.get(); }

  /// Durable mode: fsync pending group-commit batches / force snapshots and
  /// WAL truncation for every collection. No-ops when not durable.
  void sync();
  void checkpoint_all();

 private:
  std::map<std::string, Collection> collections_;
  std::unique_ptr<engine::StorageEngine> engine_;
};

}  // namespace gptc::db
