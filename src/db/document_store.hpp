// JSON document store — the single-node equivalent of the paper's MongoDB
// backend (Fig. 2).
//
// Collections hold JSON object documents with an auto-assigned integer
// "_id". Queries are Mongo-style match expressions, which is what the
// crowd layer translates the paper's problem_space / configuration_space
// meta descriptions into:
//
//   {"task_parameters.m": {"$gte": 1000, "$lt": 20000},
//    "machine_configuration.machine_name": {"$in": ["Cori", "cori"]}}
//
// Supported operators: $eq, $ne, $gt, $gte, $lt, $lte, $in, $nin, $exists,
// plus top-level/nested $and, $or, $not. Field paths use dot notation. A
// store can persist itself to a directory (one pretty-printed JSON file per
// collection), which keeps the shared repository diffable and inspectable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace gptc::db {

using json::Json;

/// Evaluates a Mongo-style match expression against a document. Exposed for
/// reuse (the crowd layer post-filters nested arrays with it).
bool matches(const Json& document, const Json& query);

/// Looks up a dot-separated path ("a.b.c") in a document. Returns nullptr
/// if any step is missing or not an object.
const Json* lookup_path(const Json& document, const std::string& path);

class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Inserts a document (must be a JSON object); assigns and returns its
  /// "_id".
  std::int64_t insert(Json document);

  /// All documents matching the query, in insertion order.
  std::vector<Json> find(const Json& query) const;

  /// First match or null Json.
  Json find_one(const Json& query) const;

  std::size_t count(const Json& query) const;

  /// Removes matching documents; returns how many were removed.
  std::size_t remove(const Json& query);

  /// Applies `update` (an object whose fields overwrite the document's) to
  /// all matches; returns how many documents changed.
  std::size_t update(const Json& query, const Json& update);

  const std::vector<Json>& all() const { return docs_; }

  /// Serialization for persistence: {"name":..., "next_id":..., "docs":[...]}.
  Json to_json() const;
  static Collection from_json(const Json& j);

 private:
  std::string name_;
  std::int64_t next_id_ = 1;
  std::vector<Json> docs_;
};

class DocumentStore {
 public:
  /// Gets (creating on demand) a collection.
  Collection& collection(const std::string& name);
  const Collection* find_collection(const std::string& name) const;
  std::vector<std::string> collection_names() const;

  /// Writes every collection as <dir>/<name>.json (creating dir).
  void save(const std::filesystem::path& dir) const;

  /// Loads every *.json collection file from the directory.
  static DocumentStore load(const std::filesystem::path& dir);

 private:
  std::map<std::string, Collection> collections_;
};

}  // namespace gptc::db
