// Write-ahead log: CRC32-framed, sequence-numbered JSONL.
//
// On-disk format — one frame per line:
//
//   <seq:16 hex> <checksum:8|16 hex> <payload: compact JSON>\n
//
// The checksum covers "<seq hex> <payload>". It is CRC32 (8 hex digits) by
// default, or keyed SipHash-2-4 (16 hex digits) when the engine is opened
// with a WAL checksum key — the width self-describes the algorithm, but the
// reader still verifies against the format it was given, so a store opened
// with the wrong key refuses the log instead of replaying it.
//
// Appends are fsync-batched (group commit): every frame is written to the
// fd immediately, and fsync runs once per `group_commit` appends (1 =
// sync-every-append) plus on sync()/close. Replay tolerates a torn final
// record — and ONLY a torn final record. A crash can tear at most the last
// frame, so a bad frame is treated as a torn tail (replay ends at the
// previous frame boundary, reporting the byte offset so recovery can
// truncate before appending again) only when it is genuinely the end of
// the log: either an incomplete final line, or a complete final line with
// at least one earlier frame validating under the same format. Anything
// else — a bad frame with further data after it, or a complete first line
// that fails — cannot come from a torn write; it means mid-log corruption
// or a wrong checksum key, and replay reports an error instead of
// classifying it as torn, so committed records are never silently
// discarded. WalWriter's append/sync/reset/bytes are internally
// synchronized, so one thread may append while another syncs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "db/engine/fault.hpp"
#include "db/engine/siphash.hpp"
#include "json/json.hpp"

namespace gptc::db::engine {

/// Frame checksum configuration — shared by writer and replay.
struct WalFormat {
  /// When set, frames carry keyed SipHash-2-4 checksums instead of CRC32.
  std::optional<SipHashKey> checksum_key;
};

struct WalRecord {
  std::uint64_t seq = 0;
  json::Json payload;
};

struct WalReplay {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;  // offset just past the last good frame
  bool torn_tail = false;         // a torn final record was skipped
  /// Set when the log is rejected (mid-log corruption or wrong checksum
  /// key) rather than merely torn: `records` hold the valid prefix, but the
  /// caller must refuse to open instead of truncating to it.
  std::optional<std::string> error;
};

/// Reads every valid frame of `path` (missing file -> empty replay).
WalReplay replay_wal(const std::filesystem::path& path, const WalFormat& fmt);

class WalWriter {
 public:
  /// Opens (creating) the log for appending. `existing_bytes` is the
  /// already-valid prefix length from replay; the file is truncated to it
  /// first so a torn tail from a previous crash never precedes new frames.
  WalWriter(std::filesystem::path path, WalFormat fmt,
            std::size_t group_commit, std::uint64_t next_seq,
            std::uint64_t existing_bytes, FaultInjector* fault);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one frame; returns its sequence number. Throws CrashInjected
  /// at an armed fault point and std::runtime_error on real I/O failure.
  std::uint64_t append(const json::Json& payload);

  /// Claims the next sequence number WITHOUT writing a frame. Used by
  /// cross-shard logical commits (engine.hpp): the op lives in the engine
  /// commit WAL, but it still occupies a slot in this shard's sequence
  /// space so replay can merge the two streams back into the exact
  /// application order. A reserved-but-never-committed slot is just a gap —
  /// replay tolerates gaps, it only requires monotonicity.
  std::uint64_t reserve();

  /// Forces any pending (unsynced) frames to disk. Safe to call while
  /// another thread appends (each method takes the writer's own mutex).
  void sync();

  /// Discards the whole log (post-snapshot compaction): truncates the file
  /// to zero. Sequence numbers keep increasing across the truncation.
  void reset();

  /// reset(), but only if no record was appended since the caller observed
  /// `last_seq` as the newest sequence number — the checkpoint compaction
  /// path captures shard state, writes the snapshot with the shard
  /// unlocked, and must not discard records that landed in between (the
  /// snapshot does not cover them). Returns whether the log was truncated.
  bool reset_if_covered(std::uint64_t last_seq);

  std::uint64_t next_seq() const;
  std::uint64_t bytes() const;

  /// Bytes known durable as of the last successful fsync (or the replayed
  /// prefix at open). The gap bytes()-synced_bytes() is what a power loss
  /// would take with it — crash tests truncate the file to this offset to
  /// model losing the page cache (a process kill alone keeps it).
  std::uint64_t synced_bytes() const;

 private:
  // requires_lock: mu_
  void sync_locked();
  // requires_lock: mu_
  void reset_locked();

  std::filesystem::path path_;   // guard-ok: immutable after construction
  WalFormat fmt_;                // guard-ok: immutable after construction
  std::size_t group_commit_;     // guard-ok: immutable after construction
  std::uint64_t next_seq_;       // guarded_by: mu_
  std::uint64_t bytes_ = 0;      // guarded_by: mu_
  std::uint64_t synced_bytes_ = 0;  // guarded_by: mu_
  std::size_t pending_ = 0;      // guarded_by: mu_
  int fd_ = -1;                  // guarded_by: mu_
  // guard-ok: not owned, may be nullptr; set once before any thread starts
  FaultInjector* fault_;
  /// Serializes append/sync/reset and the counters they share: appends run
  /// under per-collection locks, but sync()/bytes() arrive from
  /// DocumentStore::sync()/wal_bytes() on other threads.
  mutable std::mutex mu_;
};

}  // namespace gptc::db::engine
