#include "db/engine/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "db/engine/checksum.hpp"
#include "db/engine/fsutil.hpp"

namespace gptc::db::engine {

namespace {

std::string frame_checksum(const WalFormat& fmt, std::string_view body) {
  if (fmt.checksum_key) return hex64(siphash24(*fmt.checksum_key, body));
  return hex32(crc32(body));
}

/// Validates one complete line as a frame; nullopt on any mismatch.
std::optional<WalRecord> parse_frame(const WalFormat& fmt,
                                     std::string_view line) {
  const std::size_t checksum_width = fmt.checksum_key ? 16 : 8;
  // "<seq:16> <checksum> <payload>" — minimum length check first.
  if (line.size() < 16 + 1 + checksum_width + 1 + 1 || line[16] != ' ' ||
      line[16 + 1 + checksum_width] != ' ')
    return std::nullopt;
  const std::string_view seq_hex = line.substr(0, 16);
  const std::string_view checksum = line.substr(17, checksum_width);
  const std::string_view payload = line.substr(16 + 1 + checksum_width + 1);
  const auto seq = parse_hex64(seq_hex);
  if (!seq) return std::nullopt;
  std::string body;
  body.reserve(seq_hex.size() + 1 + payload.size());
  body.append(seq_hex).append(" ").append(payload);
  if (frame_checksum(fmt, body) != checksum) return std::nullopt;
  WalRecord rec;
  rec.seq = *seq;
  try {
    rec.payload = json::Json::parse(payload);
  } catch (const json::JsonError&) {
    return std::nullopt;
  }
  return rec;
}

void write_all(int fd, const char* data, std::size_t len,
               const std::filesystem::path& path) {
  std::size_t off = 0;
  while (off < len) {
    // blocking-ok: the write-ahead contract — the record must reach the disk before the in-memory apply, and the WAL mutex is what orders the frames
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: write failed for " + path.string() +
                               ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

WalReplay replay_wal(const std::filesystem::path& path, const WalFormat& fmt) {
  WalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no log yet
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl != std::string::npos) {
      if (auto rec =
              parse_frame(fmt, std::string_view(text.data() + pos, nl - pos))) {
        out.records.push_back(std::move(*rec));
        pos = nl + 1;
        out.valid_bytes = pos;
        continue;
      }
    }
    // Bad frame. A real crash can tear at most the FINAL record, so only
    // classify the failure as a torn tail when it looks like one:
    //  - an incomplete final line (the frame's own trailing '\n' never hit
    //    the disk), or
    //  - a complete final line failing after earlier frames validated under
    //    this format (so the format/key is provably right and the last
    //    sector was mangled by the crash).
    // Everything else — more data after the bad frame, or a complete first
    // line that fails — is mid-log corruption or a wrong checksum key: the
    // log must be refused, never truncated.
    if (nl == std::string::npos) {
      out.torn_tail = true;
    } else if (nl + 1 >= text.size() && !out.records.empty()) {
      out.torn_tail = true;
    } else {
      out.error = "invalid frame at byte offset " + std::to_string(pos) +
                  (nl + 1 >= text.size()
                       ? " (first frame of a non-empty log failed "
                         "validation: corrupt log or wrong checksum key)"
                       : " with further data after it (mid-log corruption "
                         "or wrong checksum key)");
    }
    break;
  }
  return out;
}

WalWriter::WalWriter(std::filesystem::path path, WalFormat fmt,
                     std::size_t group_commit, std::uint64_t next_seq,
                     std::uint64_t existing_bytes, FaultInjector* fault)
    : path_(std::move(path)),
      fmt_(fmt),
      group_commit_(group_commit == 0 ? 1 : group_commit),
      next_seq_(next_seq),
      bytes_(existing_bytes),
      synced_bytes_(existing_bytes),
      fault_(fault) {
  const bool existed = std::filesystem::exists(path_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0)
    throw std::runtime_error("wal: cannot open " + path_.string() + ": " +
                             std::strerror(errno));
  // A freshly created log's directory entry must survive a crash too, or
  // the first fsynced frames vanish with it.
  if (!existed) sync_parent_dir(path_);
  // Drop any torn tail left by a crash so new frames start on a boundary.
  if (::ftruncate(fd_, static_cast<off_t>(existing_bytes)) != 0)
    throw std::runtime_error("wal: cannot truncate " + path_.string() + ": " +
                             std::strerror(errno));
  if (::lseek(fd_, static_cast<off_t>(existing_bytes), SEEK_SET) < 0)
    throw std::runtime_error("wal: cannot seek " + path_.string() + ": " +
                             std::strerror(errno));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

std::uint64_t WalWriter::append(const json::Json& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = next_seq_;
  const std::string seq_hex = hex64(seq);
  const std::string body = seq_hex + " " + payload.dump();
  const std::string frame =
      seq_hex + " " + frame_checksum(fmt_, body) + " " + payload.dump() + "\n";

  if (fault_ && fault_->fire(FaultPoint::WalAppend))
    throw CrashInjected("injected crash before WAL append (seq " + seq_hex +
                        ")");
  if (fault_ && fault_->fire(FaultPoint::WalShortWrite)) {
    // Torn record: half the frame reaches the disk, then the process dies.
    write_all(fd_, frame.data(), frame.size() / 2, path_);
    // blocking-ok: fault-injection path — modelling the crash needs the torn bytes durable first
    ::fsync(fd_);
    throw CrashInjected("injected crash mid WAL append (seq " + seq_hex +
                        ")");
  }

  write_all(fd_, frame.data(), frame.size(), path_);
  bytes_ += frame.size();
  ++next_seq_;
  if (++pending_ >= group_commit_) sync_locked();
  return seq;
}

std::uint64_t WalWriter::reserve() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_++;
}

void WalWriter::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  sync_locked();
}

void WalWriter::sync_locked() {
  if (pending_ == 0) return;
  // fdatasync, not fsync: an append needs only the data and the file size
  // durable, and fdatasync is required to flush the size when a write
  // extends the file. Skipping the mtime-only metadata update keeps
  // concurrent per-shard WAL syncs from queueing behind one another in the
  // filesystem journal.
  // blocking-ok: the group-commit durability point — this one syscall is sync_locked's whole purpose, and the mutex orders it after the frames it covers
  if (::fdatasync(fd_) != 0)
    throw std::runtime_error("wal: fdatasync failed for " + path_.string() +
                             ": " + std::strerror(errno));
  pending_ = 0;
  synced_bytes_ = bytes_;
}

void WalWriter::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  reset_locked();
}

bool WalWriter::reset_if_covered(std::uint64_t last_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_seq_ - 1 != last_seq) return false;
  reset_locked();
  return true;
}

void WalWriter::reset_locked() {
  if (::ftruncate(fd_, 0) != 0)
    throw std::runtime_error("wal: cannot truncate " + path_.string() + ": " +
                             std::strerror(errno));
  if (::lseek(fd_, 0, SEEK_SET) < 0)
    throw std::runtime_error("wal: cannot seek " + path_.string() + ": " +
                             std::strerror(errno));
  // blocking-ok: the post-compaction truncation must be durable before the caller reports the covering snapshot as the only source of truth
  if (::fsync(fd_) != 0)
    throw std::runtime_error("wal: fsync failed for " + path_.string() +
                             ": " + std::strerror(errno));
  bytes_ = 0;
  synced_bytes_ = 0;
  pending_ = 0;
}

std::uint64_t WalWriter::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t WalWriter::synced_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_bytes_;
}

}  // namespace gptc::db::engine
