#include "db/engine/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "db/engine/checksum.hpp"

namespace gptc::db::engine {

namespace {

std::string frame_checksum(const WalFormat& fmt, std::string_view body) {
  if (fmt.checksum_key) return hex64(siphash24(*fmt.checksum_key, body));
  return hex32(crc32(body));
}

void write_all(int fd, const char* data, std::size_t len,
               const std::filesystem::path& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: write failed for " + path.string() +
                               ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

WalReplay replay_wal(const std::filesystem::path& path, const WalFormat& fmt) {
  WalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no log yet
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t checksum_width = fmt.checksum_key ? 16 : 8;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      out.torn_tail = true;  // short-written final frame
      break;
    }
    const std::string_view line(text.data() + pos, nl - pos);
    // "<seq:16> <checksum> <payload>" — minimum length check first.
    if (line.size() < 16 + 1 + checksum_width + 1 + 1 || line[16] != ' ' ||
        line[16 + 1 + checksum_width] != ' ') {
      out.torn_tail = true;
      break;
    }
    const std::string_view seq_hex = line.substr(0, 16);
    const std::string_view checksum = line.substr(17, checksum_width);
    const std::string_view payload = line.substr(16 + 1 + checksum_width + 1);
    const auto seq = parse_hex64(seq_hex);
    if (!seq) {
      out.torn_tail = true;
      break;
    }
    std::string body;
    body.reserve(seq_hex.size() + 1 + payload.size());
    body.append(seq_hex).append(" ").append(payload);
    if (frame_checksum(fmt, body) != checksum) {
      out.torn_tail = true;
      break;
    }
    WalRecord rec;
    rec.seq = *seq;
    try {
      rec.payload = json::Json::parse(payload);
    } catch (const json::JsonError&) {
      out.torn_tail = true;
      break;
    }
    out.records.push_back(std::move(rec));
    pos = nl + 1;
    out.valid_bytes = pos;
  }
  return out;
}

WalWriter::WalWriter(std::filesystem::path path, WalFormat fmt,
                     std::size_t group_commit, std::uint64_t next_seq,
                     std::uint64_t existing_bytes, FaultInjector* fault)
    : path_(std::move(path)),
      fmt_(fmt),
      group_commit_(group_commit == 0 ? 1 : group_commit),
      next_seq_(next_seq),
      bytes_(existing_bytes),
      fault_(fault) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0)
    throw std::runtime_error("wal: cannot open " + path_.string() + ": " +
                             std::strerror(errno));
  // Drop any torn tail left by a crash so new frames start on a boundary.
  if (::ftruncate(fd_, static_cast<off_t>(existing_bytes)) != 0)
    throw std::runtime_error("wal: cannot truncate " + path_.string() + ": " +
                             std::strerror(errno));
  if (::lseek(fd_, static_cast<off_t>(existing_bytes), SEEK_SET) < 0)
    throw std::runtime_error("wal: cannot seek " + path_.string() + ": " +
                             std::strerror(errno));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

std::uint64_t WalWriter::append(const json::Json& payload) {
  const std::uint64_t seq = next_seq_;
  const std::string seq_hex = hex64(seq);
  const std::string body = seq_hex + " " + payload.dump();
  const std::string frame =
      seq_hex + " " + frame_checksum(fmt_, body) + " " + payload.dump() + "\n";

  if (fault_ && fault_->fire(FaultPoint::WalAppend))
    throw CrashInjected("injected crash before WAL append (seq " + seq_hex +
                        ")");
  if (fault_ && fault_->fire(FaultPoint::WalShortWrite)) {
    // Torn record: half the frame reaches the disk, then the process dies.
    write_all(fd_, frame.data(), frame.size() / 2, path_);
    ::fsync(fd_);
    throw CrashInjected("injected crash mid WAL append (seq " + seq_hex +
                        ")");
  }

  write_all(fd_, frame.data(), frame.size(), path_);
  bytes_ += frame.size();
  ++next_seq_;
  if (++pending_ >= group_commit_) sync();
  return seq;
}

void WalWriter::sync() {
  if (pending_ == 0) return;
  if (::fsync(fd_) != 0)
    throw std::runtime_error("wal: fsync failed for " + path_.string() +
                             ": " + std::strerror(errno));
  pending_ = 0;
}

void WalWriter::reset() {
  if (::ftruncate(fd_, 0) != 0)
    throw std::runtime_error("wal: cannot truncate " + path_.string() + ": " +
                             std::strerror(errno));
  if (::lseek(fd_, 0, SEEK_SET) < 0)
    throw std::runtime_error("wal: cannot seek " + path_.string() + ": " +
                             std::strerror(errno));
  if (::fsync(fd_) != 0)
    throw std::runtime_error("wal: fsync failed for " + path_.string() +
                             ": " + std::strerror(errno));
  bytes_ = 0;
  pending_ = 0;
}

}  // namespace gptc::db::engine
