#include "db/engine/siphash.hpp"

namespace gptc::db::engine {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t splitmix64_step(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t siphash24(const SipHashKey& key, std::string_view data) {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t len = data.size();
  const std::size_t tail = len & 7u;
  const unsigned char* end = p + (len - tail);

  for (; p != end; p += 8) {
    const std::uint64_t m = load_le64(p);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t b = static_cast<std::uint64_t>(len) << 56;
  for (std::size_t i = 0; i < tail; ++i)
    b |= static_cast<std::uint64_t>(p[i]) << (8 * i);

  v3 ^= b;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xFFu;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

SipHashKey siphash_key_from_salt(std::string_view salt) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : salt) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  SipHashKey key;
  key.k0 = splitmix64_step(h);
  key.k1 = splitmix64_step(key.k0 ^ 0x9e3779b97f4a7c15ULL);
  return key;
}

}  // namespace gptc::db::engine
