// Ordered secondary indexes over document dot-paths.
//
// An OrderedIndex maps the scalar value found at one dot-path (via the
// query layer's pre-split path walk, so "tuning_parameters.grid.0" works)
// to the sorted list of document ids holding that value. The map is std::map — iteration
// order is deterministic, which keeps the index lint-clean under gptc-lint
// R2 and lets candidate lists come out in a reproducible order.
//
// The planner contract is *superset semantics*: candidates(condition)
// returns a sorted id list guaranteed to contain every document that could
// match the condition at this path, or nullopt when the index cannot serve
// it (non-scalar operand, unsupported operator, or a `$exists: false` that
// can match documents absent from the index). The caller always re-runs the
// full match predicate over the candidates, so the index only ever narrows
// work, never changes results. Documents whose value at the path is missing
// or non-scalar (array/object) are not indexed — they cannot match any
// scalar $eq/$in/range condition, so skipping them is sound.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/query/path.hpp"
#include "json/json.hpp"

namespace gptc::db::engine {

/// Totally ordered key over indexable scalars. Ints and doubles share one
/// numeric rank and compare by value, so a query for 2 finds a stored 2.0 —
/// the same cross-type equality the match engine implements.
struct IndexKey {
  enum class Rank : std::uint8_t { Null = 0, Bool = 1, Number = 2, String = 3 };

  Rank rank = Rank::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  /// nullopt for arrays/objects (not indexable).
  static std::optional<IndexKey> from_json(const json::Json& v);

  bool operator<(const IndexKey& other) const;
};

class OrderedIndex {
 public:
  /// The dot-path is split once at construction; add/erase walk the
  /// pre-split segments (no per-document path parsing).
  explicit OrderedIndex(std::string path)
      : path_(query::PathRef::parse(path)) {}

  const std::string& path() const { return path_.text(); }
  std::size_t distinct_keys() const { return postings_.size(); }

  /// Incremental maintenance: called with the document *as stored* (insert
  /// after the value exists, erase before it changes or the doc goes away).
  void add(const json::Json& doc, std::int64_t id);
  void erase(const json::Json& doc, std::int64_t id);
  void clear() { postings_.clear(); }

  /// Sorted candidate ids for one query condition (the value side of
  /// `{path: condition}`): a scalar for direct equality, or an operator
  /// object. nullopt = index unusable for this condition, fall back to scan.
  std::optional<std::vector<std::int64_t>> candidates(
      const json::Json& condition) const;

  /// Number of ids candidates(condition) would return, computed from the
  /// posting-list bounds without materializing the id vector. nullopt
  /// exactly when candidates() would be nullopt, so the planner can rank
  /// every usable index by selectivity and materialize only the winners.
  /// (Posting lists are disjoint across keys — one scalar per document per
  /// path — so summing selected list sizes IS the candidate count; only
  /// duplicate $in operands need the same key-dedup candidates() applies.)
  std::optional<std::size_t> estimate(const json::Json& condition) const;

  /// True when the index serves `condition` EXACTLY — the posting lists are
  /// the match set, not merely a superset — so count()/exists() may consult
  /// the index alone, never materializing (or even re-matching) a document.
  /// Holds for a bare scalar, a single {$eq: scalar}, a single {$in:
  /// [scalars]}, or a single range operator with a number/string operand:
  /// in each case the match engine's semantics (cross-type numeric
  /// equality, same-class-only ordering) coincide with IndexKey's, and
  /// documents absent from the index (missing path, array/object value)
  /// cannot match. Conditions with several operators are only ever served
  /// as a superset (candidates() picks one op), so they are not exact.
  static bool exact(const json::Json& condition);

  /// Index-only match count for an exact() condition. Sums posting-list
  /// sizes without building an id vector; $in dedupes numerically equal
  /// operands ([2, 2.0]) the same way candidates() does.
  std::size_t exact_count(const json::Json& condition) const;

  /// Index-only existence probe for an exact() condition; stops at the
  /// first non-empty posting list.
  bool exact_exists(const json::Json& condition) const;

 private:
  void collect_equal(const IndexKey& key, std::vector<std::int64_t>& out) const;
  void collect_range(IndexKey::Rank rank, const IndexKey* lo, bool lo_open,
                     const IndexKey* hi, bool hi_open,
                     std::vector<std::int64_t>& out) const;

  query::PathRef path_;
  std::map<IndexKey, std::vector<std::int64_t>> postings_;
};

}  // namespace gptc::db::engine
