// SipHash-2-4 (Aumasson & Bernstein) — the keyed 64-bit PRF used for
// (a) salted API-key hashing in the crowd repository (replacing the fast
// non-cryptographic FNV stand-in called out in DESIGN.md) and (b) the keyed
// variant of the WAL record checksum, where a deployment wants frames
// authenticated against accidental cross-store replay rather than just
// bit-rot (see wal.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gptc::db::engine {

/// 128-bit SipHash key as two 64-bit lanes.
struct SipHashKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 of `data` under `key` (2 compression rounds, 4 finalization
/// rounds — the reference parameters).
std::uint64_t siphash24(const SipHashKey& key, std::string_view data);

/// Deterministically expands an ASCII salt string into a SipHash key
/// (splitmix64 chain over an FNV-1a absorb). Used by the crowd layer so a
/// stored per-key salt fully determines the hash key.
SipHashKey siphash_key_from_salt(std::string_view salt);

}  // namespace gptc::db::engine
