// Deterministic fault injection for the storage engine.
//
// Tests arm an injector on the Nth occurrence of a fault point; the engine
// consults it at each durability-critical step and simulates a crash by
// throwing CrashInjected (for WalShortWrite after first writing half the
// frame, modelling a torn record). Because the "crash" is an exception in a
// live process, disk state is exactly what a real kill at that instant
// would leave behind, and tests can then reopen the directory and assert
// the recovery invariants (tests/test_engine.cpp).
//
// The injector counts occurrences even when unarmed, so a test can run the
// workload once with a passive injector to enumerate every fault point,
// then replay it once per point with the trigger armed.
//
// Thread-safe: the async group-commit thread (commit.hpp) fires
// CommitFsync from its own thread while writer threads fire the WAL/
// snapshot points, so all state is guarded by an internal mutex. Crash
// tests still drive a single-writer workload for determinism; the mutex
// only makes the counting itself race-free.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>

namespace gptc::db::engine {

enum class FaultPoint {
  WalAppend,             // fail before any byte of the Nth WAL append
  WalShortWrite,         // write half of the Nth WAL frame, then crash
  SnapshotBeforeRename,  // crash after <name>.snapshot.tmp is synced
  SnapshotAfterRename,   // crash after the rename, before WAL truncation
  CommitFsync,           // crash in the group-commit thread before its Nth
                         // batch fsync: appended-but-unsynced frames are
                         // lost to a power failure and must never be acked
  CommitReserve,         // crash inside a cross-shard logical commit, after
                         // some member shards reserved their sequence slot
                         // but before the commit record was appended — the
                         // "between shard A and shard B" window; recovery
                         // must make the whole commit vanish
  CommitAppend,          // crash immediately before the logical commit
                         // record itself is appended to the engine commit
                         // WAL (every member already reserved)
  RecoverShard,          // crash at the start of the Nth per-shard recovery
                         // task — exercises error propagation out of the
                         // parallel replay and that a failed open leaves
                         // the directory reopenable
};

/// Thrown by the engine when an armed fault fires; tests catch it where a
/// real deployment would have lost the process.
class CrashInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// Arms the injector: the `nth` (1-based) occurrence of `point` fires.
  void arm(FaultPoint point, std::uint64_t nth) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_point_ = point;
    armed_nth_ = nth;
  }

  void disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_nth_ = 0;
  }

  /// Occurrences of `point` seen so far (armed or not).
  std::uint64_t count(FaultPoint point) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counts_.find(point);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Engine-side: records one occurrence and reports whether the armed
  /// trigger fired. The caller decides how to crash (throw, short-write).
  bool fire(FaultPoint point) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t n = ++counts_[point];
    return armed_nth_ != 0 && armed_point_ == point && n == armed_nth_;
  }

 private:
  mutable std::mutex mu_;
  std::map<FaultPoint, std::uint64_t> counts_;
  FaultPoint armed_point_ = FaultPoint::WalAppend;
  std::uint64_t armed_nth_ = 0;  // 0 = disarmed
};

}  // namespace gptc::db::engine
