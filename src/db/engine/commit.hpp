// Asynchronous group commit: a dedicated thread that batches WAL fsyncs.
//
// With EngineOptions::async_commit on, Collection mutators append WAL
// frames without ever paying fsync latency inline (the WalWriter is opened
// with an effectively-infinite inline group-commit threshold). Each append
// instead notifies this committer, whose single background thread picks up
// every shard with unsynced frames, fsyncs each WAL once, and advances that
// shard's durable sequence number. Writers that need a durability ack (the
// network server acks clients only once their batch is on disk) block in
// wait_durable(seq) until the commit thread's fsync covers their frames —
// so N concurrent writers share one fsync per batch instead of paying one
// each, which is where the 10k+ writes/s of bench_server comes from.
//
// Checkpoints interact through mark_durable: a snapshot covers every logged
// record and is itself fsynced, so after WAL compaction the checkpointing
// thread marks the shard durable up to the snapshot's last_seq without an
// extra WAL fsync.
//
// Crash model (FaultPoint::CommitFsync): when the armed fault fires in the
// commit thread before its Nth batch fsync, the committer transitions to a
// crashed state — every current and future wait_durable throws
// CrashInjected, exactly as a real power failure would leave those clients
// un-acked. Frames appended after the last successful fsync are then "in
// the page cache only": tests truncate the WAL file to
// WalWriter::synced_bytes() to model the power loss and assert recovery
// yields exactly the acked prefix (tests/test_engine.cpp).
//
// Lock order: the committer's mutex is a leaf taken after any collection
// writer lock (log_op -> notify_logged, checkpoint -> mark_durable) and is
// never held across a WalWriter call — the commit thread drops it around
// fsync so appenders are never blocked on disk latency.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "db/engine/fault.hpp"

namespace gptc::db::engine {

class WalWriter;

class GroupCommitter {
 public:
  explicit GroupCommitter(FaultInjector* fault);
  /// Stops the commit thread. Pending waiters are woken and see a
  /// "stopped" error; a clean shutdown calls flush_all() first.
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Registers a shard's WAL with the commit thread. `wal` must outlive
  /// this committer (the engine destroys the committer before its shards).
  void attach(const std::string& shard, WalWriter* wal);

  /// Writer-side, after an append: records that frames up to `seq` exist
  /// and wakes the commit thread.
  void notify_logged(const std::string& shard, std::uint64_t seq);

  /// Marks seqs <= `seq` durable without an fsync — the caller just wrote
  /// (and fsynced) a snapshot covering them.
  void mark_durable(const std::string& shard, std::uint64_t seq);

  /// Blocks until every frame of `shard` with sequence <= `seq` is on disk.
  /// Throws CrashInjected if the commit thread hit an armed fault, and
  /// std::runtime_error on a real fsync failure or post-stop use. seq 0
  /// returns immediately.
  void wait_durable(const std::string& shard, std::uint64_t seq);

  /// Synchronously fsyncs every shard with pending frames on the calling
  /// thread (DocumentStore::sync()). Throws if the committer has crashed.
  void flush_all();

 private:
  struct ShardState {
    WalWriter* wal = nullptr;
    std::uint64_t logged = 0;   // highest appended seq
    std::uint64_t durable = 0;  // highest fsynced / snapshot-covered seq
  };

  void run() noexcept;
  /// Fsyncs every shard whose logged > durable; returns false after
  /// recording a crash (injected fault or real I/O error). Takes and
  /// releases mu_ internally; never holds it across fsync.
  bool commit_pending(bool fire_fault);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // commit thread sleeps here
  std::condition_variable done_cv_;  // durability waiters sleep here
  std::map<std::string, ShardState> shards_;  // guarded_by: mu_
  bool stop_ = false;                         // guarded_by: mu_
  bool crashed_ = false;                      // guarded_by: mu_
  std::string crash_reason_;                  // guarded_by: mu_
  // guard-ok: not owned, may be nullptr; set once before the thread starts
  FaultInjector* fault_;
  std::thread thread_;  // last member: joined before state is destroyed
};

}  // namespace gptc::db::engine
