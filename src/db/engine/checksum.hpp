// CRC32 (IEEE 802.3 reflected polynomial) and hex helpers for the storage
// engine's WAL frames and snapshot footers. The keyed alternative lives in
// siphash.hpp; wal.hpp picks between the two per WalFormat.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gptc::db::engine {

/// CRC32 of `data` (init 0xFFFFFFFF, reflected 0xEDB88320, final xor).
std::uint32_t crc32(std::string_view data);

/// Fixed-width lowercase hex (8 digits for 32-bit, 16 for 64-bit values).
std::string hex32(std::uint32_t v);
std::string hex64(std::uint64_t v);

/// Parses fixed-width lowercase/uppercase hex; nullopt on any non-hex digit
/// or length mismatch.
std::optional<std::uint32_t> parse_hex32(std::string_view s);
std::optional<std::uint64_t> parse_hex64(std::string_view s);

}  // namespace gptc::db::engine
