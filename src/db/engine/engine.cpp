#include "db/engine/engine.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "db/document_store.hpp"
#include "db/engine/fsutil.hpp"
#include "db/engine/snapshot.hpp"
#include "parallel/thread_pool.hpp"

namespace gptc::db::engine {

using json::Json;

namespace {

constexpr const char* kManifestName = "engine.manifest";
constexpr const char* kCommitPrefix = "engine.commit.s";

/// Splits a file stem of the form "<base>.s<k>of<n>" (n > 1). Returns
/// false when the stem carries no shard suffix.
bool parse_shard_stem(const std::string& stem, std::string* base,
                      std::size_t* shard, std::size_t* of) {
  const std::size_t dot = stem.rfind(".s");
  if (dot == std::string::npos || dot == 0) return false;
  const std::string suffix = stem.substr(dot + 2);  // "<k>of<n>"
  const std::size_t of_pos = suffix.find("of");
  if (of_pos == std::string::npos || of_pos == 0) return false;
  const std::string k_str = suffix.substr(0, of_pos);
  const std::string n_str = suffix.substr(of_pos + 2);
  if (n_str.empty()) return false;
  for (char c : k_str)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  for (char c : n_str)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  if (k_str.size() > 9 || n_str.size() > 9) return false;
  *base = stem.substr(0, dot);
  *shard = static_cast<std::size_t>(std::stoul(k_str));
  *of = static_cast<std::size_t>(std::stoul(n_str));
  return *of > 1;
}

/// Shard count embedded in an "engine.commit.s<n>" stem, or 0.
std::size_t parse_commit_stem(const std::string& stem) {
  const std::string prefix = kCommitPrefix;
  if (stem.rfind(prefix, 0) != 0) return 0;
  const std::string n_str = stem.substr(prefix.size());
  if (n_str.empty() || n_str.size() > 9) return 0;
  for (char c : n_str)
    if (!std::isdigit(static_cast<unsigned char>(c))) return 0;
  return static_cast<std::size_t>(std::stoul(n_str));
}

std::optional<std::size_t> read_manifest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const Json j = Json::parse(buf.str());
    if (j.get_or("format", Json(0)).as_int() != 1)
      throw std::runtime_error("unknown format version");
    const std::int64_t n = j.at("shards").as_int();
    if (n < 1)
      throw std::runtime_error("bad shard count " + std::to_string(n));
    return static_cast<std::size_t>(n);
  } catch (const std::exception& e) {
    throw std::runtime_error("engine: refusing manifest " + path.string() +
                             ": " + e.what());
  }
}

/// Atomically (re)writes engine.manifest — the commit point of a shard-
/// count migration, so it gets the full tmp+fsync+rename+dir-fsync dance.
void write_manifest(const std::filesystem::path& dir, std::size_t shards) {
  Json j = Json::object();
  j["format"] = 1;
  j["shards"] = static_cast<std::int64_t>(shards);
  const std::filesystem::path path = dir / kManifestName;
  const std::filesystem::path tmp = path.string() + ".tmp";
  const std::string data = j.dump() + "\n";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw std::runtime_error("engine: cannot write " + tmp.string() + ": " +
                             std::strerror(errno));
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("engine: write failed for " + tmp.string() +
                               ": " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("engine: fsync failed for " + tmp.string() +
                             ": " + std::strerror(err));
  }
  ::close(fd);
  std::filesystem::rename(tmp, path);
  sync_parent_dir(path);
}

[[noreturn]] void refuse(const std::filesystem::path& path,
                         const std::string& why) {
  throw std::runtime_error("engine: refusing to open " + path.string() +
                           ": " + why);
}

}  // namespace

StorageEngine::StorageEngine(std::filesystem::path dir, EngineOptions opts)
    : dir_(std::move(dir)), opts_(std::move(opts)) {
  std::filesystem::create_directories(dir_);
  // Make the engine directory's own entry durable, or a crash right after
  // creation can take the whole directory (and its fsynced files) with it.
  sync_parent_dir(dir_);
  if (opts_.async_commit)
    committer_ = std::make_unique<GroupCommitter>(opts_.fault);
}

std::size_t StorageEngine::inline_group_commit() const {
  // Async mode: the WalWriter never fsyncs on its own — the commit thread
  // owns every fsync, so durability acks map 1:1 to its batches.
  return opts_.async_commit ? std::numeric_limits<std::size_t>::max()
                            : opts_.group_commit;
}

std::string StorageEngine::shard_stem(const std::string& collection,
                                      std::size_t shard, std::size_t of) {
  if (of <= 1) return collection;
  return collection + ".s" + std::to_string(shard) + "of" +
         std::to_string(of);
}

std::string StorageEngine::commit_wal_stem() const {
  return kCommitPrefix + std::to_string(shard_count_);
}

void StorageEngine::recover(DocumentStore& store) {
  replaying_ = true;
  recovery_warnings_.clear();

  // --- classify the directory against the manifest -------------------------
  const std::optional<std::size_t> manifest = read_manifest(dir_ / kManifestName);

  std::set<std::string> collections;  // names with current-layout artifacts
  std::set<std::string> legacy_json;  // migration sources, never deleted here
  std::vector<std::filesystem::path> debris;  // stale tmps + wrong-count files
  std::vector<std::filesystem::path> sharded;  // deferred until disk_n known
  bool have_plain = false;   // unsuffixed .wal/.snapshot present
  bool have_commit = false;  // commit WAL matching the manifest count

  std::vector<std::filesystem::path> entries;
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    entries.push_back(entry.path());

  // First pass just to establish the disk shard count.
  std::size_t max_suffix_count = 0;
  for (const auto& p : entries) {
    const std::string ext = p.extension().string();
    if (ext != ".wal" && ext != ".snapshot") continue;
    const std::string stem = p.stem().string();
    std::string base;
    std::size_t k = 0, of = 0;
    if (parse_commit_stem(stem) > 0 || parse_shard_stem(stem, &base, &k, &of))
      max_suffix_count = std::max(max_suffix_count, std::size_t(2));
  }
  if (!manifest && max_suffix_count > 0)
    refuse(dir_, "sharded engine files present but " +
                     std::string(kManifestName) +
                     " is missing; not guessing a layout");

  std::size_t disk_n = manifest.value_or(1);
  bool fresh = true;  // no engine artifacts at all (manifest counts)
  if (manifest) fresh = false;

  for (const auto& p : entries) {
    const std::string ext = p.extension().string();
    const std::string stem = p.stem().string();
    if (ext == ".tmp") {
      // Crash before a rename: the tmp never counts, whatever wrote it.
      if (p.stem().extension().string() == ".snapshot" ||
          stem == kManifestName)
        debris.push_back(p);
      continue;
    }
    if (ext == ".json") {
      legacy_json.insert(stem);
      continue;
    }
    if (ext != ".wal" && ext != ".snapshot") continue;
    fresh = false;
    const std::size_t commit_n = parse_commit_stem(stem);
    if (commit_n > 0) {
      if (ext == ".wal" && commit_n == disk_n)
        have_commit = true;
      else
        debris.push_back(p);
      continue;
    }
    std::string base;
    std::size_t k = 0, of = 0;
    if (parse_shard_stem(stem, &base, &k, &of)) {
      if (of == disk_n && k < of)
        collections.insert(base);
      else
        debris.push_back(p);  // crashed-migration leftovers, never flipped in
      continue;
    }
    have_plain = true;
    if (disk_n == 1)
      collections.insert(stem);
    else
      debris.push_back(p);  // pre-migration layout after the flip
  }
  (void)have_plain;
  for (const auto& p : debris) std::filesystem::remove(p);
  if (!debris.empty()) sync_parent_dir(dir_ / kManifestName);

  const std::size_t target = opts_.shards == 0 ? (fresh ? 1 : disk_n)
                                               : opts_.shards;
  if (fresh) disk_n = target;  // nothing to migrate from
  shard_count_ = disk_n;

  // --- replay the logical commit WAL --------------------------------------
  // member key: (collection, shard) -> seq -> op payload. The records stay
  // owned by `commit_replay` for the duration of recovery.
  const std::filesystem::path commit_path =
      dir_ / (commit_wal_stem() + ".wal");
  WalReplay commit_replay;
  std::map<std::pair<std::string, std::size_t>, std::map<std::uint64_t, Json>>
      commit_members;
  if (have_commit) {
    commit_replay = replay_wal(commit_path, wal_format());
    if (commit_replay.error)
      refuse(commit_path, *commit_replay.error);
    if (commit_replay.torn_tail)
      recovery_warnings_.push_back(
          commit_wal_stem() +
          ": torn final commit record dropped; log truncated to byte " +
          std::to_string(commit_replay.valid_bytes));
    for (const auto& rec : commit_replay.records) {
      for (const auto& m : rec.payload.at("m").as_array()) {
        const std::string coll = m.at("c").as_string();
        const auto shard = static_cast<std::size_t>(m.at("s").as_int());
        const auto seq = static_cast<std::uint64_t>(m.at("q").as_int());
        if (shard >= disk_n)
          refuse(commit_path, "commit record seq " + std::to_string(rec.seq) +
                                  " names shard " + std::to_string(shard) +
                                  " of '" + coll + "' but the store has " +
                                  std::to_string(disk_n) + " shard(s)");
        collections.insert(coll);
        commit_members[{coll, shard}].emplace(seq, m.at("op"));
      }
    }
  }
  for (const auto& name : legacy_json) collections.insert(name);

  // --- per-shard parallel recovery -----------------------------------------
  struct ShardTask {
    Collection* c = nullptr;
    std::string name;
    std::size_t shard = 0;
    std::string stem;
    std::uint64_t next_seq = 1;
    std::uint64_t valid_bytes = 0;
    std::string warning;
  };
  std::vector<ShardTask> tasks;
  std::map<std::string, bool> from_legacy;
  for (const std::string& name : collections) {
    Collection& c = store.collection(name);
    bool any_snapshot = false;
    for (std::size_t k = 0; k < disk_n; ++k)
      if (std::filesystem::exists(dir_ /
                                  (shard_stem(name, k, disk_n) + ".snapshot")))
        any_snapshot = true;
    if (!any_snapshot && legacy_json.count(name)) {
      // One-time migration from the diffable JSON export: it becomes the
      // base state, absorbed into snapshots below so later exports can
      // never be mistaken for a base again.
      std::ifstream in(dir_ / (name + ".json"));
      std::ostringstream buf;
      buf << in.rdbuf();
      const Json j = Json::parse(buf.str());
      if (j.at("name").as_string() != name)
        throw std::runtime_error("engine: collection file " + name +
                                 ".json names collection '" +
                                 j.at("name").as_string() + "'");
      c.restore(j);
      from_legacy[name] = true;
    }
    for (std::size_t k = 0; k < disk_n; ++k) {
      ShardTask t;
      t.c = &c;
      t.name = name;
      t.shard = k;
      t.stem = shard_stem(name, k, disk_n);
      tasks.push_back(std::move(t));
    }
  }

  const auto run_task = [&](std::size_t i) {
    ShardTask& t = tasks[i];
    if (opts_.fault && opts_.fault->fire(FaultPoint::RecoverShard))
      throw CrashInjected("injected crash in shard recovery task for " +
                          t.stem);
    const std::filesystem::path wal_path = dir_ / (t.stem + ".wal");
    std::uint64_t last_seq = 0;
    if (const auto snap = read_snapshot(dir_ / (t.stem + ".snapshot"))) {
      t.c->restore_shard(t.shard, snap->collection_state);
      last_seq = snap->last_seq;
    }
    const WalReplay replay = replay_wal(wal_path, wal_format());
    if (replay.error) refuse(wal_path, *replay.error);
    if (replay.torn_tail)
      t.warning = t.stem +
                  ": torn final WAL record dropped; log truncated to byte " +
                  std::to_string(replay.valid_bytes);

    // Merge the shard's own frames with its logical-commit members back
    // into application order — they share one sequence space (reserve()).
    const auto cm_it = commit_members.find({t.name, t.shard});
    const std::map<std::uint64_t, Json> empty;
    const auto& members = cm_it == commit_members.end() ? empty : cm_it->second;
    auto lit = replay.records.begin();
    auto mit = members.begin();
    std::uint64_t max_seq = last_seq;
    const auto apply = [&](std::uint64_t seq, const Json& payload) {
      max_seq = std::max(max_seq, seq);
      // Records at or below the snapshot's last_seq are already reflected
      // in the snapshot (crash between rename and WAL truncation).
      if (seq <= last_seq) return;
      try {
        t.c->replay_shard_op(t.shard, payload);
      } catch (const CrashInjected&) {
        throw;
      } catch (const std::exception& e) {
        // A record that passed the CRC but fails to apply is a logic bug
        // or hand-edited log; surface it as this engine's refusal, with
        // the shard and sequence number, not as a bare propagated error
        // from three layers down.
        refuse(wal_path, "record seq " + std::to_string(seq) +
                             " failed to apply to '" + t.stem +
                             "': " + e.what());
      } catch (...) {
        refuse(wal_path, "record seq " + std::to_string(seq) +
                             " failed to apply to '" + t.stem + "'");
      }
    };
    while (lit != replay.records.end() || mit != members.end()) {
      if (mit == members.end() ||
          (lit != replay.records.end() && lit->seq < mit->first)) {
        apply(lit->seq, lit->payload);
        ++lit;
      } else {
        apply(mit->first, mit->second);
        ++mit;
      }
    }
    t.next_seq = max_seq + 1;
    t.valid_bytes = replay.valid_bytes;
  };

  // Shards are disjoint state (distinct (collection, shard) pairs), so the
  // tasks parallelize freely; parallel_for rethrows the lowest-index
  // failure deterministically and the serial fallback is bit-identical.
  std::size_t workers =
      opts_.recovery_threads != 0
          ? opts_.recovery_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, tasks.size());
  if (workers > 1 && tasks.size() > 1) {
    parallel::ThreadPool pool(workers);
    parallel::parallel_for(&pool, tasks.size(), run_task);
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_task(i);
  }
  for (const auto& t : tasks)
    if (!t.warning.empty()) recovery_warnings_.push_back(t.warning);

  // --- settle the final layout ---------------------------------------------
  if (target != disk_n) {
    migrate_shard_count(store, disk_n, target);
  } else {
    if (!manifest) write_manifest(dir_, shard_count_);
    for (const auto& t : tasks) {
      Wal w;
      w.wal = std::make_unique<WalWriter>(
          dir_ / (t.stem + ".wal"), wal_format(), inline_group_commit(),
          t.next_seq, t.valid_bytes, opts_.fault);
      std::lock_guard<std::mutex> lock(wals_mu_);
      auto [it, inserted] = wals_.emplace(t.stem, std::move(w));
      (void)inserted;
      if (committer_) {
        committer_->attach(t.stem, it->second.wal.get());
        // Everything replayed is already on disk.
        committer_->mark_durable(t.stem, t.next_seq - 1);
      }
    }
    if (have_commit) {
      std::uint64_t next = 1;
      for (const auto& rec : commit_replay.records)
        next = std::max(next, rec.seq + 1);
      Wal w;
      w.wal = std::make_unique<WalWriter>(
          commit_path, wal_format(), inline_group_commit(), next,
          commit_replay.valid_bytes, opts_.fault);
      std::lock_guard<std::mutex> lock(wals_mu_);
      auto [it, inserted] = wals_.emplace(commit_wal_stem(), std::move(w));
      (void)inserted;
      if (committer_) {
        committer_->attach(commit_wal_stem(), it->second.wal.get());
        committer_->mark_durable(commit_wal_stem(), next - 1);
      }
    }
  }

  // --- retire consumed legacy exports --------------------------------------
  for (const auto& [name, was_legacy] : from_legacy) {
    if (!was_legacy) continue;
    if (target == disk_n) {
      // Absorb the export into snapshots now; after a migration the new
      // layout's snapshots already cover it.
      Collection& c = store.collection(name);
      for (std::size_t k = 0; k < shard_count_; ++k) checkpoint_shard(c, k);
    }
    // Retire the source so a later recovery whose snapshot goes missing
    // can never silently fall back to this stale state.
    std::filesystem::rename(dir_ / (name + ".json"),
                            dir_ / (name + ".json.migrated"));
    sync_parent_dir(dir_ / (name + ".json"));
  }

  store_ = &store;
  replaying_ = false;
}

void StorageEngine::migrate_shard_count(DocumentStore& store,
                                        std::size_t from, std::size_t to) {
  // The store is fully recovered in memory at `from` shards and no
  // WalWriters exist yet. Re-bucket, write the complete new layout as
  // snapshots, and only then flip the manifest — the single commit point.
  // A crash before the flip leaves the old layout authoritative (the new
  // files are wrong-count debris next open); a crash after it leaves the
  // new layout complete (the old files are the debris).
  for (auto& [name, c] : store.collections_) {
    (void)name;
    c.configure_shards(to);
  }
  shard_count_ = to;
  for (auto& [name, c] : store.collections_) {
    for (std::size_t k = 0; k < to; ++k)
      write_snapshot(dir_ / (shard_stem(name, k, to) + ".snapshot"),
                     c.shard_to_json(k), /*last_seq=*/0, opts_.fault);
  }
  write_manifest(dir_, to);  // the flip

  // Old-layout cleanup; a crash here is fine, the next open deletes the
  // rest as debris.
  for (const auto& [name, c] : store.collections_) {
    (void)c;
    for (std::size_t k = 0; k < from; ++k) {
      std::filesystem::remove(dir_ / (shard_stem(name, k, from) + ".wal"));
      std::filesystem::remove(dir_ /
                              (shard_stem(name, k, from) + ".snapshot"));
    }
  }
  std::filesystem::remove(dir_ / (std::string(kCommitPrefix) +
                                  std::to_string(from) + ".wal"));
  sync_parent_dir(dir_ / kManifestName);
}

WalWriter& StorageEngine::wal_for(const std::string& key) {
  std::lock_guard<std::mutex> lock(wals_mu_);
  auto it = wals_.find(key);
  if (it == wals_.end()) {
    Wal w;
    w.wal = std::make_unique<WalWriter>(
        dir_ / (key + ".wal"), wal_format(), inline_group_commit(),
        /*next_seq=*/1, /*existing_bytes=*/0, opts_.fault);
    it = wals_.emplace(key, std::move(w)).first;
    if (committer_) committer_->attach(key, it->second.wal.get());
  }
  return *it->second.wal;
}

WalWriter* StorageEngine::find_wal(const std::string& key) const {
  std::lock_guard<std::mutex> lock(wals_mu_);
  const auto it = wals_.find(key);
  return it == wals_.end() ? nullptr : it->second.wal.get();
}

std::uint64_t StorageEngine::log_op(Collection& c, std::size_t shard,
                                    const Json& op) {
  if (replaying_) return 0;
  const std::string key = shard_stem(c.name(), shard, shard_count_);
  const std::uint64_t seq = wal_for(key).append(op);
  if (committer_) committer_->notify_logged(key, seq);
  return seq;
}

CommitTicket StorageEngine::log_commit(
    const std::vector<CommitMember>& members) {
  if (replaying_ || members.empty()) return {};
  Json frame = Json::object();
  Json ms = Json::array();
  for (const auto& member : members) {
    // The window the crash matrix cares about: some shards have reserved
    // their slot, others have not, and the commit record does not exist —
    // recovery must make the whole commit vanish (slots are mere gaps).
    if (opts_.fault && opts_.fault->fire(FaultPoint::CommitReserve))
      throw CrashInjected("injected crash between shard reservations of a "
                          "logical commit");
    const std::string stem =
        shard_stem(member.collection->name(), member.shard, shard_count_);
    const std::uint64_t seq = wal_for(stem).reserve();
    Json m = Json::object();
    m["c"] = member.collection->name();
    m["s"] = static_cast<std::int64_t>(member.shard);
    m["q"] = static_cast<std::int64_t>(seq);
    m["op"] = member.op;
    ms.as_array().push_back(std::move(m));
  }
  frame["m"] = std::move(ms);
  if (opts_.fault && opts_.fault->fire(FaultPoint::CommitAppend))
    throw CrashInjected(
        "injected crash before the logical commit record append");
  const std::string key = commit_wal_stem();
  const std::uint64_t seq = wal_for(key).append(frame);
  if (committer_) committer_->notify_logged(key, seq);
  return CommitTicket{key, seq};
}

std::uint64_t StorageEngine::last_logged_seq(const std::string& wal) const {
  WalWriter* w = find_wal(wal);
  return w == nullptr ? 0 : w->next_seq() - 1;
}

void StorageEngine::wait_durable(const std::string& wal, std::uint64_t seq) {
  if (seq == 0) return;
  if (committer_) {
    committer_->wait_durable(wal, seq);
    return;
  }
  WalWriter* w = find_wal(wal);
  if (w != nullptr) w->sync();
}

std::uint64_t StorageEngine::wal_synced_bytes(const std::string& wal) const {
  WalWriter* w = find_wal(wal);
  return w == nullptr ? 0 : w->synced_bytes();
}

std::uint64_t StorageEngine::wal_bytes(const std::string& wal) const {
  WalWriter* w = find_wal(wal);
  return w == nullptr ? 0 : w->bytes();
}

void StorageEngine::maybe_checkpoint(Collection& c, std::size_t shard) {
  if (replaying_) return;
  const std::string key = shard_stem(c.name(), shard, shard_count_);
  if (wal_for(key).bytes() >= opts_.checkpoint_wal_bytes)
    checkpoint_shard(c, shard);
}

void StorageEngine::checkpoint(Collection& c) {
  for (std::size_t k = 0; k < c.shard_count(); ++k) checkpoint_shard(c, k);
}

void StorageEngine::sync_commit_wal_if_pending() {
  WalWriter* cw = find_wal(commit_wal_stem());
  if (cw != nullptr && cw->bytes() > cw->synced_bytes()) cw->sync();
}

void StorageEngine::checkpoint_shard(Collection& c, std::size_t shard) {
  // One checkpoint at a time, engine-wide: checkpoints are rare
  // (size-amortized), and serializing them keeps an older capture from
  // renaming its snapshot over a newer one after the newer one already
  // truncated the WAL.
  std::lock_guard<std::mutex> ckpt(checkpoint_mu_);
  const std::string key = shard_stem(c.name(), shard, shard_count_);
  WalWriter& w = wal_for(key);
  Json state;
  std::uint64_t last_seq = 0;
  {
    // The shard's writer lock is held only for this in-memory capture —
    // readers and writers proceed while the snapshot hits the disk below.
    std::unique_lock lock(c.shards_[shard]->mu);
    last_seq = w.next_seq() - 1;
    state = c.shard_to_json(shard);
  }
  // The captured state may include applied members of logical commits;
  // their commit records must hit the disk before the snapshot exists, or
  // a power loss could keep this member (inside the snapshot) while
  // erasing every other one. Synced after the capture so every record
  // covering captured state is included.
  sync_commit_wal_if_pending();
  write_snapshot(dir_ / (key + ".snapshot"), std::move(state), last_seq,
                 opts_.fault);
  // Compact the WAL only if nothing was appended since the capture: a
  // record that landed in between is not covered by the snapshot and must
  // survive for replay (recovery skips seq <= the snapshot's last_seq).
  w.reset_if_covered(last_seq);
  // The snapshot was fsynced before its rename, so everything up to
  // last_seq is durable without a WAL fsync — release any waiters.
  if (committer_) committer_->mark_durable(key, last_seq);
}

void StorageEngine::checkpoint_all() {
  if (store_ == nullptr) return;
  // Exclusive gate: no logical commit is in flight, and none can start, so
  // after every shard is snapshotted the commit WAL is fully covered.
  std::unique_lock gate(commit_gate_);
  for (auto& [name, c] : store_->collections_) {
    (void)name;
    for (std::size_t k = 0; k < c.shard_count(); ++k) checkpoint_shard(c, k);
  }
  WalWriter* cw = find_wal(commit_wal_stem());
  if (cw != nullptr) {
    const std::uint64_t last_seq = cw->next_seq() - 1;
    cw->reset();
    if (committer_) committer_->mark_durable(commit_wal_stem(), last_seq);
  }
}

void StorageEngine::maybe_compact_commits() {
  if (replaying_) return;
  WalWriter* cw = find_wal(commit_wal_stem());
  if (cw == nullptr || cw->bytes() < opts_.checkpoint_wal_bytes) return;
  checkpoint_all();
}

void StorageEngine::sync() {
  if (committer_) {
    committer_->flush_all();
    return;
  }
  std::lock_guard<std::mutex> lock(wals_mu_);
  for (auto& [key, w] : wals_) {
    (void)key;
    w.wal->sync();
  }
}

}  // namespace gptc::db::engine
