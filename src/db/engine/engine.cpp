#include "db/engine/engine.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "db/document_store.hpp"
#include "db/engine/fsutil.hpp"
#include "db/engine/snapshot.hpp"

namespace gptc::db::engine {

using json::Json;

StorageEngine::StorageEngine(std::filesystem::path dir, EngineOptions opts)
    : dir_(std::move(dir)), opts_(std::move(opts)) {
  std::filesystem::create_directories(dir_);
  // Make the engine directory's own entry durable, or a crash right after
  // creation can take the whole directory (and its fsynced files) with it.
  sync_parent_dir(dir_);
  if (opts_.async_commit)
    committer_ = std::make_unique<GroupCommitter>(opts_.fault);
}

std::size_t StorageEngine::inline_group_commit() const {
  // Async mode: the WalWriter never fsyncs on its own — the commit thread
  // owns every fsync, so durability acks map 1:1 to its batches.
  return opts_.async_commit ? std::numeric_limits<std::size_t>::max()
                            : opts_.group_commit;
}

void StorageEngine::recover(DocumentStore& store) {
  replaying_ = true;
  recovery_warnings_.clear();

  // Enumerate collections from their on-disk artifacts; std::set keeps the
  // recovery order deterministic regardless of directory iteration order.
  std::set<std::string> names;
  std::vector<std::filesystem::path> stale_tmps;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::filesystem::path& p = entry.path();
    const std::string ext = p.extension().string();
    if (ext == ".tmp" && p.stem().extension().string() == ".snapshot") {
      stale_tmps.push_back(p);  // crash before rename: the tmp never counts
    } else if (ext == ".snapshot" || ext == ".wal") {
      names.insert(p.stem().string());
    } else if (ext == ".json") {
      names.insert(p.stem().string());  // legacy export, migration source
    }
  }
  for (const auto& tmp : stale_tmps) std::filesystem::remove(tmp);

  for (const std::string& name : names) {
    Collection& c = store.collection(name);
    const std::filesystem::path snap_path = dir_ / (name + ".snapshot");
    const std::filesystem::path wal_path = dir_ / (name + ".wal");

    std::uint64_t last_seq = 0;
    bool from_legacy_export = false;
    if (const auto snap = read_snapshot(snap_path)) {
      c.restore(snap->collection_state);
      last_seq = snap->last_seq;
    } else if (std::filesystem::exists(dir_ / (name + ".json"))) {
      // One-time migration from the diffable JSON export: it becomes the
      // base state, and we snapshot immediately below so later exports can
      // never be mistaken for a base again.
      std::ifstream in(dir_ / (name + ".json"));
      std::ostringstream buf;
      buf << in.rdbuf();
      const Json j = Json::parse(buf.str());
      if (j.at("name").as_string() != name)
        throw std::runtime_error("engine: collection file " + name +
                                 ".json names collection '" +
                                 j.at("name").as_string() + "'");
      c.restore(j);
      from_legacy_export = true;
    }

    const WalReplay replay = replay_wal(wal_path, wal_format());
    if (replay.error)
      throw std::runtime_error("engine: refusing to open " +
                               wal_path.string() + ": " + *replay.error);
    if (replay.torn_tail)
      recovery_warnings_.push_back(
          name + ": torn final WAL record dropped; log truncated to byte " +
          std::to_string(replay.valid_bytes));
    std::uint64_t next_seq = last_seq + 1;
    for (const auto& rec : replay.records) {
      // Records at or below the snapshot's last_seq are already reflected
      // in the snapshot (crash between rename and WAL truncation).
      if (rec.seq > last_seq) {
        try {
          c.apply_op(rec.payload);
        } catch (const std::exception& e) {
          // A record that passed the CRC but fails to apply is a logic bug
          // or hand-edited log; surface it as this engine's refusal, with
          // the collection and sequence number, not as a bare propagated
          // error from three layers down.
          throw std::runtime_error("engine: refusing to open " +
                                   wal_path.string() + ": record seq " +
                                   std::to_string(rec.seq) +
                                   " failed to apply to collection '" + name +
                                   "': " + e.what());
        } catch (...) {
          throw std::runtime_error("engine: refusing to open " +
                                   wal_path.string() + ": record seq " +
                                   std::to_string(rec.seq) +
                                   " failed to apply to collection '" + name +
                                   "'");
        }
      }
      next_seq = std::max(next_seq, rec.seq + 1);
    }

    Shard shard;
    shard.wal = std::make_unique<WalWriter>(wal_path, wal_format(),
                                            inline_group_commit(), next_seq,
                                            replay.valid_bytes, opts_.fault);
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      auto [it, inserted] = shards_.emplace(name, std::move(shard));
      (void)inserted;
      if (committer_) {
        committer_->attach(name, it->second.wal.get());
        // Everything replayed is already on disk.
        committer_->mark_durable(name, next_seq - 1);
      }
    }
    if (from_legacy_export) {
      checkpoint_locked(c);
      // The export is now absorbed into a snapshot; retire the source so a
      // later recovery whose snapshot goes missing can never silently fall
      // back to this stale state.
      std::filesystem::rename(dir_ / (name + ".json"),
                              dir_ / (name + ".json.migrated"));
      sync_parent_dir(dir_ / (name + ".json"));
    }
  }

  replaying_ = false;
}

StorageEngine::Shard& StorageEngine::shard_for(const std::string& name) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  auto it = shards_.find(name);
  if (it == shards_.end()) {
    Shard shard;
    shard.wal = std::make_unique<WalWriter>(
        dir_ / (name + ".wal"), wal_format(), inline_group_commit(),
        /*next_seq=*/1, /*existing_bytes=*/0, opts_.fault);
    it = shards_.emplace(name, std::move(shard)).first;
    if (committer_) committer_->attach(name, it->second.wal.get());
  }
  return it->second;
}

std::uint64_t StorageEngine::log_op(Collection& c, const Json& op) {
  if (replaying_) return 0;
  const std::uint64_t seq = shard_for(c.name()).wal->append(op);
  if (committer_) committer_->notify_logged(c.name(), seq);
  return seq;
}

std::uint64_t StorageEngine::last_logged_seq(
    const std::string& collection) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(collection);
  return it == shards_.end() ? 0 : it->second.wal->next_seq() - 1;
}

void StorageEngine::wait_durable(const std::string& collection,
                                 std::uint64_t seq) {
  if (seq == 0) return;
  if (committer_) {
    committer_->wait_durable(collection, seq);
    return;
  }
  WalWriter* wal = nullptr;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    const auto it = shards_.find(collection);
    if (it == shards_.end()) return;
    wal = it->second.wal.get();
  }
  wal->sync();
}

std::uint64_t StorageEngine::wal_synced_bytes(
    const std::string& collection) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(collection);
  return it == shards_.end() ? 0 : it->second.wal->synced_bytes();
}

void StorageEngine::maybe_checkpoint(Collection& c) {
  if (replaying_) return;
  if (shard_for(c.name()).wal->bytes() >= opts_.checkpoint_wal_bytes)
    checkpoint_locked(c);
}

void StorageEngine::checkpoint(Collection& c) {
  std::unique_lock lock(*c.mu_);
  checkpoint_locked(c);
}

void StorageEngine::checkpoint_locked(Collection& c) {
  Shard& shard = shard_for(c.name());
  const std::uint64_t last_seq = shard.wal->next_seq() - 1;
  write_snapshot(dir_ / (c.name() + ".snapshot"), c.to_json(), last_seq,
                 opts_.fault);
  // The snapshot now covers every logged record: compact the WAL away.
  shard.wal->reset();
  // The snapshot was fsynced before its rename, so everything up to
  // last_seq is durable without a WAL fsync — release any waiters.
  if (committer_) committer_->mark_durable(c.name(), last_seq);
}

void StorageEngine::sync() {
  if (committer_) {
    committer_->flush_all();
    return;
  }
  std::lock_guard<std::mutex> lock(shards_mu_);
  for (auto& [name, shard] : shards_) {
    (void)name;
    shard.wal->sync();
  }
}

std::uint64_t StorageEngine::wal_bytes(const std::string& collection) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(collection);
  return it == shards_.end() ? 0 : it->second.wal->bytes();
}

}  // namespace gptc::db::engine
