#include "db/engine/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "db/engine/checksum.hpp"
#include "db/engine/fsutil.hpp"

namespace gptc::db::engine {

using json::Json;

namespace {

[[noreturn]] void corrupt(const std::filesystem::path& path,
                          const std::string& why) {
  throw std::runtime_error("snapshot: refusing " + path.string() + ": " +
                           why);
}

}  // namespace

std::optional<Snapshot> read_snapshot(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  // From here on the snapshot EXISTS: any validation failure is corruption
  // and must refuse recovery, not fall back to an older (stale) source.
  if (!text.empty() && text.back() == '\n') text.pop_back();
  if (text.size() < 8 + 1 + 1 || text[8] != ' ')
    corrupt(path, "malformed checksum framing");
  const std::string_view checksum(text.data(), 8);
  const std::string_view payload(text.data() + 9, text.size() - 9);
  if (hex32(crc32(payload)) != checksum) corrupt(path, "checksum mismatch");
  try {
    const Json j = Json::parse(payload);
    if (j.get_or("format", Json(0)).as_int() != 1)
      corrupt(path, "unknown format version");
    Snapshot snap;
    snap.collection_state = j.at("collection");
    snap.last_seq =
        static_cast<std::uint64_t>(j.at("last_seq").as_int());
    return snap;
  } catch (const json::JsonError& e) {
    corrupt(path, std::string("payload does not parse: ") + e.what());
  }
}

void write_snapshot(const std::filesystem::path& path,
                    const Json& collection_state, std::uint64_t last_seq,
                    FaultInjector* fault) {
  Json j = Json::object();
  j["format"] = 1;
  j["last_seq"] = static_cast<std::int64_t>(last_seq);
  j["collection"] = collection_state;
  const std::string payload = j.dump();
  const std::string content = hex32(crc32(payload)) + " " + payload + "\n";

  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
      throw std::runtime_error("snapshot: cannot open " + tmp.string() +
                               ": " + std::strerror(errno));
    std::size_t off = 0;
    while (off < content.size()) {
      const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw std::runtime_error("snapshot: write failed for " + tmp.string() +
                                 ": " + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }

  if (fault && fault->fire(FaultPoint::SnapshotBeforeRename))
    throw CrashInjected("injected crash before snapshot rename: " +
                        path.string());

  std::filesystem::rename(tmp, path);
  sync_parent_dir(path);

  if (fault && fault->fire(FaultPoint::SnapshotAfterRename))
    throw CrashInjected("injected crash after snapshot rename: " +
                        path.string());
}

}  // namespace gptc::db::engine
