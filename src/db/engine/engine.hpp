// StorageEngine — the durability subsystem under DocumentStore.
//
// One engine owns one directory; each collection gets a shard with its own
// write-ahead log (`<name>.wal`) and snapshot (`<name>.snapshot`). The
// existing Collection/DocumentStore API sits unchanged on top: every
// insert/update/remove appends an operation frame to the WAL *before*
// mutating memory (write-ahead), and once a shard's WAL outgrows
// `checkpoint_wal_bytes` the collection is checkpointed — an atomic
// snapshot write followed by WAL truncation (compaction). Opening a
// directory replays snapshot + WAL tail, tolerating a torn final record.
//
// WAL operation payloads (compact JSONL, see wal.hpp for framing):
//
//   {"o":"i","d":{...doc with _id...}}       insert
//   {"o":"u","q":{...},"u":{...}}            update(query, fields)
//   {"o":"r","q":{...}}                      remove(query)
//
// Update/remove are logged as their (deterministic) queries, so replaying
// the log reproduces the exact committed state bit for bit.
//
// Concurrency: mutating entry points (log_op / maybe_checkpoint /
// checkpoint) are serialized per collection by the owning Collection's
// writer lock, but sync() and wal_bytes() may arrive from any thread (a
// DocumentStore::sync() racing a writer on another collection's lock), so
// each WalWriter additionally serializes its own state behind an internal
// mutex; the shard map itself is guarded for concurrent first-touch of
// different collections.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "db/engine/commit.hpp"
#include "db/engine/fault.hpp"
#include "db/engine/siphash.hpp"
#include "db/engine/wal.hpp"
#include "json/json.hpp"

namespace gptc::db {
class Collection;
class DocumentStore;
}  // namespace gptc::db

namespace gptc::db::engine {

struct EngineOptions {
  /// fsync once per this many WAL appends (group commit); 1 = every append.
  /// Ignored when async_commit is on (the commit thread batches instead).
  std::size_t group_commit = 16;
  /// Checkpoint (snapshot + WAL truncation) when a shard's WAL exceeds this.
  std::uint64_t checkpoint_wal_bytes = 1u << 20;
  /// Keyed SipHash WAL checksums instead of CRC32 (see wal.hpp).
  std::optional<SipHashKey> wal_checksum_key;
  /// Asynchronous group commit (commit.hpp): appends never fsync inline; a
  /// dedicated commit thread batches fsyncs across writers, and callers
  /// that need a durability ack block in wait_durable(). This is the mode
  /// the network server runs in.
  bool async_commit = false;
  /// Test hook; not owned, may be nullptr.
  FaultInjector* fault = nullptr;
};

class StorageEngine {
 public:
  StorageEngine(std::filesystem::path dir, EngineOptions opts);

  const std::filesystem::path& dir() const { return dir_; }
  const EngineOptions& options() const { return opts_; }

  /// Rebuilds every collection found in the directory (snapshot, WAL, or a
  /// legacy `<name>.json` export used as a one-time migration source) into
  /// `store`, attaching the engine to each. Called once by
  /// DocumentStore::open_durable before the store is visible to anyone.
  /// Throws std::runtime_error when an artifact is rejected rather than
  /// merely torn: a snapshot that exists but fails its checksum/parse, or a
  /// WAL with mid-log corruption / a wrong checksum key — refusing to open
  /// beats silently discarding committed records.
  void recover(DocumentStore& store);

  /// Non-fatal recovery notes from the last recover() call — one entry per
  /// collection whose WAL ended in a torn final record (truncated back to
  /// the last complete frame).
  const std::vector<std::string>& recovery_warnings() const {
    return recovery_warnings_;
  }

  /// Appends one op frame for `c`'s shard and returns its WAL sequence
  /// number (0 while replaying). Called by Collection mutators under their
  /// writer lock, before the op is applied in memory.
  std::uint64_t log_op(Collection& c, const json::Json& op);

  /// Highest WAL sequence logged for `collection` (0 if no shard yet).
  std::uint64_t last_logged_seq(const std::string& collection) const;

  /// Blocks until every op of `collection` with sequence <= `seq` is
  /// durable (fsynced WAL frames or a covering snapshot). With
  /// async_commit this waits on the commit thread and throws CrashInjected
  /// if it hit an armed fault; otherwise it fsyncs the shard inline. The
  /// server acks uploads only after this returns. seq 0 is a no-op.
  void wait_durable(const std::string& collection, std::uint64_t seq);

  /// WAL bytes known durable (last fsync) for one shard — the offset crash
  /// tests truncate to when modelling a power loss.
  std::uint64_t wal_synced_bytes(const std::string& collection) const;

  /// Checkpoints `c` if its WAL crossed the threshold. Called by Collection
  /// mutators under their writer lock, after the op is applied.
  void maybe_checkpoint(Collection& c);

  /// Forces a checkpoint of `c` (takes `c`'s writer lock itself).
  void checkpoint(Collection& c);

  /// fsyncs all shards' pending group-commit batches.
  void sync();

  /// Current WAL size of one shard (0 if the collection has no shard yet).
  std::uint64_t wal_bytes(const std::string& collection) const;

 private:
  struct Shard {
    std::unique_ptr<WalWriter> wal;
  };

  WalFormat wal_format() const { return WalFormat{opts_.wal_checksum_key}; }
  /// Inline (WalWriter-side) fsync batching: disabled entirely in async
  /// mode, where the commit thread owns every fsync.
  std::size_t inline_group_commit() const;
  Shard& shard_for(const std::string& name);
  void checkpoint_locked(Collection& c);

  std::filesystem::path dir_;
  EngineOptions opts_;
  std::vector<std::string> recovery_warnings_;
  bool replaying_ = false;
  mutable std::mutex shards_mu_;  // guards the map shape only
  std::map<std::string, Shard> shards_;
  /// Async commit thread; null unless opts_.async_commit. Declared last so
  /// it is destroyed (thread joined) before the shards it points into.
  std::unique_ptr<GroupCommitter> committer_;
};

}  // namespace gptc::db::engine
