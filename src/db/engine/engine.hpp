// StorageEngine — the durability subsystem under DocumentStore.
//
// One engine owns one directory. Every collection is split into N shards
// (uniform per store, N = EngineOptions::shards or whatever the directory
// was written with), and each shard owns its own write-ahead log and
// snapshot, so writers to different shards never share an fsync batch or a
// WAL mutex. The existing Collection/DocumentStore API sits unchanged on
// top: every insert/update/remove appends an operation frame to its
// shard's WAL *before* mutating memory (write-ahead), and once a shard's
// WAL outgrows `checkpoint_wal_bytes` that shard alone is checkpointed —
// an atomic snapshot write followed by WAL truncation (compaction).
// Opening a directory replays every shard's snapshot + WAL tail in
// parallel (src/parallel), tolerating a torn final record per log.
//
// On-disk layout (N = shard count):
//
//   engine.manifest               {"format":1,"shards":N} — atomic flip
//   <coll>.wal / <coll>.snapshot              when N == 1 (legacy layout)
//   <coll>.s<k>of<N>.wal / ...snapshot        when N  > 1, k in [0, N)
//   engine.commit.s<N>.wal        logical cross-shard commit records
//
// N == 1 keeps the exact pre-sharding file names, so directories written
// by older builds open unchanged. Opening with a different
// EngineOptions::shards than the directory holds migrates it: the store is
// recovered at the old count, repartitioned in memory, written out as
// full-coverage snapshots under the new names, and committed by atomically
// rewriting engine.manifest — the single flip point. Files whose embedded
// shard count disagrees with the manifest are debris from a crashed
// migration (the flip never happened, or cleanup never finished) and are
// deleted on open; a missing manifest next to sharded files is refused.
//
// Shard WAL operation payloads (compact JSONL, see wal.hpp for framing):
//
//   {"o":"i","d":{...doc with _id...}}       insert
//   {"o":"b","ds":[{...},...]}               atomic batch insert
//   {"o":"u","q":{...},"u":{...}}            update(query, fields)
//   {"o":"r","q":{...}}                      remove(query)
//
// Logical cross-shard commits: a mutation spanning several shards or
// collections (a multi-shard batch insert, an N>1 update/remove, a
// DocumentStore::insert_atomic crowd upload touching problem + machine +
// runs collections) is ONE frame in the engine commit WAL:
//
//   {"m":[{"c":<coll>,"s":<shard>,"q":<seq>,"op":{...}}, ...]}
//
// Each member shard only *reserves* a slot in its own sequence space
// (WalWriter::reserve — no frame), and the commit record carries those
// seqs, so replay merges a shard's local frames with its commit members
// back into exact application order. Atomicity is the single frame:
// recovery applies every member or — when the record never reached the
// disk — none, and the durability ack (CommitTicket) waits on the commit
// WAL alone. Before any shard snapshot is written the commit WAL is
// fsynced, so a snapshot can never durably cover one member of a commit
// whose record (and hence whose other members) a power loss could erase.
//
// Concurrency and lock order (outermost first):
//   commit_gate (shared for cross-shard commits, exclusive for commit-WAL
//   compaction) -> collection shard shared_mutexes (collection name order,
//   then ascending shard index) -> WalWriter/GroupCommitter internal
//   mutexes (leaves). Single-shard mutators skip the gate entirely.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/engine/commit.hpp"
#include "db/engine/fault.hpp"
#include "db/engine/siphash.hpp"
#include "db/engine/wal.hpp"
#include "json/json.hpp"

namespace gptc::db {
class Collection;
class DocumentStore;
}  // namespace gptc::db

namespace gptc::db::engine {

struct EngineOptions {
  /// fsync once per this many WAL appends (group commit); 1 = every append.
  /// Ignored when async_commit is on (the commit thread batches instead).
  std::size_t group_commit = 16;
  /// Checkpoint (snapshot + WAL truncation) when a shard's WAL exceeds
  /// this; the engine commit WAL triggers a full compaction at the same
  /// threshold.
  std::uint64_t checkpoint_wal_bytes = 1u << 20;
  /// Keyed SipHash WAL checksums instead of CRC32 (see wal.hpp).
  std::optional<SipHashKey> wal_checksum_key;
  /// Asynchronous group commit (commit.hpp): appends never fsync inline; a
  /// dedicated commit thread batches fsyncs across writers, and callers
  /// that need a durability ack block in wait_durable(). This is the mode
  /// the network server runs in.
  bool async_commit = false;
  /// Shards per collection: 0 = whatever the directory holds (1 for a
  /// fresh one); any other value migrates the directory on open if it
  /// disagrees.
  std::size_t shards = 0;
  /// Worker threads for parallel shard recovery; 0 = hardware concurrency.
  std::size_t recovery_threads = 0;
  /// Test hook; not owned, may be nullptr.
  FaultInjector* fault = nullptr;
};

/// Durability token: the WAL a mutation's commit frame lives in plus its
/// sequence there. seq 0 means "nothing to wait for" (non-durable store or
/// empty batch). Returned by Collection/DocumentStore mutators and handed
/// back to StorageEngine::wait_durable — the server acks an upload only
/// after its ticket resolves.
struct CommitTicket {
  std::string wal;
  std::uint64_t seq = 0;
};

class StorageEngine {
 public:
  StorageEngine(std::filesystem::path dir, EngineOptions opts);

  const std::filesystem::path& dir() const { return dir_; }
  const EngineOptions& options() const { return opts_; }

  /// Shards per collection for this store (resolved against the directory
  /// manifest; stable after recover()).
  std::size_t shard_count() const { return shard_count_; }

  /// WAL/snapshot file stem for one shard: "<coll>" when `of` is 1
  /// (legacy-compatible), else "<coll>.s<k>of<of>". Doubles as the
  /// GroupCommitter key and the argument to wal_bytes()/wait_durable().
  static std::string shard_stem(const std::string& collection,
                                std::size_t shard, std::size_t of);

  /// Stem of the engine commit WAL for the current shard count.
  std::string commit_wal_stem() const;

  /// Rebuilds every collection found in the directory (snapshots, shard
  /// WALs, commit-WAL members, or a legacy `<name>.json` export used as a
  /// one-time migration source) into `store`, attaching the engine to
  /// each; shards recover in parallel. Called once by
  /// DocumentStore::open_durable before the store is visible to anyone.
  /// Performs the shard-count migration when EngineOptions::shards
  /// disagrees with the directory. Throws std::runtime_error when an
  /// artifact is rejected rather than merely torn: a snapshot that exists
  /// but fails its checksum/parse, a WAL with mid-log corruption / a wrong
  /// checksum key, or sharded files without a manifest — refusing to open
  /// beats silently discarding committed records.
  void recover(DocumentStore& store);

  /// Non-fatal recovery notes from the last recover() call — one entry per
  /// shard whose WAL ended in a torn final record (truncated back to the
  /// last complete frame). Deterministic order (collection, then shard).
  const std::vector<std::string>& recovery_warnings() const {
    return recovery_warnings_;
  }

  /// Appends one op frame to shard `shard` of `c` and returns its WAL
  /// sequence number (0 while replaying). Called by Collection mutators
  /// under that shard's writer lock, before the op is applied in memory.
  std::uint64_t log_op(Collection& c, std::size_t shard, const json::Json& op);

  /// One member of a logical cross-shard commit.
  struct CommitMember {
    const Collection* collection = nullptr;
    std::size_t shard = 0;
    json::Json op;
  };

  /// Appends ONE commit-WAL frame covering every member, reserving each
  /// member's slot in its shard's sequence space first. The caller must
  /// hold commit_gate() shared plus every member shard's writer lock, and
  /// applies the members in memory only after this returns. Throws (and
  /// leaves nothing to recover — reserved slots are mere gaps) at the
  /// CommitReserve/CommitAppend fault points and on I/O failure.
  CommitTicket log_commit(const std::vector<CommitMember>& members);

  /// Outermost lock of the engine: cross-shard commits hold it shared,
  /// commit-WAL compaction exclusively. See the lock-order note above.
  std::shared_mutex& commit_gate() { return commit_gate_; }

  /// Highest WAL sequence logged for the WAL keyed `wal` — a shard_stem()
  /// or commit_wal_stem() value (0 if that WAL does not exist yet).
  std::uint64_t last_logged_seq(const std::string& wal) const;

  /// Blocks until every frame of WAL `wal` with sequence <= `seq` is
  /// durable (fsynced frames or a covering snapshot). With async_commit
  /// this waits on the commit thread and throws CrashInjected if it hit an
  /// armed fault; otherwise it fsyncs inline. seq 0 is a no-op.
  void wait_durable(const std::string& wal, std::uint64_t seq);
  void wait_durable(const CommitTicket& ticket) {
    wait_durable(ticket.wal, ticket.seq);
  }

  /// WAL bytes known durable (last fsync) for one WAL — the offset crash
  /// tests truncate to when modelling a power loss.
  std::uint64_t wal_synced_bytes(const std::string& wal) const;

  /// Current size of one WAL (0 if it does not exist yet).
  std::uint64_t wal_bytes(const std::string& wal) const;

  /// Checkpoints shard `shard` of `c` if its WAL crossed the threshold.
  /// Called by Collection mutators AFTER releasing the shard's writer lock
  /// (checkpoint_shard takes it briefly for the state capture; the snapshot
  /// I/O runs with the shard unlocked).
  // blocking-ok: size-amortized checkpoint entry point — the snapshot I/O runs outside any shard lock
  void maybe_checkpoint(Collection& c, std::size_t shard);

  /// Forces a checkpoint of every shard of `c` (takes the shard locks
  /// itself, one brief capture at a time).
  void checkpoint(Collection& c);

  /// Full compaction: checkpoints every shard of every collection and
  /// truncates the engine commit WAL (whose records the fresh snapshots
  /// now cover). Takes commit_gate() exclusively.
  void checkpoint_all();

  /// Size-triggered checkpoint_all(): runs when the commit WAL outgrew
  /// checkpoint_wal_bytes. Callers must hold NO engine or shard locks.
  // blocking-ok: size-amortized compaction entry point — runs with no caller-held locks, only past the WAL size threshold
  void maybe_compact_commits();

  /// fsyncs all WALs' pending group-commit batches.
  void sync();

 private:
  struct Wal {
    std::unique_ptr<WalWriter> wal;
  };

  WalFormat wal_format() const { return WalFormat{opts_.wal_checksum_key}; }
  /// Inline (WalWriter-side) fsync batching: disabled entirely in async
  /// mode, where the commit thread owns every fsync.
  std::size_t inline_group_commit() const;
  /// Gets (creating empty on first touch) the WAL keyed `key`, stored at
  /// dir_/<key>.wal.
  WalWriter& wal_for(const std::string& key);
  WalWriter* find_wal(const std::string& key) const;
  /// Commit records folded into a snapshot must be durable first — else a
  /// power loss could keep the snapshot (one member applied) but erase the
  /// record (every other member lost). Cheap when nothing is pending.
  void sync_commit_wal_if_pending();
  /// Snapshots one shard and compacts its WAL. Takes the shard's writer
  /// lock only for the in-memory state capture; the commit-WAL sync, the
  /// snapshot write and the WAL truncation all run with the shard unlocked,
  /// so writers block for the serialization, not the disk.
  void checkpoint_shard(Collection& c, std::size_t shard);
  // guard-ok: single-threaded recovery-time shard-count migration
  void migrate_shard_count(DocumentStore& store, std::size_t from,
                           std::size_t to);

  std::filesystem::path dir_;  // guard-ok: immutable after construction
  EngineOptions opts_;         // guard-ok: immutable after construction
  // guard-ok: written only during single-threaded recovery/migration
  std::size_t shard_count_ = 1;
  // guard-ok: written only during single-threaded recovery
  std::vector<std::string> recovery_warnings_;
  // guard-ok: toggled only during single-threaded recovery replay
  bool replaying_ = false;
  // guard-ok: set once by recover() before any concurrent use
  DocumentStore* store_ = nullptr;  // owner of this engine
  std::shared_mutex commit_gate_;
  /// Serializes whole checkpoints. Without it, two threads interleaving
  /// capture and rename for the same shard could install an older snapshot
  /// over a newer one after the newer one already truncated the WAL.
  std::mutex checkpoint_mu_;
  mutable std::mutex wals_mu_;  // guards the map shape only
  std::map<std::string, Wal> wals_;  // guarded_by: wals_mu_
  /// Async commit thread; null unless opts_.async_commit. Declared last so
  /// it is destroyed (thread joined) before the WALs it points into.
  std::unique_ptr<GroupCommitter> committer_;
};

}  // namespace gptc::db::engine
