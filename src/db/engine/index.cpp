#include "db/engine/index.hpp"

#include <algorithm>
#include <limits>

namespace gptc::db::engine {

using json::Json;

std::optional<IndexKey> IndexKey::from_json(const Json& v) {
  IndexKey key;
  switch (v.type()) {
    case Json::Type::Null:
      key.rank = Rank::Null;
      return key;
    case Json::Type::Bool:
      key.rank = Rank::Bool;
      key.boolean = v.as_bool();
      return key;
    case Json::Type::Int:
    case Json::Type::Double:
      key.rank = Rank::Number;
      key.number = v.as_double();
      return key;
    case Json::Type::String:
      key.rank = Rank::String;
      key.string = v.as_string();
      return key;
    case Json::Type::Array:
    case Json::Type::Object:
      return std::nullopt;
  }
  return std::nullopt;
}

bool IndexKey::operator<(const IndexKey& other) const {
  if (rank != other.rank) return rank < other.rank;
  switch (rank) {
    case Rank::Null: return false;
    case Rank::Bool: return !boolean && other.boolean;
    case Rank::Number: return number < other.number;
    case Rank::String: return string < other.string;
  }
  return false;
}

namespace {

IndexKey rank_min(IndexKey::Rank rank) {
  IndexKey key;
  key.rank = rank;
  key.boolean = false;
  key.number = -std::numeric_limits<double>::infinity();
  key.string.clear();
  return key;
}

bool is_operator_object(const Json& j) {
  if (!j.is_object() || j.as_object().empty()) return false;
  for (const auto& [k, v] : j.as_object()) {
    (void)v;
    if (k.empty() || k[0] != '$') return false;
  }
  return true;
}

bool is_scalar(const Json& j) { return !j.is_array() && !j.is_object(); }

}  // namespace

void OrderedIndex::add(const Json& doc, std::int64_t id) {
  const Json* value = query::lookup(doc, path_);
  if (!value) return;
  const auto key = IndexKey::from_json(*value);
  if (!key) return;  // arrays/objects are not indexed (cannot match scalars)
  auto& ids = postings_[*key];
  ids.insert(std::upper_bound(ids.begin(), ids.end(), id), id);
}

void OrderedIndex::erase(const Json& doc, std::int64_t id) {
  const Json* value = query::lookup(doc, path_);
  if (!value) return;
  const auto key = IndexKey::from_json(*value);
  if (!key) return;
  const auto it = postings_.find(*key);
  if (it == postings_.end()) return;
  std::erase(it->second, id);
  if (it->second.empty()) postings_.erase(it);
}

void OrderedIndex::collect_equal(const IndexKey& key,
                                 std::vector<std::int64_t>& out) const {
  const auto it = postings_.find(key);
  if (it == postings_.end()) return;
  out.insert(out.end(), it->second.begin(), it->second.end());
}

void OrderedIndex::collect_range(IndexKey::Rank rank, const IndexKey* lo,
                                 bool lo_open, const IndexKey* hi,
                                 bool hi_open,
                                 std::vector<std::int64_t>& out) const {
  auto it = lo ? (lo_open ? postings_.upper_bound(*lo)
                          : postings_.lower_bound(*lo))
               : postings_.lower_bound(rank_min(rank));
  for (; it != postings_.end(); ++it) {
    const IndexKey& key = it->first;
    if (key.rank != rank) break;
    if (hi && (hi_open ? !(key < *hi) : *hi < key)) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
}

std::optional<std::vector<std::int64_t>> OrderedIndex::candidates(
    const Json& condition) const {
  std::vector<std::int64_t> out;

  if (!is_operator_object(condition)) {
    if (!is_scalar(condition)) return std::nullopt;
    const auto key = IndexKey::from_json(condition);
    if (!key) return std::nullopt;
    collect_equal(*key, out);
    return out;
  }

  const auto& ops = condition.as_object();
  // `$exists: false` can match documents missing from the index entirely —
  // the planner must not narrow such a condition.
  const auto exists_it = ops.find("$exists");
  if (exists_it != ops.end() && exists_it->second.is_bool() &&
      !exists_it->second.as_bool())
    return std::nullopt;

  // All operators in one condition are conjunctive, so serving any single
  // one of them yields a superset of the true matches; the first usable op
  // (deterministic: Json::Object is a sorted map) wins.
  for (const auto& [op, operand] : ops) {
    if (op == "$eq") {
      if (!is_scalar(operand)) continue;
      const auto key = IndexKey::from_json(operand);
      if (!key) continue;
      collect_equal(*key, out);
      return out;
    }
    if (op == "$in") {
      if (!operand.is_array()) continue;
      bool usable = true;
      for (const auto& item : operand.as_array())
        if (!is_scalar(item)) {
          usable = false;
          break;
        }
      if (!usable) continue;
      for (const auto& item : operand.as_array()) {
        const auto key = IndexKey::from_json(item);
        if (key) collect_equal(*key, out);
      }
      std::sort(out.begin(), out.end());
      // Duplicate operands ({"$in":[2,2.0]}) merge the same posting list
      // twice; candidates must stay a set or find()/count() double-report.
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    if (op == "$gt" || op == "$gte" || op == "$lt" || op == "$lte") {
      // Range operators only ever match same-class values (the match
      // engine's compare_lt is false across types), and only number/string
      // operands have straightforward semantics — anything else falls back.
      if (!operand.is_number() && !operand.is_string()) continue;
      const auto bound = IndexKey::from_json(operand);
      if (!bound) continue;
      if (op == "$gt")
        collect_range(bound->rank, &*bound, /*lo_open=*/true, nullptr, false,
                      out);
      else if (op == "$gte")
        collect_range(bound->rank, &*bound, /*lo_open=*/false, nullptr, false,
                      out);
      else if (op == "$lt")
        collect_range(bound->rank, nullptr, false, &*bound, /*hi_open=*/true,
                      out);
      else
        collect_range(bound->rank, nullptr, false, &*bound, /*hi_open=*/false,
                      out);
      std::sort(out.begin(), out.end());
      return out;
    }
    // $ne, $nin, $exists:true, ... — not index-servable, try the next op.
  }
  return std::nullopt;
}

std::optional<std::size_t> OrderedIndex::estimate(const Json& condition) const {
  // Mirrors candidates() decision-for-decision: same usability tests, same
  // first-usable-op selection, so the returned size is exactly the length
  // of the id list candidates() would build (posting lists are disjoint
  // across keys).
  const auto equal_size = [&](const IndexKey& key) -> std::size_t {
    const auto it = postings_.find(key);
    return it == postings_.end() ? 0 : it->second.size();
  };

  if (!is_operator_object(condition)) {
    if (!is_scalar(condition)) return std::nullopt;
    const auto key = IndexKey::from_json(condition);
    if (!key) return std::nullopt;
    return equal_size(*key);
  }

  const auto& ops = condition.as_object();
  const auto exists_it = ops.find("$exists");
  if (exists_it != ops.end() && exists_it->second.is_bool() &&
      !exists_it->second.as_bool())
    return std::nullopt;

  for (const auto& [op, operand] : ops) {
    if (op == "$eq") {
      if (!is_scalar(operand)) continue;
      const auto key = IndexKey::from_json(operand);
      if (!key) continue;
      return equal_size(*key);
    }
    if (op == "$in") {
      if (!operand.is_array()) continue;
      bool usable = true;
      for (const auto& item : operand.as_array())
        if (!is_scalar(item)) {
          usable = false;
          break;
        }
      if (!usable) continue;
      // Distinct keys only, like candidates()'s sort+unique over ids:
      // [2, 2.0] selects one posting list, not the same list twice.
      std::vector<IndexKey> keys;
      for (const auto& item : operand.as_array())
        if (auto key = IndexKey::from_json(item))
          keys.push_back(std::move(*key));
      std::sort(keys.begin(), keys.end());
      std::size_t n = 0;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i > 0 && !(keys[i - 1] < keys[i])) continue;
        n += equal_size(keys[i]);
      }
      return n;
    }
    if (op == "$gt" || op == "$gte" || op == "$lt" || op == "$lte") {
      if (!operand.is_number() && !operand.is_string()) continue;
      const auto bound = IndexKey::from_json(operand);
      if (!bound) continue;
      auto it = (op == "$gt")    ? postings_.upper_bound(*bound)
                : (op == "$gte") ? postings_.lower_bound(*bound)
                                 : postings_.lower_bound(rank_min(bound->rank));
      std::size_t n = 0;
      for (; it != postings_.end(); ++it) {
        const IndexKey& key = it->first;
        if (key.rank != bound->rank) break;
        if (op == "$lt" && !(key < *bound)) break;
        if (op == "$lte" && *bound < key) break;
        n += it->second.size();
      }
      return n;
    }
  }
  return std::nullopt;
}

namespace {

/// Shared walk for exact_count / exact_exists: visits every posting list
/// the condition selects. `visit` returns true to keep walking, false to
/// stop early (exists probes).
template <typename Postings, typename Visit>
void walk_exact(const Postings& postings, const Json& condition,
                const Visit& visit) {
  const auto visit_equal = [&](const IndexKey& key) {
    const auto it = postings.find(key);
    return it == postings.end() || visit(it->second);
  };

  if (!is_operator_object(condition)) {
    const auto key = IndexKey::from_json(condition);
    if (key) visit_equal(*key);
    return;
  }
  const auto& [op, operand] = *condition.as_object().begin();
  if (op == "$eq") {
    const auto key = IndexKey::from_json(operand);
    if (key) visit_equal(*key);
    return;
  }
  if (op == "$in") {
    // Numerically equal operands ([2, 2.0]) map to one IndexKey; visiting
    // each distinct key once keeps the count a set cardinality, exactly
    // like candidates()'s sort+unique.
    std::vector<IndexKey> keys;
    for (const auto& item : operand.as_array())
      if (auto key = IndexKey::from_json(item)) keys.push_back(std::move(*key));
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i > 0 && !(keys[i - 1] < keys[i])) continue;  // duplicate key
      if (!visit_equal(keys[i])) return;
    }
    return;
  }
  const auto bound = IndexKey::from_json(operand);
  if (!bound) return;
  auto it = (op == "$gt")    ? postings.upper_bound(*bound)
            : (op == "$gte") ? postings.lower_bound(*bound)
                             : postings.lower_bound(rank_min(bound->rank));
  for (; it != postings.end(); ++it) {
    const IndexKey& key = it->first;
    if (key.rank != bound->rank) break;
    if (op == "$lt" && !(key < *bound)) break;
    if (op == "$lte" && *bound < key) break;
    if (!visit(it->second)) return;
  }
}

}  // namespace

bool OrderedIndex::exact(const Json& condition) {
  if (!is_operator_object(condition))
    return is_scalar(condition) && IndexKey::from_json(condition).has_value();
  const auto& ops = condition.as_object();
  // Operators are conjunctive and candidates() only ever serves one of
  // them, so exactness requires the condition to BE one operator.
  if (ops.size() != 1) return false;
  const auto& [op, operand] = *ops.begin();
  if (op == "$eq")
    return is_scalar(operand) && IndexKey::from_json(operand).has_value();
  if (op == "$in") {
    if (!operand.is_array()) return false;
    for (const auto& item : operand.as_array())
      if (!is_scalar(item)) return false;
    return true;
  }
  if (op == "$gt" || op == "$gte" || op == "$lt" || op == "$lte")
    // Same restriction as candidates(): ordering across types is false in
    // the match engine, and only number/string operands order usefully.
    return operand.is_number() || operand.is_string();
  return false;
}

std::size_t OrderedIndex::exact_count(const Json& condition) const {
  std::size_t n = 0;
  walk_exact(postings_, condition, [&](const std::vector<std::int64_t>& ids) {
    n += ids.size();
    return true;
  });
  return n;
}

bool OrderedIndex::exact_exists(const Json& condition) const {
  bool found = false;
  walk_exact(postings_, condition, [&](const std::vector<std::int64_t>& ids) {
    found = found || !ids.empty();
    return !found;
  });
  return found;
}

}  // namespace gptc::db::engine
