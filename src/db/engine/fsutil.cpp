#include "db/engine/fsutil.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace gptc::db::engine {

void sync_parent_dir(const std::filesystem::path& path) {
  const std::filesystem::path dir = path.parent_path();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // directory sync is best-effort on exotic filesystems
  ::fsync(fd);
  ::close(fd);
}

}  // namespace gptc::db::engine
