// Filesystem durability helpers shared by the WAL and snapshot writers.
#pragma once

#include <filesystem>

namespace gptc::db::engine {

/// Best-effort fsync of `path`'s parent directory, making `path`'s own
/// directory entry durable after a create or rename. Failures are ignored:
/// some filesystems refuse to open or fsync directories, and losing the
/// entry is then no worse than before the call.
void sync_parent_dir(const std::filesystem::path& path);

}  // namespace gptc::db::engine
