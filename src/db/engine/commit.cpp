#include "db/engine/commit.hpp"

#include <exception>
#include <utility>
#include <vector>

#include "db/engine/wal.hpp"

namespace gptc::db::engine {

GroupCommitter::GroupCommitter(FaultInjector* fault)
    // thread_ is the last member, so every field run() touches is already
    // initialized when the commit thread starts here.
    : fault_(fault), thread_([this] { run(); }) {}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  thread_.join();
}

void GroupCommitter::attach(const std::string& shard, WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[shard].wal = wal;
}

void GroupCommitter::notify_logged(const std::string& shard,
                                   std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ShardState& s = shards_[shard];
    if (seq > s.logged) s.logged = seq;
  }
  work_cv_.notify_one();
}

void GroupCommitter::mark_durable(const std::string& shard,
                                  std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ShardState& s = shards_[shard];
    if (seq > s.durable) s.durable = seq;
    if (seq > s.logged) s.logged = seq;
  }
  done_cv_.notify_all();
}

void GroupCommitter::wait_durable(const std::string& shard,
                                  std::uint64_t seq) {
  if (seq == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.notify_one();
  done_cv_.wait(lock, [&] {
    const auto it = shards_.find(shard);
    return crashed_ || stop_ || (it != shards_.end() && it->second.durable >= seq);
  });
  // A request whose fsync completed before the crash still acks: durability
  // was reached, whatever happened to later batches.
  const auto it = shards_.find(shard);
  if (it != shards_.end() && it->second.durable >= seq) return;
  if (crashed_) throw CrashInjected(crash_reason_);
  throw std::runtime_error("group commit: committer stopped before seq " +
                           std::to_string(seq) + " of '" + shard +
                           "' became durable");
}

bool GroupCommitter::commit_pending(bool fire_fault) {
  // Snapshot the work list under the lock; fsync outside it so appenders
  // (who take mu_ in notify_logged) never wait on disk latency.
  std::vector<std::pair<std::string, std::uint64_t>> work;
  std::vector<WalWriter*> wals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, s] : shards_) {
      if (s.wal != nullptr && s.logged > s.durable) {
        work.emplace_back(name, s.logged);
        wals.push_back(s.wal);
      }
    }
  }
  if (work.empty()) return true;

  if (fire_fault && fault_ && fault_->fire(FaultPoint::CommitFsync)) {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
    crash_reason_ =
        "injected crash in group-commit thread before batch fsync";
    return false;
  }

  std::string error;
  std::size_t synced = 0;
  for (; synced < wals.size(); ++synced) {
    try {
      wals[synced]->sync();
    } catch (const std::exception& e) {
      error = e.what();
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < synced; ++i) {
      ShardState& s = shards_[work[i].first];
      if (work[i].second > s.durable) s.durable = work[i].second;
    }
    if (!error.empty()) {
      crashed_ = true;
      crash_reason_ = "group commit: " + error;
    }
  }
  return error.empty();
}

void GroupCommitter::run() noexcept {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        if (stop_ || crashed_) return true;
        for (const auto& [name, s] : shards_) {
          (void)name;
          if (s.wal != nullptr && s.logged > s.durable) return true;
        }
        return false;
      });
      if (stop_ || crashed_) break;
    }
    const bool ok = commit_pending(/*fire_fault=*/true);
    done_cv_.notify_all();
    if (!ok) break;  // crashed: leave remaining waiters to the throw path
  }
  done_cv_.notify_all();
}

void GroupCommitter::flush_all() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) throw CrashInjected(crash_reason_);
  }
  // The caller pays the fsync itself (an explicit DocumentStore::sync()
  // wants durability *now*, not at the commit thread's leisure); the armed
  // fault stays reserved for the background thread's batches.
  if (!commit_pending(/*fire_fault=*/false)) {
    std::lock_guard<std::mutex> lock(mu_);
    throw CrashInjected(crash_reason_);
  }
  done_cv_.notify_all();
}

}  // namespace gptc::db::engine
