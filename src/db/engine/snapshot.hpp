// Atomic collection snapshots.
//
// A snapshot is the full serialized collection state plus the WAL sequence
// number it covers, written as a single checksummed line:
//
//   <crc32:8 hex> {"format":1,"last_seq":N,"collection":{...}}\n
//
// Writes are crash-atomic: the state goes to `<final>.tmp`, is fsync'd,
// and is renamed over the final path (POSIX rename atomicity), after which
// the directory is fsync'd. A crash before the rename leaves the old
// snapshot (or none) plus the intact WAL; a crash after it leaves the new
// snapshot plus a WAL whose records up to `last_seq` are replay-skipped —
// either way recovery reconstructs exactly the committed state. Stale
// `.tmp` files are discarded on open.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "db/engine/fault.hpp"
#include "json/json.hpp"

namespace gptc::db::engine {

struct Snapshot {
  json::Json collection_state;  // Collection::to_json() shape
  std::uint64_t last_seq = 0;   // highest WAL seq the snapshot includes
};

/// nullopt if the file is missing (recovery then falls back to WAL-only
/// replay or a legacy export). A snapshot that EXISTS but fails its
/// checksum, parse, or format check throws std::runtime_error instead:
/// falling back to an older source would silently resurrect stale state.
std::optional<Snapshot> read_snapshot(const std::filesystem::path& path);

/// Atomically replaces `path` with the given state. Throws CrashInjected at
/// an armed SnapshotBeforeRename/SnapshotAfterRename fault point.
void write_snapshot(const std::filesystem::path& path,
                    const json::Json& collection_state, std::uint64_t last_seq,
                    FaultInjector* fault);

}  // namespace gptc::db::engine
