#include "db/engine/checksum.hpp"

#include <array>

namespace gptc::db::engine {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data)
    c = kCrcTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string hex32(std::uint32_t v) {
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xFu];
    v >>= 4;
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xFu];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint32_t> parse_hex32(std::string_view s) {
  if (s.size() != 8) return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    const int d = hex_value(c);
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<std::uint32_t>(d);
  }
  return v;
}

std::optional<std::uint64_t> parse_hex64(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    const int d = hex_value(c);
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

}  // namespace gptc::db::engine
