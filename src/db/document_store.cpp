#include "db/document_store.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace gptc::db {

namespace {

bool compare_lt(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) return a.as_double() < b.as_double();
  if (a.is_string() && b.is_string()) return a.as_string() < b.as_string();
  return false;  // incomparable types never satisfy an ordering operator
}

bool in_list(const Json& value, const Json& list) {
  for (const auto& item : list.as_array())
    if (value == item) return true;
  return false;
}

/// Applies one operator object ({"$gte": 5, "$lt": 9}) to a present value.
bool match_operators(const Json& value, const Json& ops) {
  for (const auto& [op, operand] : ops.as_object()) {
    if (op == "$eq") {
      if (!(value == operand)) return false;
    } else if (op == "$ne") {
      if (value == operand) return false;
    } else if (op == "$gt") {
      if (!compare_lt(operand, value)) return false;
    } else if (op == "$gte") {
      if (compare_lt(value, operand)) return false;
      if (!value.is_number() && !value.is_string()) return false;
      if (value.is_number() != operand.is_number()) return false;
    } else if (op == "$lt") {
      if (!compare_lt(value, operand)) return false;
    } else if (op == "$lte") {
      if (compare_lt(operand, value)) return false;
      if (!value.is_number() && !value.is_string()) return false;
      if (value.is_number() != operand.is_number()) return false;
    } else if (op == "$in") {
      if (!in_list(value, operand)) return false;
    } else if (op == "$nin") {
      if (in_list(value, operand)) return false;
    } else if (op == "$exists") {
      // Presence already established by the caller; $exists:false fails.
      if (!operand.as_bool()) return false;
    } else {
      throw json::JsonError("unknown query operator: " + op);
    }
  }
  return true;
}

bool is_operator_object(const Json& j) {
  if (!j.is_object() || j.as_object().empty()) return false;
  for (const auto& [k, v] : j.as_object()) {
    (void)v;
    if (k.empty() || k[0] != '$') return false;
  }
  return true;
}

/// A non-empty all-digit segment is an array index; anything longer than
/// any realistic array is rejected before it can overflow.
std::optional<std::size_t> parse_array_index(const std::string& key) {
  if (key.empty() || key.size() > 9) return std::nullopt;
  std::size_t idx = 0;
  for (char c : key) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    idx = idx * 10 + static_cast<std::size_t>(c - '0');
  }
  return idx;
}

}  // namespace

const Json* lookup_path(const Json& document, const std::string& path) {
  const Json* cur = &document;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(start, dot - start);
    if (cur->is_object() && cur->contains(key)) {
      cur = &cur->at(key);
    } else if (cur->is_array()) {
      const auto idx = parse_array_index(key);
      if (!idx || *idx >= cur->size()) return nullptr;
      cur = &cur->at(*idx);
    } else {
      return nullptr;
    }
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
}

bool matches(const Json& document, const Json& query) {
  if (!query.is_object())
    throw json::JsonError("query must be a JSON object");
  for (const auto& [key, condition] : query.as_object()) {
    if (key == "$and") {
      for (const auto& sub : condition.as_array())
        if (!matches(document, sub)) return false;
    } else if (key == "$or") {
      bool any = false;
      for (const auto& sub : condition.as_array())
        if (matches(document, sub)) {
          any = true;
          break;
        }
      if (!any) return false;
    } else if (key == "$not") {
      if (matches(document, condition)) return false;
    } else {
      const Json* value = lookup_path(document, key);
      if (is_operator_object(condition)) {
        if (!value) {
          // Only {$exists:false} can match a missing field.
          const auto& ops = condition.as_object();
          const auto it = ops.find("$exists");
          if (it == ops.end() || it->second.as_bool()) return false;
          continue;
        }
        if (!match_operators(*value, condition)) return false;
      } else {
        if (!value || !(*value == condition)) return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Collection

std::int64_t Collection::insert(Json document) {
  if (!document.is_object())
    throw json::JsonError("Collection::insert: document must be an object");
  std::unique_lock lock(*mu_);
  const std::int64_t id = next_id_;
  document["_id"] = id;
  if (engine_) {
    Json op = Json::object();
    op["o"] = "i";
    op["d"] = document;
    engine_->log_op(*this, op);  // write-ahead: log before apply
  }
  ++next_id_;
  id_pos_[id] = docs_.size();
  index_doc(document);
  docs_.push_back(std::move(document));
  if (engine_) engine_->maybe_checkpoint(*this);
  return id;
}

Collection::BatchInsert Collection::insert_batch(std::vector<Json> documents) {
  for (const auto& d : documents)
    if (!d.is_object())
      throw json::JsonError(
          "Collection::insert_batch: every document must be an object");
  BatchInsert out;
  if (documents.empty()) return out;
  out.ids.reserve(documents.size());

  std::unique_lock lock(*mu_);
  // Assign ids, then WAL-log the whole batch as ONE record before applying
  // any of it. A single frame makes the batch crash-atomic: recovery
  // replays it whole or — when a power loss truncated the log before the
  // frame was synced — not at all, never a partial batch. Application
  // under the same exclusive lock gives readers the same none-or-all view.
  for (std::size_t i = 0; i < documents.size(); ++i)
    documents[i]["_id"] = next_id_ + static_cast<std::int64_t>(i);
  if (engine_) {
    Json batch = Json::array();
    for (const auto& d : documents) batch.as_array().push_back(d);
    Json op = Json::object();
    op["o"] = "b";
    op["ds"] = std::move(batch);
    out.commit_seq = engine_->log_op(*this, op);
  }
  for (auto& d : documents) {
    const std::int64_t id = d.at("_id").as_int();
    out.ids.push_back(id);
    next_id_ = id + 1;
    id_pos_[id] = docs_.size();
    index_doc(d);
    docs_.push_back(std::move(d));
  }
  if (engine_) engine_->maybe_checkpoint(*this);
  return out;
}

std::optional<std::vector<std::int64_t>> Collection::plan(
    const Json& query) const {
  if (indexes_.empty() || !query.is_object()) return std::nullopt;
  for (const auto& [key, condition] : query.as_object()) {
    if (!key.empty() && key[0] == '$') continue;  // $and/$or/$not: scan
    const auto it = indexes_.find(key);
    if (it == indexes_.end()) continue;
    // Top-level fields are conjunctive, so one field's candidates are a
    // superset of the query's matches; the full predicate re-filters below.
    if (auto ids = it->second.candidates(condition)) return ids;
  }
  return std::nullopt;
}

const Json* Collection::doc_by_id(std::int64_t id) const {
  const auto it = id_pos_.find(id);
  return it == id_pos_.end() ? nullptr : &docs_[it->second];
}

std::vector<Json> Collection::find(const Json& query) const {
  std::shared_lock lock(*mu_);
  std::vector<Json> out;
  if (const auto ids = plan(query)) {
    // Ids ascend in insertion order, so the result order matches a scan.
    for (const std::int64_t id : *ids) {
      const Json* d = doc_by_id(id);
      if (d && matches(*d, query)) out.push_back(*d);
    }
    return out;
  }
  for (const auto& d : docs_)
    if (matches(d, query)) out.push_back(d);
  return out;
}

std::vector<Json> Collection::find_filtered(
    const Json& query, const std::function<bool(const Json&)>& pred) const {
  std::shared_lock lock(*mu_);
  std::vector<Json> out;
  if (const auto ids = plan(query)) {
    for (const std::int64_t id : *ids) {
      const Json* d = doc_by_id(id);
      if (d && matches(*d, query) && pred(*d)) out.push_back(*d);
    }
    return out;
  }
  for (const auto& d : docs_)
    if (matches(d, query) && pred(d)) out.push_back(d);
  return out;
}

Json Collection::find_one(const Json& query) const {
  std::shared_lock lock(*mu_);
  if (const auto ids = plan(query)) {
    for (const std::int64_t id : *ids) {
      const Json* d = doc_by_id(id);
      if (d && matches(*d, query)) return *d;
    }
    return Json();
  }
  for (const auto& d : docs_)
    if (matches(d, query)) return d;
  return Json();
}

std::size_t Collection::count(const Json& query) const {
  std::shared_lock lock(*mu_);
  std::size_t n = 0;
  if (const auto ids = plan(query)) {
    for (const std::int64_t id : *ids) {
      const Json* d = doc_by_id(id);
      if (d && matches(*d, query)) ++n;
    }
    return n;
  }
  for (const auto& d : docs_)
    if (matches(d, query)) ++n;
  return n;
}

std::size_t Collection::remove(const Json& query) {
  std::unique_lock lock(*mu_);
  if (engine_) {
    Json op = Json::object();
    op["o"] = "r";
    op["q"] = query;
    engine_->log_op(*this, op);
  }
  const std::size_t n = remove_locked(query);
  if (engine_) engine_->maybe_checkpoint(*this);
  return n;
}

std::size_t Collection::remove_locked(const Json& query) {
  std::vector<Json> kept;
  kept.reserve(docs_.size());
  std::size_t removed = 0;
  for (auto& d : docs_) {
    if (matches(d, query)) {
      unindex_doc(d);
      ++removed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  if (removed != 0) {
    docs_ = std::move(kept);
    id_pos_.clear();
    for (std::size_t i = 0; i < docs_.size(); ++i)
      id_pos_[docs_[i].at("_id").as_int()] = i;
  }
  return removed;
}

std::size_t Collection::update(const Json& query, const Json& update) {
  if (!update.is_object())
    throw json::JsonError("Collection::update: update must be an object");
  std::unique_lock lock(*mu_);
  if (engine_) {
    Json op = Json::object();
    op["o"] = "u";
    op["q"] = query;
    op["u"] = update;
    engine_->log_op(*this, op);
  }
  const std::size_t n = update_locked(query, update);
  if (engine_) engine_->maybe_checkpoint(*this);
  return n;
}

std::size_t Collection::update_locked(const Json& query, const Json& update) {
  std::size_t n = 0;
  for (auto& d : docs_) {
    if (!matches(d, query)) continue;
    unindex_doc(d);
    for (const auto& [k, v] : update.as_object()) {
      if (k == "_id") continue;  // ids are immutable
      d[k] = v;
    }
    index_doc(d);
    ++n;
  }
  return n;
}

void Collection::create_index(const std::string& path) {
  std::unique_lock lock(*mu_);
  auto it = indexes_.find(path);
  if (it == indexes_.end())
    it = indexes_.emplace(path, engine::OrderedIndex(path)).first;
  else
    it->second.clear();
  for (const auto& d : docs_) it->second.add(d, d.at("_id").as_int());
}

bool Collection::has_index(const std::string& path) const {
  std::shared_lock lock(*mu_);
  return indexes_.find(path) != indexes_.end();
}

std::vector<std::string> Collection::index_paths() const {
  std::shared_lock lock(*mu_);
  std::vector<std::string> out;
  for (const auto& [path, idx] : indexes_) {
    (void)idx;
    out.push_back(path);
  }
  return out;
}

void Collection::index_doc(const Json& doc) {
  const std::int64_t id = doc.at("_id").as_int();
  for (auto& [path, idx] : indexes_) {
    (void)path;
    idx.add(doc, id);
  }
}

void Collection::unindex_doc(const Json& doc) {
  const std::int64_t id = doc.at("_id").as_int();
  for (auto& [path, idx] : indexes_) {
    (void)path;
    idx.erase(doc, id);
  }
}

void Collection::rebuild_derived() {
  id_pos_.clear();
  for (std::size_t i = 0; i < docs_.size(); ++i)
    id_pos_[docs_[i].at("_id").as_int()] = i;
  for (auto& [path, idx] : indexes_) {
    (void)path;
    idx.clear();
    for (const auto& d : docs_) idx.add(d, d.at("_id").as_int());
  }
}

void Collection::restore(const Json& j) {
  next_id_ = j.at("next_id").as_int();
  docs_.clear();
  for (const auto& d : j.at("docs").as_array()) docs_.push_back(d);
  rebuild_derived();
}

void Collection::replay_insert(Json document) {
  std::unique_lock lock(*mu_);
  const std::int64_t id = document.at("_id").as_int();
  next_id_ = std::max(next_id_, id + 1);
  id_pos_[id] = docs_.size();
  index_doc(document);
  docs_.push_back(std::move(document));
}

void Collection::apply_op(const Json& op) {
  const std::string& kind = op.at("o").as_string();
  if (kind == "i") {
    replay_insert(op.at("d"));
  } else if (kind == "b") {
    // insert_batch: one frame, applied whole (batch crash atomicity).
    for (const auto& d : op.at("ds").as_array()) replay_insert(d);
  } else if (kind == "u") {
    // Public update(): the engine's replay flag suppresses re-logging.
    update(op.at("q"), op.at("u"));
  } else if (kind == "r") {
    remove(op.at("q"));
  } else {
    throw std::runtime_error("wal replay: unknown op '" + kind +
                             "' in collection " + name_);
  }
}

Json Collection::to_json() const {
  Json j = Json::object();
  j["name"] = name_;
  j["next_id"] = next_id_;
  Json docs = Json::array();
  for (const auto& d : docs_) docs.push_back(d);
  j["docs"] = std::move(docs);
  return j;
}

Collection Collection::from_json(const Json& j) {
  Collection c(j.at("name").as_string());
  c.restore(j);
  return c;
}

// ---------------------------------------------------------------------------
// DocumentStore

Collection& DocumentStore::collection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, Collection(name)).first;
    if (engine_) it->second.attach_engine(engine_.get());
  }
  return it->second;
}

const Collection* DocumentStore::find_collection(
    const std::string& name) const {
  const auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : &it->second;
}

std::vector<std::string> DocumentStore::collection_names() const {
  std::vector<std::string> names;
  for (const auto& [name, c] : collections_) {
    (void)c;
    names.push_back(name);
  }
  return names;
}

void DocumentStore::export_json(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& [name, c] : collections_) {
    std::ofstream out(dir / (name + ".json"));
    if (!out)
      throw std::runtime_error("DocumentStore::export_json: cannot write " +
                               (dir / (name + ".json")).string());
    out << c.to_json().dump(2) << "\n";
  }
}

DocumentStore DocumentStore::load(const std::filesystem::path& dir) {
  DocumentStore store;
  if (!std::filesystem::exists(dir)) return store;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    Collection c = Collection::from_json(Json::parse(buf.str()));
    const std::string name = c.name();
    store.collections_.emplace(name, std::move(c));
  }
  return store;
}

DocumentStore DocumentStore::open_durable(const std::filesystem::path& dir,
                                          engine::EngineOptions options) {
  DocumentStore store;
  store.engine_ =
      std::make_unique<engine::StorageEngine>(dir, std::move(options));
  store.engine_->recover(store);
  return store;
}

void DocumentStore::sync() {
  if (engine_) engine_->sync();
}

void DocumentStore::checkpoint_all() {
  if (!engine_) return;
  for (auto& [name, c] : collections_) {
    (void)name;
    engine_->checkpoint(c);
  }
}

}  // namespace gptc::db
