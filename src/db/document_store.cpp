#include "db/document_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gptc::db {

namespace {

bool compare_lt(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) return a.as_double() < b.as_double();
  if (a.is_string() && b.is_string()) return a.as_string() < b.as_string();
  return false;  // incomparable types never satisfy an ordering operator
}

bool in_list(const Json& value, const Json& list) {
  for (const auto& item : list.as_array())
    if (value == item) return true;
  return false;
}

/// Applies one operator object ({"$gte": 5, "$lt": 9}) to a present value.
bool match_operators(const Json& value, const Json& ops) {
  for (const auto& [op, operand] : ops.as_object()) {
    if (op == "$eq") {
      if (!(value == operand)) return false;
    } else if (op == "$ne") {
      if (value == operand) return false;
    } else if (op == "$gt") {
      if (!compare_lt(operand, value)) return false;
    } else if (op == "$gte") {
      if (compare_lt(value, operand)) return false;
      if (!value.is_number() && !value.is_string()) return false;
      if (value.is_number() != operand.is_number()) return false;
    } else if (op == "$lt") {
      if (!compare_lt(value, operand)) return false;
    } else if (op == "$lte") {
      if (compare_lt(operand, value)) return false;
      if (!value.is_number() && !value.is_string()) return false;
      if (value.is_number() != operand.is_number()) return false;
    } else if (op == "$in") {
      if (!in_list(value, operand)) return false;
    } else if (op == "$nin") {
      if (in_list(value, operand)) return false;
    } else if (op == "$exists") {
      // Presence already established by the caller; $exists:false fails.
      if (!operand.as_bool()) return false;
    } else {
      throw json::JsonError("unknown query operator: " + op);
    }
  }
  return true;
}

bool is_operator_object(const Json& j) {
  if (!j.is_object() || j.as_object().empty()) return false;
  for (const auto& [k, v] : j.as_object()) {
    (void)v;
    if (k.empty() || k[0] != '$') return false;
  }
  return true;
}

}  // namespace

const Json* lookup_path(const Json& document, const std::string& path) {
  const Json* cur = &document;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(start, dot - start);
    if (!cur->is_object() || !cur->contains(key)) return nullptr;
    cur = &cur->at(key);
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
}

bool matches(const Json& document, const Json& query) {
  if (!query.is_object())
    throw json::JsonError("query must be a JSON object");
  for (const auto& [key, condition] : query.as_object()) {
    if (key == "$and") {
      for (const auto& sub : condition.as_array())
        if (!matches(document, sub)) return false;
    } else if (key == "$or") {
      bool any = false;
      for (const auto& sub : condition.as_array())
        if (matches(document, sub)) {
          any = true;
          break;
        }
      if (!any) return false;
    } else if (key == "$not") {
      if (matches(document, condition)) return false;
    } else {
      const Json* value = lookup_path(document, key);
      if (is_operator_object(condition)) {
        if (!value) {
          // Only {$exists:false} can match a missing field.
          const auto& ops = condition.as_object();
          const auto it = ops.find("$exists");
          if (it == ops.end() || it->second.as_bool()) return false;
          continue;
        }
        if (!match_operators(*value, condition)) return false;
      } else {
        if (!value || !(*value == condition)) return false;
      }
    }
  }
  return true;
}

std::int64_t Collection::insert(Json document) {
  if (!document.is_object())
    throw json::JsonError("Collection::insert: document must be an object");
  const std::int64_t id = next_id_++;
  document["_id"] = id;
  docs_.push_back(std::move(document));
  return id;
}

std::vector<Json> Collection::find(const Json& query) const {
  std::vector<Json> out;
  for (const auto& d : docs_)
    if (matches(d, query)) out.push_back(d);
  return out;
}

Json Collection::find_one(const Json& query) const {
  for (const auto& d : docs_)
    if (matches(d, query)) return d;
  return Json();
}

std::size_t Collection::count(const Json& query) const {
  std::size_t n = 0;
  for (const auto& d : docs_)
    if (matches(d, query)) ++n;
  return n;
}

std::size_t Collection::remove(const Json& query) {
  const std::size_t before = docs_.size();
  std::erase_if(docs_, [&](const Json& d) { return matches(d, query); });
  return before - docs_.size();
}

std::size_t Collection::update(const Json& query, const Json& update) {
  if (!update.is_object())
    throw json::JsonError("Collection::update: update must be an object");
  std::size_t n = 0;
  for (auto& d : docs_) {
    if (!matches(d, query)) continue;
    for (const auto& [k, v] : update.as_object()) {
      if (k == "_id") continue;  // ids are immutable
      d[k] = v;
    }
    ++n;
  }
  return n;
}

Json Collection::to_json() const {
  Json j = Json::object();
  j["name"] = name_;
  j["next_id"] = next_id_;
  Json docs = Json::array();
  for (const auto& d : docs_) docs.push_back(d);
  j["docs"] = std::move(docs);
  return j;
}

Collection Collection::from_json(const Json& j) {
  Collection c(j.at("name").as_string());
  c.next_id_ = j.at("next_id").as_int();
  for (const auto& d : j.at("docs").as_array()) c.docs_.push_back(d);
  return c;
}

Collection& DocumentStore::collection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end())
    it = collections_.emplace(name, Collection(name)).first;
  return it->second;
}

const Collection* DocumentStore::find_collection(
    const std::string& name) const {
  const auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : &it->second;
}

std::vector<std::string> DocumentStore::collection_names() const {
  std::vector<std::string> names;
  for (const auto& [name, c] : collections_) {
    (void)c;
    names.push_back(name);
  }
  return names;
}

void DocumentStore::save(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& [name, c] : collections_) {
    std::ofstream out(dir / (name + ".json"));
    if (!out)
      throw std::runtime_error("DocumentStore::save: cannot write " +
                               (dir / (name + ".json")).string());
    out << c.to_json().dump(2) << "\n";
  }
}

DocumentStore DocumentStore::load(const std::filesystem::path& dir) {
  DocumentStore store;
  if (!std::filesystem::exists(dir)) return store;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    Collection c = Collection::from_json(Json::parse(buf.str()));
    const std::string name = c.name();
    store.collections_.emplace(name, std::move(c));
  }
  return store;
}

}  // namespace gptc::db
