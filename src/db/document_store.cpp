#include "db/document_store.hpp"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "db/query/planner.hpp"

namespace gptc::db {

namespace {

bool compare_lt(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) return a.as_double() < b.as_double();
  if (a.is_string() && b.is_string()) return a.as_string() < b.as_string();
  return false;  // incomparable types never satisfy an ordering operator
}

bool in_list(const Json& value, const Json& list) {
  for (const auto& item : list.as_array())
    if (value == item) return true;
  return false;
}

/// Applies one operator object ({"$gte": 5, "$lt": 9}) to a present value.
bool match_operators(const Json& value, const Json& ops) {
  for (const auto& [op, operand] : ops.as_object()) {
    if (op == "$eq") {
      if (!(value == operand)) return false;
    } else if (op == "$ne") {
      if (value == operand) return false;
    } else if (op == "$gt") {
      if (!compare_lt(operand, value)) return false;
    } else if (op == "$gte") {
      if (compare_lt(value, operand)) return false;
      if (!value.is_number() && !value.is_string()) return false;
      if (value.is_number() != operand.is_number()) return false;
    } else if (op == "$lt") {
      if (!compare_lt(value, operand)) return false;
    } else if (op == "$lte") {
      if (compare_lt(operand, value)) return false;
      if (!value.is_number() && !value.is_string()) return false;
      if (value.is_number() != operand.is_number()) return false;
    } else if (op == "$in") {
      if (!in_list(value, operand)) return false;
    } else if (op == "$nin") {
      if (in_list(value, operand)) return false;
    } else if (op == "$exists") {
      // Presence already established by the caller; $exists:false fails.
      if (!operand.as_bool()) return false;
    } else {
      throw json::JsonError("unknown query operator: " + op);
    }
  }
  return true;
}

bool is_operator_object(const Json& j) {
  if (!j.is_object() || j.as_object().empty()) return false;
  for (const auto& [k, v] : j.as_object()) {
    (void)v;
    if (k.empty() || k[0] != '$') return false;
  }
  return true;
}

/// Atomic max fold for the id counter: shard recovery tasks (and
/// restore_shard) run in parallel, each pushing the counter past the ids it
/// has seen.
void fold_next_id(std::atomic<std::int64_t>& next_id, std::int64_t seen) {
  std::int64_t cur = next_id.load(std::memory_order_relaxed);
  while (cur < seen && !next_id.compare_exchange_weak(cur, seen)) {
  }
}

/// Acquires every shard's reader lock (ascending shard index — the engine
/// lock order) so a fan-out query observes multi-shard mutations, which
/// apply under every affected shard's writer lock, none-or-all.
// returns_lock: Shard::mu shared
template <typename Shards>
std::vector<std::shared_lock<std::shared_mutex>> lock_shared_all(
    const Shards& shards) {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards.size());
  for (const auto& s : shards) locks.emplace_back(s->mu);
  return locks;
}

}  // namespace

const Json* lookup_path(const Json& document, const std::string& path) {
  return query::lookup(document, std::string_view(path));
}

bool matches(const Json& document, const Json& query) {
  if (!query.is_object())
    throw json::JsonError("query must be a JSON object");
  for (const auto& [key, condition] : query.as_object()) {
    if (key == "$and") {
      for (const auto& sub : condition.as_array())
        if (!matches(document, sub)) return false;
    } else if (key == "$or") {
      bool any = false;
      for (const auto& sub : condition.as_array())
        if (matches(document, sub)) {
          any = true;
          break;
        }
      if (!any) return false;
    } else if (key == "$not") {
      if (matches(document, condition)) return false;
    } else {
      const Json* value = lookup_path(document, key);
      if (is_operator_object(condition)) {
        if (!value) {
          // Only {$exists:false} can match a missing field.
          const auto& ops = condition.as_object();
          const auto it = ops.find("$exists");
          if (it == ops.end() || it->second.as_bool()) return false;
          continue;
        }
        if (!match_operators(*value, condition)) return false;
      } else {
        if (!value || !(*value == condition)) return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Collection

Collection::Collection(std::string name, std::size_t shards)
    : name_(std::move(name)) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

Collection::Collection(Collection&& other) noexcept
    : name_(std::move(other.name_)),
      next_id_(other.next_id_.load()),
      shards_(std::move(other.shards_)),
      index_paths_(std::move(other.index_paths_)),
      engine_(other.engine_) {}

Collection& Collection::operator=(Collection&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    next_id_.store(other.next_id_.load());
    shards_ = std::move(other.shards_);
    index_paths_ = std::move(other.index_paths_);
    engine_ = other.engine_;
  }
  return *this;
}

std::size_t Collection::size() const {
  const auto locks = lock_shared_all(shards_);
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->docs.size();
  return n;
}

void Collection::index_doc(Shard& s, const Json& doc) {
  const std::int64_t id = doc.at("_id").as_int();
  for (auto& [path, idx] : s.indexes) {
    (void)path;
    idx.add(doc, id);
  }
}

void Collection::unindex_doc(Shard& s, const Json& doc) {
  const std::int64_t id = doc.at("_id").as_int();
  for (auto& [path, idx] : s.indexes) {
    (void)path;
    idx.erase(doc, id);
  }
}

void Collection::insert_into_shard(Shard& s, Json document) {
  const std::int64_t id = document.at("_id").as_int();
  fold_next_id(next_id_, id + 1);
  s.id_pos[id] = s.docs.size();
  index_doc(s, document);
  s.docs.push_back(std::move(document));
}

std::int64_t Collection::insert(Json document) {
  if (!document.is_object())
    throw json::JsonError("Collection::insert: document must be an object");
  const std::int64_t id = next_id_.fetch_add(1);
  document["_id"] = id;
  const std::size_t k = shard_of(id);
  Shard& s = *shards_[k];
  {
    std::unique_lock lock(s.mu);
    if (engine_) {
      Json op = Json::object();
      op["o"] = "i";
      op["d"] = document;
      engine_->log_op(*this, k, op);  // write-ahead: log before apply
    }
    insert_into_shard(s, std::move(document));
  }
  // Checkpoint with the shard unlocked: the snapshot I/O must not extend
  // this writer's critical section.
  if (engine_) engine_->maybe_checkpoint(*this, k);
  return id;
}

Collection::BatchInsert Collection::insert_batch(std::vector<Json> documents) {
  for (const auto& d : documents)
    if (!d.is_object())
      throw json::JsonError(
          "Collection::insert_batch: every document must be an object");
  BatchInsert out;
  if (documents.empty()) return out;
  out.ids.reserve(documents.size());

  // Assign ids up front, then bucket by shard. Ids ascend through the
  // batch, so each shard's slice stays in ascending-id (= insertion) order.
  const std::int64_t base =
      next_id_.fetch_add(static_cast<std::int64_t>(documents.size()));
  std::map<std::size_t, std::vector<Json>> by_shard;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    const std::int64_t id = base + static_cast<std::int64_t>(i);
    documents[i]["_id"] = id;
    out.ids.push_back(id);
    by_shard[shard_of(id)].push_back(std::move(documents[i]));
  }

  if (by_shard.size() == 1) {
    // Whole batch on one shard: a single shard-WAL batch frame is already
    // crash-atomic (replayed whole or not at all), no commit record needed.
    const std::size_t k = by_shard.begin()->first;
    auto& docs = by_shard.begin()->second;
    Shard& s = *shards_[k];
    {
      std::unique_lock lock(s.mu);
      if (engine_) {
        Json batch = Json::array();
        for (const auto& d : docs) batch.as_array().push_back(d);
        Json op = Json::object();
        op["o"] = "b";
        op["ds"] = std::move(batch);
        const std::uint64_t seq = engine_->log_op(*this, k, op);
        out.ticket = {
            engine::StorageEngine::shard_stem(name_, k, shard_count()), seq};
        out.commit_seq = seq;
      }
      for (auto& d : docs) insert_into_shard(s, std::move(d));
    }
    if (engine_) engine_->maybe_checkpoint(*this, k);
    return out;
  }

  // The batch spans shards: one logical commit record covers every
  // per-shard batch frame, and application happens under all affected
  // shard writer locks — readers and recovery see none or all of it.
  std::map<std::size_t, Json> ops;
  for (const auto& [k, docs] : by_shard) {
    Json batch = Json::array();
    for (const auto& d : docs) batch.as_array().push_back(d);
    Json op = Json::object();
    op["o"] = "b";
    op["ds"] = std::move(batch);
    ops.emplace(k, std::move(op));
  }
  out.ticket = commit_multi(ops, [&] {
    for (auto& [k, docs] : by_shard)
      for (auto& d : docs) insert_into_shard(*shards_[k], std::move(d));
  });
  out.commit_seq = out.ticket.seq;
  return out;
}

engine::CommitTicket Collection::commit_multi(
    const std::map<std::size_t, Json>& ops_by_shard,
    const std::function<void()>& apply) {
  if (!engine_) {
    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(ops_by_shard.size());
    for (const auto& [k, op] : ops_by_shard) {
      (void)op;
      locks.emplace_back(shards_[k]->mu);
    }
    apply();
    return {};
  }
  engine::CommitTicket ticket;
  {
    // Lock order: commit gate (shared) -> shard writer locks (ascending:
    // ops_by_shard is a sorted map) -> WAL internals inside log_commit.
    std::shared_lock gate(engine_->commit_gate());
    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(ops_by_shard.size());
    for (const auto& [k, op] : ops_by_shard) {
      (void)op;
      locks.emplace_back(shards_[k]->mu);
    }
    std::vector<engine::StorageEngine::CommitMember> members;
    members.reserve(ops_by_shard.size());
    for (const auto& [k, op] : ops_by_shard)
      members.push_back({this, k, op});
    ticket = engine_->log_commit(members);  // write-ahead: log before apply
    apply();
  }
  // Shard locks and the commit gate are released: checkpoints (snapshot
  // I/O) run without extending the commit's critical section.
  for (const auto& [k, op] : ops_by_shard) {
    (void)op;
    engine_->maybe_checkpoint(*this, k);
  }
  engine_->maybe_compact_commits();  // needs the gate exclusively: call last
  return ticket;
}

const engine::OrderedIndex* Collection::exact_index(
    const Shard& s, const Json& query, const Json** condition) const {
  // Exactness needs the whole query to BE the one indexed condition: with a
  // second field in play the index only ever narrows, never answers.
  if (!query.is_object() || query.as_object().size() != 1) return nullptr;
  const auto& [key, cond] = *query.as_object().begin();
  if (key.empty() || key[0] == '$') return nullptr;
  const auto it = s.indexes.find(key);
  if (it == s.indexes.end()) return nullptr;
  if (!engine::OrderedIndex::exact(cond)) return nullptr;
  *condition = &cond;
  return &it->second;
}

const Json* Collection::doc_by_id(const Shard& s, std::int64_t id) {
  const auto it = s.id_pos.find(id);
  return it == s.id_pos.end() ? nullptr : &s.docs[it->second];
}

std::vector<Json> Collection::merge_by_id(
    std::vector<std::vector<Json>> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<Json> out;
  out.reserve(total);
  std::vector<std::size_t> pos(parts.size(), 0);
  while (out.size() < total) {
    std::size_t best = parts.size();
    std::int64_t best_id = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (pos[i] >= parts[i].size()) continue;
      const std::int64_t id = parts[i][pos[i]].at("_id").as_int();
      if (best == parts.size() || id < best_id) {
        best = i;
        best_id = id;
      }
    }
    out.push_back(std::move(parts[best][pos[best]++]));
  }
  return out;
}

std::vector<Json> Collection::find(const Json& query) const {
  return find_filtered(query, [](const Json&) { return true; });
}

std::vector<Json> Collection::find_filtered(
    const Json& query, const std::function<bool(const Json&)>& pred) const {
  // Compile once per query, not per record; the same program plans and
  // re-checks every shard.
  const auto cq = query::CompiledQuery::compile(query);
  const auto locks = lock_shared_all(shards_);
  std::vector<std::vector<Json>> parts;
  parts.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::vector<Json> part;
    const auto plan = query::plan_shard(s.indexes, cq);
    if (plan.index_scan) {
      // Ids ascend in insertion order, so each part matches a shard scan.
      for (const std::int64_t id : plan.candidates) {
        const Json* d = doc_by_id(s, id);
        if (d && cq.eval(*d) && pred(*d)) part.push_back(*d);
      }
    } else {
      for (const auto& [id, p] : s.id_pos) {
        (void)id;
        const Json& d = s.docs[p];
        if (cq.eval(d) && pred(d)) part.push_back(d);
      }
    }
    parts.push_back(std::move(part));
  }
  // Per-shard parts are each in ascending-id order; the id merge restores
  // global insertion order, byte-identical to the unsharded scan.
  return merge_by_id(std::move(parts));
}

Json Collection::explain(const Json& query) const {
  const auto cq = query::CompiledQuery::compile(query);
  Json out = Json::object();
  out["query"] = query;
  Json shards = Json::array();
  const auto locks = lock_shared_all(shards_);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& s = *shards_[k];
    const auto plan = query::plan_shard(s.indexes, cq);
    Json sj = Json::object();
    sj["shard"] = k;
    sj["shard_size"] = s.docs.size();
    sj["index_scan"] = plan.index_scan;
    sj["candidates"] =
        plan.index_scan ? Json(plan.candidates.size()) : Json(s.docs.size());
    Json idxs = Json::array();
    for (const auto& choice : plan.choices) {
      Json cj = Json::object();
      cj["path"] = *choice.path;
      cj["estimate"] = choice.estimate;
      cj["applied"] = choice.applied;
      idxs.push_back(std::move(cj));
    }
    sj["indexes"] = std::move(idxs);
    shards.push_back(std::move(sj));
  }
  out["shards"] = std::move(shards);
  return out;
}

Json Collection::find_one(const Json& query) const {
  const auto cq = query::CompiledQuery::compile(query);
  const auto locks = lock_shared_all(shards_);
  const Json* best = nullptr;
  std::int64_t best_id = 0;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    const Json* first = nullptr;
    const auto plan = query::plan_shard(s.indexes, cq);
    if (plan.index_scan) {
      for (const std::int64_t id : plan.candidates) {
        const Json* d = doc_by_id(s, id);
        if (d && cq.eval(*d)) {
          first = d;
          break;
        }
      }
    } else {
      for (const auto& [id, p] : s.id_pos) {
        (void)id;
        if (cq.eval(s.docs[p])) {
          first = &s.docs[p];
          break;
        }
      }
    }
    if (first) {
      const std::int64_t id = first->at("_id").as_int();
      if (!best || id < best_id) {
        best = first;
        best_id = id;
      }
    }
  }
  return best ? *best : Json();
}

std::size_t Collection::count(const Json& query) const {
  const auto cq = query::CompiledQuery::compile(query);
  const auto locks = lock_shared_all(shards_);
  {
    const Json* cond = nullptr;
    if (exact_index(*shards_[0], query, &cond) != nullptr) {
      // Index-only: posting-list sizes ARE the per-shard match counts.
      std::size_t n = 0;
      for (const auto& sp : shards_) {
        const Json* c = nullptr;
        const auto* idx = exact_index(*sp, query, &c);
        n += idx->exact_count(*c);
      }
      return n;
    }
  }
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    const auto plan = query::plan_shard(s.indexes, cq);
    if (plan.index_scan) {
      for (const std::int64_t id : plan.candidates) {
        const Json* d = doc_by_id(s, id);
        if (d && cq.eval(*d)) ++n;
      }
    } else {
      for (const auto& [id, p] : s.id_pos) {
        (void)id;
        if (cq.eval(s.docs[p])) ++n;
      }
    }
  }
  return n;
}

bool Collection::exists(const Json& query) const {
  const auto cq = query::CompiledQuery::compile(query);
  const auto locks = lock_shared_all(shards_);
  {
    const Json* cond = nullptr;
    if (exact_index(*shards_[0], query, &cond) != nullptr) {
      for (const auto& sp : shards_) {
        const Json* c = nullptr;
        const auto* idx = exact_index(*sp, query, &c);
        if (idx->exact_exists(*c)) return true;
      }
      return false;
    }
  }
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    const auto plan = query::plan_shard(s.indexes, cq);
    if (plan.index_scan) {
      for (const std::int64_t id : plan.candidates) {
        const Json* d = doc_by_id(s, id);
        if (d && cq.eval(*d)) return true;
      }
    } else {
      for (const auto& [id, p] : s.id_pos) {
        (void)id;
        if (cq.eval(s.docs[p])) return true;
      }
    }
  }
  return false;
}

std::size_t Collection::remove(const Json& query) {
  // Compiling first both hoists the per-document interpretation out of the
  // shard loop and validates the query BEFORE it is WAL-logged: a malformed
  // query used to be logged, then throw during apply, and recovery would
  // re-throw replaying it — refusing to open the store.
  const auto cq = query::CompiledQuery::compile(query);
  if (shard_count() == 1) {
    Shard& s = *shards_[0];
    std::size_t n = 0;
    {
      std::unique_lock lock(s.mu);
      if (engine_) {
        Json op = Json::object();
        op["o"] = "r";
        op["q"] = query;
        engine_->log_op(*this, 0, op);
      }
      n = remove_shard_locked(s, cq);
    }
    if (engine_) engine_->maybe_checkpoint(*this, 0);
    return n;
  }
  // A query can match documents on any shard, so at N > 1 a remove is a
  // logical commit across all of them — recovery applies it everywhere or
  // nowhere, never on a subset of shards.
  Json op = Json::object();
  op["o"] = "r";
  op["q"] = query;
  std::map<std::size_t, Json> ops;
  for (std::size_t k = 0; k < shard_count(); ++k) ops.emplace(k, op);
  std::size_t n = 0;
  commit_multi(ops, [&] {
    for (std::size_t k = 0; k < shard_count(); ++k)
      n += remove_shard_locked(*shards_[k], cq);
  });
  return n;
}

std::size_t Collection::remove_shard_locked(Shard& s,
                                            const query::CompiledQuery& query) {
  std::vector<Json> kept;
  kept.reserve(s.docs.size());
  std::size_t removed = 0;
  for (auto& d : s.docs) {
    if (query.eval(d)) {
      unindex_doc(s, d);
      ++removed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  // Unconditionally: the loop moved every kept document out of s.docs, so
  // even a no-match remove must swap the (order-preserving) vector back in.
  s.docs = std::move(kept);
  if (removed != 0) {
    s.id_pos.clear();
    for (std::size_t i = 0; i < s.docs.size(); ++i)
      s.id_pos[s.docs[i].at("_id").as_int()] = i;
  }
  return removed;
}

std::size_t Collection::update(const Json& query, const Json& update) {
  if (!update.is_object())
    throw json::JsonError("Collection::update: update must be an object");
  // Compile (= validate) before WAL-logging, as in remove().
  const auto cq = query::CompiledQuery::compile(query);
  if (shard_count() == 1) {
    Shard& s = *shards_[0];
    std::size_t n = 0;
    {
      std::unique_lock lock(s.mu);
      if (engine_) {
        Json op = Json::object();
        op["o"] = "u";
        op["q"] = query;
        op["u"] = update;
        engine_->log_op(*this, 0, op);
      }
      n = update_shard_locked(s, cq, update);
    }
    if (engine_) engine_->maybe_checkpoint(*this, 0);
    return n;
  }
  Json op = Json::object();
  op["o"] = "u";
  op["q"] = query;
  op["u"] = update;
  std::map<std::size_t, Json> ops;
  for (std::size_t k = 0; k < shard_count(); ++k) ops.emplace(k, op);
  std::size_t n = 0;
  commit_multi(ops, [&] {
    for (std::size_t k = 0; k < shard_count(); ++k)
      n += update_shard_locked(*shards_[k], cq, update);
  });
  return n;
}

std::size_t Collection::update_shard_locked(Shard& s,
                                            const query::CompiledQuery& query,
                                            const Json& update) {
  std::size_t n = 0;
  for (auto& d : s.docs) {
    if (!query.eval(d)) continue;
    unindex_doc(s, d);
    for (const auto& [k, v] : update.as_object()) {
      if (k == "_id") continue;  // ids are immutable
      d[k] = v;
    }
    index_doc(s, d);
    ++n;
  }
  return n;
}

void Collection::create_index(const std::string& path) {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& s : shards_) locks.emplace_back(s->mu);
  if (std::find(index_paths_.begin(), index_paths_.end(), path) ==
      index_paths_.end())
    index_paths_.push_back(path);
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    auto it = s.indexes.find(path);
    if (it == s.indexes.end())
      it = s.indexes.emplace(path, engine::OrderedIndex(path)).first;
    else
      it->second.clear();
    for (const auto& [id, p] : s.id_pos) it->second.add(s.docs[p], id);
  }
}

bool Collection::has_index(const std::string& path) const {
  std::shared_lock lock(shards_[0]->mu);
  return std::find(index_paths_.begin(), index_paths_.end(), path) !=
         index_paths_.end();
}

std::vector<std::string> Collection::index_paths() const {
  std::shared_lock lock(shards_[0]->mu);
  return index_paths_;
}

void Collection::for_each(const std::function<bool(const Json&)>& fn) const {
  const auto locks = lock_shared_all(shards_);
  // K-way merge over the per-shard id maps: ids are globally unique and
  // monotone, so picking the smallest head each step IS insertion order.
  struct Cursor {
    std::map<std::int64_t, std::size_t>::const_iterator it, end;
    const Shard* s;
  };
  std::vector<Cursor> cur;
  cur.reserve(shards_.size());
  for (const auto& sp : shards_)
    cur.push_back({sp->id_pos.begin(), sp->id_pos.end(), sp.get()});
  while (true) {
    Cursor* best = nullptr;
    for (auto& c : cur)
      if (c.it != c.end && (!best || c.it->first < best->it->first)) best = &c;
    if (!best) return;
    if (!fn(best->s->docs[best->it->second])) return;
    ++best->it;
  }
}

std::vector<Json> Collection::all() const {
  std::vector<Json> out;
  out.reserve(size());
  for_each([&](const Json& d) {
    out.push_back(d);
    return true;
  });
  return out;
}

void Collection::rebuild_shard_derived(Shard& s) {
  s.id_pos.clear();
  for (std::size_t i = 0; i < s.docs.size(); ++i)
    s.id_pos[s.docs[i].at("_id").as_int()] = i;
  s.indexes.clear();
  for (const auto& path : index_paths_) {
    engine::OrderedIndex idx(path);
    for (const auto& [id, p] : s.id_pos) idx.add(s.docs[p], id);
    s.indexes.emplace(path, std::move(idx));
  }
}

void Collection::configure_shards(std::size_t shards) {
  if (shards == 0) shards = 1;
  std::vector<Json> docs;
  for (auto& sp : shards_)
    for (auto& [id, p] : sp->id_pos) {
      (void)id;
      docs.push_back(std::move(sp->docs[p]));
    }
  // Re-bucket in ascending-id order so each new shard's vector is again in
  // insertion order.
  std::sort(docs.begin(), docs.end(), [](const Json& a, const Json& b) {
    return a.at("_id").as_int() < b.at("_id").as_int();
  });
  shards_.clear();
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  for (auto& d : docs) {
    const std::size_t k = shard_of(d.at("_id").as_int());
    shards_[k]->docs.push_back(std::move(d));
  }
  for (auto& sp : shards_) rebuild_shard_derived(*sp);
}

void Collection::restore(const Json& j) {
  std::int64_t next = j.at("next_id").as_int();
  for (auto& sp : shards_) {
    sp->docs.clear();
    sp->id_pos.clear();
    sp->indexes.clear();
  }
  for (const auto& d : j.at("docs").as_array()) {
    const std::int64_t id = d.at("_id").as_int();
    next = std::max(next, id + 1);
    shards_[shard_of(id)]->docs.push_back(d);
  }
  next_id_.store(next);
  for (auto& sp : shards_) rebuild_shard_derived(*sp);
}

void Collection::restore_shard(std::size_t shard, const Json& j) {
  fold_next_id(next_id_, j.at("next_id").as_int());
  Shard& s = *shards_[shard];
  s.docs.clear();
  for (const auto& d : j.at("docs").as_array()) {
    fold_next_id(next_id_, d.at("_id").as_int() + 1);
    s.docs.push_back(d);
  }
  rebuild_shard_derived(s);
}

void Collection::replay_shard_op(std::size_t shard, const Json& op) {
  Shard& s = *shards_[shard];
  const std::string& kind = op.at("o").as_string();
  if (kind == "i") {
    insert_into_shard(s, op.at("d"));
  } else if (kind == "b") {
    // One frame (or one commit member) = this shard's slice of the batch,
    // applied whole (batch crash atomicity).
    for (const auto& d : op.at("ds").as_array()) insert_into_shard(s, d);
  } else if (kind == "u") {
    update_shard_locked(s, query::CompiledQuery::compile(op.at("q")),
                        op.at("u"));
  } else if (kind == "r") {
    remove_shard_locked(s, query::CompiledQuery::compile(op.at("q")));
  } else {
    throw std::runtime_error("wal replay: unknown op '" + kind +
                             "' in collection " + name_);
  }
}

Json Collection::shard_to_json(std::size_t shard) const {
  const Shard& s = *shards_[shard];
  Json j = Json::object();
  j["name"] = name_;
  j["next_id"] = next_id_.load();
  Json docs = Json::array();
  for (const auto& [id, p] : s.id_pos) {
    (void)id;
    docs.push_back(s.docs[p]);
  }
  j["docs"] = std::move(docs);
  return j;
}

Json Collection::to_json() const {
  Json j = Json::object();
  j["name"] = name_;
  j["next_id"] = next_id_.load();
  Json docs = Json::array();
  for_each([&](const Json& d) {
    docs.push_back(d);
    return true;
  });
  j["docs"] = std::move(docs);
  return j;
}

Collection Collection::from_json(const Json& j) {
  Collection c(j.at("name").as_string());
  c.restore(j);
  return c;
}

// ---------------------------------------------------------------------------
// DocumentStore

Collection& DocumentStore::collection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_
             .emplace(name, Collection(name, engine_ ? engine_->shard_count()
                                                     : 1))
             .first;
    if (engine_) it->second.attach_engine(engine_.get());
  }
  return it->second;
}

const Collection* DocumentStore::find_collection(
    const std::string& name) const {
  const auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : &it->second;
}

std::vector<std::string> DocumentStore::collection_names() const {
  std::vector<std::string> names;
  for (const auto& [name, c] : collections_) {
    (void)c;
    names.push_back(name);
  }
  return names;
}

DocumentStore::AtomicInsert DocumentStore::insert_atomic(
    std::map<std::string, std::vector<Json>> docs) {
  AtomicInsert out;
  for (const auto& [name, ds] : docs) {
    (void)name;
    for (const auto& d : ds)
      if (!d.is_object())
        throw json::JsonError(
            "DocumentStore::insert_atomic: every document must be an object");
  }

  // Resolve targets first: collection() may create entries, which must not
  // happen while shard locks are held.
  struct Member {
    Collection* c = nullptr;
    std::size_t shard = 0;
    std::vector<Json> docs;
  };
  std::vector<Member> members;  // (collection name asc, shard asc) — the
                                // engine lock order for cross-shard commits
  for (auto& [name, ds] : docs) {
    if (ds.empty()) continue;
    Collection& c = collection(name);
    const std::int64_t base =
        c.next_id_.fetch_add(static_cast<std::int64_t>(ds.size()));
    auto& ids = out.ids[name];
    ids.reserve(ds.size());
    std::map<std::size_t, std::vector<Json>> by_shard;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const std::int64_t id = base + static_cast<std::int64_t>(i);
      ds[i]["_id"] = id;
      ids.push_back(id);
      by_shard[c.shard_of(id)].push_back(std::move(ds[i]));
    }
    for (auto& [k, slice] : by_shard) {
      Member m;
      m.c = &c;
      m.shard = k;
      m.docs = std::move(slice);
      members.push_back(std::move(m));
    }
  }
  if (members.empty()) return out;

  const auto apply = [&] {
    for (auto& m : members)
      for (auto& d : m.docs)
        m.c->insert_into_shard(*m.c->shards_[m.shard], std::move(d));
  };

  if (!engine_) {
    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(members.size());
    for (const auto& m : members) locks.emplace_back(m.c->shards_[m.shard]->mu);
    apply();
    return out;
  }

  {
    std::shared_lock gate(engine_->commit_gate());
    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(members.size());
    for (const auto& m : members) locks.emplace_back(m.c->shards_[m.shard]->mu);
    std::vector<engine::StorageEngine::CommitMember> cms;
    cms.reserve(members.size());
    for (const auto& m : members) {
      Json batch = Json::array();
      for (const auto& d : m.docs) batch.as_array().push_back(d);
      Json op = Json::object();
      op["o"] = "b";
      op["ds"] = std::move(batch);
      cms.push_back({m.c, m.shard, std::move(op)});
    }
    out.ticket = engine_->log_commit(cms);  // write-ahead: log before apply
    apply();
  }
  // Shard locks and the commit gate are released: checkpoints (snapshot
  // I/O) run without extending the commit's critical section.
  for (const auto& m : members) engine_->maybe_checkpoint(*m.c, m.shard);
  engine_->maybe_compact_commits();
  return out;
}

void DocumentStore::export_json(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& [name, c] : collections_) {
    std::ofstream out(dir / (name + ".json"));
    if (!out)
      throw std::runtime_error("DocumentStore::export_json: cannot write " +
                               (dir / (name + ".json")).string());
    out << c.to_json().dump(2) << "\n";
  }
}

DocumentStore DocumentStore::load(const std::filesystem::path& dir) {
  DocumentStore store;
  if (!std::filesystem::exists(dir)) return store;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    Collection c = Collection::from_json(Json::parse(buf.str()));
    const std::string name = c.name();
    store.collections_.emplace(name, std::move(c));
  }
  return store;
}

DocumentStore DocumentStore::open_durable(const std::filesystem::path& dir,
                                          engine::EngineOptions options) {
  DocumentStore store;
  store.engine_ =
      std::make_unique<engine::StorageEngine>(dir, std::move(options));
  store.engine_->recover(store);
  return store;
}

void DocumentStore::sync() {
  if (engine_) engine_->sync();
}

void DocumentStore::checkpoint_all() {
  if (engine_) engine_->checkpoint_all();
}

}  // namespace gptc::db
