// Compiled Mongo-style match expressions.
//
// db::matches() re-interprets the query tree for every record: each field
// re-splits its dot path, each operator is re-dispatched by string key, and
// get_or/substr allocate along the way. At N candidate records per query
// that interpretation dominates the read path (EXPERIMENTS "Server
// throughput"). CompiledQuery lowers the query ONCE into a flat program —
// prefix-ordered logic nodes over interned, pre-split paths and typed
// comparison opcodes with pre-extracted operands — whose evaluation does no
// parsing and no allocation per record.
//
// Contract: eval(doc) returns exactly what db::matches(doc, query) returns
// for every document (the differential test in tests/test_query_compile.cpp
// drives randomized documents and queries through both). The one deliberate
// difference is *when* malformed queries throw: matches() throws JsonError
// lazily, on the first record that reaches the bad operator, while
// compile() validates the whole query up front — so a mutation can never
// WAL-log a query that would poison replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/query/path.hpp"
#include "json/json.hpp"

namespace gptc::db::query {

class CompiledQuery {
 public:
  /// Lowers a match expression. Throws json::JsonError on the same
  /// malformed shapes matches() rejects (non-object query, unknown $op,
  /// non-array $and/$or/$in operand, non-bool $exists operand).
  static CompiledQuery compile(const json::Json& query);

  /// Runs the program over one document. Allocation-free.
  bool eval(const json::Json& document) const;

  /// One top-level conjunctive {path: condition} constraint — a direct
  /// field entry of the query or of any nested $and — in query iteration
  /// order. Every document matching the query satisfies every conjunct, so
  /// index candidates for any subset intersect to a superset of the match
  /// set: this is the planner's input. Pointers reference the retained
  /// query tree (std::map nodes — stable addresses).
  struct Conjunct {
    const std::string* path = nullptr;       // dotted path (map key)
    const json::Json* condition = nullptr;   // bare scalar or operator object
  };
  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }

  /// The interned paths the program touches (diagnostics/tests).
  std::size_t path_count() const { return paths_.size(); }

  // Move-only: OpInstr/Conjunct pointers reference this object's owned
  // query tree, which a copy would not share.
  CompiledQuery(CompiledQuery&&) = default;
  CompiledQuery& operator=(CompiledQuery&&) = default;
  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

 private:
  CompiledQuery() = default;

  // Typed leaf opcodes. Range operators are specialized on the operand's
  // type at compile time so evaluation is a plain double/string compare:
  // the match engine orders only same-class number/string pairs, which
  // collapses every other operand type into a constant or a type test.
  enum class OpCode : std::uint8_t {
    BareEq,        // non-operator condition: value == operand
    Eq,            // {$eq: operand}
    Ne,            // {$ne: operand}
    In,            // {$in: [..]} — any element equals value
    Nin,           // {$nin: [..]} — no element equals value
    GtNum,         // value is number and value > num
    GtStr,         // value is string and value > *str
    GteNum,        // value is number and value >= num
    GteStr,        // value is string and value >= *str
    LtNum,         // value is number and value < num
    LtStr,         // value is string and value < *str
    LteNum,        // value is number and value <= num
    LteStr,        // value is string and value <= *str
    StrOnly,       // $gte/$lte with a non-number/string operand: the match
                   // engine accepts exactly "value is a string"
    Never,         // $gt/$lt with a non-number/string operand: unsatisfiable
    ExistsTrue,    // value present
    ExistsFalse,   // fails when the value is present (missing values are
                   // handled by FieldNode::missing_matches)
  };

  struct OpInstr {
    OpCode code;
    double num = 0.0;                        // *Num operand
    const std::string* str = nullptr;        // *Str operand
    const json::Json* operand = nullptr;     // equality/list operand
  };

  // Prefix-ordered logic tree. And/Or/Not children follow immediately;
  // `next` indexes one past the node's subtree so Or can short-circuit
  // without walking skipped children.
  struct Node {
    enum class Kind : std::uint8_t { And, Or, Not, Field };
    Kind kind;
    std::uint32_t count = 0;      // And/Or/Not: child count
    std::uint32_t next = 0;       // one past this subtree
    std::uint32_t path = 0;       // Field: index into paths_
    std::uint32_t first_op = 0;   // Field: index into ops_
    std::uint32_t op_count = 0;   // Field: ops in the condition
    bool missing_matches = false; // Field: a missing value still matches
                                  // (operator object carrying $exists:false)
  };

  std::uint32_t intern_path(const std::string& dotted);
  std::uint32_t compile_node(const json::Json& query, bool collect_conjuncts);
  void compile_field(const std::string& path, const json::Json& condition);
  bool eval_node(std::uint32_t at, const json::Json& document) const;
  bool eval_field(const Node& node, const json::Json& document) const;

  // The compiled query retains its own copy of the expression: operand
  // pointers reference nodes inside this tree (map nodes and array heap
  // buffers, which are stable under move), so a CompiledQuery stays valid
  // after the caller's query goes away and after being moved itself.
  std::unique_ptr<json::Json> root_;
  std::vector<Node> nodes_;
  std::vector<OpInstr> ops_;
  std::vector<PathRef> paths_;
  std::vector<Conjunct> conjuncts_;
};

}  // namespace gptc::db::query
