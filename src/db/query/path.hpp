// Pre-split document paths for the query subsystem.
//
// Every read-path component used to re-split dot paths ("a.b.0.c") on each
// lookup — per record, per field — allocating a fresh segment string each
// step. A PathRef is the split done once: an interned sequence of segments,
// each carrying its raw key text and (when the segment is all digits) the
// parsed array index, so lookups over a compiled query or a maintained
// index never touch the parser again.
//
// Semantics are identical to db::lookup_path (which now routes through the
// same walk): at each segment, an object containing the key descends into
// it; otherwise an array with a valid numeric segment descends by index;
// anything else resolves to nullptr.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace gptc::db::query {

/// A non-empty all-digit segment of at most 9 characters is an array
/// index; anything longer than any realistic array is rejected before it
/// can overflow.
std::optional<std::size_t> parse_array_index(std::string_view key);

class PathRef {
 public:
  struct Segment {
    std::string key;            // raw segment text ("mb", "0")
    std::size_t index = 0;      // parsed value when indexable
    bool indexable = false;     // all-digit segment usable on arrays
  };

  PathRef() = default;

  /// Splits once. "grid.0.x" becomes three segments; "0" is marked
  /// indexable so it can step through an array.
  static PathRef parse(std::string_view path);

  const std::string& text() const { return text_; }
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::string text_;               // the original dotted path
  std::vector<Segment> segments_;  // pre-split, in order
};

/// Resolves a pre-split path against a document. Returns nullptr if any
/// step is missing, out of bounds, or applied to a non-container — the
/// exact contract of db::lookup_path on the equivalent dotted string.
const json::Json* lookup(const json::Json& document, const PathRef& path);

/// Resolves a dotted path without pre-splitting, walking string_view
/// segments in place (no allocation; object lookup is heterogeneous via
/// the Json::Object transparent comparator). db::lookup_path delegates
/// here so interpreted matches() shares the allocation-free core.
const json::Json* lookup(const json::Json& document, std::string_view path);

}  // namespace gptc::db::query
