#include "db/query/program.hpp"

#include <utility>

namespace gptc::db::query {

using json::Json;
using json::JsonError;

namespace {

/// Same shape test as the match engine: a non-empty object whose keys all
/// start with '$' is an operator object; anything else (including {} and
/// mixed-key objects) is a bare equality operand.
bool is_operator_object(const Json& j) {
  if (!j.is_object() || j.as_object().empty()) return false;
  for (const auto& [k, v] : j.as_object()) {
    (void)v;
    if (k.empty() || k[0] != '$') return false;
  }
  return true;
}

bool in_list(const Json& value, const Json& list) {
  for (const auto& item : list.as_array())
    if (value == item) return true;
  return false;
}

}  // namespace

CompiledQuery CompiledQuery::compile(const Json& query) {
  CompiledQuery q;
  // Retain a copy first: every operand/conjunct pointer the lowering emits
  // references this tree, not the caller's argument.
  q.root_ = std::make_unique<Json>(query);
  q.compile_node(*q.root_, /*collect_conjuncts=*/true);
  return q;
}

std::uint32_t CompiledQuery::intern_path(const std::string& dotted) {
  for (std::uint32_t i = 0; i < paths_.size(); ++i)
    if (paths_[i].text() == dotted) return i;
  paths_.push_back(PathRef::parse(dotted));
  return static_cast<std::uint32_t>(paths_.size() - 1);
}

std::uint32_t CompiledQuery::compile_node(const Json& query,
                                          bool collect_conjuncts) {
  if (!query.is_object())
    throw JsonError("query must be a JSON object");
  const auto at = static_cast<std::uint32_t>(nodes_.size());
  Node root;
  root.kind = Node::Kind::And;
  nodes_.push_back(root);
  std::uint32_t count = 0;
  for (const auto& [key, condition] : query.as_object()) {
    if (key == "$and") {
      // $and flattens conjunctively, so its fields stay visible to the
      // planner as long as we only descended through $and so far.
      const auto sub_at = static_cast<std::uint32_t>(nodes_.size());
      Node sub;
      sub.kind = Node::Kind::And;
      nodes_.push_back(sub);
      std::uint32_t subs = 0;
      for (const auto& part : condition.as_array()) {
        compile_node(part, collect_conjuncts);
        ++subs;
      }
      nodes_[sub_at].count = subs;
      nodes_[sub_at].next = static_cast<std::uint32_t>(nodes_.size());
    } else if (key == "$or") {
      const auto sub_at = static_cast<std::uint32_t>(nodes_.size());
      Node sub;
      sub.kind = Node::Kind::Or;
      nodes_.push_back(sub);
      std::uint32_t subs = 0;
      for (const auto& part : condition.as_array()) {
        compile_node(part, /*collect_conjuncts=*/false);
        ++subs;
      }
      nodes_[sub_at].count = subs;
      nodes_[sub_at].next = static_cast<std::uint32_t>(nodes_.size());
    } else if (key == "$not") {
      const auto sub_at = static_cast<std::uint32_t>(nodes_.size());
      Node sub;
      sub.kind = Node::Kind::Not;
      sub.count = 1;
      nodes_.push_back(sub);
      compile_node(condition, /*collect_conjuncts=*/false);
      nodes_[sub_at].next = static_cast<std::uint32_t>(nodes_.size());
    } else {
      compile_field(key, condition);
      if (collect_conjuncts) conjuncts_.push_back({&key, &condition});
    }
    ++count;
  }
  nodes_[at].count = count;
  nodes_[at].next = static_cast<std::uint32_t>(nodes_.size());
  return at;
}

void CompiledQuery::compile_field(const std::string& path,
                                  const Json& condition) {
  Node n;
  n.kind = Node::Kind::Field;
  n.path = intern_path(path);
  n.first_op = static_cast<std::uint32_t>(ops_.size());
  if (is_operator_object(condition)) {
    for (const auto& [op, operand] : condition.as_object()) {
      OpInstr in;
      if (op == "$eq") {
        in.code = OpCode::Eq;
        in.operand = &operand;
      } else if (op == "$ne") {
        in.code = OpCode::Ne;
        in.operand = &operand;
      } else if (op == "$in" || op == "$nin") {
        if (!operand.is_array())
          throw JsonError(op + " operand must be an array");
        in.code = op == "$in" ? OpCode::In : OpCode::Nin;
        in.operand = &operand;
      } else if (op == "$gt" || op == "$lt") {
        // compare_lt only orders same-class number/string pairs, so a
        // strict bound against any other operand type is unsatisfiable.
        if (operand.is_number()) {
          in.code = op == "$gt" ? OpCode::GtNum : OpCode::LtNum;
          in.num = operand.as_double();
        } else if (operand.is_string()) {
          in.code = op == "$gt" ? OpCode::GtStr : OpCode::LtStr;
          in.str = &operand.as_string();
        } else {
          in.code = OpCode::Never;
        }
      } else if (op == "$gte" || op == "$lte") {
        // The non-strict bounds additionally require the value to be a
        // number or string of the operand's class; with a non-number,
        // non-string operand the surviving condition is "value is a
        // string" (see match_operators).
        if (operand.is_number()) {
          in.code = op == "$gte" ? OpCode::GteNum : OpCode::LteNum;
          in.num = operand.as_double();
        } else if (operand.is_string()) {
          in.code = op == "$gte" ? OpCode::GteStr : OpCode::LteStr;
          in.str = &operand.as_string();
        } else {
          in.code = OpCode::StrOnly;
        }
      } else if (op == "$exists") {
        // as_bool() throws here on a non-bool operand — the same JsonError
        // the interpreter raises, just at compile time.
        if (operand.as_bool()) {
          in.code = OpCode::ExistsTrue;
        } else {
          in.code = OpCode::ExistsFalse;
          n.missing_matches = true;
        }
      } else {
        throw JsonError("unknown query operator: " + op);
      }
      ops_.push_back(in);
    }
  } else {
    OpInstr in;
    in.code = OpCode::BareEq;
    in.operand = &condition;
    ops_.push_back(in);
  }
  n.op_count = static_cast<std::uint32_t>(ops_.size()) - n.first_op;
  nodes_.push_back(n);
  nodes_.back().next = static_cast<std::uint32_t>(nodes_.size());
}

bool CompiledQuery::eval(const Json& document) const {
  if (nodes_.empty()) return true;  // {} matches everything
  return eval_node(0, document);
}

bool CompiledQuery::eval_node(std::uint32_t at, const Json& document) const {
  const Node& n = nodes_[at];
  switch (n.kind) {
    case Node::Kind::And: {
      std::uint32_t child = at + 1;
      for (std::uint32_t i = 0; i < n.count; ++i) {
        if (!eval_node(child, document)) return false;
        child = nodes_[child].next;
      }
      return true;
    }
    case Node::Kind::Or: {
      std::uint32_t child = at + 1;
      for (std::uint32_t i = 0; i < n.count; ++i) {
        if (eval_node(child, document)) return true;
        child = nodes_[child].next;
      }
      return false;  // including the empty-$or case
    }
    case Node::Kind::Not:
      return !eval_node(at + 1, document);
    case Node::Kind::Field:
      return eval_field(n, document);
  }
  return false;  // unreachable
}

bool CompiledQuery::eval_field(const Node& node, const Json& document) const {
  const Json* value = lookup(document, paths_[node.path]);
  if (!value) {
    // A missing field matches only an operator object carrying
    // $exists:false; its sibling operators are ignored, exactly as the
    // interpreter's missing-value branch does.
    return node.missing_matches;
  }
  const std::uint32_t end = node.first_op + node.op_count;
  for (std::uint32_t i = node.first_op; i < end; ++i) {
    const OpInstr& in = ops_[i];
    switch (in.code) {
      case OpCode::BareEq:
      case OpCode::Eq:
        if (!(*value == *in.operand)) return false;
        break;
      case OpCode::Ne:
        if (*value == *in.operand) return false;
        break;
      case OpCode::In:
        if (!in_list(*value, *in.operand)) return false;
        break;
      case OpCode::Nin:
        if (in_list(*value, *in.operand)) return false;
        break;
      case OpCode::GtNum:
        if (!value->is_number() || !(value->as_double() > in.num))
          return false;
        break;
      case OpCode::GtStr:
        if (!value->is_string() || !(value->as_string() > *in.str))
          return false;
        break;
      case OpCode::GteNum:
        if (!value->is_number() || !(value->as_double() >= in.num))
          return false;
        break;
      case OpCode::GteStr:
        if (!value->is_string() || !(value->as_string() >= *in.str))
          return false;
        break;
      case OpCode::LtNum:
        if (!value->is_number() || !(value->as_double() < in.num))
          return false;
        break;
      case OpCode::LtStr:
        if (!value->is_string() || !(value->as_string() < *in.str))
          return false;
        break;
      case OpCode::LteNum:
        if (!value->is_number() || !(value->as_double() <= in.num))
          return false;
        break;
      case OpCode::LteStr:
        if (!value->is_string() || !(value->as_string() <= *in.str))
          return false;
        break;
      case OpCode::StrOnly:
        if (!value->is_string()) return false;
        break;
      case OpCode::Never:
        return false;
      case OpCode::ExistsTrue:
        break;  // presence already established
      case OpCode::ExistsFalse:
        return false;  // value is present
    }
  }
  return true;
}

}  // namespace gptc::db::query
