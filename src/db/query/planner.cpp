#include "db/query/planner.hpp"

#include <algorithm>

namespace gptc::db::query {

namespace {

// A candidate set this small is already cheaper to re-check than any
// further intersection would be to compute.
constexpr std::size_t kSmallEnough = 4;

// Intersect another index only when its candidate list is within a small
// factor of what we already hold: a list 100x wider than the current set
// costs more to walk than the re-checks it could ever save. The slack term
// keeps small absolute lists (a dozen ids) always worth intersecting.
constexpr std::size_t kIntersectFactor = 4;
constexpr std::size_t kIntersectSlack = 16;

}  // namespace

ShardPlan plan_shard(
    const std::map<std::string, engine::OrderedIndex>& indexes,
    const CompiledQuery& query) {
  ShardPlan plan;
  if (indexes.empty()) return plan;

  for (const auto& conjunct : query.conjuncts()) {
    const auto it = indexes.find(*conjunct.path);
    if (it == indexes.end()) continue;
    if (const auto est = it->second.estimate(*conjunct.condition))
      plan.choices.push_back({conjunct.path, conjunct.condition, *est, false});
  }
  if (plan.choices.empty()) return plan;

  // Narrowest first; ties broken by path so the ranking (hence the explain
  // output and the work done) is identical on every shard and every run.
  std::stable_sort(plan.choices.begin(), plan.choices.end(),
                   [](const IndexChoice& a, const IndexChoice& b) {
                     if (a.estimate != b.estimate) return a.estimate < b.estimate;
                     return *a.path < *b.path;
                   });

  // estimate() is non-null exactly when candidates() is, so these derefs
  // cannot fail.
  IndexChoice& first = plan.choices.front();
  plan.candidates =
      *indexes.find(*first.path)->second.candidates(*first.condition);
  first.applied = true;
  plan.index_scan = true;

  std::vector<std::int64_t> next;
  std::vector<std::int64_t> merged;
  for (std::size_t i = 1; i < plan.choices.size(); ++i) {
    if (plan.candidates.size() <= kSmallEnough) break;
    IndexChoice& choice = plan.choices[i];
    if (choice.estimate >
        kIntersectFactor * plan.candidates.size() + kIntersectSlack)
      continue;
    next = *indexes.find(*choice.path)->second.candidates(*choice.condition);
    merged.clear();
    // Both lists ascend (posting lists hold ids in insertion order), so the
    // intersection stays sorted — the executor's shard-scan order.
    std::set_intersection(plan.candidates.begin(), plan.candidates.end(),
                          next.begin(), next.end(),
                          std::back_inserter(merged));
    plan.candidates.swap(merged);
    choice.applied = true;
  }
  return plan;
}

}  // namespace gptc::db::query
