// Selectivity-aware index planning for one shard.
//
// The previous planner took the FIRST query field with a usable index — for
// the crowd read path that was always the `problem` index, whose posting
// list is the whole partition, so every query still re-matched hundreds of
// candidates. This planner asks every usable index for an estimate()
// (posting-bound arithmetic, no id materialization), ranks the conjuncts by
// selectivity, materializes only the narrowest, and intersects further
// candidate lists while they keep paying for themselves.
//
// Correctness never depends on the estimates: every candidate list is a
// superset of the shard's true matches (OrderedIndex superset semantics),
// an intersection of supersets over conjunctive constraints is still a
// superset, and the caller re-runs the full compiled program over whatever
// survives. Planning only decides how much work the re-check does — results
// are byte-identical to a full scan at any shard count. When no index is
// usable the plan says "scan".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/engine/index.hpp"
#include "db/query/program.hpp"

namespace gptc::db::query {

/// One usable (conjunct, index) pair, with its selectivity estimate.
/// Pointers reference the CompiledQuery's retained tree — valid while the
/// compiled query is. Plans are caller-local value objects built while the
/// shard reader lock happens to be held; nothing here is shared state.
struct IndexChoice {
  const std::string* path = nullptr;
  const json::Json* condition = nullptr;
  std::size_t estimate = 0;  // guard-ok: caller-local plan value
  // materialized (first) or intersected (later)
  bool applied = false;  // guard-ok: caller-local plan value
};

struct ShardPlan {
  /// False = no usable index, run the full shard scan.
  bool index_scan = false;  // guard-ok: caller-local plan value
  /// Sorted candidate ids (ascending = insertion order) when index_scan.
  std::vector<std::int64_t> candidates;  // guard-ok: caller-local plan value
  /// Every usable choice, ranked narrowest-first (ties by path — Json
  /// objects iterate sorted, so plans are deterministic at any shard or
  /// thread count).
  std::vector<IndexChoice> choices;  // guard-ok: caller-local plan value
};

/// Plans one shard's scan for a compiled query against the shard's declared
/// indexes. Caller holds the shard's reader lock.
ShardPlan plan_shard(
    const std::map<std::string, engine::OrderedIndex>& indexes,
    const CompiledQuery& query);

}  // namespace gptc::db::query
