#include "db/query/path.hpp"

#include <cctype>

namespace gptc::db::query {

using json::Json;

std::optional<std::size_t> parse_array_index(std::string_view key) {
  if (key.empty() || key.size() > 9) return std::nullopt;
  std::size_t idx = 0;
  for (char c : key) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    idx = idx * 10 + static_cast<std::size_t>(c - '0');
  }
  return idx;
}

PathRef PathRef::parse(std::string_view path) {
  PathRef ref;
  ref.text_.assign(path);
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string_view key = path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    Segment seg;
    seg.key.assign(key);
    if (const auto idx = parse_array_index(key)) {
      seg.index = *idx;
      seg.indexable = true;
    }
    ref.segments_.push_back(std::move(seg));
    if (dot == std::string_view::npos) return ref;
    start = dot + 1;
  }
}

namespace {

/// One lookup step shared by both walks: object-by-key first, then
/// array-by-numeric-segment, else dead end.
const Json* step(const Json* cur, std::string_view key,
                 const std::optional<std::size_t>& idx) {
  if (cur->is_object()) {
    const auto& obj = cur->as_object();
    const auto it = obj.find(key);  // heterogeneous: no key string built
    return it == obj.end() ? nullptr : &it->second;
  }
  if (cur->is_array()) {
    if (!idx || *idx >= cur->size()) return nullptr;
    return &cur->at(*idx);
  }
  return nullptr;
}

}  // namespace

const Json* lookup(const Json& document, const PathRef& path) {
  const Json* cur = &document;
  for (const auto& seg : path.segments()) {
    cur = step(cur, seg.key,
               seg.indexable ? std::optional<std::size_t>(seg.index)
                             : std::nullopt);
    if (!cur) return nullptr;
  }
  return cur;
}

const Json* lookup(const Json& document, std::string_view path) {
  const Json* cur = &document;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string_view key = path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    cur = step(cur, key, parse_array_index(key));
    if (!cur) return nullptr;
    if (dot == std::string_view::npos) return cur;
    start = dot + 1;
  }
}

}  // namespace gptc::db::query
