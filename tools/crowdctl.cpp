// crowdctl — command-line client for a file-backed shared repository.
//
// The paper's shared database ships web tools for browsing collected data;
// this is the equivalent for the file-backed repository: manage users,
// upload evaluation records, run SQL-like queries, and launch the
// analytics utilities, all against a repository directory.
//
// Usage:
//   crowdctl [--durable] <repo-dir> register <username> <email>
//   crowdctl [--durable] <repo-dir> upload <api-key> <problem> <records.json>
//   crowdctl [--durable] <repo-dir> query <api-key> <problem> [<where-clause>]
//   crowdctl [--durable] <repo-dir> stats <problem>
//   crowdctl [--durable] <repo-dir> variability <api-key> <problem>
//   crowdctl [--durable] <repo-dir> collections
//
// --durable opens the directory on the storage engine (WAL + snapshots,
// src/db/engine) instead of the diffable JSON export: every mutation is
// crash-safe the moment the command returns, and a directory written
// without the flag is migrated in place on first use.
//
// The records.json file holds an array of objects:
//   [{"task_parameters": {...}, "tuning_parameters": {...},
//     "output": 1.23, "machine_configuration": {...},
//     "software_configuration": {...}}, ...]
#include <fstream>
#include <iostream>
#include <sstream>

#include "crowd/query_language.hpp"
#include "crowd/repo.hpp"

using namespace gptc;
using json::Json;

namespace {

int usage() {
  std::cerr <<
      "usage: crowdctl [--durable] <repo-dir> <command> [args]\n"
      "  register <username> <email>          create a user, print API key\n"
      "  upload <api-key> <problem> <file>    upload a JSON array of records\n"
      "  query <api-key> <problem> [where]    SQL-like query, print records\n"
      "  stats <problem>                      record counts\n"
      "  variability <api-key> <problem>      noise/outlier report\n"
      "  collections                          list stored collections\n"
      "options:\n"
      "  --durable    open on the WAL+snapshot storage engine (crash-safe)\n";
  return 2;
}

Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

int run(int argc, char** argv) {
  bool durable = false;
  if (argc >= 2 && std::string(argv[1]) == "--durable") {
    durable = true;
    ++argv;
    --argc;
  }
  if (argc < 3) return usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];

  // Durable mode persists every mutation through the WAL as it happens;
  // legacy mode mutates in memory and relies on the explicit save() below.
  crowd::SharedRepo repo = durable ? crowd::SharedRepo::open_durable(dir)
                                   : crowd::SharedRepo::load(dir);
  const auto persist = [&] {
    if (durable)
      repo.sync();
    else
      repo.save(dir);
  };

  if (command == "register") {
    if (argc != 5) return usage();
    const std::string key = repo.register_user(argv[3], argv[4]);
    persist();
    std::cout << "user '" << argv[3]
              << "' registered; API key (shown once): " << key << "\n";
    return 0;
  }
  if (command == "upload") {
    if (argc != 6) return usage();
    const Json records = load_json_file(argv[5]);
    std::size_t count = 0;
    for (const auto& r : records.as_array()) {
      crowd::EvalUpload e;
      e.task_parameters = r.get_or("task_parameters", Json::object());
      e.tuning_parameters = r.get_or("tuning_parameters", Json::object());
      const Json out = r.get_or("output", Json(nullptr));
      e.output = out.is_number()
                     ? out.as_double()
                     : std::numeric_limits<double>::quiet_NaN();
      e.machine_configuration =
          r.get_or("machine_configuration", Json::object());
      e.software_configuration =
          r.get_or("software_configuration", Json::object());
      e.accessibility = crowd::Accessibility::from_json(
          r.get_or("accessibility", Json("public")));
      repo.upload(argv[3], argv[4], e);
      ++count;
    }
    persist();
    std::cout << "uploaded " << count << " record(s) to problem '" << argv[4]
              << "'\n";
    return 0;
  }
  if (command == "query") {
    if (argc != 5 && argc != 6) return usage();
    const std::string where = argc == 6 ? argv[5] : "";
    const auto records = repo.query_where(argv[3], argv[4], where);
    for (const auto& r : records) std::cout << r.dump() << "\n";
    std::cerr << records.size() << " record(s)\n";
    return 0;
  }
  if (command == "stats") {
    if (argc != 4) return usage();
    std::cout << "problem '" << argv[3]
              << "': " << repo.num_records(argv[3]) << " record(s), "
              << repo.num_users() << " registered user(s)\n";
    return 0;
  }
  if (command == "variability") {
    if (argc != 5) return usage();
    crowd::MetaDescription meta;
    meta.api_key = argv[3];
    meta.tuning_problem_name = argv[4];
    const crowd::VariabilityReport report =
        repo.query_variability_report(meta);
    std::cout << report.summary() << "\n";
    for (const auto& g : report.groups) {
      if (g.outliers.empty() &&
          !g.noisy(report.options.noisy_relative_mad))
        continue;
      std::cout << "  group median=" << g.median
                << " relative_mad=" << g.relative_mad << " repeats="
                << g.outputs.size() << " outliers=" << g.outliers.size()
                << "\n";
    }
    return 0;
  }
  if (command == "collections") {
    for (const auto& name : repo.store().collection_names()) {
      const auto* c = repo.store().find_collection(name);
      std::cout << name << ": " << (c ? c->size() : 0) << " document(s)\n";
    }
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "crowdctl: " << e.what() << "\n";
    return 1;
  }
}
