// crowdctl — command-line client for a file-backed shared repository.
//
// The paper's shared database ships web tools for browsing collected data;
// this is the equivalent for the file-backed repository: manage users,
// upload evaluation records, run SQL-like queries, launch the analytics
// utilities, and serve the repository over TCP (src/net), all against a
// repository directory — or, with --remote, against a running server.
//
// Usage:
//   crowdctl [--durable] [--shards N] <repo-dir> register <username> <email>
//   crowdctl [--durable] [--shards N] <repo-dir> upload <api-key> <problem> <records.json>
//   crowdctl [--durable] [--shards N] <repo-dir> query <api-key> <problem> [<where-clause>]
//   crowdctl [--durable] [--shards N] <repo-dir> explain <api-key> <problem> [<where-clause>]
//   crowdctl [--durable] [--shards N] <repo-dir> stats <problem>
//   crowdctl [--durable] [--shards N] <repo-dir> variability <api-key> <problem>
//   crowdctl [--durable] [--shards N] <repo-dir> collections
//   crowdctl [--durable] [--shards N] <repo-dir> serve <port> [<workers>]
//   crowdctl --remote <host:port> upload <api-key> <problem> <records.json>
//   crowdctl --remote <host:port> query <api-key> <problem> [<where-clause>]
//   crowdctl --remote <host:port> explain <api-key> <problem> [<where-clause>]
//   crowdctl --remote <host:port> health
//   crowdctl --remote <host:port> stats
//
// --durable opens the directory on the storage engine (WAL + snapshots,
// src/db/engine) instead of the diffable JSON export: every mutation is
// crash-safe the moment the command returns, and a directory written
// without the flag is migrated in place on first use. `serve` with
// --durable additionally turns on async group commit, the mode the
// server's upload ack path is designed for.
//
// --shards N (with --durable) opens every collection split into N shards,
// each with its own WAL/snapshot — more concurrent writers, parallel
// recovery. A directory holding a different shard count is migrated in
// place on open (crash-safe: the layout flips atomically through
// engine.manifest). Without the flag the directory keeps whatever count it
// was written with.
//
// The records.json file holds an array of objects:
//   [{"task_parameters": {...}, "tuning_parameters": {...},
//     "output": 1.23, "machine_configuration": {...},
//     "software_configuration": {...}}, ...]
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "crowd/query_language.hpp"
#include "crowd/repo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace gptc;
using json::Json;

namespace {

int usage() {
  std::cerr <<
      "usage: crowdctl [--durable] <repo-dir> <command> [args]\n"
      "       crowdctl --remote <host:port> <command> [args]\n"
      "  register <username> <email>          create a user, print API key\n"
      "  upload <api-key> <problem> <file>    upload a JSON array of records\n"
      "  query <api-key> <problem> [where]    SQL-like query, print records\n"
      "  explain <api-key> <problem> [where]  print the query plan (indexes\n"
      "                                       picked, selectivity estimates,\n"
      "                                       candidate counts), not records\n"
      "  stats <problem>                      record counts\n"
      "  variability <api-key> <problem>      noise/outlier report\n"
      "  collections                          list stored collections\n"
      "  serve <port> [workers]               serve the repo over TCP\n"
      "remote commands: upload, query, explain, health, stats\n"
      "options:\n"
      "  --durable    open on the WAL+snapshot storage engine (crash-safe)\n"
      "  --shards N   with --durable: N shards (WALs) per collection;\n"
      "               migrates the directory if it holds a different count\n"
      "  --remote     talk to a crowdctl serve instance instead of a dir\n";
  return 2;
}

Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

/// Maps one wire/file record object onto an EvalUpload (shared between
/// the local and --remote upload commands).
crowd::EvalUpload eval_from_record(const Json& r) {
  crowd::EvalUpload e;
  e.task_parameters = r.get_or("task_parameters", Json::object());
  e.tuning_parameters = r.get_or("tuning_parameters", Json::object());
  const Json name = r.get_or("output_name", Json("runtime"));
  e.output_name = name.as_string();
  const Json out = r.get_or("output", Json(nullptr));
  e.output = out.is_number() ? out.as_double()
                             : std::numeric_limits<double>::quiet_NaN();
  e.machine_configuration = r.get_or("machine_configuration", Json::object());
  e.software_configuration =
      r.get_or("software_configuration", Json::object());
  e.accessibility =
      crowd::Accessibility::from_json(r.get_or("accessibility", Json("public")));
  return e;
}

/// Renders SharedRepo::explain_where()'s report (same shape locally and over
/// the wire): one line per shard — index scan or full scan, candidate count —
/// then each considered index with its selectivity estimate and whether the
/// planner applied it (materialized or intersected).
void print_plan(const Json& plan) {
  std::cout << "query: " << plan.get_or("query", Json::object()).dump()
            << "\n";
  std::size_t candidates = 0, total = 0;
  const Json shards = plan.get_or("shards", Json::array());  // get_or copies
  for (const Json& shard : shards.as_array()) {
    const bool index_scan =
        shard.get_or("index_scan", Json(false)).as_bool();
    const std::int64_t cand = shard.get_or("candidates", Json(0)).as_int();
    const std::int64_t size = shard.get_or("shard_size", Json(0)).as_int();
    candidates += static_cast<std::size_t>(cand);
    total += static_cast<std::size_t>(size);
    std::cout << "shard " << shard.get_or("shard", Json(0)).as_int() << ": "
              << (index_scan ? "INDEX SCAN" : "FULL SCAN") << ", " << cand
              << " of " << size << " candidate(s)\n";
    const Json idxs = shard.get_or("indexes", Json::array());
    for (const Json& idx : idxs.as_array()) {
      std::cout << "  index " << idx.get_or("path", Json("")).as_string()
                << ": estimate=" << idx.get_or("estimate", Json(0)).as_int()
                << (idx.get_or("applied", Json(false)).as_bool()
                        ? " (applied)"
                        : " (skipped)")
                << "\n";
    }
  }
  std::cout << "total: " << candidates << " candidate(s) across "
            << total << " document(s)\n";
}

int run_remote(int argc, char** argv) {
  // argv: crowdctl --remote <host:port> <command> [args...]
  if (argc < 4) return usage();
  const std::string endpoint = argv[2];
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "crowdctl: --remote expects host:port\n";
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::stoi(endpoint.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    std::cerr << "crowdctl: bad port in " << endpoint << "\n";
    return 2;
  }
  net::CrowdClient client(host, static_cast<std::uint16_t>(port));

  const std::string command = argv[3];
  if (command == "health") {
    std::cout << client.health().dump() << "\n";
    return 0;
  }
  if (command == "stats") {
    std::cout << client.stats().dump(2) << "\n";
    return 0;
  }
  if (command == "upload") {
    if (argc != 7) return usage();
    const Json records = load_json_file(argv[6]);
    std::vector<crowd::EvalUpload> evals;
    for (const auto& r : records.as_array()) {
      evals.push_back(eval_from_record(r));
    }
    const auto ids = client.upload(argv[4], argv[5], evals);
    std::cout << "uploaded " << ids.size() << " record(s) to problem '"
              << argv[5] << "' (durable on ack)\n";
    return 0;
  }
  if (command == "query") {
    if (argc != 6 && argc != 7) return usage();
    const std::string where = argc == 7 ? argv[6] : "";
    const auto records = client.query(argv[4], argv[5], where);
    for (const auto& r : records) std::cout << r.dump() << "\n";
    std::cerr << records.size() << " record(s)\n";
    return 0;
  }
  if (command == "explain") {
    if (argc != 6 && argc != 7) return usage();
    const std::string where = argc == 7 ? argv[6] : "";
    print_plan(client.explain(argv[4], argv[5], where));
    return 0;
  }
  return usage();
}

int run_serve(const std::string& dir, bool durable, std::size_t shards,
              int argc, char** argv) {
  // argv: crowdctl [--durable] <dir> serve <port> [<workers>]
  if (argc != 4 && argc != 5) return usage();
  const int port = std::stoi(argv[3]);
  if (port < 0 || port > 65535) {
    std::cerr << "crowdctl: bad port " << argv[3] << "\n";
    return 2;
  }

  // Block SIGINT/SIGTERM before any server thread exists so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  db::engine::EngineOptions eo;
  eo.async_commit = true;  // the upload ack path batches fsyncs
  eo.shards = shards;      // 0 = keep the directory's count
  crowd::SharedRepo repo =
      durable ? crowd::SharedRepo::open_durable(dir, 0x6a09e667f3bcc908ULL, eo)
              : crowd::SharedRepo::load(dir);

  net::ServerOptions so;
  so.port = static_cast<std::uint16_t>(port);
  if (argc == 5) so.workers = std::stoul(argv[4]);
  net::CrowdServer server(repo, so);
  server.start();
  std::cout << "crowdctl: serving '" << dir << "' on " << so.bind_address
            << ":" << server.port() << " (" << so.workers << " worker(s), "
            << (durable ? "durable, async group commit" : "in-memory")
            << "); Ctrl-C to drain and stop\n";

  int sig = 0;
  sigwait(&sigs, &sig);
  std::cout << "crowdctl: signal " << sig << " received, draining...\n";
  server.stop();
  if (!durable) repo.save(dir);
  std::cout << "crowdctl: stopped\n";
  return 0;
}

int run(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--remote") {
    return run_remote(argc, argv);
  }
  bool durable = false;
  std::size_t shards = 0;  // 0 = keep the directory's count
  while (argc >= 2) {
    const std::string flag = argv[1];
    if (flag == "--durable") {
      durable = true;
      ++argv;
      --argc;
    } else if (flag == "--shards") {
      if (argc < 3) return usage();
      const int n = std::stoi(argv[2]);
      if (n < 1) {
        std::cerr << "crowdctl: --shards expects a positive count\n";
        return 2;
      }
      shards = static_cast<std::size_t>(n);
      argv += 2;
      argc -= 2;
    } else {
      break;
    }
  }
  if (shards != 0 && !durable) {
    std::cerr << "crowdctl: --shards requires --durable\n";
    return 2;
  }
  if (argc < 3) return usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];

  if (command == "serve") return run_serve(dir, durable, shards, argc, argv);

  // Durable mode persists every mutation through the WAL as it happens;
  // legacy mode mutates in memory and relies on the explicit save() below.
  db::engine::EngineOptions eo;
  eo.shards = shards;
  crowd::SharedRepo repo =
      durable ? crowd::SharedRepo::open_durable(dir, 0x6a09e667f3bcc908ULL, eo)
              : crowd::SharedRepo::load(dir);
  const auto persist = [&] {
    if (durable)
      repo.sync();
    else
      repo.save(dir);
  };

  if (command == "register") {
    if (argc != 5) return usage();
    const std::string key = repo.register_user(argv[3], argv[4]);
    persist();
    std::cout << "user '" << argv[3]
              << "' registered; API key (shown once): " << key << "\n";
    return 0;
  }
  if (command == "upload") {
    if (argc != 6) return usage();
    const Json records = load_json_file(argv[5]);
    std::size_t count = 0;
    for (const auto& r : records.as_array()) {
      repo.upload(argv[3], argv[4], eval_from_record(r));
      ++count;
    }
    persist();
    std::cout << "uploaded " << count << " record(s) to problem '" << argv[4]
              << "'\n";
    return 0;
  }
  if (command == "query") {
    if (argc != 5 && argc != 6) return usage();
    const std::string where = argc == 6 ? argv[5] : "";
    const auto records = repo.query_where(argv[3], argv[4], where);
    for (const auto& r : records) std::cout << r.dump() << "\n";
    std::cerr << records.size() << " record(s)\n";
    return 0;
  }
  if (command == "explain") {
    if (argc != 5 && argc != 6) return usage();
    const std::string where = argc == 6 ? argv[5] : "";
    print_plan(repo.explain_where(argv[3], argv[4], where));
    return 0;
  }
  if (command == "stats") {
    if (argc != 4) return usage();
    std::cout << "problem '" << argv[3]
              << "': " << repo.num_records(argv[3]) << " record(s), "
              << repo.num_users() << " registered user(s)\n";
    return 0;
  }
  if (command == "variability") {
    if (argc != 5) return usage();
    crowd::MetaDescription meta;
    meta.api_key = argv[3];
    meta.tuning_problem_name = argv[4];
    const crowd::VariabilityReport report =
        repo.query_variability_report(meta);
    std::cout << report.summary() << "\n";
    for (const auto& g : report.groups) {
      if (g.outliers.empty() &&
          !g.noisy(report.options.noisy_relative_mad))
        continue;
      std::cout << "  group median=" << g.median
                << " relative_mad=" << g.relative_mad << " repeats="
                << g.outputs.size() << " outliers=" << g.outliers.size()
                << "\n";
    }
    return 0;
  }
  if (command == "collections") {
    for (const auto& name : repo.store().collection_names()) {
      const auto* c = repo.store().find_collection(name);
      std::cout << name << ": " << (c ? c->size() : 0) << " document(s)\n";
    }
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "crowdctl: " << e.what() << "\n";
    return 1;
  }
}
