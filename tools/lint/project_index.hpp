// ProjectIndex — pass 1 of gptc-lint's cross-file (whole-program) mode.
//
// The per-file rules R1–R5 see one translation unit at a time, which leaves
// exactly the contracts that span TUs unchecked: an unordered container
// declared as a class member in a header and iterated from another file, a
// lock order that is consistent inside every function but inverted between
// two of them, a WAL/snapshot writer whose fsync lives in a helper two calls
// away, and a thread entry point whose noexcept promise is made in the
// header but broken in the definition. Pass 1 walks every input file once
// and records the project-wide facts those rules need:
//
//   - class members and their container kinds (unordered containers for R6,
//     mutex/shared_mutex members and std::thread containers for R7/R9, plus
//     the member's resolved type name so member-call chains like
//     `shards_.find(...)` resolve to std::map::find, not Collection::find);
//   - every function definition/declaration with its qualified name,
//     noexcept status, catch-all handler and try-block ranges, the calls it
//     makes, the locks it acquires (in order, with the enclosing scope's
//     extent), durability markers (fsync/fdatasync/sync_parent_dir) and
//     file-creation sites (O_CREAT opens, renames, create_directories);
//   - lock identities normalized to `Class::member` via the enclosing
//     class, parameter types and local declarations, so `*mu_` inside
//     Collection::insert and `*c.mu_` inside StorageEngine::checkpoint are
//     the same lock while WalWriter::mu_ stays distinct.
//
// finalize() closes the call graph: which functions transitively reach a
// durability call, which locks a call transitively acquires, and the
// acquires-while-holding edge set (lock A held when lock B is taken, either
// directly in one scope or through a call made inside A's scope) that R7's
// cycle detection runs on. It also runs the guarded-by analysis (R10/R11):
// member read/write sites are checked against interprocedurally propagated
// held-lock sets — locks held at every visible call site flow into the
// callee, requires-lock annotations state contracts at the boundary, and
// shared_mutex acquisitions carry their mode so a write under only a shared
// lock is flagged. Everything here is the same token-level heuristic
// discipline as the per-file rules: over-approximate in the gray zone,
// escape-hatch comments for the rare legitimate exception.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow.hpp"
#include "source_scanner.hpp"

namespace gptc::lint {

/// One `std::unordered_*` data member declared inside a class body.
struct UnorderedMember {
  std::string cls;        // declaring class ("" if at namespace scope)
  std::string name;       // member identifier
  std::string container;  // "unordered_map", "unordered_set", ...
  std::string path;       // declaring file
  int line = 0;
};

/// One mutex-typed data member (std::mutex / std::shared_mutex /
/// std::recursive_mutex) — the lock identities R7 reasons about.
struct MutexMember {
  std::string cls;
  std::string name;
  std::string path;
  int line = 0;
  bool shared = false;  // shared_mutex / shared_timed_mutex (R11 cares)
};

/// One lock acquisition inside a function body, in source order.
struct LockSite {
  std::string lock_id;     // normalized "Class::member" or "file::name"
  bool shared = false;     // shared_lock / lock_shared: read mode only
  int line = 0;
  std::size_t token = 0;       // index into the file's token stream
  std::size_t scope_end = 0;   // token index of the enclosing scope's '}'
  /// Deferred owner chain for mutex expressions pass 1 cannot resolve from
  /// locals alone (subscripted member chains like a shard picked out of a
  /// container). finalize() walks the chain through the project-wide member
  /// tables; sites that still do not resolve are dropped. `member` empty
  /// means lock_id was resolved definitively during pass 1.
  std::string root;                   // first chain segment ("" = this)
  std::string root_type;              // from params/locals; "" = unknown
  std::vector<std::string> segments;  // chain between root and the mutex
  std::string member;                 // final mutex member name
};

/// One member-access chain inside a function body — the read/write sites the
/// guarded-by analysis (R10/R11) checks against held-lock sets. The chain is
/// resolved against the project-wide member tables in finalize(); links that
/// do not resolve to a known class member are dropped (under-approximate).
struct MemberAccess {
  std::string root;        // first chain identifier ("" = implicit this)
  std::string root_type;   // from params/locals when the root is a variable
  bool root_is_var = false;           // root names a local/param, not a member
  std::vector<std::string> segments;  // chain after the root, incl. the last
  bool is_write = false;   // the FINAL link is written (assign/incr/mutator)
  bool in_lambda = false;  // inside a lambda body: execution is deferred
  int line = 0;
  std::size_t token = 0;
};

/// A lock a function requires (held on entry) or returns (RAII handles whose
/// lifetime is the caller's scope), from requires-lock / returns-lock
/// annotation comments.
struct LockContract {
  std::string lock_id;  // normalized "Class::member"
  bool shared = false;  // contract is satisfied by shared mode
};

/// One R10/R11 finding computed by the guard analysis in finalize().
struct GuardFinding {
  std::string path;
  int line = 0;
  std::string rule;  // "R10" or "R11"
  std::string message;
};

/// One call expression inside a function body. For member calls the owner
/// chain (`shard.wal->append(...)` -> root "shard", segments {"wal"}) is
/// recorded; the root's type is resolved from parameter/local declarations
/// during pass 1 and the remaining member steps against the project-wide
/// member tables in finalize().
struct CallSite {
  std::string name;            // base (unqualified) callee name
  bool member_call = false;    // preceded by '.' or '->'
  std::string owner_root;      // first chain segment ("" for non-chains)
  std::string owner_root_type;     // from params/locals; "" if unknown
  std::vector<std::string> owner_segments;  // chain between root and callee
  /// Per-argument normalized lock identity ("" when the argument is not a
  /// recognizable mutex expression). Position-aligned with the callee's
  /// parameter list so `$N` placeholder locks resolve at the call site.
  std::vector<std::string> arg_lock_ids;
  int line = 0;
  std::size_t token = 0;
  std::size_t scope_end = 0;  // enclosing scope's '}' (returns-lock lifetime)
  bool in_lambda = false;     // inside a lambda body: execution is deferred
};

/// A file-creating or renaming operation (R8's durability triggers).
struct CreateSite {
  std::string what;  // "open(O_CREAT)", "rename", "create_directories"
  int line = 0;
};

/// A try-block's token extent plus whether a catch(...) follows it.
struct TryRange {
  std::size_t begin = 0;  // '{' of the try block
  std::size_t end = 0;    // matching '}'
  bool catch_all = false;
};

struct FunctionInfo {
  std::string qualified;  // "WalWriter::append", "parallel_for", ...
  std::string base;       // "append"
  std::string cls;        // "WalWriter" ("" for free functions)
  std::string path;
  int line = 0;
  bool is_definition = false;
  bool is_noexcept = false;     // on this decl/def; merged view in index
  bool has_catch_all = false;   // body contains `catch (...)`
  bool contains_sync = false;   // fsync / fdatasync / sync_parent_dir
  std::size_t body_begin = 0;   // '{' token index (definitions only)
  std::size_t body_end = 0;     // matching '}'
  /// Mutex-typed parameters, name -> position in the parameter list. Locks
  /// taken on one of these get the placeholder id `$<position>` instead of a
  /// class-qualified name; finalize() substitutes the caller's argument
  /// identity at every call site, so helpers that receive mutexes by
  /// reference no longer conflate (or hide) their callers' lock orders.
  std::map<std::string, std::size_t> mutex_params;
  /// All parameter names in declaration order ("" for unrecognized slots),
  /// so the taint analysis can seed positional labels (definitions only).
  std::vector<std::string> param_names;
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
  std::vector<CreateSite> creates;
  std::vector<TryRange> tries;
  std::vector<MemberAccess> accesses;
  std::vector<LockContract> requires_locks;  // requires-lock annotations
  std::vector<LockContract> returns_locks;   // returns-lock annotations
  /// Function-level guard-ok annotation: the whole body is exempt from the
  /// guard analysis (single-threaded setup/recovery paths).
  bool guard_exempt = false;
  /// Function-level blocking-ok annotation: callers treat this function as
  /// non-blocking and outside the snapshot/compaction reachability set
  /// (R13); its own body is still checked, so the escape documents an
  /// accepted cost at the boundary without silencing new hazards inside.
  bool blocking_exempt = false;
  /// Lambda body token extents inside this definition: accesses and calls in
  /// them run deferred, so held-lock reasoning is restricted to locks whose
  /// scope textually contains the site.
  std::vector<std::pair<std::size_t, std::size_t>> lambdas;
};

/// One acquires-while-holding edge witness for R7.
struct LockEdgeWitness {
  std::string path;
  int line = 0;            // where the second lock (or the call) is taken
  std::string function;    // qualified name of the holder
  std::string detail;      // human-readable "A then B (via call to f)" text
  bool suppressed = false;     // a `// lint: lock-order-ok` covers the site
};

class ProjectIndex {
 public:
  /// Pass 1 over one scanned file. Order of add_file calls does not affect
  /// the index contents (all derived state is built in finalize()).
  void add_file(const ScannedFile& file);

  /// Builds the derived state: call-graph closures (sync-reaching, lock
  /// sets) and the acquires-while-holding edge list. Call once, after every
  /// add_file.
  void finalize();

  // --- pass-2 queries ------------------------------------------------------

  const std::vector<UnorderedMember>& unordered_members() const {
    return unordered_members_;
  }
  const std::vector<MutexMember>& mutex_members() const {
    return mutex_members_;
  }

  /// Functions defined in `path`, in source order.
  std::vector<const FunctionInfo*> functions_in(const std::string& path) const;

  /// All declarations/definitions of base name `base`.
  std::vector<const FunctionInfo*> functions_named(
      const std::string& base) const;

  /// True when any decl/def of `qualified` is marked noexcept (noexcept on
  /// either the header declaration or the out-of-line definition counts).
  bool is_noexcept(const std::string& qualified) const;

  /// True when any definition of `qualified` contains a catch-all handler.
  bool has_catch_all(const std::string& qualified) const;

  /// True when some function with this base name transitively reaches
  /// fsync/fdatasync/sync_parent_dir (union over same-named functions —
  /// over-approximate by design).
  bool reaches_sync(const std::string& base) const;

  /// Member names of std::thread containers (e.g. `workers_` for a
  /// `std::vector<std::thread>` member) — R9's launch-site anchors.
  bool is_thread_member(const std::string& name) const {
    return thread_members_.count(name) != 0;
  }

  /// True when `name` is a class/struct seen anywhere in the project.
  bool is_project_class(const std::string& name) const {
    return classes_.count(name) != 0;
  }

  /// The acquires-while-holding graph: edge (A -> B) with its witnesses.
  const std::map<std::pair<std::string, std::string>,
                 std::vector<LockEdgeWitness>>&
  lock_edges() const {
    return lock_edges_;
  }

  /// Lock ids (transitively) acquired by functions with this base name.
  std::set<std::string> locks_of(const std::string& base) const;

  /// R10/R11 findings from the guard analysis, computed in finalize().
  const std::vector<GuardFinding>& guard_findings() const {
    return guard_findings_;
  }

  // --- dataflow-rule queries (R12/R13), available after finalize() ---------

  /// Every indexed function, addressable by node index — the node space of
  /// call_graph() and of the held-set queries below.
  const std::vector<FunctionInfo>& functions() const { return functions_; }

  /// The resolved whole-program call multigraph (one edge per call site ×
  /// candidate definition), shared by every interprocedural fixpoint.
  const dataflow::CallGraph& call_graph() const { return graph_; }

  /// Lock identities that appear as the guard in any guarded-by annotation
  /// — the mutexes R13's blocking-under-lock check is scoped to.
  std::set<std::string> declared_guards() const;

  /// Lock ids held in exclusive mode at token `tok` of function `fn`:
  /// locally scoped acquisitions plus (unless `local_only`, used for sites
  /// inside lambda bodies) the interprocedurally propagated entry context.
  /// An unconstrained entry context contributes nothing — the check only
  /// fires on positive evidence.
  std::set<std::string> held_exclusive_at(std::size_t fn, std::size_t tok,
                                          bool local_only = false) const;

  /// The most recently acquired lock still held at `tok` ("" when none) —
  /// a condition_variable wait releases exactly this one.
  std::string innermost_held_at(std::size_t fn, std::size_t tok) const;

  /// Raw identifiers of a member's declared type (nullptr when unknown), so
  /// rules can recognize std types the resolved-class table maps to "!"
  /// (e.g. a condition_variable member behind a cv.wait call).
  const std::vector<std::string>* member_decl_type_ids(
      const std::string& cls, const std::string& member) const;

  /// True when `path`:`line` is covered by a `// blocking-ok:` escape.
  bool blocking_ok_at(const std::string& path, int line) const;

  /// True when `path`:`line` is covered by a `// taint-ok:` escape.
  bool taint_ok_at(const std::string& path, int line) const;

 private:
  friend class IndexBuilder;

  std::vector<FunctionInfo> functions_;
  std::vector<UnorderedMember> unordered_members_;
  std::vector<MutexMember> mutex_members_;
  std::set<std::string> classes_;
  std::set<std::string> thread_members_;
  /// class -> member -> identifiers appearing in the declared type. Resolved
  /// against the full class list in finalize() (the declaring header and the
  /// class definition may be different files than the use site).
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      member_type_ids_;
  /// class -> member -> resolved type ("!" = known non-project type).
  std::map<std::string, std::map<std::string, std::string>> member_types_;
  /// path -> lines carrying a `// lint: lock-order-ok` directive.
  std::map<std::string, std::set<int>> lock_order_ok_;
  /// path -> lines covered by a guard-ok annotation (line + line-after, like
  /// every other escape comment).
  std::map<std::string, std::set<int>> guard_ok_;
  /// path -> lines covered by blocking-ok / taint-ok escapes (same
  /// own-line-covers-next-line convention as guard-ok).
  std::map<std::string, std::set<int>> blocking_ok_;
  std::map<std::string, std::set<int>> taint_ok_;
  /// class -> member -> normalized guard lock id, from guarded-by
  /// annotations on member declarations.
  std::map<std::string, std::map<std::string, std::string>> guarded_by_;
  /// "Class::member" keys whose declaration carries a guard-ok escape: the
  /// member is exempt from the guard analysis entirely.
  std::set<std::string> member_guard_ok_;

  // Derived in finalize():
  std::map<std::string, std::vector<std::size_t>> by_base_;
  std::map<std::string, std::vector<std::size_t>> by_path_;
  std::set<std::string> sync_reaching_;  // base names
  std::map<std::string, std::set<std::string>> lock_closure_;  // base -> ids
  std::map<std::pair<std::string, std::string>,
           std::vector<LockEdgeWitness>>
      lock_edges_;
  std::vector<GuardFinding> guard_findings_;
  /// Resolved call multigraph over functions_ (built in finalize()).
  dataflow::CallGraph graph_{0};
  /// Per-function lock sites including RAII handles from returns-lock
  /// callees, and the greatest-fixpoint held-at-entry contexts — persisted
  /// for the R13 held-set queries.
  struct HeldSet {
    bool top = false;
    std::map<std::string, bool> ids;  // lock id -> held exclusive
  };
  std::vector<std::vector<LockSite>> eff_locks_;
  std::vector<HeldSet> entry_;
  std::vector<char> exempt_;
};

}  // namespace gptc::lint
