#include "lint_rules.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string_view>

namespace gptc::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_id(const Token& t, std::string_view s) {
  return t.kind == TokKind::Identifier && t.text == s;
}

bool is_p(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// Keywords that can directly precede a call expression; two adjacent
/// identifiers where the first is NOT one of these are treated as a
/// declaration (`TrainingData data`, `double sum`).
bool is_expr_keyword(std::string_view s) {
  static const std::set<std::string_view> kw = {
      "return",    "co_return", "co_yield", "co_await", "throw",  "case",
      "else",      "do",        "goto",     "new",      "delete", "sizeof",
      "alignof",   "typeid",    "not",      "and",      "or",     "xor",
      "constexpr", "if",        "while",    "for",      "switch",
  };
  return kw.count(s) != 0;
}

/// Index of the token matching the opener at `open` (one of ( [ { < ),
/// counting only that bracket pair. Returns tokens.size() if unmatched.
std::size_t find_matching(const Tokens& toks, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_p(toks[i], open_text)) ++depth;
    else if (is_p(toks[i], close_text)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

void add(std::vector<Finding>& out, const ScannedFile& f, int line,
         std::string rule, std::string message) {
  out.push_back(Finding{f.path, line, std::move(rule), std::move(message)});
}

// ---------------------------------------------------------------------------
// R1: nondeterministic sources.
// ---------------------------------------------------------------------------

void rule_r1(const ScannedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Identifier) continue;
    const std::string& s = t[i].text;
    const bool has_next = i + 1 < t.size();
    if ((s == "rand" || s == "srand") && has_next && is_p(t[i + 1], "(")) {
      // `std::rand(` / bare `rand(` / `srand(`; skip member calls
      // (`gen.rand()`) and calls qualified by a non-std namespace.
      const bool member = i > 0 && (is_p(t[i - 1], ".") || is_p(t[i - 1], "->"));
      const bool other_ns = i >= 2 && is_p(t[i - 1], "::") &&
                            !is_id(t[i - 2], "std");
      if (!member && !other_ns) {
        add(out, f, t[i].line, "R1",
            "call to '" + s +
                "' — use an index-keyed rng::Rng stream "
                "(Rng::split/split_streams) instead of the C PRNG");
      }
    } else if (s == "random_device") {
      add(out, f, t[i].line, "R1",
          "std::random_device is nondeterministic — seed an rng::Rng from "
          "the experiment seed instead");
    } else if ((s == "steady_clock" || s == "system_clock" ||
                s == "high_resolution_clock") &&
               i + 2 < t.size() && is_p(t[i + 1], "::") &&
               is_id(t[i + 2], "now")) {
      add(out, f, t[i].line, "R1",
          "std::chrono::" + s +
              "::now() in tuner code makes results wall-clock dependent — "
              "timing belongs in tools/ or bench/");
    }
  }
}

// ---------------------------------------------------------------------------
// R2: iteration over unordered containers.
// ---------------------------------------------------------------------------

/// Collects names declared with std::unordered_map / std::unordered_set
/// types in this file (variables, parameters, data members).
std::set<std::string> unordered_names(const Tokens& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_id(t[i], "unordered_map") && !is_id(t[i], "unordered_set") &&
        !is_id(t[i], "unordered_multimap") &&
        !is_id(t[i], "unordered_multiset"))
      continue;
    if (i + 1 >= t.size() || !is_p(t[i + 1], "<")) continue;
    std::size_t close = find_matching(t, i + 1, "<", ">");
    if (close >= t.size()) continue;
    // Skip ref/pointer/cv tokens between the template-id and the name.
    std::size_t j = close + 1;
    while (j < t.size() &&
           (is_p(t[j], "&") || is_p(t[j], "*") || is_p(t[j], "&&") ||
            is_id(t[j], "const")))
      ++j;
    if (j < t.size() && t[j].kind == TokKind::Identifier)
      names.insert(t[j].text);
  }
  return names;
}

void rule_r2(const ScannedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  const std::set<std::string> unordered = unordered_names(t);
  if (unordered.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered container.
    if (is_id(t[i], "for") && i + 1 < t.size() && is_p(t[i + 1], "(")) {
      const std::size_t close = find_matching(t, i + 1, "(", ")");
      if (close >= t.size()) continue;
      // The range-for ':' sits at parenthesis depth 1 ("::" is a distinct
      // token, so plain ':' here is unambiguous).
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_p(t[j], "(")) ++depth;
        else if (is_p(t[j], ")")) --depth;
        else if (is_p(t[j], ":") && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == t.size()) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (t[j].kind == TokKind::Identifier &&
            unordered.count(t[j].text) != 0) {
          if (!f.allowed("unordered-ok", t[i].line)) {
            add(out, f, t[i].line, "R2",
                "range-for over unordered container '" + t[j].text +
                    "' — bucket order is implementation-defined; iterate a "
                    "sorted view, or annotate `// lint: unordered-ok "
                    "<reason>` if provably order-independent");
          }
          break;
        }
      }
    }
    // Iterator loop: container.begin() / container.cbegin().
    if (t[i].kind == TokKind::Identifier && unordered.count(t[i].text) != 0 &&
        i + 2 < t.size() && (is_p(t[i + 1], ".") || is_p(t[i + 1], "->")) &&
        (is_id(t[i + 2], "begin") || is_id(t[i + 2], "cbegin"))) {
      if (!f.allowed("unordered-ok", t[i].line)) {
        add(out, f, t[i].line, "R2",
            "iterator over unordered container '" + t[i].text +
                "' — bucket order is implementation-defined; annotate "
                "`// lint: unordered-ok <reason>` if provably "
                "order-independent");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3 + R5: writes inside [&] lambdas handed to parallel_for / parallel_map.
// ---------------------------------------------------------------------------

/// Collects float/double variable names declared anywhere in the file
/// (`double sum`, `float a, b`). Over-approximate on purpose: also catches
/// functions returning double, which never appear as `name +=` targets.
std::set<std::string> float_names(const Tokens& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_id(t[i], "double") && !is_id(t[i], "float")) continue;
    std::size_t j = i + 1;
    while (j < t.size() && (is_p(t[j], "&") || is_p(t[j], "*"))) ++j;
    // Declarator list: name [init] {, name [init]}* terminated by ';'.
    while (j < t.size() && t[j].kind == TokKind::Identifier) {
      names.insert(t[j].text);
      ++j;
      if (j < t.size() &&
          (is_p(t[j], "(") || is_p(t[j], "[") || is_p(t[j], "{"))) {
        const std::string open = t[j].text;
        const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
        j = find_matching(t, j, open, close);
        if (j >= t.size()) break;
        ++j;
      } else {
        // Skip a plain `= init` up to ',' or ';' at depth 0.
        int depth = 0;
        while (j < t.size()) {
          if (is_p(t[j], "(") || is_p(t[j], "[") || is_p(t[j], "{")) ++depth;
          else if (is_p(t[j], ")") || is_p(t[j], "]") || is_p(t[j], "}"))
            --depth;
          else if (depth == 0 && (is_p(t[j], ",") || is_p(t[j], ";")))
            break;
          ++j;
        }
      }
      if (j < t.size() && is_p(t[j], ",")) {
        ++j;
        while (j < t.size() && (is_p(t[j], "&") || is_p(t[j], "*"))) ++j;
        continue;
      }
      break;
    }
  }
  return names;
}

/// Names declared inside the token range [begin, end): locals, loop
/// variables and structured bindings. Heuristic: identifier A (not an
/// expression keyword) followed by optional &/*/&& then identifier B,
/// where B is followed by a declarator terminator.
std::set<std::string> local_names(const Tokens& t, std::size_t begin,
                                  std::size_t end) {
  std::set<std::string> locals;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (t[i].kind != TokKind::Identifier || is_expr_keyword(t[i].text))
      continue;
    std::size_t j = i + 1;
    while (j < end && (is_p(t[j], "&") || is_p(t[j], "*") || is_p(t[j], "&&")))
      ++j;
    // Structured binding: auto& [a, b] : ...
    if (j < end && is_p(t[j], "[") && is_id(t[i], "auto")) {
      const std::size_t close = find_matching(t, j, "[", "]");
      for (std::size_t k = j + 1; k < close && k < end; ++k)
        if (t[k].kind == TokKind::Identifier) locals.insert(t[k].text);
      continue;
    }
    if (j >= end || t[j].kind != TokKind::Identifier) continue;
    const std::size_t name = j;
    if (j + 1 >= end) continue;
    const Token& after = t[j + 1];
    if (is_p(after, "=") || is_p(after, "(") || is_p(after, "{") ||
        is_p(after, ";") || is_p(after, ",") || is_p(after, "[") ||
        is_p(after, ":")) {
      locals.insert(t[name].text);
      // Multi-declarator: register the names after each depth-0 comma up
      // to the terminating ';'  (la::Vector a(dim), b(dim), ab(dim);).
      std::size_t k = name + 1;
      int depth = 0;
      while (k < end) {
        if (is_p(t[k], "(") || is_p(t[k], "[") || is_p(t[k], "{")) ++depth;
        else if (is_p(t[k], ")") || is_p(t[k], "]") || is_p(t[k], "}")) {
          if (depth == 0) break;
          --depth;
        } else if (depth == 0 && is_p(t[k], ";")) {
          break;
        } else if (depth == 0 && is_p(t[k], ",") && k + 1 < end &&
                   t[k + 1].kind == TokKind::Identifier) {
          locals.insert(t[k + 1].text);
        }
        ++k;
      }
    }
  }
  return locals;
}

/// Walks a member chain (`ev.f_a`, `obj->slot`) backwards from the written
/// identifier at `i`; returns the base identifier's index.
std::size_t chain_base(const Tokens& t, std::size_t i) {
  while (i >= 2 && (is_p(t[i - 1], ".") || is_p(t[i - 1], "->")) &&
         t[i - 2].kind == TokKind::Identifier)
    i -= 2;
  return i;
}

bool is_assign_op(const Token& t) {
  return t.kind == TokKind::Punct &&
         (t.text == "=" || t.text == "+=" || t.text == "-=" ||
          t.text == "*=" || t.text == "/=" || t.text == "%=" ||
          t.text == "&=" || t.text == "|=" || t.text == "^=" ||
          t.text == "<<=");
}

void rules_r3_r5(const ScannedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  const std::set<std::string> floats = float_names(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_id(t[i], "parallel_for") && !is_id(t[i], "parallel_map")) continue;
    if (i + 1 >= t.size() || !is_p(t[i + 1], "(")) continue;
    const std::size_t call_close = find_matching(t, i + 1, "(", ")");
    if (call_close >= t.size()) continue;
    // Find a by-ref-default capture `[&]` among the arguments. Explicit
    // captures and `[=]` are out of scope for R3/R5 by design.
    std::size_t cap = t.size();
    for (std::size_t j = i + 2; j + 2 < call_close; ++j) {
      if (is_p(t[j], "[") && is_p(t[j + 1], "&") && is_p(t[j + 2], "]")) {
        cap = j;
        break;
      }
    }
    if (cap == t.size()) continue;
    // Parameter list: the loop index is the last identifier in it (an
    // unnamed parameter degrades gracefully: no body write can match).
    if (cap + 3 >= t.size() || !is_p(t[cap + 3], "(")) continue;
    const std::size_t params_close = find_matching(t, cap + 3, "(", ")");
    if (params_close >= t.size()) continue;
    std::string loop_var;
    for (std::size_t j = cap + 4; j < params_close; ++j)
      if (t[j].kind == TokKind::Identifier) loop_var = t[j].text;
    // Body: first '{' after the params (skipping a trailing return type).
    std::size_t body_open = t.size();
    for (std::size_t j = params_close + 1;
         j < std::min(params_close + 24, call_close); ++j) {
      if (is_p(t[j], "{")) {
        body_open = j;
        break;
      }
    }
    if (body_open >= t.size()) continue;
    const std::size_t body_close = find_matching(t, body_open, "{", "}");
    if (body_close >= t.size()) continue;

    std::set<std::string> locals = local_names(t, body_open + 1, body_close);
    if (!loop_var.empty()) locals.insert(loop_var);

    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      // `name <assign-op>` — a write whose lvalue has no subscript/call,
      // otherwise the op would follow ']' or ')'.
      if (t[j].kind == TokKind::Identifier && j + 1 < body_close &&
          is_assign_op(t[j + 1])) {
        if (is_p(t[j + 1], "=") && j >= 1 &&
            (is_p(t[j - 1], "=") || t[j - 1].text == "==")) {
          continue;  // rhs of comparison chains; defensive
        }
        const std::size_t base = chain_base(t, j);
        // Declarations register the declarator as local, so `double v = ..`
        // never reaches here as a flagged write.
        if (t[base].kind != TokKind::Identifier) continue;
        if (locals.count(t[base].text) != 0) continue;
        if (base >= 1 && is_p(t[base - 1], "::")) continue;  // qualified-id
        // Declaration at the write site (`Type name = init`).
        if (base == j && base >= 1 && t[base - 1].kind == TokKind::Identifier &&
            !is_expr_keyword(t[base - 1].text))
          continue;
        const std::string& name = t[j].text;
        const bool compound_arith =
            t[j + 1].text == "+=" || t[j + 1].text == "-=";
        if (compound_arith && floats.count(name) != 0) {
          add(out, f, t[j].line, "R5",
              "floating-point reduction '" + name + " " + t[j + 1].text +
                  "' inside a parallel body — FP addition is "
                  "non-associative; reduce on the calling thread in index "
                  "order instead");
        } else {
          add(out, f, t[j].line, "R3",
              "write to by-ref captured '" + name +
                  "' is not indexed by the loop variable" +
                  (loop_var.empty() ? "" : " '" + loop_var + "'") +
                  " — parallel units must write only their own slot");
        }
      }
      // Increment/decrement of a captured variable.
      if ((is_p(t[j], "++") || is_p(t[j], "--")) && j + 1 < body_close &&
          t[j + 1].kind == TokKind::Identifier &&
          locals.count(t[j + 1].text) == 0 &&
          (j + 2 >= body_close || !is_p(t[j + 2], "["))) {
        add(out, f, t[j].line, "R3",
            "'" + t[j].text + t[j + 1].text +
                "' on a captured variable inside a parallel body — shared "
                "counters are not deterministic");
      } else if (t[j].kind == TokKind::Identifier && j + 1 < body_close &&
                 (is_p(t[j + 1], "++") || is_p(t[j + 1], "--")) &&
                 locals.count(t[j].text) == 0 &&
                 (j < 1 || (!is_p(t[j - 1], ".") && !is_p(t[j - 1], "->") &&
                            !is_p(t[j - 1], "]")))) {
        add(out, f, t[j].line, "R3",
            "'" + t[j].text + t[j + 1].text +
                "' on a captured variable inside a parallel body — shared "
                "counters are not deterministic");
      }
    }
    i = body_close;
  }
}

// ---------------------------------------------------------------------------
// R4: no objective evaluation from the parallel substrate.
// ---------------------------------------------------------------------------

void rule_r4(const ScannedFile& f, std::vector<Finding>& out) {
  static const std::set<std::string_view> entry_points = {
      "evaluate", "objective", "evaluate_objective", "run_objective",
  };
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Identifier ||
        entry_points.count(t[i].text) == 0)
      continue;
    if (i + 1 >= t.size() || !is_p(t[i + 1], "(")) continue;
    // Skip declarations/definitions (`double evaluate(...)`): the previous
    // token is then a type identifier, not an expression keyword.
    if (i >= 1 && t[i - 1].kind == TokKind::Identifier &&
        !is_expr_keyword(t[i - 1].text))
      continue;
    add(out, f, t[i].line, "R4",
        "'" + t[i].text +
            "(' — the user objective must never run on the parallel "
            "substrate (src/parallel/); evaluate on the calling thread and "
            "hand results to the pool");
  }
}

// ---------------------------------------------------------------------------
// R6: iteration over an unordered member declared in another TU.
// ---------------------------------------------------------------------------

void rule_r6(const ScannedFile& f, const ProjectIndex& ix,
             std::vector<Finding>& out) {
  // Names declared unordered elsewhere in the project. Names also declared
  // unordered in THIS file are R2's job (per-file visibility) — excluding
  // them keeps the two rules disjoint.
  const Tokens& t = f.tokens;
  const std::set<std::string> local = unordered_names(t);
  std::map<std::string, const UnorderedMember*> cross;
  for (const UnorderedMember& m : ix.unordered_members()) {
    if (m.path == f.path || local.count(m.name) != 0) continue;
    cross.emplace(m.name, &m);
  }
  if (cross.empty()) return;

  auto report = [&](int line, const UnorderedMember& m, const char* how) {
    add(out, f, line, "R6",
        std::string(how) + " unordered member '" + m.name + "' (" +
            m.container + ", declared " + m.path + ":" +
            std::to_string(m.line) +
            ") — bucket order is implementation-defined; iterate a sorted "
            "view, or annotate `// lint: unordered-ok <reason>` if provably "
            "order-independent");
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_id(t[i], "for") && i + 1 < t.size() && is_p(t[i + 1], "(")) {
      const std::size_t close = find_matching(t, i + 1, "(", ")");
      if (close >= t.size()) continue;
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_p(t[j], "(")) ++depth;
        else if (is_p(t[j], ")")) --depth;
        else if (is_p(t[j], ":") && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == t.size()) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        const auto it = t[j].kind == TokKind::Identifier
                            ? cross.find(t[j].text)
                            : cross.end();
        if (it != cross.end()) {
          if (!f.allowed("unordered-ok", t[i].line))
            report(t[i].line, *it->second, "range-for over");
          break;
        }
      }
    }
    if (t[i].kind == TokKind::Identifier && cross.count(t[i].text) != 0 &&
        i + 2 < t.size() && (is_p(t[i + 1], ".") || is_p(t[i + 1], "->")) &&
        (is_id(t[i + 2], "begin") || is_id(t[i + 2], "cbegin"))) {
      if (!f.allowed("unordered-ok", t[i].line))
        report(t[i].line, *cross.at(t[i].text), "iterator over");
    }
  }
}

// ---------------------------------------------------------------------------
// R8: durability — file creation must reach fsync / sync_parent_dir.
// ---------------------------------------------------------------------------

void rule_r8(const ScannedFile& f, const ProjectIndex& ix,
             std::vector<Finding>& out) {
  for (const FunctionInfo* fn : ix.functions_in(f.path)) {
    if (!fn->is_definition || fn->creates.empty()) continue;
    bool durable = fn->contains_sync;
    for (const CallSite& c : fn->calls) {
      if (durable) break;
      if (ix.reaches_sync(c.name)) durable = true;
    }
    if (durable) continue;
    for (const CreateSite& cs : fn->creates) {
      if (f.allowed("durability-ok", cs.line)) continue;
      add(out, f, cs.line, "R8",
          "'" + cs.what + "' in '" + fn->qualified +
              "' never reaches fsync/fdatasync/sync_parent_dir before "
              "returning — a crash can lose the file or its directory "
              "entry; sync it (directly or via a helper), or annotate "
              "`// lint: durability-ok <reason>`");
    }
  }
}

// ---------------------------------------------------------------------------
// R9: noexcept boundaries — thread entry points and WAL replay application.
// ---------------------------------------------------------------------------

/// True when some known definition/declaration of `base` is safe at an
/// exception boundary: marked noexcept on any decl, or its definition holds
/// a catch-all handler. Unknown names (std:: calls etc.) are not flagged.
bool callee_safe_or_unknown(const ProjectIndex& ix, const std::string& base) {
  const auto fns = ix.functions_named(base);
  bool any_project = false;
  for (const FunctionInfo* fn : fns) {
    if (!fn->is_definition && !fn->is_noexcept) continue;  // pseudo-decls
    any_project = true;
    if (ix.is_noexcept(fn->qualified) || ix.has_catch_all(fn->qualified))
      return true;
  }
  return !any_project;
}

/// Checks the callable argument tokens [begin, end) of a thread launch. A
/// lambda is safe when its body opens with `try { ... } catch (...)`;
/// otherwise every project-resolvable call inside it must be safe. A plain
/// function reference must itself be safe.
void check_launch_callable(const ScannedFile& f, const ProjectIndex& ix,
                           std::size_t begin, std::size_t end, int line,
                           std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  if (f.allowed("noexcept-ok", line)) return;
  auto flag = [&](const std::string& name) {
    add(out, f, line, "R9",
        "thread entry point '" + name +
            "' is neither noexcept nor wrapped in a catch-all — an "
            "exception escaping a worker thread calls std::terminate with "
            "no context; mark it noexcept (and handle internally) or "
            "annotate `// lint: noexcept-ok <reason>`");
  };
  if (begin < end && is_p(t[begin], "[")) {
    // Lambda: locate the body and inspect its calls.
    std::size_t body = end;
    for (std::size_t j = find_matching(t, begin, "[", "]"); j < end; ++j) {
      if (is_p(t[j], "{")) {
        body = j;
        break;
      }
    }
    if (body >= end) return;
    const std::size_t body_close = find_matching(t, body, "{", "}");
    // `[...] { try { ... } catch (...) { ... } }` is a wrapped entry point.
    if (body + 1 < body_close && is_id(t[body + 1], "try")) return;
    for (std::size_t j = body + 1; j < body_close; ++j) {
      if (t[j].kind != TokKind::Identifier || j + 1 >= body_close ||
          !is_p(t[j + 1], "("))
        continue;
      if (is_expr_keyword(t[j].text)) continue;
      if (!callee_safe_or_unknown(ix, t[j].text)) flag(t[j].text);
    }
    return;
  }
  // Function reference: first identifier that names a project function.
  for (std::size_t j = begin; j < end; ++j) {
    if (t[j].kind != TokKind::Identifier) continue;
    if (ix.functions_named(t[j].text).empty()) continue;
    if (!callee_safe_or_unknown(ix, t[j].text)) flag(t[j].text);
    return;
  }
}

void rule_r9(const ScannedFile& f, const ProjectIndex& ix,
             std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Direct launch: `std::thread t(callable, ...)` / `std::jthread ...`.
    if ((is_id(t[i], "thread") || is_id(t[i], "jthread")) && i + 2 < t.size() &&
        t[i + 1].kind == TokKind::Identifier && is_p(t[i + 2], "(")) {
      const std::size_t close = find_matching(t, i + 2, "(", ")");
      if (close < t.size())
        check_launch_callable(f, ix, i + 3, close, t[i].line, out);
      continue;
    }
    // Launch into a std::thread container member: `workers_.emplace_back(...)`.
    if (t[i].kind == TokKind::Identifier && ix.is_thread_member(t[i].text) &&
        i + 3 < t.size() && (is_p(t[i + 1], ".") || is_p(t[i + 1], "->")) &&
        (is_id(t[i + 2], "emplace_back") || is_id(t[i + 2], "push_back")) &&
        is_p(t[i + 3], "(")) {
      const std::size_t close = find_matching(t, i + 3, "(", ")");
      if (close < t.size())
        check_launch_callable(f, ix, i + 4, close, t[i].line, out);
    }
  }

  // WAL replay application: in a function that drives replay_wal, every
  // apply_op call must sit inside a catch-all try block (or apply_op itself
  // must be safe) — a JSON/op error mid-replay must surface as the engine's
  // refusal, not as an uncaught exception with no collection context.
  for (const FunctionInfo* fn : ix.functions_in(f.path)) {
    if (!fn->is_definition) continue;
    bool drives_replay = false;
    for (const CallSite& c : fn->calls)
      if (c.name == "replay_wal") drives_replay = true;
    if (!drives_replay) continue;
    for (const CallSite& c : fn->calls) {
      if (c.name != "apply_op") continue;
      if (f.allowed("noexcept-ok", c.line)) continue;
      bool in_try = false;
      for (const TryRange& tr : fn->tries)
        if (tr.catch_all && c.token > tr.begin && c.token < tr.end)
          in_try = true;
      if (in_try) continue;
      if (callee_safe_or_unknown(ix, "apply_op")) continue;
      add(out, f, c.line, "R9",
          "WAL replay application call 'apply_op' in '" + fn->qualified +
              "' is not wrapped in a catch-all and 'apply_op' is not "
              "noexcept — a malformed record would escape recovery without "
              "naming the collection; wrap the call (rethrowing with "
              "context) or annotate `// lint: noexcept-ok <reason>`");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// R7: lock-order cycles over the project-wide acquires-while-holding graph.
// ---------------------------------------------------------------------------

std::vector<Finding> run_project_rules(const ProjectIndex& index,
                                       const std::vector<ScannedFile>& files) {
  std::vector<Finding> out;
  // Active edges: at least one non-suppressed witness.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, witnesses] : index.lock_edges()) {
    for (const LockEdgeWitness& w : witnesses) {
      if (!w.suppressed) {
        adj[edge.first].insert(edge.second);
        break;
      }
    }
  }
  auto reachable = [&adj](const std::string& from, const std::string& to) {
    std::set<std::string> seen = {from};
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (next == to) return true;
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return false;
  };
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [edge, witnesses] : index.lock_edges()) {
    const std::string& a = edge.first;
    const std::string& b = edge.second;
    if (adj.count(a) == 0 || adj[a].count(b) == 0) continue;  // suppressed
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (reported.count(key) != 0) continue;
    if (!reachable(b, a)) continue;
    reported.insert(key);
    const LockEdgeWitness* w = nullptr;
    for (const LockEdgeWitness& cand : witnesses)
      if (!cand.suppressed) {
        w = &cand;
        break;
      }
    if (w == nullptr) continue;
    // Name one witness of the opposite order when a direct reverse edge
    // exists (the common two-lock inversion).
    std::string reverse_note;
    const auto rev = index.lock_edges().find({b, a});
    if (rev != index.lock_edges().end()) {
      for (const LockEdgeWitness& cand : rev->second) {
        if (cand.suppressed) continue;
        reverse_note = "; the opposite order is taken in '" + cand.function +
                       "' (" + cand.path + ":" + std::to_string(cand.line) +
                       ")";
        break;
      }
    } else {
      reverse_note = "; the opposite order is reachable through intermediate "
                     "locks";
    }
    out.push_back(Finding{
        w->path, w->line, "R7",
        "lock-order inversion between '" + a + "' and '" + b + "': in '" +
            w->function + "' " + w->detail + reverse_note +
            " — two threads taking these locks in opposite orders can "
            "deadlock; pick one order, or annotate the site "
            "`// lint: lock-order-ok <reason>` if the orders can never "
            "interleave"});
  }
  // R10/R11: guarded-by analysis findings, computed by ProjectIndex during
  // finalize() (the checks need the interprocedural held-lock fixpoints).
  for (const GuardFinding& g : index.guard_findings())
    out.push_back(Finding{g.path, g.line, g.rule, g.message});
  // R12/R13: interprocedural dataflow rules (dataflow.cpp) over the same
  // resolved call graph, via the shared worklist framework.
  auto taint = run_taint_rule(index, files);
  out.insert(out.end(), std::make_move_iterator(taint.begin()),
             std::make_move_iterator(taint.end()));
  auto blocking = run_blocking_rule(index);
  out.insert(out.end(), std::make_move_iterator(blocking.begin()),
             std::make_move_iterator(blocking.end()));
  return out;
}

FileContext context_for_path(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  FileContext ctx;
  const bool in_rng = p.find("src/rng/") != std::string::npos;
  const bool in_tools = p.find("tools/") != std::string::npos;
  ctx.rng_exempt = in_rng || in_tools;
  ctx.parallel_layer = p.find("src/parallel/") != std::string::npos;
  ctx.engine_layer = p.find("src/db/engine/") != std::string::npos;
  return ctx;
}

std::vector<Finding> run_rules(const ScannedFile& file, const FileContext& ctx,
                               const ProjectIndex* index) {
  std::vector<Finding> out;
  if (!ctx.rng_exempt) rule_r1(file, out);
  rule_r2(file, out);
  rules_r3_r5(file, out);
  if (ctx.parallel_layer) rule_r4(file, out);
  if (index != nullptr) {
    rule_r6(file, *index, out);
    if (ctx.engine_layer) rule_r8(file, *index, out);
    rule_r9(file, *index, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::string describe_rules() {
  return
      "R1 nondeterministic-source   no std::rand/srand/random_device or "
      "*_clock::now() outside src/rng/ and tools/\n"
      "R2 unordered-iteration       no iteration over std::unordered_map/"
      "set (escape: `// lint: unordered-ok <reason>`)\n"
      "R3 unindexed-capture-write   no un-indexed write to a [&]-captured "
      "variable inside parallel_for/parallel_map\n"
      "R4 objective-in-parallel     src/parallel/ must not call evaluate/"
      "objective entry points\n"
      "R5 float-reduction           no float/double +=/-= accumulation "
      "inside a parallel body\n"
      "R6 cross-tu-unordered        [--cross-file] no iteration over an "
      "unordered member declared in another TU (escape: `// lint: "
      "unordered-ok <reason>`)\n"
      "R7 lock-order                [--cross-file] acquires-while-holding "
      "graph must be acyclic (escape: `// lint: lock-order-ok <reason>`)\n"
      "R8 durability                [--cross-file] src/db/engine/ file "
      "creation must reach fsync/sync_parent_dir (escape: `// lint: "
      "durability-ok <reason>`)\n"
      "R9 noexcept-boundary         [--cross-file] thread entry points and "
      "WAL replay apply sites must be noexcept or catch-all wrapped "
      "(escape: `// lint: noexcept-ok <reason>`)\n"
      "R10 guarded-by               [--cross-file] a member annotated "
      "`// guarded_by: mu` (or a call into a `// requires_lock: mu` "
      "function) must happen with the lock held, interprocedurally "
      "(escape: `// guard-ok: <reason>`)\n"
      "R11 shared-lock-write        [--cross-file] no write to a guarded or "
      "inferred-guarded member while its shared_mutex is held only in "
      "shared mode (escape: `// guard-ok: <reason>`)\n"
      "R12 untrusted-input-taint    [--cross-file] wire input (Socket::recv*, "
      "decoded frames, message payloads) must be compared against a named "
      "max_*/limit bound before reaching an allocation size, array index, "
      "loop bound or file path (escape: `// taint-ok: <reason>`)\n"
      "R13 blocking-under-lock      [--cross-file] no blocking syscall "
      "(fsync/write/recv/sleep/cv-wait, directly or transitively) while a "
      "guarded-by-declared mutex is held exclusive, and no handle_*/serve_* "
      "handler may enter the snapshot/compaction path (escape: "
      "`// blocking-ok: <reason>`)\n";
}

}  // namespace gptc::lint
