// gptc-lint — repo-specific static analysis for the determinism and
// thread-safety contracts (see lint_rules.hpp for the rule catalogue).
//
// Usage:
//   gptc-lint [--list-rules] [--quiet] [--cross-file]
//             [--format=text|json|sarif] [--baseline FILE]
//             [--write-baseline FILE] <file-or-directory>...
//
// Directories are walked recursively for C++ sources/headers. Findings are
// sorted by (path, line, rule) and deduplicated, so multi-directory
// invocations are stable for baseline diffing. `--cross-file` adds a first
// pass that builds the whole-program ProjectIndex (project_index.hpp) and
// enables rules R6-R9. The exit status is 1 iff any non-baselined finding
// was produced — so the tool drops straight into a CMake custom target or a
// ctest entry; 2 signals a usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint_output.hpp"
#include "lint_rules.hpp"
#include "project_index.hpp"
#include "source_scanner.hpp"

namespace {

namespace fs = std::filesystem;
using gptc::lint::BaselineEntry;
using gptc::lint::Finding;

constexpr const char* kUsage =
    "usage: gptc-lint [--list-rules] [--quiet] [--cross-file]\n"
    "                 [--format=text|json|sarif] [--baseline FILE]\n"
    "                 [--baseline-strict] [--write-baseline FILE]\n"
    "                 <file-or-directory>...\n";

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Expands files/directories into a sorted, deduplicated list of sources.
std::vector<std::string> collect_inputs(const std::vector<std::string>& args,
                                        std::vector<std::string>& errors) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    const fs::path p(arg);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.generic_string());
    } else {
      errors.push_back("gptc-lint: no such file or directory: " + arg);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  bool cross_file = false;
  bool baseline_strict = false;
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      std::cout << gptc::lint::describe_rules();
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--cross-file") {
      cross_file = true;
      continue;
    }
    if (arg == "--baseline-strict") {
      baseline_strict = true;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "gptc-lint: unknown format: " << format
                  << " (expected text, json or sarif)\n";
        return 2;
      }
      continue;
    }
    if (arg == "--baseline" || arg == "--write-baseline") {
      if (i + 1 >= argc) {
        std::cerr << "gptc-lint: " << arg << " requires a file argument\n";
        return 2;
      }
      (arg == "--baseline" ? baseline_path : write_baseline_path) =
          argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage << "\n" << gptc::lint::describe_rules();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gptc-lint: unknown option: " << arg << "\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<std::string> errors;
  const std::vector<std::string> files = collect_inputs(paths, errors);
  for (const std::string& e : errors) std::cerr << e << "\n";
  if (!errors.empty()) return 2;

  // Scan every input once; in cross-file mode the scans feed pass 1 (the
  // ProjectIndex) before any rule runs.
  std::vector<gptc::lint::ScannedFile> scanned;
  scanned.reserve(files.size());
  for (const std::string& file : files) {
    try {
      scanned.push_back(gptc::lint::scan_file(file));
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  gptc::lint::ProjectIndex index;
  if (cross_file) {
    for (const auto& file : scanned) index.add_file(file);
    index.finalize();
  }

  std::vector<Finding> findings;
  for (const auto& file : scanned) {
    const auto ctx = gptc::lint::context_for_path(file.path);
    auto file_findings = gptc::lint::run_rules(
        file, ctx, cross_file ? &index : nullptr);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  if (cross_file) {
    auto project_findings = gptc::lint::run_project_rules(index, scanned);
    findings.insert(findings.end(),
                    std::make_move_iterator(project_findings.begin()),
                    std::make_move_iterator(project_findings.end()));
  }
  gptc::lint::sort_and_dedupe(findings);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "gptc-lint: cannot write baseline file: "
                << write_baseline_path << "\n";
      return 2;
    }
    out << gptc::lint::to_baseline(findings);
    if (!quiet) {
      std::cerr << "gptc-lint: wrote " << findings.size()
                << " finding(s) to baseline " << write_baseline_path << "\n";
    }
    return 0;
  }

  // Baseline suppression: known findings drop out; baseline entries that no
  // longer match anything are stale and reported so the file shrinks —
  // under --baseline-strict a stale entry fails the run outright, so dead
  // suppressions cannot accumulate.
  std::size_t stale = 0;
  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::string error;
    if (!gptc::lint::load_baseline(baseline_path, baseline, error)) {
      std::cerr << "gptc-lint: " << error << "\n";
      return 2;
    }
    std::vector<bool> entry_used(baseline.size(), false);
    std::vector<Finding> active;
    for (const Finding& f : findings) {
      bool suppressed = false;
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        if (gptc::lint::baseline_matches(baseline[i], f)) {
          entry_used[i] = true;
          suppressed = true;
        }
      }
      if (!suppressed) active.push_back(f);
    }
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (entry_used[i]) continue;
      ++stale;
      std::cerr << "gptc-lint: stale baseline entry (no longer matches): "
                << baseline[i].path << " [" << baseline[i].rule << "] "
                << baseline[i].message << "\n";
    }
    if (stale != 0) {
      std::cerr << "gptc-lint: " << stale << " stale baseline entr"
                << (stale == 1 ? "y" : "ies") << " in " << baseline_path
                << " — remove or regenerate with --write-baseline"
                << (baseline_strict ? " (fatal under --baseline-strict)" : "")
                << "\n";
    }
    findings = std::move(active);
  }

  if (format == "json") {
    std::cout << gptc::lint::to_json(findings, files.size());
  } else if (format == "sarif") {
    std::cout << gptc::lint::to_sarif(findings);
  } else {
    for (const Finding& f : findings) {
      std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    // One-line per-rule summary so CI logs show coverage at a glance.
    static constexpr const char* kRuleIds[] = {"R1",  "R2",  "R3",  "R4",
                                               "R5",  "R6",  "R7",  "R8",
                                               "R9",  "R10", "R11", "R12",
                                               "R13"};
    std::cout << "gptc-lint: rule summary:";
    for (const char* id : kRuleIds) {
      std::size_t n = 0;
      for (const Finding& f : findings)
        if (f.rule == id) ++n;
      std::cout << " " << id << "=" << n;
    }
    std::cout << "\n";
  }
  if (!quiet) {
    std::cerr << "gptc-lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s) scanned"
              << (baseline.empty() ? "" : " (after baseline suppression)")
              << "\n";
  }
  if (baseline_strict && stale != 0) return 1;
  return findings.empty() ? 0 : 1;
}
