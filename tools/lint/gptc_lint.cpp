// gptc-lint — repo-specific static analysis for the determinism and
// thread-safety contracts (see lint_rules.hpp for the rule catalogue).
//
// Usage:
//   gptc-lint [--list-rules] [--quiet] <file-or-directory>...
//
// Directories are walked recursively for C++ sources/headers. Findings are
// printed one per line as `path:line: [Rk] message`, sorted by path then
// line, and the exit status is 1 iff any finding was produced — so the tool
// drops straight into a CMake custom target or a ctest entry.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint_rules.hpp"
#include "source_scanner.hpp"

namespace {

namespace fs = std::filesystem;
using gptc::lint::Finding;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Expands files/directories into a sorted, deduplicated list of sources.
std::vector<std::string> collect_inputs(const std::vector<std::string>& args,
                                        std::vector<std::string>& errors) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    const fs::path p(arg);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.generic_string());
    } else {
      errors.push_back("gptc-lint: no such file or directory: " + arg);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      std::cout << gptc::lint::describe_rules();
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gptc-lint [--list-rules] [--quiet] "
                   "<file-or-directory>...\n\n"
                << gptc::lint::describe_rules();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gptc-lint: unknown option: " << arg << "\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: gptc-lint [--list-rules] [--quiet] "
                 "<file-or-directory>...\n";
    return 2;
  }

  std::vector<std::string> errors;
  const std::vector<std::string> files = collect_inputs(paths, errors);
  for (const std::string& e : errors) std::cerr << e << "\n";
  if (!errors.empty()) return 2;

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    try {
      const auto scanned = gptc::lint::scan_file(file);
      const auto ctx = gptc::lint::context_for_path(file);
      auto file_findings = gptc::lint::run_rules(scanned, ctx);
      findings.insert(findings.end(),
                      std::make_move_iterator(file_findings.begin()),
                      std::make_move_iterator(file_findings.end()));
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!quiet) {
    std::cerr << "gptc-lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s) scanned\n";
  }
  return findings.empty() ? 0 : 1;
}
