// dataflow — gptc-lint's generic interprocedural dataflow framework.
//
// Every cross-file rule before R12 grew its own ad-hoc fixpoint loop over
// the call graph: sync-reachability (R8) is a boolean closure, transitive
// lock sets (R7) are a set closure with per-call-site placeholder
// substitution, and the R10/R11 held-at-entry contexts are a greatest
// fixpoint with a meet over incoming call sites. This header factors the
// shared shape out:
//
//   - CallGraph: the resolved whole-program call multigraph — one node per
//     indexed function, one edge per (call site, candidate definition)
//     pair, with the caller-local call-site ordinal kept on the edge so
//     transfer functions can consult per-site context (argument identities,
//     escape comments, lambda-ness).
//   - solve(): a chaotic-iteration worklist driver. A client keeps its own
//     fact table; solve() calls `update(node)` to recompute one node's fact
//     from the current state and requeues the node's dependents whenever
//     the fact changed. Any lattice works as long as update() is monotone
//     and the lattice has finite height — the driver only sequences work.
//   - reach_closure(): bottom-up boolean reachability ("does this function
//     transitively reach X"), with a per-edge cut predicate for escape
//     comments.
//   - set_closure(): bottom-up string-set summaries with a per-edge
//     substitution hook — the PR-7 positional-placeholder mechanism ("$N"
//     lock identities resolving to caller arguments) plugs in here, and so
//     does any other context-sensitive renaming.
//
// The R12 (untrusted-input taint) and R13 (blocking-under-lock) analyses in
// dataflow.cpp are clients of the same driver: R12 runs summary-based taint
// with solve() re-analyzing a function body whenever a callee's summary
// changes; R13 is a reach_closure over a blocking-call catalogue plus a
// held-lock check at every blocking site.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace gptc::lint::dataflow {

/// One resolved call edge: function `from` makes its `site`-th call (index
/// into FunctionInfo::calls) and it may bind to definition `to`. `weak`
/// marks the name-only fallback binding (member call whose owner chain the
/// index could not type): clients propagating expensive facts (blocking,
/// taint) may ignore weak edges to generic container-method names, where
/// the fallback is far more likely to have bound `v.insert(...)` to a
/// project method than to std::vector.
struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t site = 0;
  bool weak = false;
};

/// The resolved call multigraph over `n` function nodes. Over-approximate
/// by construction: one edge per candidate definition of each call site.
class CallGraph {
 public:
  explicit CallGraph(std::size_t n) : out_(n), in_(n) {}

  void add_edge(std::size_t from, std::size_t to, std::size_t site,
                bool weak = false) {
    out_[from].push_back({from, to, site, weak});
    in_[to].push_back({from, to, site, weak});
  }

  std::size_t size() const { return out_.size(); }

  /// Calls made by `node` (resolved candidates only).
  const std::vector<Edge>& out_edges(std::size_t node) const {
    return out_[node];
  }

  /// Call sites that may bind to `node`.
  const std::vector<Edge>& in_edges(std::size_t node) const {
    return in_[node];
  }

 private:
  std::vector<std::vector<Edge>> out_, in_;
};

/// Chaotic-iteration worklist fixpoint. Seeds every node once, then
/// requeues `dependents(node)` whenever `update(node)` reports a change.
/// Terminates when no update changes anything; the caller's lattice must
/// have finite height for that to happen.
void solve(std::size_t n, const std::function<bool(std::size_t)>& update,
           const std::function<std::vector<std::size_t>(std::size_t)>&
               dependents);

/// Bottom-up boolean reachability: node i holds when seed[i] holds or any
/// out-edge not rejected by `cut` leads to a holding node. Passing a null
/// `cut` keeps every edge.
std::vector<char> reach_closure(
    const CallGraph& g, const std::vector<char>& seed,
    const std::function<bool(const Edge&)>& cut = nullptr);

/// Bottom-up set summaries with per-edge substitution:
///   out[i] = init[i]  ∪  { subst(e, x) : e ∈ out_edges(i), x ∈ out[e.to] }
/// `subst` receives each element as it crosses a call edge and may rename
/// it with call-site context (positional placeholders) or return "" to
/// drop it.
std::vector<std::set<std::string>> set_closure(
    const CallGraph& g, std::vector<std::set<std::string>> init,
    const std::function<std::string(const Edge&, const std::string&)>& subst);

/// True for method names shared with the standard containers/strings
/// (insert, find, at, push_back, ...). A WEAK call edge to a definition
/// with such a base name is overwhelmingly more likely to be a call on a
/// std:: object than on the same-named project method; clients propagating
/// expensive facts (blocking reachability, taint, lock acquisition
/// witnesses) should refuse to cross weak edges to these names.
bool generic_method_name(const std::string& base);

}  // namespace gptc::lint::dataflow
