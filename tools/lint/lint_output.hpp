// Finding emitters and baseline handling for gptc-lint.
//
// Three output formats share one sorted finding list:
//   text   `path:line: [Rk] message` — the grep-able default;
//   json   `{"findings":[{path,line,rule,message}...]}` for scripting;
//   sarif  minimal SARIF 2.1.0 for code-scanning UIs (one run, one result
//          per finding, rule metadata from describe_rules' catalogue).
//
// A baseline is a checked-in JSON list of known findings. Matching ignores
// the line number (so unrelated edits above a finding don't churn the
// baseline) and compares the path by suffix on a path-component boundary
// (so the baseline written from the repo root matches an absolute-path
// invocation). Entries that no longer match anything are "stale" — they are
// reported as warnings so the baseline shrinks over time, but do not fail
// the run.
#pragma once

#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace gptc::lint {

/// One baseline entry: a finding identity without its line number.
struct BaselineEntry {
  std::string path;
  std::string rule;
  std::string message;
};

/// Sorts by (path, line, rule, message) and removes exact duplicates, so
/// multi-directory invocations are stable for baseline diffing.
void sort_and_dedupe(std::vector<Finding>& findings);

/// True when `entry` suppresses `finding` (rule + message equal, entry path
/// a component-boundary suffix of the finding path or vice versa).
bool baseline_matches(const BaselineEntry& entry, const Finding& finding);

/// Parses a baseline file. Returns false and sets `error` on I/O or JSON
/// problems; an empty or absent "findings" array is a valid empty baseline.
bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out,
                   std::string& error);

/// Serializes findings as a baseline document (line numbers omitted).
std::string to_baseline(const std::vector<Finding>& findings);

/// Serializes findings as the machine-readable JSON report.
std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned);

/// Serializes findings as a minimal SARIF 2.1.0 log.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace gptc::lint
