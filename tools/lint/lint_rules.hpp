// gptc-lint rule definitions.
//
// Five repo-specific rules enforce the determinism and thread-safety
// contract introduced with the deterministic thread pool (src/parallel/):
//
//   R1 nondeterministic-source   No std::rand/rand()/srand, no
//                                std::random_device, no *_clock::now()
//                                outside src/rng/ and tools/. All
//                                randomness must flow through rng::Rng so
//                                crowd records replay bit-for-bit.
//   R2 unordered-iteration       No iteration over std::unordered_map /
//                                std::unordered_set (range-for or
//                                .begin()/.cbegin()): bucket order is
//                                implementation-defined, so any
//                                accumulation or output ordering built
//                                from it is nondeterministic. Escape
//                                hatch: a `// lint: unordered-ok <reason>`
//                                comment on the same or preceding line.
//   R3 unindexed-capture-write   Inside a `[&]` lambda passed to
//                                parallel_for/parallel_map, no write to a
//                                captured variable that is not indexed
//                                (`x = ...` / `++x`); every parallel unit
//                                may only write its own index's slot.
//   R4 objective-in-parallel     Files under src/parallel/ must not call
//                                the user objective (evaluate/objective
//                                entry points): the substrate stays
//                                application-agnostic and the objective
//                                runs on the calling thread only.
//   R5 float-reduction           No float/double `+=`/`-=` accumulation
//                                inside a parallel_for body: FP addition
//                                is non-associative, so a shared
//                                accumulator's value depends on thread
//                                interleaving even with a lock. Reduce on
//                                the calling thread in index order.
//
// All rules are token-level heuristics (see source_scanner.hpp): they are
// deliberately over-eager in the gray zone and rely on the allowlist
// comment plus code review for the rare legitimate exception.
#pragma once

#include <string>
#include <vector>

#include "source_scanner.hpp"

namespace gptc::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;     // "R1" .. "R5"
  std::string message;  // human-readable explanation
};

/// Path-derived rule configuration for one file.
struct FileContext {
  bool rng_exempt = false;     // src/rng/ or tools/: R1 does not apply
  bool parallel_layer = false;  // src/parallel/: R4 applies
};

/// Derives the context from a (possibly absolute) file path.
FileContext context_for_path(const std::string& path);

/// Runs all applicable rules over one scanned file.
std::vector<Finding> run_rules(const ScannedFile& file,
                               const FileContext& ctx);

/// One-line-per-rule summary for `gptc-lint --list-rules`.
std::string describe_rules();

}  // namespace gptc::lint
