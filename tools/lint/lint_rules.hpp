// gptc-lint rule definitions.
//
// Per-file rules (R1–R5) enforce the determinism and thread-safety contract
// introduced with the deterministic thread pool (src/parallel/):
//
//   R1 nondeterministic-source   No std::rand/rand()/srand, no
//                                std::random_device, no *_clock::now()
//                                outside src/rng/ and tools/. All
//                                randomness must flow through rng::Rng so
//                                crowd records replay bit-for-bit.
//   R2 unordered-iteration       No iteration over std::unordered_map /
//                                std::unordered_set (range-for or
//                                .begin()/.cbegin()): bucket order is
//                                implementation-defined, so any
//                                accumulation or output ordering built
//                                from it is nondeterministic. Escape
//                                hatch: a `// lint: unordered-ok <reason>`
//                                comment on the same or preceding line.
//   R3 unindexed-capture-write   Inside a `[&]` lambda passed to
//                                parallel_for/parallel_map, no write to a
//                                captured variable that is not indexed
//                                (`x = ...` / `++x`); every parallel unit
//                                may only write its own index's slot.
//   R4 objective-in-parallel     Files under src/parallel/ must not call
//                                the user objective (evaluate/objective
//                                entry points): the substrate stays
//                                application-agnostic and the objective
//                                runs on the calling thread only.
//   R5 float-reduction           No float/double `+=`/`-=` accumulation
//                                inside a parallel_for body: FP addition
//                                is non-associative, so a shared
//                                accumulator's value depends on thread
//                                interleaving even with a lock. Reduce on
//                                the calling thread in index order.
//
// Cross-file rules (R6–R9) run only in `--cross-file` mode, against the
// whole-program ProjectIndex (see project_index.hpp):
//
//   R6 cross-tu-unordered        An unordered-container class member
//                                declared in one file (typically a header)
//                                must not be iterated from another TU — the
//                                case R2 cannot see. Same escape hatch as
//                                R2 (`// lint: unordered-ok <reason>`).
//   R7 lock-order                The acquires-while-holding graph over all
//                                indexed functions (lock A held — directly
//                                or through a call chain — when lock B is
//                                taken) must be acyclic; a cycle is a
//                                potential deadlock between two threads
//                                taking the locks in opposite orders.
//                                Escape: `// lint: lock-order-ok <reason>`
//                                on an acquisition site.
//   R8 durability                In src/db/engine/, a function that creates
//                                a file (open with O_CREAT), renames one,
//                                or creates directories must reach
//                                fsync/fdatasync/sync_parent_dir before
//                                returning — directly or through a called
//                                helper (transitive over the index's call
//                                graph). Escape: `// lint: durability-ok
//                                <reason>` on the creating line.
//   R9 noexcept-boundary         Thread entry points (callables handed to
//                                std::thread or pushed into a std::thread
//                                container) and WAL replay application
//                                sites (`apply_op` calls in functions that
//                                drive `replay_wal`) must be noexcept or
//                                wrapped in a catch-all handler — an
//                                exception escaping either boundary
//                                terminates the process with no context.
//                                Escape: `// lint: noexcept-ok <reason>`.
//
// All rules are token-level heuristics (see source_scanner.hpp): they are
// deliberately over-eager in the gray zone and rely on the allowlist
// comment plus code review for the rare legitimate exception.
#pragma once

#include <string>
#include <vector>

#include "project_index.hpp"
#include "source_scanner.hpp"

namespace gptc::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;     // "R1" .. "R9"
  std::string message;  // human-readable explanation
};

/// Path-derived rule configuration for one file.
struct FileContext {
  bool rng_exempt = false;      // src/rng/ or tools/: R1 does not apply
  bool parallel_layer = false;  // src/parallel/: R4 applies
  bool engine_layer = false;    // src/db/engine/: R8 applies
};

/// Derives the context from a (possibly absolute) file path.
FileContext context_for_path(const std::string& path);

/// Runs all applicable per-file rules over one scanned file. When `index`
/// is non-null (cross-file mode), the per-file cross-TU rules R6, R8 and R9
/// run as well.
std::vector<Finding> run_rules(const ScannedFile& file, const FileContext& ctx,
                               const ProjectIndex* index = nullptr);

/// Runs the whole-program rules (R7 lock-order, R10/R11 guarded-by, R12
/// untrusted-input taint, R13 blocking-under-lock) over a finalized index.
/// `files` are the scanned sources backing the index — the taint analysis
/// re-walks function bodies token-by-token as callee summaries change.
std::vector<Finding> run_project_rules(const ProjectIndex& index,
                                       const std::vector<ScannedFile>& files);

/// R12: interprocedural untrusted-input taint tracking (dataflow.cpp).
std::vector<Finding> run_taint_rule(const ProjectIndex& index,
                                    const std::vector<ScannedFile>& files);

/// R13: blocking syscalls under declared guards and handler-to-snapshot
/// reachability (dataflow.cpp).
std::vector<Finding> run_blocking_rule(const ProjectIndex& index);

/// One-line-per-rule summary for `gptc-lint --list-rules`.
std::string describe_rules();

}  // namespace gptc::lint
