#include "source_scanner.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gptc::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators the rules distinguish. Longest match first;
/// `>>` is intentionally absent (see header).
constexpr std::string_view kPuncts[] = {
    "<<=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ".*",
};

/// Parses the body of a `// lint: ...` comment into a directive.
void parse_directive(std::string_view body, int line,
                     std::vector<Directive>& out) {
  // body is everything after "lint:".
  std::size_t i = 0;
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i])))
    ++i;
  std::size_t name_begin = i;
  while (i < body.size() &&
         !std::isspace(static_cast<unsigned char>(body[i])))
    ++i;
  if (i == name_begin) return;  // "// lint:" with no name: ignore
  Directive d;
  d.name = std::string(body.substr(name_begin, i - name_begin));
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i])))
    ++i;
  d.reason = std::string(body.substr(i));
  while (!d.reason.empty() &&
         std::isspace(static_cast<unsigned char>(d.reason.back())))
    d.reason.pop_back();
  d.line = line;
  out.push_back(std::move(d));
}

/// Guard-annotation comments recognized without the `lint:` prefix. The tag
/// (with its colon) marks the start; everything after it is the directive's
/// reason — for the lock-naming forms, the first word of the reason is the
/// lock expression.
constexpr std::string_view kGuardTags[] = {
    "guarded_by:", "requires_lock:", "returns_lock:", "guard-ok:",
    "taint-ok:",   "blocking-ok:"};

/// Scans a comment's text for a lint directive. `own_line` records whether
/// the comment starts its own source line (see Directive::own_line).
void check_comment(std::string_view comment, int line, bool own_line,
                   std::vector<Directive>& out) {
  const std::size_t pos = comment.find("lint:");
  if (pos != std::string_view::npos) {
    const std::size_t before = out.size();
    parse_directive(comment.substr(pos + 5), line, out);
    for (std::size_t i = before; i < out.size(); ++i)
      out[i].own_line = own_line;
    return;
  }
  for (const std::string_view tag : kGuardTags) {
    const std::size_t p = comment.find(tag);
    if (p == std::string_view::npos) continue;
    Directive d;
    d.name = std::string(tag.substr(0, tag.size() - 1));
    std::string_view rest = comment.substr(p + tag.size());
    std::size_t b = 0;
    while (b < rest.size() && std::isspace(static_cast<unsigned char>(rest[b])))
      ++b;
    std::size_t e = rest.size();
    while (e > b && (std::isspace(static_cast<unsigned char>(rest[e - 1])) ||
                     rest[e - 1] == '/' || rest[e - 1] == '*'))
      --e;
    d.reason = std::string(rest.substr(b, e - b));
    d.line = line;
    d.own_line = own_line;
    out.push_back(std::move(d));
    return;
  }
}

class Scanner {
 public:
  Scanner(std::string path, std::string_view text)
      : text_(text), file_{std::move(path), {}, {}} {}

  ScannedFile run() {
    while (pos_ < text_.size()) step();
    return std::move(file_);
  }

 private:
  char cur() const { return text_[pos_]; }
  char peek(std::size_t k = 1) const {
    return pos_ + k < text_.size() ? text_[pos_ + k] : '\0';
  }
  bool starts_with(std::string_view s) const {
    return text_.compare(pos_, s.size(), s) == 0;
  }
  void advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void push(TokKind kind, std::string text, int line) {
    file_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    const char c = cur();
    if (c == '\n') {
      at_line_start_ = true;
      advance();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();  // indentation before '#' keeps line-start status
      return;
    }
    if (starts_with("//")) {
      skip_line_comment();
      return;
    }
    if (starts_with("/*")) {
      skip_block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      skip_preprocessor();
      return;
    }
    at_line_start_ = false;
    if (c == '"') {
      skip_string();
      return;
    }
    if (c == '\'') {
      skip_char_literal();
      return;
    }
    if (c == 'R' && peek() == '"') {
      skip_raw_string();
      return;
    }
    if (ident_start(c)) {
      lex_identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      lex_number();
      return;
    }
    lex_punct();
  }

  void skip_line_comment() {
    const int start_line = line_;
    const bool own_line = at_line_start_;
    std::size_t begin = pos_;
    while (pos_ < text_.size() && cur() != '\n') advance();
    check_comment(text_.substr(begin, pos_ - begin), start_line, own_line,
                  file_.directives);
    // Note: the newline itself is consumed by the main loop; at_line_start_
    // tracking only matters for '#', which cannot follow a comment-only line
    // in any way the rules care about.
    at_line_start_ = true;
  }

  void skip_block_comment() {
    const int start_line = line_;
    const bool own_line = at_line_start_;
    std::size_t begin = pos_;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < text_.size() && !starts_with("*/")) advance();
    if (pos_ < text_.size()) {
      advance();  // '*'
      advance();  // '/'
    }
    check_comment(text_.substr(begin, pos_ - begin), start_line, own_line,
                  file_.directives);
  }

  void skip_preprocessor() {
    // Consume through end of line, honouring backslash continuations.
    while (pos_ < text_.size()) {
      if (cur() == '\\' && peek() == '\n') {
        advance();
        advance();
        continue;
      }
      if (cur() == '\n') {
        advance();
        return;
      }
      // Comments inside directives still carry directives-for-humans only;
      // skip them so a '*/' in a macro doesn't confuse the scanner.
      if (starts_with("/*")) {
        skip_block_comment();
        continue;
      }
      if (starts_with("//")) {
        skip_line_comment();
        return;
      }
      advance();
    }
  }

  void skip_string() {
    advance();  // opening quote
    while (pos_ < text_.size() && cur() != '"') {
      if (cur() == '\\' && pos_ + 1 < text_.size()) advance();
      advance();
    }
    if (pos_ < text_.size()) advance();  // closing quote
  }

  void skip_char_literal() {
    advance();  // opening quote
    while (pos_ < text_.size() && cur() != '\'') {
      if (cur() == '\\' && pos_ + 1 < text_.size()) advance();
      advance();
    }
    if (pos_ < text_.size()) advance();
  }

  void skip_raw_string() {
    advance();  // 'R'
    advance();  // '"'
    std::string delim;
    while (pos_ < text_.size() && cur() != '(') {
      delim += cur();
      advance();
    }
    const std::string close = ")" + delim + "\"";
    while (pos_ < text_.size() && !starts_with(close)) advance();
    for (std::size_t i = 0; i < close.size() && pos_ < text_.size(); ++i)
      advance();
  }

  void lex_identifier() {
    const int start_line = line_;
    std::size_t begin = pos_;
    while (pos_ < text_.size() && ident_char(cur())) advance();
    std::string text(text_.substr(begin, pos_ - begin));
    // A string-literal prefix (u8"", L"", ...) parses as identifier + string;
    // that is fine — the string is skipped and the stray identifier is
    // harmless to every rule.
    push(TokKind::Identifier, std::move(text), start_line);
  }

  void lex_number() {
    const int start_line = line_;
    std::size_t begin = pos_;
    // pp-number: digits, letters, dots, quotes-as-separators, and exponent
    // signs. Over-broad is fine; rules never inspect numbers.
    while (pos_ < text_.size()) {
      const char c = cur();
      if (ident_char(c) || c == '.' || c == '\'') {
        advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    push(TokKind::Number, std::string(text_.substr(begin, pos_ - begin)),
         start_line);
  }

  void lex_punct() {
    const int start_line = line_;
    for (std::string_view p : kPuncts) {
      if (starts_with(p)) {
        for (std::size_t i = 0; i < p.size(); ++i) advance();
        push(TokKind::Punct, std::string(p), start_line);
        return;
      }
    }
    std::string one(1, cur());
    advance();
    push(TokKind::Punct, std::move(one), start_line);
  }

  std::string_view text_;
  ScannedFile file_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

bool ScannedFile::allowed(std::string_view name, int line) const {
  for (const Directive& d : directives) {
    if (d.name == name && (d.line == line || d.line + 1 == line)) return true;
  }
  return false;
}

ScannedFile scan_source(std::string path, std::string_view text) {
  return Scanner(std::move(path), text).run();
}

ScannedFile scan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("gptc-lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return scan_source(path, text);
}

}  // namespace gptc::lint
