#include "lint_output.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <tuple>

namespace gptc::lint {

namespace {

/// Rule metadata for SARIF's tool.driver.rules array.
struct RuleMeta {
  const char* id;
  const char* name;
  const char* description;
};

constexpr RuleMeta kRules[] = {
    {"R1", "nondeterministic-source",
     "No std::rand/srand/random_device or *_clock::now() outside src/rng/ "
     "and tools/."},
    {"R2", "unordered-iteration",
     "No iteration over std::unordered_map/set in the declaring TU."},
    {"R3", "unindexed-capture-write",
     "No un-indexed write to a [&]-captured variable inside "
     "parallel_for/parallel_map."},
    {"R4", "objective-in-parallel",
     "src/parallel/ must not call evaluate/objective entry points."},
    {"R5", "float-reduction",
     "No float/double +=/-= accumulation inside a parallel body."},
    {"R6", "cross-tu-unordered",
     "No iteration over an unordered member declared in another TU."},
    {"R7", "lock-order",
     "The project-wide acquires-while-holding graph must be acyclic."},
    {"R8", "durability",
     "src/db/engine/ file creation must reach fsync/sync_parent_dir before "
     "returning."},
    {"R9", "noexcept-boundary",
     "Thread entry points and WAL replay apply sites must be noexcept or "
     "wrapped in a catch-all."},
    {"R10", "guarded-by",
     "A member with a guarded-by annotation (and every call into a "
     "requires-lock function) must happen with the named lock held, "
     "propagated interprocedurally."},
    {"R11", "shared-lock-write",
     "No write to a guarded or inferred-guarded member while its "
     "shared_mutex is held only in shared mode."},
    {"R12", "untrusted-input-taint",
     "Wire input (Socket::recv*, decoded frames, message payloads) must be "
     "compared against a named max_*/limit bound before reaching an "
     "allocation size, array index, loop bound or file path."},
    {"R13", "blocking-under-lock",
     "No blocking syscall (directly or transitively) while a "
     "guarded-by-declared mutex is held exclusive; request handlers must "
     "stay off the snapshot/compaction path."},
};

/// Stable documentation anchor for each rule, emitted as SARIF helpUri so
/// viewers can link findings back to the contract they enforce.
std::string help_uri(const char* rule_name) {
  return std::string(
             "https://github.com/gptc/gptc/blob/main/README.md#lint-") +
         rule_name;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- minimal JSON reader (baseline files only) -----------------------------
//
// gptc-lint is freestanding (no src/ dependency), so the baseline loader
// carries its own small parser: strings, numbers, objects, arrays, literals.
// It validates structure but only retains string values of object keys.

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit JsonParser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool fail(const std::string& what) {
    if (error.empty())
      error = what + " at offset " + std::to_string(i);
    return false;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        if (i + 1 >= s.size()) return fail("bad escape");
        const char e = s[i + 1];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (i + 5 >= s.size()) return fail("bad \\u escape");
            // Baselines are ASCII in practice; keep the escape verbatim
            // rather than decoding UTF-16 surrogates.
            out += s.substr(i, 6);
            i += 4;
            break;
          }
          default: return fail("bad escape");
        }
        i += 2;
      } else {
        out += s[i++];
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }
  /// Parses any value; when `fields` is non-null and the value is an object,
  /// its string-valued members are stored there.
  bool parse_value(std::map<std::string, std::string>* fields,
                   std::vector<std::map<std::string, std::string>>* items) {
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == '"') {
      std::string str;
      return parse_string(str);
    }
    if (c == '{') {
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (i >= s.size() || s[i] != ':') return fail("expected ':'");
        ++i;
        skip_ws();
        if (i < s.size() && s[i] == '"' && fields != nullptr) {
          std::string value;
          if (!parse_string(value)) return false;
          (*fields)[key] = value;
        } else if (key == "findings" && items != nullptr && i < s.size() &&
                   s[i] == '[') {
          ++i;
          skip_ws();
          if (i < s.size() && s[i] == ']') {
            ++i;
          } else {
            while (true) {
              std::map<std::string, std::string> entry;
              if (!parse_value(&entry, nullptr)) return false;
              items->push_back(std::move(entry));
              skip_ws();
              if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
              }
              break;
            }
            skip_ws();
            if (i >= s.size() || s[i] != ']') return fail("expected ']'");
            ++i;
          }
        } else {
          if (!parse_value(nullptr, nullptr)) return false;
        }
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      skip_ws();
      if (i >= s.size() || s[i] != '}') return fail("expected '}'");
      ++i;
      return true;
    }
    if (c == '[') {
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      while (true) {
        if (!parse_value(nullptr, nullptr)) return false;
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      skip_ws();
      if (i >= s.size() || s[i] != ']') return fail("expected ']'");
      ++i;
      return true;
    }
    // number / true / false / null — consume the token.
    const std::size_t start = i;
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.'))
      ++i;
    if (i == start) return fail("unexpected character");
    return true;
  }
};

/// Suffix match on a path-component boundary: "src/a.cpp" matches
/// "/repo/src/a.cpp" but not "xsrc/a.cpp".
bool path_suffix(const std::string& shorter, const std::string& longer) {
  if (shorter.size() > longer.size()) return false;
  if (longer.compare(longer.size() - shorter.size(), shorter.size(),
                     shorter) != 0)
    return false;
  return shorter.size() == longer.size() ||
         longer[longer.size() - shorter.size() - 1] == '/';
}

}  // namespace

void sort_and_dedupe(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.path == b.path && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
}

bool baseline_matches(const BaselineEntry& entry, const Finding& finding) {
  if (entry.rule != finding.rule || entry.message != finding.message)
    return false;
  return path_suffix(entry.path, finding.path) ||
         path_suffix(finding.path, entry.path);
}

bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out,
                   std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open baseline file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParser parser(text);
  std::vector<std::map<std::string, std::string>> items;
  if (!parser.parse_value(nullptr, &items)) {
    error = "invalid baseline JSON in " + path + ": " + parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.i != text.size()) {
    error = "invalid baseline JSON in " + path + ": trailing content";
    return false;
  }
  for (const auto& fields : items) {
    BaselineEntry e;
    const auto p = fields.find("path");
    const auto r = fields.find("rule");
    const auto m = fields.find("message");
    if (p == fields.end() || r == fields.end() || m == fields.end()) {
      error = "baseline entry in " + path +
              " missing a required key (path/rule/message)";
      return false;
    }
    e.path = p->second;
    e.rule = r->second;
    e.message = m->second;
    out.push_back(std::move(e));
  }
  return true;
}

std::string to_baseline(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"path\": \"" << escape(f.path) << "\", \"rule\": \""
        << escape(f.rule) << "\", \"message\": \"" << escape(f.message)
        << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"path\": \"" << escape(f.path) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << escape(f.rule) << "\", \"message\": \""
        << escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"gptc-lint\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < std::size(kRules); ++i) {
    const RuleMeta& r = kRules[i];
    out << (i == 0 ? "\n" : ",\n")
        << "            {\"id\": \"" << r.id << "\", \"name\": \"" << r.name
        << "\", \"shortDescription\": {\"text\": \"" << escape(r.description)
        << "\"}, \"helpUri\": \"" << escape(help_uri(r.name)) << "\"}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "        {\"ruleId\": \"" << escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << escape(f.path)
        << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
  }
  out << (findings.empty() ? "]" : "\n      ]") << "\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace gptc::lint
