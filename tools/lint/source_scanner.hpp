// Lightweight C++ tokenizer for gptc-lint.
//
// The linter does not need a real parser: every rule it enforces (see
// lint_rules.hpp) is a pattern over identifiers, punctuation and brace
// structure. This scanner turns a source file into a flat token stream with
// line numbers, strips comments and string/character literals (so `"rand()"`
// in a message never trips a rule), and records `// lint: <directive>`
// comments so rules can honour per-site allowlists.
//
// Deliberately handled: line and block comments, escaped string/char
// literals, raw string literals, preprocessor directives (skipped whole,
// including backslash continuations), digit separators, and the multi-char
// operators the rules care about (`::`, `+=`, `->`, ...). Deliberately NOT
// handled: trigraphs, UCNs in identifiers, and `>>` as a single token (two
// `>` tokens make template-argument scanning simpler and shift operators are
// irrelevant to every rule).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gptc::lint {

enum class TokKind {
  Identifier,  // keywords are identifiers too; rules match by spelling
  Number,
  Punct,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
};

/// A `// lint: <name> <reason...>` comment. Directives attach to the line
/// they appear on; rules treat a directive on line L as covering code on
/// lines L and L+1, so both trailing and preceding-line placement work.
struct Directive {
  std::string name;    // e.g. "unordered-ok"
  std::string reason;  // free text after the name (may be empty)
  int line = 0;
  /// True when the comment carrying the directive starts its own line
  /// (only whitespace before it). Guard annotations use this to decide
  /// whether a directive may apply to the NEXT line: a comment-above
  /// annotation does, a trailing comment binds to its own line only —
  /// otherwise an annotation trailing one member declaration would bleed
  /// into the member declared on the line below.
  bool own_line = false;
};

struct ScannedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Directive> directives;

  /// True when a directive named `name` covers `line` (same line or the
  /// line directly above).
  bool allowed(std::string_view name, int line) const;
};

/// Tokenizes `text` as C++ source. Never throws on malformed input: an
/// unterminated literal or comment simply ends the token stream, which is
/// the right behaviour for a linter (the compiler will complain louder).
ScannedFile scan_source(std::string path, std::string_view text);

/// Reads and tokenizes a file. Throws std::runtime_error if unreadable.
ScannedFile scan_file(const std::string& path);

}  // namespace gptc::lint
