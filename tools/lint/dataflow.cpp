// dataflow — worklist driver, closure helpers, and the two interprocedural
// dataflow rule families built on them:
//
//   R12 untrusted-input-taint: values read off the wire (Socket::recv*,
//   frame decode results, parsed message payloads) are tainted; taint flows
//   through assignments, arithmetic, field projections and call arguments
//   (summary-based, so one call hop or five make no difference); reaching
//   an allocation size (resize/reserve/assign/new[]), an array index, a
//   loop bound or a file-open argument without first being compared against
//   a named bound is a finding. Sanitizers: a comparison against an
//   identifier containing "max"/"limit", an integer literal, or a
//   materialized `.size()`; `std::min`/`std::clamp`; `%` (modulo bounds its
//   result); and the `// taint-ok: <reason>` escape.
//
//   R13 blocking-under-lock / hot-path: a catalogue of blocking calls
//   (fsync, fdatasync, write, recv, send, accept, poll, sleep_for,
//   condition_variable::wait, ...) must not be transitively reachable while
//   a guarded-by-declared mutex is held in exclusive mode, and request
//   handlers (handle_*/serve_*) must not transitively enter the
//   snapshot/compaction paths. A condition-variable wait releases the
//   innermost lock it was handed, so that one is exempt at the wait site.
//   Escape: `// blocking-ok: <reason>` — on a call line it accepts that one
//   site; on a function declaration it tells callers the function's
//   blocking cost is an accepted part of its contract (the body is still
//   checked, so new hazards inside an annotated function still surface).
#include "dataflow.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <map>
#include <tuple>

#include "lint_rules.hpp"
#include "project_index.hpp"
#include "source_scanner.hpp"

namespace gptc::lint::dataflow {

void solve(std::size_t n, const std::function<bool(std::size_t)>& update,
           const std::function<std::vector<std::size_t>(std::size_t)>&
               dependents) {
  std::deque<std::size_t> work;
  std::vector<char> queued(n, 1);
  for (std::size_t i = 0; i < n; ++i) work.push_back(i);
  while (!work.empty()) {
    const std::size_t i = work.front();
    work.pop_front();
    queued[i] = 0;
    if (!update(i)) continue;
    for (std::size_t d : dependents(i)) {
      if (d < n && !queued[d]) {
        queued[d] = 1;
        work.push_back(d);
      }
    }
  }
}

std::vector<char> reach_closure(const CallGraph& g,
                                const std::vector<char>& seed,
                                const std::function<bool(const Edge&)>& cut) {
  std::vector<char> out = seed;
  solve(
      g.size(),
      [&](std::size_t i) {
        if (out[i]) return false;
        for (const Edge& e : g.out_edges(i)) {
          if (cut && cut(e)) continue;
          if (out[e.to]) {
            out[i] = 1;
            return true;
          }
        }
        return false;
      },
      [&](std::size_t i) {
        std::vector<std::size_t> deps;
        for (const Edge& e : g.in_edges(i)) deps.push_back(e.from);
        return deps;
      });
  return out;
}

std::vector<std::set<std::string>> set_closure(
    const CallGraph& g, std::vector<std::set<std::string>> init,
    const std::function<std::string(const Edge&, const std::string&)>& subst) {
  solve(
      g.size(),
      [&](std::size_t i) {
        bool changed = false;
        for (const Edge& e : g.out_edges(i)) {
          for (const std::string& x : init[e.to]) {
            const std::string y = subst ? subst(e, x) : x;
            if (!y.empty() && init[i].insert(y).second) changed = true;
          }
        }
        return changed;
      },
      [&](std::size_t i) {
        std::vector<std::size_t> deps;
        for (const Edge& e : g.in_edges(i)) deps.push_back(e.from);
        return deps;
      });
  return init;
}

bool generic_method_name(const std::string& base) {
  static const std::set<std::string> kNames = {
      "at",      "find",    "rfind",     "count",    "contains", "insert",
      "erase",   "clear",   "push_back", "pop_back", "emplace",
      "emplace_back",       "front",     "back",     "data",     "get",
      "reset",   "release", "load",      "store",    "swap",     "merge",
      "substr",  "assign",  "resize",    "reserve",  "begin",    "end",
      "size",    "length",  "empty",     "add",      "eval",     "apply",
      "update",  "remove",  "str",       "push",     "pop",      "top",
      "compare", "set"};
  return kNames.count(base) != 0;
}

}  // namespace gptc::lint::dataflow

// ---------------------------------------------------------------------------
// R13: blocking-under-lock and hot-path snapshot reachability.
// ---------------------------------------------------------------------------

namespace gptc::lint {

namespace {

bool is_p(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool contains_ci(const std::string& haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool hit = true;
    for (std::size_t k = 0; k < needle.size(); ++k) {
      if (std::tolower(static_cast<unsigned char>(haystack[i + k])) !=
          std::tolower(static_cast<unsigned char>(needle[k]))) {
        hit = false;
        break;
      }
    }
    if (hit) return true;
  }
  return false;
}

/// Blocking primitives that block regardless of call form.
const std::set<std::string> kAlwaysBlocking = {
    "fsync",      "fdatasync",  "accept", "poll",       "select",
    "epoll_wait", "sleep_for",  "sleep_until",          "nanosleep",
    "usleep",     "flock"};

/// Syscalls that block only in their free-function (::call) form — the
/// member spellings (`stream.write(...)`) are in-memory operations.
const std::set<std::string> kFreeBlocking = {"write", "read",    "recv",
                                             "send",  "recvfrom", "sendto",
                                             "connect"};

/// Condition-variable wait entry points (member calls on a
/// condition_variable-typed owner).
const std::set<std::string> kCvWait = {"wait", "wait_for", "wait_until"};

/// True when fact propagation (blocking reachability, taint summaries)
/// should refuse to cross this call edge: a name-only fallback binding to a
/// std-container-colliding method name (see dataflow::generic_method_name).
bool untrusted_edge(const dataflow::Edge& e,
                    const std::vector<FunctionInfo>& fns) {
  return e.weak && dataflow::generic_method_name(fns[e.to].base);
}

/// The name of the blocking primitive a call site invokes directly, or ""
/// when the site is not in the catalogue.
std::string direct_blocking(const ProjectIndex& index, const FunctionInfo& fn,
                            const CallSite& c) {
  if (kAlwaysBlocking.count(c.name) != 0) return c.name;
  if (!c.member_call && kFreeBlocking.count(c.name) != 0) return c.name;
  if (c.member_call && kCvWait.count(c.name) != 0 && !c.owner_root.empty() &&
      c.owner_segments.empty()) {
    if (contains_ci(c.owner_root_type, "condition_variable"))
      return "condition_variable::" + c.name;
    if (const auto* ids =
            index.member_decl_type_ids(fn.cls, c.owner_root)) {
      for (const std::string& id : *ids)
        if (contains_ci(id, "condition_variable"))
          return "condition_variable::" + c.name;
    }
  }
  return "";
}

}  // namespace

std::vector<Finding> run_blocking_rule(const ProjectIndex& index) {
  std::vector<Finding> out;
  const auto& fns = index.functions();
  const dataflow::CallGraph& g = index.call_graph();
  const std::set<std::string> guards = index.declared_guards();

  // Per-call-site escape: the line (or the line above) carries blocking-ok.
  const auto site_ok = [&](const FunctionInfo& fn, const CallSite& c) {
    return index.blocking_ok_at(fn.path, c.line);
  };

  // Blocking closure: fact = the name of the primitive a function
  // (transitively) reaches, "" when none. Set-once, so the lattice has
  // height one and the worklist terminates. Declaration-level blocking-ok
  // pins a function to "" — callers treat it as non-blocking by contract.
  std::vector<std::string> blocks(fns.size());
  dataflow::solve(
      fns.size(),
      [&](std::size_t i) {
        if (!blocks[i].empty() || fns[i].blocking_exempt) return false;
        if (!fns[i].is_definition) return false;
        for (const CallSite& c : fns[i].calls) {
          if (site_ok(fns[i], c)) continue;
          const std::string p = direct_blocking(index, fns[i], c);
          if (!p.empty()) {
            blocks[i] = p;
            return true;
          }
        }
        for (const dataflow::Edge& e : g.out_edges(i)) {
          if (fns[e.to].blocking_exempt || blocks[e.to].empty()) continue;
          if (untrusted_edge(e, fns)) continue;
          if (site_ok(fns[i], fns[i].calls[e.site])) continue;
          blocks[i] = blocks[e.to];
          return true;
        }
        return false;
      },
      [&](std::size_t i) {
        std::vector<std::size_t> deps;
        for (const dataflow::Edge& e : g.in_edges(i)) deps.push_back(e.from);
        return deps;
      });

  std::set<std::tuple<std::string, int, std::string>> emitted;
  const auto emit = [&](const std::string& path, int line, std::string msg) {
    if (emitted.emplace(path, line, msg).second)
      out.push_back({path, line, "R13", std::move(msg)});
  };

  // Resolved candidates per (function, call index), for the transitive leg.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      resolved;
  for (std::size_t i = 0; i < fns.size(); ++i)
    for (const dataflow::Edge& e : g.out_edges(i))
      if (!untrusted_edge(e, fns)) resolved[{i, e.site}].push_back(e.to);

  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FunctionInfo& fn = fns[i];
    if (!fn.is_definition) continue;
    for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
      const CallSite& c = fn.calls[ci];
      if (site_ok(fn, c)) continue;
      std::string prim = direct_blocking(index, fn, c);
      bool transitive = false;
      if (prim.empty()) {
        const auto it = resolved.find({i, ci});
        if (it != resolved.end()) {
          for (std::size_t k : it->second) {
            if (!fns[k].blocking_exempt && !blocks[k].empty()) {
              prim = blocks[k];
              transitive = true;
              break;
            }
          }
        }
      }
      if (prim.empty()) continue;
      // Held guard set at the site. A site inside a lambda runs later, so
      // only textually enclosing lock scopes count there.
      std::set<std::string> held =
          index.held_exclusive_at(i, c.token, c.in_lambda);
      // A condition-variable wait atomically releases the lock it was
      // handed — the innermost one held at the site.
      if (!transitive && starts_with(prim, "condition_variable::"))
        held.erase(index.innermost_held_at(i, c.token));
      std::set<std::string> held_guards;
      for (const std::string& id : held)
        if (guards.count(id) != 0) held_guards.insert(id);
      if (held_guards.empty()) continue;
      const std::string& lock = *held_guards.begin();
      if (transitive) {
        emit(fn.path, c.line,
             "call to '" + c.name + "' may block (transitively reaches '" +
                 prim + "') while '" + lock + "' is held exclusive (in " +
                 fn.qualified +
                 "); move the blocking work outside the critical section or "
                 "annotate the accepted design with // blocking-ok: <reason>");
      } else {
        emit(fn.path, c.line,
             "blocking call '" + prim + "' while '" + lock +
                 "' is held exclusive (in " + fn.qualified +
                 "); move the I/O outside the critical section or annotate "
                 "the accepted design with // blocking-ok: <reason>");
      }
    }
  }

  // Hot-path leg: request handlers must not transitively enter the
  // snapshot/compaction machinery. Threshold-amortized entry points opt out
  // with a declaration-level blocking-ok.
  std::vector<char> snap_seed(fns.size(), 0);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].blocking_exempt) continue;
    if (starts_with(fns[i].base, "checkpoint") ||
        starts_with(fns[i].base, "compact") ||
        fns[i].base == "write_snapshot")
      snap_seed[i] = 1;
  }
  const auto cut = [&](const dataflow::Edge& e) {
    return fns[e.to].blocking_exempt || untrusted_edge(e, fns) ||
           site_ok(fns[e.from], fns[e.from].calls[e.site]);
  };
  const std::vector<char> snap = dataflow::reach_closure(g, snap_seed, cut);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FunctionInfo& fn = fns[i];
    if (!fn.is_definition) continue;
    if (!starts_with(fn.base, "handle_") && !starts_with(fn.base, "serve_"))
      continue;
    if (snap_seed[i]) continue;
    for (const dataflow::Edge& e : g.out_edges(i)) {
      if (cut(e) || !snap[e.to]) continue;
      const CallSite& c = fn.calls[e.site];
      emit(fn.path, c.line,
           "request handler '" + fn.qualified +
               "' transitively enters the snapshot/compaction path via '" +
               c.name +
               "'; keep checkpoints off the serving hot path or annotate the "
               "amortized entry point with // blocking-ok: <reason>");
    }
  }

  return out;
}

// ---------------------------------------------------------------------------
// R12: untrusted-input taint tracking.
// ---------------------------------------------------------------------------

namespace {

/// Taint labels: -1 = wire input (the source), n >= 0 = "tainted iff the
/// enclosing function's n-th parameter is".
using Labels = std::set<int>;

constexpr int kSrc = -1;

/// Calls that make their buffer argument attacker-controlled.
const std::map<std::string, std::size_t> kSourceBufArg = {
    {"recv_exact", 0}, {"recv_some", 0}, {"recv", 1}, {"recvfrom", 1}};

/// Member calls whose result is structurally bounded no matter how tainted
/// the receiver is: sizes of materialized containers are limited by the
/// bytes actually received, and positions returned by find() are limited by
/// the size. This is what keeps `ids.reserve(ds.size())` clean while
/// `body.assign(h.payload_size, 0)` — an attacker-declared count — is not.
const std::set<std::string> kNeutralMethods = {
    "size",  "length", "empty",  "count",        "capacity", "max_size",
    "begin", "end",    "cbegin", "cend",         "find",     "rfind",
    "find_first_of",   "find_last_of",           "use_count"};

/// Free functions whose result is bounded by a non-tainted argument.
const std::set<std::string> kNeutralFree = {"min", "clamp"};

/// Allocation-count member sinks (first argument is an element count).
const std::set<std::string> kAllocSinks = {"resize", "reserve"};

/// Per-function taint summary, grown monotonically across re-analyses.
struct TaintSummary {
  Labels ret;                            // labels of the return value
  std::map<std::size_t, Labels> taints;  // out-params written with taint
  std::map<std::size_t, std::string> sinks;  // param pos -> sink description
  bool operator==(const TaintSummary& o) const {
    return ret == o.ret && taints == o.taints && sinks == o.sinks;
  }
};

/// One function-body taint walk. Re-run whenever a callee summary changes;
/// all state except the summaries and emitted findings is rebuilt fresh.
class TaintWalk {
 public:
  TaintWalk(const ProjectIndex& index, const FunctionInfo& fn,
            std::size_t fn_index, const std::vector<Token>& toks,
            std::vector<TaintSummary>& summaries,
            const std::map<std::pair<std::size_t, std::size_t>,
                           std::vector<std::size_t>>& resolved,
            std::set<std::tuple<std::string, int, std::string>>& emitted,
            std::vector<Finding>& findings)
      : ix_(index),
        fn_(fn),
        i_(fn_index),
        t_(toks),
        sums_(summaries),
        resolved_(resolved),
        emitted_(emitted),
        findings_(findings) {
    for (std::size_t p = 0; p < fn_.param_names.size(); ++p)
      if (!fn_.param_names[p].empty())
        taint_[fn_.param_names[p]].insert(static_cast<int>(p));
    for (std::size_t ci = 0; ci < fn_.calls.size(); ++ci)
      call_by_token_.emplace(fn_.calls[ci].token, ci);
  }

  void run() {
    const std::size_t begin = fn_.body_begin, end = fn_.body_end;
    for (std::size_t j = begin + 1; j < end; ++j) {
      const Token& tok = t_[j];
      if (tok.kind != TokKind::Identifier) {
        if (is_p(tok, "[")) check_subscript(j, end);
        if (is_cmp(tok)) apply_comparison(j, end, /*loop_bound=*/false);
        continue;
      }
      const std::string& s = tok.text;
      if (s == "return") {
        handle_return(j, end);
        continue;
      }
      if ((s == "for" || s == "while") && j + 1 < end && is_p(t_[j + 1], "(")) {
        // Record the loop-bound comparisons, then fall into the condition
        // tokens: apply_comparison skips what loop_cmp_ already covers, and
        // the init statement / nested calls still get their normal walk.
        handle_loop_condition(j, end);
        continue;
      }
      if (s == "if" || s == "switch" || s == "catch") continue;  // not a call
      if (s == "new") {
        handle_new(j, end);
        continue;
      }
      if (chained(j)) {
        // Method-call name (`sock.recv_exact(...)`, `body.assign(...)`):
        // evaluate the call for its source/sink side effects. Any other
        // chained identifier was already read via its chain root.
        if (j + 1 < end && is_p(t_[j + 1], "(") && !is_p(t_[j - 1], "::")) {
          call_labels(j, end);
          j = skip_parens(j + 1, end);
        }
        continue;
      }
      // Chain root: read the dotted name, then dispatch on what follows.
      std::size_t after = j;
      const std::string chain = read_chain(j, end, after);
      if (after < end && is_p(t_[after], "(")) {
        // Declaration-with-init (`Type name(args)`) updates `name`;
        // everything else is a call expression evaluated for side effects.
        if (is_decl_init(j))
          assign(chain_suffix(chain), args_labels(after, end));
        else
          call_labels(decl_root(j), end);
        j = skip_parens(after, end);
        continue;
      }
      if (after < end && (is_p(t_[after], "=") || is_p(t_[after], "{"))) {
        if (is_p(t_[after], "{") && !is_decl_init(j)) continue;
        // `chain = rhs;` / `Type name = rhs;` / `Type name{rhs}`.
        const std::size_t rhs_begin = after + 1;
        const std::size_t rhs_end = is_p(t_[after], "{")
                                        ? find_close(after, end, "{", "}")
                                        : stmt_end(rhs_begin, end);
        assign(chain_suffix(chain), expr_labels(rhs_begin, rhs_end));
        j = rhs_end;
        continue;
      }
      j = after > j ? after - 1 : j;
    }
  }

  TaintSummary& summary() { return sums_[i_]; }

 private:
  // --- small token utilities ----------------------------------------------

  bool is_cmp(const Token& tok) const {
    return is_p(tok, "<") || is_p(tok, ">") || is_p(tok, "<=") ||
           is_p(tok, ">=") || is_p(tok, "==") || is_p(tok, "!=");
  }

  bool chained(std::size_t j) const {
    if (j == 0) return false;
    const Token& prev = t_[j - 1];
    return is_p(prev, ".") || is_p(prev, "->") || is_p(prev, "::");
  }

  /// True when the identifier at `j` begins a declaration-with-initializer
  /// (`Type name(init)` / `Type name{init}`): the previous token is a type
  /// name or the tail of one.
  bool is_decl_init(std::size_t j) const {
    if (j == 0) return false;
    const Token& prev = t_[j - 1];
    return (prev.kind == TokKind::Identifier) || is_p(prev, ">") ||
           is_p(prev, "&") || is_p(prev, "*");
  }

  /// For `Type name(args)` the taintable name is the LAST identifier of the
  /// chain starting at j; for a call it is j itself.
  std::size_t decl_root(std::size_t j) const { return j; }

  /// Reads the dotted chain starting at root token `j`; returns the dotted
  /// name ("h.payload_size") and sets `after` to the first token past it.
  /// Subscripts inside the chain are skipped and do not extend the name.
  std::string read_chain(std::size_t j, std::size_t end,
                         std::size_t& after) const {
    std::string name = t_[j].text;
    std::size_t k = j + 1;
    while (k < end) {
      if (is_p(t_[k], "[")) {
        const std::size_t close = find_close(k, end, "[", "]");
        if (close >= end) break;
        k = close + 1;
        continue;
      }
      if (k + 1 < end && (is_p(t_[k], ".") || is_p(t_[k], "->")) &&
          t_[k + 1].kind == TokKind::Identifier) {
        // Stop before a method call: `h.decode(...)`'s chain is just `h`.
        if (k + 2 < end && is_p(t_[k + 2], "(")) break;
        name += "." + t_[k + 1].text;
        k += 2;
        continue;
      }
      if (k + 1 < end && is_p(t_[k], "::") &&
          t_[k + 1].kind == TokKind::Identifier) {
        // Namespace qualifier: restart the name at the qualified tail.
        name = t_[k + 1].text;
        k += 2;
        continue;
      }
      break;
    }
    after = k;
    return name;
  }

  /// `Type name = ...` leaves the type identifiers inside the chain read by
  /// read_chain ("std.string"?) — they never dot-join, so the chain for a
  /// declaration is just the declared name: keep the last dot-free segment.
  std::string chain_suffix(const std::string& chain) const { return chain; }

  std::size_t find_close(std::size_t open, std::size_t end,
                         std::string_view o, std::string_view c) const {
    int depth = 0;
    for (std::size_t k = open; k < end; ++k) {
      if (is_p(t_[k], o)) ++depth;
      else if (is_p(t_[k], c) && --depth == 0) return k;
    }
    return end;
  }

  std::size_t skip_parens(std::size_t open, std::size_t end) const {
    return find_close(open, end, "(", ")");
  }

  /// First token index past the statement starting at `from` (the `;` at
  /// bracket depth zero, or `end`).
  std::size_t stmt_end(std::size_t from, std::size_t end) const {
    int depth = 0;
    for (std::size_t k = from; k < end; ++k) {
      if (is_p(t_[k], "(") || is_p(t_[k], "[") || is_p(t_[k], "{")) ++depth;
      else if (is_p(t_[k], ")") || is_p(t_[k], "]") || is_p(t_[k], "}"))
        --depth;
      else if (depth == 0 && is_p(t_[k], ";"))
        return k;
    }
    return end;
  }

  // --- taint map ----------------------------------------------------------

  Labels labels_of(const std::string& chain) const {
    // A chain at or under a sanitized one is clean even when its struct
    // root is tainted: `if (h.payload_size > max) ...` bounds the field
    // without saying anything about `h`'s other fields.
    for (const std::string& c : clean_)
      if (c == chain ||
          (chain.size() > c.size() && chain.compare(0, c.size(), c) == 0 &&
           chain[c.size()] == '.'))
        return {};
    Labels out;
    // The chain itself plus every dotted prefix: a tainted struct taints
    // its fields.
    for (const auto& [name, l] : taint_) {
      if (name.size() <= chain.size() &&
          chain.compare(0, name.size(), name) == 0 &&
          (name.size() == chain.size() || chain[name.size()] == '.'))
        out.insert(l.begin(), l.end());
    }
    return out;
  }

  Labels labels_with_children(const std::string& chain) const {
    Labels out = labels_of(chain);
    const std::string prefix = chain + ".";
    for (const auto& [name, l] : taint_)
      if (name.size() > prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0)
        out.insert(l.begin(), l.end());
    return out;
  }

  void assign(const std::string& chain, Labels labels) {
    // Strong update: overwrite the chain and drop its children, including
    // any sanitizer marks — a fresh value is whatever its source was.
    const std::string prefix = chain + ".";
    const auto under = [&](const std::string& name) {
      return name == chain || (name.size() > prefix.size() &&
                               name.compare(0, prefix.size(), prefix) == 0);
    };
    for (auto it = taint_.begin(); it != taint_.end();) {
      if (under(it->first)) it = taint_.erase(it);
      else ++it;
    }
    for (auto it = clean_.begin(); it != clean_.end();) {
      if (under(*it)) it = clean_.erase(it);
      else ++it;
    }
    if (!labels.empty()) taint_[chain] = std::move(labels);
  }

  void kill(const std::string& chain) {
    assign(chain, {});
    clean_.insert(chain);
  }

  // --- expressions and calls ----------------------------------------------

  /// Labels of the expression spanning [lo, hi): the union over every chain
  /// and call result inside it. A top-level `%` bounds the whole thing.
  Labels expr_labels(std::size_t lo, std::size_t hi) {
    int depth = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      if (is_p(t_[k], "(") || is_p(t_[k], "[") || is_p(t_[k], "{")) ++depth;
      else if (is_p(t_[k], ")") || is_p(t_[k], "]") || is_p(t_[k], "}"))
        --depth;
      else if (depth == 0 && is_p(t_[k], "%"))
        return {};
    }
    Labels out;
    for (std::size_t k = lo; k < hi; ++k) {
      if (t_[k].kind != TokKind::Identifier) continue;
      if (chained(k)) {
        // Method-call name on a computed or chained receiver: evaluate it —
        // call_labels folds the owner's labels in unless the method is
        // neutral (size(), find(), ...).
        if (k + 1 < hi && is_p(t_[k + 1], "(") && !is_p(t_[k - 1], "::")) {
          const Labels r = call_labels(k, hi);
          out.insert(r.begin(), r.end());
          k = skip_parens(k + 1, hi);
        }
        continue;
      }
      std::size_t after = k;
      const std::string chain = read_chain(k, hi, after);
      if (after < hi && is_p(t_[after], "(")) {
        const Labels r = call_labels(k, hi);
        out.insert(r.begin(), r.end());
        k = skip_parens(after, hi);
        continue;
      }
      // Chain stopping before a method call contributes nothing here: the
      // method name itself is dispatched above and decides whether the
      // receiver's labels pass through.
      if (after < hi && (is_p(t_[after], ".") || is_p(t_[after], "->")) &&
          after + 2 < hi && t_[after + 1].kind == TokKind::Identifier &&
          is_p(t_[after + 2], "(")) {
        k = after;
        continue;
      }
      const Labels l = labels_of(chain);
      out.insert(l.begin(), l.end());
      k = after > k ? after - 1 : k;
    }
    return out;
  }

  /// Splits the argument list of the call whose name token chain starts at
  /// `j` into top-level ranges. Returns the closing ')' index via `close`.
  std::vector<std::pair<std::size_t, std::size_t>> arg_ranges(
      std::size_t open, std::size_t end, std::size_t& close) {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    close = find_close(open, end, "(", ")");
    if (close >= end || close <= open + 1) return args;
    std::size_t b = open + 1;
    int depth = 0;
    for (std::size_t k = open + 1; k <= close; ++k) {
      if (is_p(t_[k], "(") || is_p(t_[k], "[") || is_p(t_[k], "{")) ++depth;
      else if (is_p(t_[k], ")") || is_p(t_[k], "]") || is_p(t_[k], "}"))
        --depth;
      if ((k == close && depth < 0) || (depth == 0 && is_p(t_[k], ","))) {
        args.emplace_back(b, k);
        b = k + 1;
      }
    }
    return args;
  }

  /// Labels produced by `Type name(args)` initializers — the union of the
  /// argument labels.
  Labels args_labels(std::size_t open, std::size_t end) {
    std::size_t close = end;
    Labels out;
    for (const auto& [lo, hi] : arg_ranges(open, end, close)) {
      const Labels l = expr_labels(lo, hi);
      out.insert(l.begin(), l.end());
    }
    return out;
  }

  /// The root chain of an argument expression (for out-param tainting):
  /// the first identifier chain after stripping `&`/`*`/casts.
  std::string arg_root(std::size_t lo, std::size_t hi) const {
    for (std::size_t k = lo; k < hi; ++k) {
      if (t_[k].kind == TokKind::Identifier && !chained(k) &&
          t_[k].text != "static_cast" && t_[k].text != "const_cast" &&
          t_[k].text != "reinterpret_cast") {
        std::size_t after = k;
        return read_chain(k, hi, after);
      }
    }
    return "";
  }

  /// Substitutes a callee summary label set into this caller's context.
  Labels map_labels(const Labels& callee_labels,
                    const std::vector<Labels>& arg_l) {
    Labels out;
    for (int l : callee_labels) {
      if (l == kSrc) {
        out.insert(kSrc);
      } else if (l >= 0 && static_cast<std::size_t>(l) < arg_l.size()) {
        out.insert(arg_l[l].begin(), arg_l[l].end());
      }
    }
    return out;
  }

  /// Evaluates the call whose name identifier is at `j` (t_[j+1] == "(").
  /// Performs source/ sink/summary side effects once per site per walk and
  /// returns the result's labels.
  Labels call_labels(std::size_t j, std::size_t end) {
    const std::string& name = t_[j].text;
    std::size_t close = end;
    const auto args = arg_ranges(j + 1, end, close);
    std::vector<Labels> arg_l(args.size());
    for (std::size_t a = 0; a < args.size(); ++a)
      arg_l[a] = expr_labels(args[a].first, args[a].second);

    const bool member = j >= 1 && (is_p(t_[j - 1], ".") || is_p(t_[j - 1], "->"));
    std::string owner;
    Labels owner_l;
    if (member) {
      // Walk back over the owner chain to its root identifier.
      std::size_t k = j - 1;
      std::vector<std::string> rev;
      while (k >= 1 && (is_p(t_[k], ".") || is_p(t_[k], "->"))) {
        std::size_t m = k - 1;
        if (is_p(t_[m], "]")) {  // owner ends in a subscript: skip it
          int depth = 0;
          while (m > 0) {
            if (is_p(t_[m], "]")) ++depth;
            else if (is_p(t_[m], "[") && --depth == 0) break;
            --m;
          }
          if (m == 0) break;
          --m;
        }
        if (t_[m].kind != TokKind::Identifier) break;
        rev.push_back(t_[m].text);
        if (m == 0) break;
        k = m - 1;
      }
      for (auto it = rev.rbegin(); it != rev.rend(); ++it)
        owner += (owner.empty() ? "" : ".") + *it;
      if (!owner.empty()) owner_l = labels_of(owner);
    }

    // Sources: the buffer argument of a recv-style call becomes tainted.
    if (const auto src = kSourceBufArg.find(name);
        src != kSourceBufArg.end() && src->second < args.size()) {
      const std::string root =
          arg_root(args[src->second].first, args[src->second].second);
      if (!root.empty()) {
        Labels l = labels_of(root);
        l.insert(kSrc);
        taint_[root] = std::move(l);
      }
      return {};  // the returned byte count is bounded by the request
    }

    // Allocation-count sinks on the receiver.
    if (member && !args.empty()) {
      const bool alloc = kAllocSinks.count(name) != 0;
      const bool assign_n = name == "assign" && args.size() >= 2;
      if ((alloc || assign_n) && !arg_l[0].empty())
        sink(owner + "." + name + "' (allocation count)", arg_l[0],
             t_[j].line);
    }
    if (!member && (name == "open" || name == "fopen" || name == "ofstream" ||
                    name == "ifstream") &&
        !args.empty()) {
      Labels all;
      for (const Labels& l : arg_l) all.insert(l.begin(), l.end());
      if (!all.empty())
        sink(name + "' (file path construction)", all, t_[j].line);
    }

    if (member && kNeutralMethods.count(name) != 0) return {};
    if (!member && kNeutralFree.count(name) != 0) return {};

    // Resolved callees: substitute their summaries.
    const auto ci = call_by_token_.find(j);
    const std::vector<std::size_t>* cands = nullptr;
    if (ci != call_by_token_.end()) {
      const auto rit = resolved_.find({i_, ci->second});
      if (rit != resolved_.end()) cands = &rit->second;
    }
    Labels result;
    if (cands != nullptr && !cands->empty()) {
      for (std::size_t k : *cands) {
        const TaintSummary& s = sums_[k];
        const Labels r = map_labels(s.ret, arg_l);
        result.insert(r.begin(), r.end());
        for (const auto& [pos, l] : s.taints) {
          if (pos >= args.size()) continue;
          const std::string root =
              arg_root(args[pos].first, args[pos].second);
          if (root.empty()) continue;
          const Labels mapped = map_labels(l, arg_l);
          taint_[root].insert(mapped.begin(), mapped.end());
          if (taint_[root].empty()) taint_.erase(root);
        }
        for (const auto& [pos, desc] : s.sinks) {
          if (pos >= arg_l.size() || arg_l[pos].empty()) continue;
          sink(name + "' -> '" + desc, arg_l[pos], t_[j].line);
        }
      }
    } else {
      // Unknown callee: conservative pass-through of the arguments.
      for (const Labels& l : arg_l) result.insert(l.begin(), l.end());
    }
    // A method invoked on a tainted receiver yields tainted data (field
    // accessors, as_string(), parse-style decoders).
    result.insert(owner_l.begin(), owner_l.end());
    return result;
  }

  // --- statement-level handlers -------------------------------------------

  void handle_return(std::size_t j, std::size_t end) {
    const std::size_t e = stmt_end(j + 1, end);
    Labels l = expr_labels(j + 1, e);
    // Returning a struct returns its fields: fold in children of a plain
    // returned chain.
    if (j + 1 < e && t_[j + 1].kind == TokKind::Identifier) {
      std::size_t after = j + 1;
      const std::string chain = read_chain(j + 1, e, after);
      if (after >= e) {
        const Labels c = labels_with_children(chain);
        l.insert(c.begin(), c.end());
      }
    }
    sums_[i_].ret.insert(l.begin(), l.end());
  }

  void handle_new(std::size_t j, std::size_t end) {
    // `new T[count]`: the count is an allocation sink.
    std::size_t k = j + 1;
    while (k < end && (t_[k].kind == TokKind::Identifier || is_p(t_[k], "::") ||
                       is_p(t_[k], "<") || is_p(t_[k], ">")))
      ++k;
    if (k >= end || !is_p(t_[k], "[")) return;
    const std::size_t close = find_close(k, end, "[", "]");
    const Labels l = expr_labels(k + 1, close);
    if (!l.empty()) sink(std::string("new[]' (allocation count)"), l, t_[j].line);
  }

  void check_subscript(std::size_t j, std::size_t end) {
    if (j == 0) return;
    const Token& prev = t_[j - 1];
    const bool indexable = prev.kind == TokKind::Identifier ||
                           is_p(prev, "]") || is_p(prev, ")");
    if (!indexable) return;
    const std::size_t close = find_close(j, end, "[", "]");
    const Labels l = expr_labels(j + 1, close);
    if (!l.empty()) sink(std::string("operator[]' (array index)"), l,
                         t_[j].line);
  }

  /// Comparisons: inside a loop condition a tainted bound is a sink; in
  /// straight-line code a comparison against a recognizable bound kills the
  /// compared chain's taint from here on.
  void handle_loop_condition(std::size_t j, std::size_t end) {
    const std::size_t open = j + 1;
    const std::size_t close = find_close(open, end, "(", ")");
    std::size_t lo = open + 1, hi = close;
    if (t_[j].text == "for") {
      // Condition = between the first and second ';' at depth 1.
      std::size_t first = close, second = close;
      int depth = 0;
      for (std::size_t k = open; k < close; ++k) {
        if (is_p(t_[k], "(") || is_p(t_[k], "[") || is_p(t_[k], "{")) ++depth;
        else if (is_p(t_[k], ")") || is_p(t_[k], "]") || is_p(t_[k], "}"))
          --depth;
        else if (depth == 1 && is_p(t_[k], ";")) {
          if (first == close) {
            first = k;
          } else {
            second = k;
            break;
          }
        }
      }
      if (first == close) return;  // range-for: bounded by a materialized set
      lo = first + 1;
      hi = second;
    }
    for (std::size_t k = lo; k < hi; ++k) {
      if (!is_cmp(t_[k])) continue;
      loop_cmp_.insert(k);
      apply_comparison(k, hi, /*loop_bound=*/true);
    }
  }

  void apply_comparison(std::size_t k, std::size_t end, bool loop_bound) {
    if (!loop_bound && loop_cmp_.count(k) != 0) return;  // already handled
    // Left chain: walk back to the root of the chain ending at k-1.
    std::string left, right;
    if (k >= 1 && (t_[k - 1].kind == TokKind::Identifier || is_p(t_[k - 1], ")"))) {
      std::size_t root = k - 1;
      if (t_[root].kind == TokKind::Identifier) {
        while (root >= 2 && (is_p(t_[root - 1], ".") || is_p(t_[root - 1], "->")) &&
               t_[root - 2].kind == TokKind::Identifier)
          root -= 2;
        std::size_t after = root;
        left = read_chain(root, k, after);
      }
    }
    bool right_sized = false, right_num = false;
    if (k + 1 < end && t_[k + 1].kind == TokKind::Identifier) {
      std::size_t after = k + 1;
      right = read_chain(k + 1, end, after);
      right_sized = after < end && is_p(t_[after], "(") &&
                    (right.size() >= 5 &&
                     (ends_with(right, ".size") || ends_with(right, ".length")));
    } else if (k + 1 < end && t_[k + 1].kind == TokKind::Number) {
      right_num = true;
    }
    const bool lt = is_p(t_[k], "<") || is_p(t_[k], "<=");
    const bool gt = is_p(t_[k], ">") || is_p(t_[k], ">=");
    if (loop_bound) {
      // `i < bound` / `bound > i`: the bound side is attacker-controlled?
      const std::string& bound = lt ? right : (gt ? left : "");
      if (bound.empty()) return;
      const Labels l = labels_of(bound);
      if (!l.empty())
        sink(std::string("loop bound '") + bound, l, t_[k].line);
      return;
    }
    const auto is_bound = [&](const std::string& chain, bool num, bool sized) {
      return num || sized || contains_ci(chain, "max") ||
             contains_ci(chain, "limit");
    };
    if (!left.empty() && !labels_of(left).empty() &&
        is_bound(right, right_num, right_sized))
      kill(left);
    if (!right.empty() && !labels_of(right).empty() &&
        is_bound(left, /*num=*/false, /*sized=*/false) &&
        (contains_ci(left, "max") || contains_ci(left, "limit")))
      kill(right);
  }

  static bool ends_with(const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  void sink(const std::string& what, const Labels& labels, int line) {
    if (ix_.taint_ok_at(fn_.path, line)) return;
    if (labels.count(kSrc) != 0) {
      const std::string msg =
          "untrusted input reaches '" + what +
          " without a bound (in " + fn_.qualified +
          "); compare it against a named max_*/limit bound first or annotate "
          "// taint-ok: <reason>";
      if (emitted_.emplace(fn_.path, line, msg).second)
        findings_.push_back({fn_.path, line, "R12", msg});
    }
    for (int l : labels)
      if (l >= 0)
        sums_[i_].sinks.emplace(static_cast<std::size_t>(l), what);
  }

  const ProjectIndex& ix_;
  const FunctionInfo& fn_;
  std::size_t i_;
  const std::vector<Token>& t_;
  std::vector<TaintSummary>& sums_;
  const std::map<std::pair<std::size_t, std::size_t>,
                 std::vector<std::size_t>>& resolved_;
  std::set<std::tuple<std::string, int, std::string>>& emitted_;
  std::vector<Finding>& findings_;
  std::map<std::string, Labels> taint_;
  std::set<std::string> clean_;  // sanitized chains: override prefix folding
  std::map<std::size_t, std::size_t> call_by_token_;
  std::set<std::size_t> loop_cmp_;
};

}  // namespace

std::vector<Finding> run_taint_rule(const ProjectIndex& index,
                                    const std::vector<ScannedFile>& files) {
  std::vector<Finding> findings;
  const auto& fns = index.functions();
  const dataflow::CallGraph& g = index.call_graph();

  std::map<std::string, const ScannedFile*> by_path;
  for (const ScannedFile& f : files) by_path.emplace(f.path, &f);

  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      resolved;
  for (std::size_t i = 0; i < fns.size(); ++i)
    for (const dataflow::Edge& e : g.out_edges(i))
      if (!untrusted_edge(e, fns)) resolved[{i, e.site}].push_back(e.to);

  std::vector<TaintSummary> sums(fns.size());
  std::set<std::tuple<std::string, int, std::string>> emitted;

  dataflow::solve(
      fns.size(),
      [&](std::size_t i) {
        if (!fns[i].is_definition) return false;
        const auto fit = by_path.find(fns[i].path);
        if (fit == by_path.end()) return false;
        const TaintSummary before = sums[i];
        TaintWalk walk(index, fns[i], i, fit->second->tokens, sums, resolved,
                       emitted, findings);
        walk.run();
        // Summaries only grow: monotone, so the solver terminates.
        TaintSummary& s = sums[i];
        s.ret.insert(before.ret.begin(), before.ret.end());
        for (const auto& [p, l] : before.taints)
          s.taints[p].insert(l.begin(), l.end());
        for (const auto& [p, d] : before.sinks) s.sinks.emplace(p, d);
        return !(s == before);
      },
      [&](std::size_t i) {
        std::vector<std::size_t> deps;
        for (const dataflow::Edge& e : g.in_edges(i)) deps.push_back(e.from);
        return deps;
      });

  return findings;
}

}  // namespace gptc::lint
