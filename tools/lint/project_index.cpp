#include "project_index.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <tuple>

namespace gptc::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_id(const Token& t, std::string_view s) {
  return t.kind == TokKind::Identifier && t.text == s;
}

bool is_p(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

bool is_expr_keyword(std::string_view s) {
  static const std::set<std::string_view> kw = {
      "return", "co_return", "co_yield", "co_await", "throw", "case",
      "else",   "do",        "goto",     "new",      "delete", "sizeof",
      "alignof", "typeid",   "not",      "and",      "or",     "xor",
      "if",     "while",     "for",      "switch",   "catch",  "constexpr",
      "static_assert",
  };
  return kw.count(s) != 0;
}

bool is_cv_ref(const Token& t) {
  return is_id(t, "const") || is_id(t, "volatile") || is_p(t, "&") ||
         is_p(t, "*") || is_p(t, "&&");
}

std::size_t find_matching(const Tokens& t, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_p(t[i], open_text)) ++depth;
    else if (is_p(t[i], close_text)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return t.size();
}

const std::set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string_view> kMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex"};

const std::set<std::string_view> kLockWrappers = {
    "lock_guard", "unique_lock", "shared_lock", "scoped_lock"};

/// Container/atomic methods that mutate their object — a member they are
/// invoked on counts as written for the guard analysis.
const std::set<std::string_view> kMutatingMethods = {
    "push_back", "emplace_back", "push_front", "emplace_front", "push",
    "pop",       "pop_back",     "pop_front",  "insert",
    "insert_or_assign",          "emplace",    "emplace_hint",
    "try_emplace", "erase",      "clear",      "resize",
    "reserve",   "assign",       "swap",       "merge",
    "extract",   "store",        "exchange",   "fetch_add",
    "fetch_sub", "reset"};

/// Member types the guard analysis never checks: their own synchronization
/// (atomics), the synchronization primitives themselves, and thread handles.
bool guard_exempt_type_id(const std::string& s) {
  return s.rfind("atomic", 0) == 0 || kMutexTypes.count(s) != 0 ||
         s == "condition_variable" || s == "condition_variable_any" ||
         s == "thread" || s == "jthread" || s == "once_flag";
}

}  // namespace

/// All the pass-1 extraction for one file; owns the transient state (class
/// stack, brace matching) the walk needs.
class IndexBuilder {
 public:
  IndexBuilder(ProjectIndex& index, const ScannedFile& file)
      : ix_(index), f_(file), t_(file.tokens) {
    stem_ = std::filesystem::path(file.path).stem().string();
  }

  void run() {
    record_directives();
    std::vector<std::pair<std::string, std::size_t>> class_stack;
    for (std::size_t i = 0; i < t_.size(); ++i) {
      while (!class_stack.empty() && i >= class_stack.back().second)
        class_stack.pop_back();
      if ((is_id(t_[i], "class") || is_id(t_[i], "struct")) &&
          (i == 0 || !is_id(t_[i - 1], "enum"))) {
        if (std::size_t body = enter_class(i, class_stack); body != 0) {
          // Keep walking *into* the body (member functions are defined
          // there); members themselves were extracted by enter_class.
          i = body;  // position on '{'; loop advances past it
          continue;
        }
      }
      if (is_p(t_[i], "(")) {
        const std::string cls =
            class_stack.empty() ? std::string() : class_stack.back().first;
        try_function(i, cls);
      }
    }
  }

 private:
  /// Copies the file's `lock-order-ok` and guard-ok directives into the
  /// index (R7 and the guard analysis need them at finalize time, when the
  /// per-file directive list is gone).
  void record_directives() {
    for (const Directive& d : f_.directives) {
      if (d.name == "lock-order-ok") {
        ix_.lock_order_ok_[f_.path].insert(d.line);
        ix_.lock_order_ok_[f_.path].insert(d.line + 1);
      }
      if (d.name == "guard-ok" && !d.reason.empty()) {
        ix_.guard_ok_[f_.path].insert(d.line);
        // A comment-above escape also covers the next line; a trailing one
        // binds to its own line only, or it would leak onto the statement
        // below it.
        if (d.own_line) ix_.guard_ok_[f_.path].insert(d.line + 1);
      }
      if (d.name == "blocking-ok" && !d.reason.empty()) {
        ix_.blocking_ok_[f_.path].insert(d.line);
        if (d.own_line) ix_.blocking_ok_[f_.path].insert(d.line + 1);
      }
      if (d.name == "taint-ok" && !d.reason.empty()) {
        ix_.taint_ok_[f_.path].insert(d.line);
        if (d.own_line) ix_.taint_ok_[f_.path].insert(d.line + 1);
      }
    }
  }

  /// The directive named `name` that covers `line` (the annotation sits on
  /// the line itself or up to `window` lines above it — multi-line
  /// signatures push the name token below the comment). Only a comment that
  /// starts its own line may apply to lines below it; a trailing comment
  /// annotates its own line exclusively, so an annotation on one member
  /// declaration never bleeds into the next.
  const Directive* directive_at(std::string_view name, int line,
                                int window = 1) const {
    for (const Directive& d : f_.directives) {
      if (d.name != name || d.line > line || line - d.line > window) continue;
      if (d.line == line || d.own_line) return &d;
    }
    return nullptr;
  }

  /// First whitespace-separated word of an annotation's text (the lock
  /// expression) qualified to a lock identity: `mu_` becomes `Cls::mu_`,
  /// an already-qualified `Shard::mu` is kept as-is.
  std::string qualify_lock(const std::string& text, const std::string& cls) {
    std::size_t b = 0;
    while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b])))
      ++b;
    std::size_t e = b;
    while (e < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[e])))
      ++e;
    std::string word = text.substr(b, e - b);
    if (word.empty()) return "";
    if (word.find("::") != std::string::npos) return word;
    return (cls.empty() ? stem_ : cls) + "::" + word;
  }

  /// True when an annotation's text ends in the word "shared" after the
  /// lock expression (shared-mode contract).
  static bool annotation_shared(const std::string& text) {
    return text.size() >= 6 &&
           text.compare(text.size() - 6, 6, "shared") == 0;
  }

  /// Handles `class`/`struct` at `i`. Returns the body-'{' index when a
  /// definition was entered (class recorded, members extracted), 0 when it
  /// was a forward declaration or unrecognized.
  std::size_t enter_class(
      std::size_t i,
      std::vector<std::pair<std::string, std::size_t>>& class_stack) {
    if (i + 1 >= t_.size() || t_[i + 1].kind != TokKind::Identifier) return 0;
    const std::string name = t_[i + 1].text;
    // Find the body '{' or the ';' of a forward declaration. A base-clause
    // may contain template args but never braces or semicolons.
    for (std::size_t j = i + 2; j < t_.size(); ++j) {
      if (is_p(t_[j], ";")) {
        ix_.classes_.insert(name);
        return 0;
      }
      if (is_p(t_[j], "(") || is_p(t_[j], ")") || is_p(t_[j], "=")) return 0;
      if (is_p(t_[j], "{")) {
        ix_.classes_.insert(name);
        const std::size_t close = find_matching(t_, j, "{", "}");
        class_stack.emplace_back(name, close);
        extract_members(name, j + 1, close);
        return j;
      }
    }
    return 0;
  }

  /// Scans a class body's top level (nested braces skipped) for data-member
  /// declarations, recording unordered containers, mutexes, std::thread
  /// containers, and every member's type identifiers.
  void extract_members(const std::string& cls, std::size_t begin,
                       std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
      // One declaration run: up to the next top-level ';'. Brace/paren
      // regions (inline method bodies, default member initializers) are
      // skipped whole.
      std::size_t run_begin = i;
      std::size_t j = i;
      bool has_paren_after_ident = false;
      bool seen_eq = false;
      std::size_t last_ident = t_.size();
      while (j < end) {
        if (is_p(t_[j], "{")) {
          j = find_matching(t_, j, "{", "}");
          if (j >= end) return;
          // An inline method body ends the declaration without ';'.
          has_paren_after_ident = true;  // treat as non-member
          break;
        }
        // A template argument list in the type is skipped whole so a '('
        // inside it (std::function<void()>, ...) is not mistaken for a
        // function declarator. Only before '=': past the initializer a '<'
        // may be a comparison with no matching '>'.
        if (!seen_eq && is_p(t_[j], "<") && j > run_begin &&
            t_[j - 1].kind == TokKind::Identifier &&
            t_[j - 1].text != "operator") {
          const std::size_t close = find_matching(t_, j, "<", ">");
          if (close < end) {
            j = close + 1;
            continue;
          }
        }
        if (is_p(t_[j], "=")) seen_eq = true;
        if (is_p(t_[j], "(")) {
          if (j > run_begin && t_[j - 1].kind == TokKind::Identifier)
            has_paren_after_ident = true;
          j = find_matching(t_, j, "(", ")");
          if (j >= end) return;
        } else if (is_p(t_[j], ";")) {
          break;
        } else if (t_[j].kind == TokKind::Identifier) {
          last_ident = j;
        }
        ++j;
      }
      if (!has_paren_after_ident && last_ident < t_.size() &&
          last_ident > run_begin) {
        // Member variable: `<type tokens> name ;` or `... name = init ;`.
        // The declarator name is the identifier right before the first
        // top-level '=' (if any), else the last identifier of the run.
        std::size_t name_tok = last_ident;
        for (std::size_t k = run_begin; k < j; ++k) {
          if (is_p(t_[k], "=")) {
            name_tok = t_.size();
            for (std::size_t m = run_begin; m < k; ++m)
              if (t_[m].kind == TokKind::Identifier) name_tok = m;
            break;
          }
          if (is_p(t_[k], "<")) k = find_matching(t_, k, "<", ">");
        }
        if (name_tok < t_.size()) record_member(cls, run_begin, name_tok);
      }
      i = j + 1;
    }
  }

  void record_member(const std::string& cls, std::size_t type_begin,
                     std::size_t name_tok) {
    const std::string& name = t_[name_tok].text;
    std::vector<std::string> type_ids;
    bool is_unordered = false, is_mutex = false, is_thread = false;
    bool is_shared_mutex = false;
    std::string container;
    for (std::size_t k = type_begin; k < name_tok; ++k) {
      if (t_[k].kind != TokKind::Identifier) continue;
      const std::string& s = t_[k].text;
      if (s == "static" || s == "mutable" || s == "const" || s == "inline")
        continue;
      type_ids.push_back(s);
      if (kUnorderedContainers.count(s) != 0) {
        is_unordered = true;
        container = s;
      }
      if (kMutexTypes.count(s) != 0) is_mutex = true;
      if (s == "shared_mutex" || s == "shared_timed_mutex")
        is_shared_mutex = true;
      if (s == "thread" || s == "jthread") is_thread = true;
    }
    if (type_ids.empty()) return;
    ix_.member_type_ids_[cls][name] = type_ids;
    if (is_unordered)
      ix_.unordered_members_.push_back(
          {cls, name, container, f_.path, t_[name_tok].line});
    if (is_mutex)
      ix_.mutex_members_.push_back(
          {cls, name, f_.path, t_[name_tok].line, is_shared_mutex});
    if (is_thread) ix_.thread_members_.insert(name);
    // Guard annotations on the declaration itself.
    const int line = t_[name_tok].line;
    if (const Directive* d = directive_at("guarded_by", line)) {
      const std::string id = qualify_lock(d->reason, cls);
      if (!id.empty()) ix_.guarded_by_[cls][name] = id;
    }
    if (directive_at("guard-ok", line) != nullptr)
      ix_.member_guard_ok_.insert(cls + "::" + name);
  }

  // --- function extraction -------------------------------------------------

  /// Parses the qualified name chain ending just before the '(' at `paren`.
  /// Returns false when the tokens before it cannot name a function.
  bool parse_name(std::size_t paren, std::string& qualified, std::string& base,
                  std::string& cls_out, std::size_t& chain_begin) {
    if (paren == 0 || t_[paren - 1].kind != TokKind::Identifier) return false;
    std::vector<std::string> parts = {t_[paren - 1].text};
    std::size_t k = paren - 1;
    bool dtor = false;
    if (k >= 1 && is_p(t_[k - 1], "~")) {
      dtor = true;
      --k;
    }
    while (k >= 2 && is_p(t_[k - 1], "::") &&
           t_[k - 2].kind == TokKind::Identifier) {
      parts.insert(parts.begin(), t_[k - 2].text);
      k -= 2;
    }
    base = parts.back();
    if (is_expr_keyword(base) || base == "operator") return false;
    qualified.clear();
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (p != 0) qualified += "::";
      if (p + 1 == parts.size() && dtor) qualified += "~";
      qualified += parts[p];
    }
    cls_out = parts.size() >= 2 ? parts[parts.size() - 2] : std::string();
    chain_begin = k;
    return true;
  }

  /// Attempts to recognize the '(' at `i` as a function definition or
  /// declaration; records it (with full body analysis for definitions).
  void try_function(std::size_t i, const std::string& enclosing_cls) {
    std::string qualified, base, name_cls;
    std::size_t chain_begin = 0;
    if (!parse_name(i, qualified, base, name_cls, chain_begin)) return;
    const std::size_t close = find_matching(t_, i, "(", ")");
    if (close >= t_.size()) return;

    // Qualifiers between the parameter list and the body/terminator.
    bool marked_noexcept = false;
    std::size_t j = close + 1;
    bool is_def = false;
    while (j < t_.size()) {
      if (is_id(t_[j], "const") || is_id(t_[j], "override") ||
          is_id(t_[j], "final") || is_id(t_[j], "mutable") ||
          is_p(t_[j], "&") || is_p(t_[j], "&&")) {
        ++j;
      } else if (is_id(t_[j], "noexcept")) {
        marked_noexcept = true;
        ++j;
        if (j < t_.size() && is_p(t_[j], "("))
          j = find_matching(t_, j, "(", ")") + 1;
      } else if (is_p(t_[j], "->")) {
        // Trailing return type: scan to the body '{' or a ';'.
        ++j;
        int pdepth = 0;
        while (j < t_.size()) {
          if (is_p(t_[j], "(")) ++pdepth;
          else if (is_p(t_[j], ")")) --pdepth;
          else if (pdepth == 0 && (is_p(t_[j], "{") || is_p(t_[j], ";")))
            break;
          ++j;
        }
      } else if (is_p(t_[j], ":")) {
        // Constructor init list: `name (args)` / `name {args}` entries.
        ++j;
        while (j < t_.size()) {
          if (t_[j].kind == TokKind::Identifier) {
            ++j;
            while (j < t_.size() && (is_p(t_[j], "::") || is_p(t_[j], "<"))) {
              if (is_p(t_[j], "<")) j = find_matching(t_, j, "<", ">") + 1;
              else j += 2;  // ':: ident'
            }
            if (j < t_.size() && is_p(t_[j], "("))
              j = find_matching(t_, j, "(", ")") + 1;
            else if (j < t_.size() && is_p(t_[j], "{"))
              j = find_matching(t_, j, "{", "}") + 1;
            if (j < t_.size() && is_p(t_[j], ",")) {
              ++j;
              continue;
            }
          }
          break;
        }
        if (j < t_.size() && is_p(t_[j], "{")) is_def = true;
        break;
      } else if (is_p(t_[j], "{")) {
        is_def = true;
        break;
      } else if (is_p(t_[j], ";")) {
        break;
      } else {
        return;  // ',' (declarator list), '=', operators: not a function
      }
    }
    if (j >= t_.size()) return;

    const bool qualified_chain = qualified.find("::") != std::string::npos;
    const bool ctor_dtor = !enclosing_cls.empty() &&
                           (base == enclosing_cls || qualified[0] == '~');
    if (!qualified_chain && !ctor_dtor) {
      // Require a type token before the name: separates declarations and
      // definitions from plain call statements (`sync_parent_dir(dir_);`).
      if (chain_begin == 0) {
        if (!is_def) return;
      } else {
        const Token& before = t_[chain_begin - 1];
        const bool typed =
            (before.kind == TokKind::Identifier &&
             !is_expr_keyword(before.text)) ||
            is_p(before, ">") || is_p(before, "*") || is_p(before, "&");
        if (!typed) return;
      }
    }

    FunctionInfo fn;
    fn.base = base;
    fn.cls = !name_cls.empty()
                 ? name_cls
                 : (!enclosing_cls.empty() ? enclosing_cls : std::string());
    fn.qualified = (!name_cls.empty() || enclosing_cls.empty())
                       ? qualified
                       : enclosing_cls + "::" + qualified;
    fn.path = f_.path;
    fn.line = t_[i].line;
    fn.is_noexcept = marked_noexcept;
    fn.is_definition = is_def;
    // Guard annotations above (or on) the signature line. A window of two
    // lines tolerates a long return type pushing the name token down.
    if (const Directive* d = directive_at("requires_lock", fn.line, 2)) {
      const std::string id = qualify_lock(d->reason, fn.cls);
      if (!id.empty())
        fn.requires_locks.push_back({id, annotation_shared(d->reason)});
    }
    if (const Directive* d = directive_at("returns_lock", fn.line, 2)) {
      const std::string id = qualify_lock(d->reason, fn.cls);
      if (!id.empty())
        fn.returns_locks.push_back({id, annotation_shared(d->reason)});
    }
    if (directive_at("guard-ok", fn.line, 2) != nullptr)
      fn.guard_exempt = true;
    if (directive_at("blocking-ok", fn.line, 2) != nullptr)
      fn.blocking_exempt = true;
    if (is_def) {
      fn.body_begin = j;
      fn.body_end = find_matching(t_, j, "{", "}");
      if (fn.body_end >= t_.size()) return;
      analyze_body(fn, i, close);
    }
    ix_.functions_.push_back(std::move(fn));
  }

  /// Parses `(params)` into an ordered (name, type) list — type is the last
  /// type identifier before the parameter name. Unrecognized parameters keep
  /// their slot as ("", "") so positions line up with call-site arguments.
  std::vector<std::pair<std::string, std::string>> parse_params(
      std::size_t open, std::size_t close) {
    std::vector<std::pair<std::string, std::string>> params;
    std::size_t start = open + 1;
    int depth = 0;
    for (std::size_t j = open + 1; j <= close; ++j) {
      if (is_p(t_[j], "(") || is_p(t_[j], "<") || is_p(t_[j], "[")) ++depth;
      else if (is_p(t_[j], ")") || is_p(t_[j], ">") || is_p(t_[j], "]"))
        --depth;
      if ((j == close && depth < 0) || (depth == 0 && is_p(t_[j], ","))) {
        if (j == start) {
          start = j + 1;
          continue;  // empty list `()`
        }
        // One parameter in [start, j): name = last identifier, type = last
        // identifier before the name (skipping cv/ref tokens).
        std::size_t name_tok = t_.size(), type_tok = t_.size();
        std::size_t eq = j;
        for (std::size_t k = start; k < j; ++k)
          if (is_p(t_[k], "=")) {
            eq = k;
            break;
          }
        for (std::size_t k = start; k < eq; ++k)
          if (t_[k].kind == TokKind::Identifier) {
            type_tok = name_tok;
            name_tok = k;
          }
        if (name_tok < t_.size() && type_tok < t_.size())
          params.emplace_back(t_[name_tok].text, t_[type_tok].text);
        else
          params.emplace_back("", "");
        start = j + 1;
      }
    }
    return params;
  }

  /// Walks backwards from `tok` (an identifier) over a `a.b->c` chain;
  /// fills root/segments (segments exclude both root and the identifier at
  /// `tok`). Returns false for non-chain owners (call results, parens).
  bool walk_chain(std::size_t tok, std::string& root,
                  std::vector<std::string>& segments) {
    std::vector<std::string> rev;
    std::size_t k = tok;
    while (k >= 2 && (is_p(t_[k - 1], ".") || is_p(t_[k - 1], "->"))) {
      if (t_[k - 2].kind != TokKind::Identifier) return false;
      rev.push_back(t_[k - 2].text);
      k -= 2;
    }
    if (rev.empty()) return true;  // bare identifier: no owner chain
    root = rev.back();
    segments.assign(rev.rbegin() + 1, rev.rend());
    return true;
  }

  void analyze_body(FunctionInfo& fn, std::size_t params_open,
                    std::size_t params_close) {
    const std::size_t begin = fn.body_begin, end = fn.body_end;
    const auto params = parse_params(params_open, params_close);
    std::map<std::string, std::string> var_types;
    for (std::size_t p = 0; p < params.size(); ++p) {
      fn.param_names.push_back(params[p].first);
      if (params[p].first.empty()) continue;
      var_types.emplace(params[p].first, params[p].second);
      if (kMutexTypes.count(params[p].second) != 0)
        fn.mutex_params.emplace(params[p].first, p);
    }

    // Local declarations: `Type [cv/ref] name (=|;|(|{)`.
    for (std::size_t j = begin + 1; j + 1 < end; ++j) {
      if (t_[j].kind != TokKind::Identifier || is_expr_keyword(t_[j].text))
        continue;
      const std::string& ty = t_[j].text;
      if (ty == "auto") continue;  // unresolvable, leave unknown
      std::size_t k = j + 1;
      while (k < end && is_cv_ref(t_[k])) ++k;
      if (k < end && t_[k].kind == TokKind::Identifier && k + 1 < end &&
          (is_p(t_[k + 1], "=") || is_p(t_[k + 1], ";") ||
           is_p(t_[k + 1], "(") || is_p(t_[k + 1], "{"))) {
        var_types.emplace(t_[k].text, ty);
      }
    }

    // Smart-pointer locals (`shared_ptr<T> p`, `unique_ptr<T> p`) and
    // factory initializers (`auto p = std::make_shared<T>(...)`): the
    // variable's type is the last identifier inside the template arguments,
    // so chains through the pointer resolve like chains through a T.
    for (std::size_t j = begin + 1; j + 1 < end; ++j) {
      if (t_[j].kind != TokKind::Identifier) continue;
      const std::string& s = t_[j].text;
      const bool smart = s == "shared_ptr" || s == "unique_ptr";
      const bool factory = s == "make_shared" || s == "make_unique";
      if ((!smart && !factory) || !is_p(t_[j + 1], "<")) continue;
      const std::size_t close = find_matching(t_, j + 1, "<", ">");
      if (close >= end) continue;
      std::string ty;
      for (std::size_t k = j + 2; k < close; ++k)
        if (t_[k].kind == TokKind::Identifier) ty = t_[k].text;
      if (ty.empty()) continue;
      if (smart) {
        std::size_t k = close + 1;
        while (k < end && is_cv_ref(t_[k])) ++k;
        if (k + 1 < end && t_[k].kind == TokKind::Identifier &&
            (is_p(t_[k + 1], "=") || is_p(t_[k + 1], ";") ||
             is_p(t_[k + 1], "(") || is_p(t_[k + 1], "{")))
          var_types.emplace(t_[k].text, ty);
      } else {
        std::size_t k = j;
        if (k >= 2 && is_p(t_[k - 1], "::") && is_id(t_[k - 2], "std"))
          k -= 2;
        if (k >= 2 && is_p(t_[k - 1], "=") &&
            t_[k - 2].kind == TokKind::Identifier)
          var_types.emplace(t_[k - 2].text, ty);
      }
    }

    // Lambda body extents: accesses and calls inside them run deferred, so
    // held-lock reasoning must not assume the enclosing function's entry
    // context. A '[' opens a lambda when what precedes it cannot be an
    // indexable expression (identifier, number, ']' or ')').
    for (std::size_t j = begin + 1; j < end; ++j) {
      if (!is_p(t_[j], "[")) continue;
      const Token& prev = t_[j - 1];
      const bool subscript =
          (prev.kind == TokKind::Identifier && !is_expr_keyword(prev.text)) ||
          prev.kind == TokKind::Number || is_p(prev, "]") || is_p(prev, ")");
      if (subscript) continue;
      const std::size_t close = find_matching(t_, j, "[", "]");
      if (close >= end) continue;
      std::size_t k = close + 1;
      if (k < end && is_p(t_[k], "(")) k = find_matching(t_, k, "(", ")") + 1;
      // Specifiers / trailing return type: bounded scan for the body '{'.
      const std::size_t limit = std::min(end, k + 16);
      while (k < limit && !is_p(t_[k], "{") && !is_p(t_[k], ";") &&
             !is_p(t_[k], ")") && !is_p(t_[k], ","))
        ++k;
      if (k < limit && is_p(t_[k], "{"))
        fn.lambdas.emplace_back(k, find_matching(t_, k, "{", "}"));
    }
    auto in_lambda = [&fn](std::size_t tok) {
      for (const auto& [lb, le] : fn.lambdas)
        if (tok > lb && tok < le) return true;
      return false;
    };

    // Scope stack for lock lifetimes.
    std::vector<std::size_t> scope_close;
    auto enclosing_close = [&](void) -> std::size_t {
      return scope_close.empty() ? end : scope_close.back();
    };

    // Local vectors of RAII lock handles (per-shard lock vectors filled with
    // emplace_back): name -> (shared mode, scope-end token).
    std::map<std::string, std::pair<bool, std::size_t>> lock_containers;

    for (std::size_t j = begin + 1; j < end; ++j) {
      const Token& tok = t_[j];
      if (is_p(tok, "{")) {
        scope_close.push_back(find_matching(t_, j, "{", "}"));
        continue;
      }
      while (!scope_close.empty() && j >= scope_close.back())
        scope_close.pop_back();
      if (tok.kind != TokKind::Identifier) continue;
      const std::string& s = tok.text;

      // Lock-vector declaration: `std::vector<std::unique_lock<M>> v;` (or
      // shared_lock). Locks emplaced into it live until v's scope closes.
      if (s == "vector" && j + 1 < end && is_p(t_[j + 1], "<")) {
        const std::size_t close = find_matching(t_, j + 1, "<", ">");
        bool vec_shared = false, is_lockvec = false;
        for (std::size_t m = j + 2; m < close && m < end; ++m) {
          if (is_id(t_[m], "shared_lock")) {
            is_lockvec = true;
            vec_shared = true;
          }
          if (is_id(t_[m], "unique_lock")) is_lockvec = true;
        }
        if (is_lockvec && close + 1 < end &&
            t_[close + 1].kind == TokKind::Identifier) {
          lock_containers[t_[close + 1].text] = {vec_shared,
                                                 enclosing_close()};
          j = close + 1;
          continue;
        }
      }

      // Lock wrapper: lock_guard/unique_lock/shared_lock/scoped_lock.
      if (kLockWrappers.count(s) != 0) {
        std::size_t k = j + 1;
        if (k < end && is_p(t_[k], "<")) k = find_matching(t_, k, "<", ">") + 1;
        if (k < end && t_[k].kind == TokKind::Identifier) ++k;  // var name
        if (k < end && is_p(t_[k], "(")) {
          const std::size_t args_close = find_matching(t_, k, "(", ")");
          // scoped_lock with several mutexes acquires atomically
          // (deadlock-free): skip. Detect a top-level ','.
          int depth = 0;
          bool multi = false;
          std::size_t arg_end = args_close;
          for (std::size_t m = k + 1; m < args_close; ++m) {
            if (is_p(t_[m], "(")) ++depth;
            else if (is_p(t_[m], ")")) --depth;
            else if (depth == 0 && is_p(t_[m], ",")) {
              multi = true;
              arg_end = m;
              break;
            }
          }
          if (!(multi && s == "scoped_lock")) {
            record_lock(fn, var_types, k + 1, arg_end, tok.line, j,
                        enclosing_close(), s == "shared_lock");
          }
          j = args_close;
          continue;
        }
      }

      // Manual `m.lock()` / `m.lock_shared()`.
      if ((s == "lock" || s == "lock_shared") && j >= 2 &&
          (is_p(t_[j - 1], ".") || is_p(t_[j - 1], "->")) &&
          j + 2 < end && is_p(t_[j + 1], "(") && is_p(t_[j + 2], ")")) {
        // Owner chain ends at j-2; reuse record_lock over [chain_begin, j-1).
        std::size_t cb = j - 2;
        while (cb >= 2 && (is_p(t_[cb - 1], ".") || is_p(t_[cb - 1], "->")) &&
               t_[cb - 2].kind == TokKind::Identifier)
          cb -= 2;
        record_lock(fn, var_types, cb, j - 1, tok.line, j, enclosing_close(),
                    s == "lock_shared");
        j += 2;
        continue;
      }

      // Durability markers and file-creation sites.
      const bool called = j + 1 < end && is_p(t_[j + 1], "(");
      if (called &&
          (s == "fsync" || s == "fdatasync" || s == "sync_parent_dir"))
        fn.contains_sync = true;
      if (called && s == "open") {
        const std::size_t close = find_matching(t_, j + 1, "(", ")");
        for (std::size_t m = j + 2; m < close; ++m)
          if (is_id(t_[m], "O_CREAT")) {
            fn.creates.push_back({"open(O_CREAT)", tok.line});
            break;
          }
      }
      if (called && s == "rename")
        fn.creates.push_back({"rename", tok.line});
      if (called && s == "create_directories")
        fn.creates.push_back({"create_directories", tok.line});

      // try blocks and catch-all handlers.
      if (s == "try" && j + 1 < end && is_p(t_[j + 1], "{")) {
        TryRange tr;
        tr.begin = j + 1;
        tr.end = find_matching(t_, j + 1, "{", "}");
        std::size_t k = tr.end + 1;
        while (k + 1 < end && is_id(t_[k], "catch") && is_p(t_[k + 1], "(")) {
          const std::size_t cc = find_matching(t_, k + 1, "(", ")");
          if (cc == k + 3 && is_p(t_[k + 2], "...")) tr.catch_all = true;
          if (cc + 1 < end && is_p(t_[cc + 1], "{"))
            k = find_matching(t_, cc + 1, "{", "}") + 1;
          else
            break;
        }
        if (tr.catch_all) fn.has_catch_all = true;
        fn.tries.push_back(tr);
        // Do NOT skip the block: calls/locks inside it still matter.
        continue;
      }

      // Generic call sites.
      if (called && !is_expr_keyword(s) && kLockWrappers.count(s) == 0) {
        CallSite c;
        c.name = s;
        c.line = tok.line;
        c.token = j;
        c.scope_end = enclosing_close();
        c.in_lambda = in_lambda(j);
        c.member_call = j >= 1 && (is_p(t_[j - 1], ".") || is_p(t_[j - 1], "->"));
        if (c.member_call) {
          std::string root;
          std::vector<std::string> segs;
          if (walk_chain(j, root, segs) && !root.empty()) {
            c.owner_root = root;
            c.owner_segments = std::move(segs);
            if (root == "this") {
              c.owner_root = "";
              c.owner_root_type = fn.cls.empty() ? "!" : fn.cls;
            } else if (auto it = var_types.find(root); it != var_types.end()) {
              c.owner_root_type = it->second;
            }
          }
        }
        // Argument lock identities, position-aligned: if the callee locks a
        // mutex parameter ($N), finalize() substitutes arg_lock_ids[N].
        const std::size_t args_close = find_matching(t_, j + 1, "(", ")");
        if (args_close < end && args_close > j + 2) {
          std::size_t arg_begin = j + 2;
          int adepth = 0;
          for (std::size_t m = j + 2; m <= args_close; ++m) {
            if (is_p(t_[m], "(") || is_p(t_[m], "[") || is_p(t_[m], "{"))
              ++adepth;
            else if (is_p(t_[m], ")") || is_p(t_[m], "]") || is_p(t_[m], "}"))
              --adepth;
            if ((m == args_close && adepth < 0) ||
                (adepth == 0 && is_p(t_[m], ","))) {
              c.arg_lock_ids.push_back(
                  lock_expr_id(fn, var_types, arg_begin, m));
              arg_begin = m + 1;
            }
          }
        }
        // Emplacing a mutex into a local lock vector is a lock acquisition
        // whose lifetime is the vector's scope, not the statement's.
        if ((s == "emplace_back" || s == "push_back") && c.member_call &&
            !c.owner_root.empty()) {
          if (const auto it = lock_containers.find(c.owner_root);
              it != lock_containers.end() && args_close < end) {
            record_lock(fn, var_types, j + 2, args_close, tok.line, j,
                        it->second.second, it->second.first);
          }
        }
        fn.calls.push_back(std::move(c));
        continue;
      }

      // Member-access chains (R10/R11): processed once, at the chain's
      // first identifier. Later links are reached by the forward walk; a
      // link preceded by '.', '->', '::' or '~' is never a chain root.
      if (!called && !is_expr_keyword(s)) {
        const Token& prev = t_[j - 1];
        const bool chained = is_p(prev, ".") || is_p(prev, "->") ||
                             is_p(prev, "::") || is_p(prev, "~");
        const bool qualifier = j + 1 < end && is_p(t_[j + 1], "::");
        if (!chained && !qualifier)
          record_access(fn, var_types, j, end, in_lambda(j));
      }
    }
  }

  /// Parses the `a.b->c[i].d` chain starting at identifier `root_tok` and
  /// records it as a MemberAccess. Resolution against the project member
  /// tables happens in finalize(); chains rooted in an untyped local are
  /// dropped there (under-approximate).
  void record_access(FunctionInfo& fn,
                     const std::map<std::string, std::string>& var_types,
                     std::size_t root_tok, std::size_t end, bool lambda) {
    std::vector<std::string> segs;
    bool this_rooted = false;
    std::size_t k = root_tok + 1;
    if (t_[root_tok].text == "this") {
      if (!(k + 1 < end && is_p(t_[k], "->") &&
            t_[k + 1].kind == TokKind::Identifier))
        return;
      this_rooted = true;
      segs.push_back(t_[k + 1].text);
      k += 2;
    } else {
      segs.push_back(t_[root_tok].text);
    }
    bool method_call = false, mutator_call = false;
    while (true) {
      while (k < end && is_p(t_[k], "["))
        k = find_matching(t_, k, "[", "]") + 1;
      if (k + 1 < end && (is_p(t_[k], ".") || is_p(t_[k], "->")) &&
          t_[k + 1].kind == TokKind::Identifier) {
        if (k + 2 < end && is_p(t_[k + 2], "(")) {
          method_call = true;
          mutator_call = kMutatingMethods.count(t_[k + 1].text) != 0;
          break;
        }
        segs.push_back(t_[k + 1].text);
        k += 2;
        continue;
      }
      break;
    }
    bool write = false;
    if (method_call) {
      write = mutator_call;
    } else if (k < end) {
      const Token& nx = t_[k];
      write = is_p(nx, "=") || is_p(nx, "+=") || is_p(nx, "-=") ||
              is_p(nx, "*=") || is_p(nx, "/=") || is_p(nx, "%=") ||
              is_p(nx, "&=") || is_p(nx, "|=") || is_p(nx, "^=") ||
              is_p(nx, "<<=") || is_p(nx, "++") || is_p(nx, "--");
    }
    if (!write && root_tok >= 1 &&
        (is_p(t_[root_tok - 1], "++") || is_p(t_[root_tok - 1], "--")))
      write = true;

    MemberAccess a;
    a.root = segs.front();
    a.segments.assign(segs.begin() + 1, segs.end());
    if (!this_rooted) {
      if (const auto it = var_types.find(a.root); it != var_types.end()) {
        if (a.segments.empty()) return;  // a bare local: not a member access
        a.root_is_var = true;
        a.root_type = it->second;
      }
    }
    a.is_write = write;
    a.in_lambda = lambda;
    a.line = t_[root_tok].line;
    a.token = root_tok;
    fn.accesses.push_back(std::move(a));
  }

  /// Normalizes the mutex expression spanning [expr_begin, expr_end) to a
  /// lock identity: "$N" for a bare mutex-typed parameter (position N),
  /// "Class::member" otherwise. Returns "" for unrecognizable expressions.
  std::string lock_expr_id(const FunctionInfo& fn,
                           const std::map<std::string, std::string>& var_types,
                           std::size_t expr_begin, std::size_t expr_end) {
    // Strip leading dereference/address-of tokens.
    std::size_t b = expr_begin;
    while (b < expr_end && (is_p(t_[b], "*") || is_p(t_[b], "&"))) ++b;
    std::vector<std::string> segments;
    for (std::size_t k = b; k < expr_end; ++k) {
      if (t_[k].kind == TokKind::Identifier) {
        if (t_[k].text == "this") continue;
        segments.push_back(t_[k].text);
      } else if (!is_p(t_[k], ".") && !is_p(t_[k], "->") &&
                 !is_p(t_[k], "(") && !is_p(t_[k], ")") && !is_p(t_[k], "*")) {
        return "";  // complex expression: not a recognizable mutex chain
      }
    }
    if (segments.empty()) return "";
    const std::string& member = segments.back();
    std::string owner_cls;
    if (segments.size() == 1) {
      // A mutex received by reference is not this function's lock: its
      // identity belongs to whoever passed it. Emit a positional
      // placeholder for finalize() to substitute per call site.
      if (const auto it = fn.mutex_params.find(member);
          it != fn.mutex_params.end())
        return "$" + std::to_string(it->second);
      // Bare member (or a local mutex). If the enclosing class is known,
      // qualify with it; a local mutex in a member function is rare enough
      // that the over-approximation is acceptable.
      owner_cls = fn.cls;
    } else {
      const std::string& root = segments.front();
      if (auto it = var_types.find(root); it != var_types.end())
        owner_cls = it->second;
    }
    return (owner_cls.empty() ? stem_ : owner_cls) + "::" + member;
  }

  /// Records one lock acquisition whose mutex expression spans tokens
  /// [expr_begin, expr_end). Simple expressions (a bare member, or a
  /// one-step chain through a typed local) resolve immediately via
  /// lock_expr_id; longer or subscripted chains are stored with their
  /// segment list and resolved through the project member tables in
  /// finalize() — unresolvable ones are dropped there.
  void record_lock(FunctionInfo& fn,
                   const std::map<std::string, std::string>& var_types,
                   std::size_t expr_begin, std::size_t expr_end, int line,
                   std::size_t site_tok, std::size_t scope_end, bool shared) {
    std::size_t b = expr_begin;
    while (b < expr_end && (is_p(t_[b], "*") || is_p(t_[b], "&"))) ++b;
    std::vector<std::string> segments;
    bool subscript = false, ok = true;
    for (std::size_t k = b; k < expr_end && ok; ++k) {
      if (t_[k].kind == TokKind::Identifier) {
        if (t_[k].text == "this" && segments.empty()) continue;
        segments.push_back(t_[k].text);
      } else if (is_p(t_[k], "[")) {
        subscript = true;
        k = find_matching(t_, k, "[", "]");
        if (k >= expr_end) ok = false;
      } else if (!is_p(t_[k], ".") && !is_p(t_[k], "->") &&
                 !is_p(t_[k], "(") && !is_p(t_[k], ")") &&
                 !is_p(t_[k], "*")) {
        ok = false;
      }
    }
    if (!ok || segments.empty()) return;
    LockSite ls;
    ls.shared = shared;
    ls.line = line;
    ls.token = site_tok;
    ls.scope_end = scope_end;
    const bool simple =
        segments.size() == 1 ||
        (segments.size() == 2 && !subscript &&
         var_types.count(segments.front()) != 0);
    if (simple) {
      ls.lock_id = lock_expr_id(fn, var_types, expr_begin, expr_end);
      if (ls.lock_id.empty()) return;
    } else {
      ls.root = segments.front();
      if (const auto it = var_types.find(ls.root); it != var_types.end())
        ls.root_type = it->second;
      ls.member = segments.back();
      ls.segments.assign(segments.begin() + 1, segments.end() - 1);
    }
    fn.locks.push_back(std::move(ls));
  }

  ProjectIndex& ix_;
  const ScannedFile& f_;
  const Tokens& t_;
  std::string stem_;
};

void ProjectIndex::add_file(const ScannedFile& file) {
  IndexBuilder(*this, file).run();
}

std::vector<const FunctionInfo*> ProjectIndex::functions_in(
    const std::string& path) const {
  std::vector<const FunctionInfo*> out;
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return out;
  for (std::size_t i : it->second) out.push_back(&functions_[i]);
  return out;
}

std::vector<const FunctionInfo*> ProjectIndex::functions_named(
    const std::string& base) const {
  std::vector<const FunctionInfo*> out;
  const auto it = by_base_.find(base);
  if (it == by_base_.end()) return out;
  for (std::size_t i : it->second) out.push_back(&functions_[i]);
  return out;
}

bool ProjectIndex::is_noexcept(const std::string& qualified) const {
  for (const FunctionInfo& fn : functions_)
    if (fn.qualified == qualified && fn.is_noexcept) return true;
  return false;
}

bool ProjectIndex::has_catch_all(const std::string& qualified) const {
  for (const FunctionInfo& fn : functions_)
    if (fn.qualified == qualified && fn.has_catch_all) return true;
  return false;
}

bool ProjectIndex::reaches_sync(const std::string& base) const {
  return sync_reaching_.count(base) != 0;
}

std::set<std::string> ProjectIndex::locks_of(const std::string& base) const {
  const auto it = lock_closure_.find(base);
  return it == lock_closure_.end() ? std::set<std::string>() : it->second;
}

void ProjectIndex::finalize() {
  // Resolve member types against the complete class list.
  member_types_.clear();
  for (const auto& [cls, members] : member_type_ids_) {
    for (const auto& [name, ids] : members) {
      std::string resolved = "!";
      for (const std::string& id : ids)
        if (classes_.count(id) != 0) resolved = id;
      member_types_[cls][name] = resolved;
    }
  }

  auto member_type_of = [this](const std::string& cls,
                               const std::string& member) -> std::string {
    const auto ci = member_types_.find(cls);
    if (ci == member_types_.end()) return "";
    const auto mi = ci->second.find(member);
    return mi == ci->second.end() ? std::string() : mi->second;
  };
  auto has_member = [this](const std::string& cls, const std::string& member) {
    const auto ci = member_type_ids_.find(cls);
    return ci != member_type_ids_.end() && ci->second.count(member) != 0;
  };

  // Resolve deferred lock-site chains through the member tables
  // (`c.shards_[k]->mu` becomes Shard::mu once Collection::shards_'s element
  // type is known project-wide). Sites that do not resolve to a member of a
  // project class are dropped — they were invisible before chain support
  // existed, so dropping is the conservative status quo.
  for (FunctionInfo& fn : functions_) {
    auto& ls = fn.locks;
    ls.erase(std::remove_if(
                 ls.begin(), ls.end(),
                 [&](LockSite& l) {
                   if (l.member.empty()) return false;  // resolved in pass 1
                   std::string type = l.root_type;
                   if (type.empty()) {
                     if (l.root.empty()) {
                       type = fn.cls;
                     } else if (has_member(fn.cls, l.root)) {
                       type = member_type_of(fn.cls, l.root);
                     } else {
                       return true;
                     }
                   }
                   for (const std::string& seg : l.segments) {
                     if (!has_member(type, seg)) return true;
                     type = member_type_of(type, seg);
                   }
                   if (type.empty() || type == "!" ||
                       !has_member(type, l.member))
                     return true;
                   l.lock_id = type + "::" + l.member;
                   return false;
                 }),
             ls.end());
  }

  // Merge guard contracts declared on any declaration of a function into
  // every record of it: annotating the header declaration is enough.
  {
    std::map<std::string, std::vector<LockContract>> req, ret;
    std::set<std::string> exempt_names, blocking_names;
    for (const FunctionInfo& fn : functions_) {
      for (const LockContract& c : fn.requires_locks)
        req[fn.qualified].push_back(c);
      for (const LockContract& c : fn.returns_locks)
        ret[fn.qualified].push_back(c);
      if (fn.guard_exempt) exempt_names.insert(fn.qualified);
      if (fn.blocking_exempt) blocking_names.insert(fn.qualified);
    }
    for (FunctionInfo& fn : functions_) {
      if (const auto it = req.find(fn.qualified); it != req.end())
        fn.requires_locks = it->second;
      if (const auto it = ret.find(fn.qualified); it != ret.end())
        fn.returns_locks = it->second;
      if (exempt_names.count(fn.qualified) != 0) fn.guard_exempt = true;
      if (blocking_names.count(fn.qualified) != 0) fn.blocking_exempt = true;
    }
  }

  by_base_.clear();
  by_path_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    by_base_[functions_[i].base].push_back(i);
    by_path_[functions_[i].path].push_back(i);
  }

  // Candidate definitions for a call site. Member calls with a fully
  // resolved owner chain bind to that class only (so `shards_.find(...)` on
  // a std::map member resolves to nothing, not to Collection::find); calls
  // with unresolvable owners fall back to every same-named definition.
  auto candidates = [this](const FunctionInfo& fn, const CallSite& c,
                           bool* weak_out =
                               nullptr) -> std::vector<std::size_t> {
    std::vector<std::size_t> out;
    if (weak_out != nullptr) *weak_out = false;
    const auto it = by_base_.find(c.name);
    if (it == by_base_.end()) return out;
    std::string type;
    bool resolved = false;
    if (c.member_call) {
      type = c.owner_root_type;
      if (type.empty() && !c.owner_root.empty()) {
        // Maybe a data member of the enclosing class.
        const auto ci = member_types_.find(fn.cls);
        if (ci != member_types_.end()) {
          const auto mi = ci->second.find(c.owner_root);
          if (mi != ci->second.end()) type = mi->second;
        }
      }
      if (!type.empty()) {
        resolved = true;
        for (const std::string& seg : c.owner_segments) {
          if (type == "!" || classes_.count(type) == 0) {
            type = "!";
            break;
          }
          const auto ci = member_types_.find(type);
          std::string next = "!";
          if (ci != member_types_.end()) {
            const auto mi = ci->second.find(seg);
            if (mi != ci->second.end()) next = mi->second;
          }
          type = next;
        }
        // A type name we know but that is not a project class (std::string,
        // std::map, ...) binds to nothing — falling back to every same-named
        // definition here would invent call edges like `text.find(...)` ->
        // Collection::find and, from them, false lock-order cycles.
        if (classes_.count(type) == 0) type = "!";
      }
    }
    if (weak_out != nullptr) *weak_out = c.member_call && !resolved;
    for (std::size_t i : it->second) {
      if (!functions_[i].is_definition) continue;
      if (c.member_call && resolved) {
        if (type == "!" || functions_[i].cls != type) continue;
      }
      out.push_back(i);
    }
    return out;
  };

  // The resolved call multigraph — one edge per (call site, candidate
  // definition). Every interprocedural fixpoint below, and the R12/R13
  // dataflow rules that run after finalize(), walk this one graph.
  graph_ = dataflow::CallGraph(functions_.size());
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (!functions_[i].is_definition) continue;
    for (std::size_t ci = 0; ci < functions_[i].calls.size(); ++ci) {
      bool weak = false;
      for (std::size_t k :
           candidates(functions_[i], functions_[i].calls[ci], &weak))
        graph_.add_edge(i, k, ci, weak);
    }
  }

  // Sync-reachability (R8): a boolean closure over the call graph.
  std::vector<char> sync_seed(functions_.size(), 0);
  for (std::size_t i = 0; i < functions_.size(); ++i)
    sync_seed[i] = functions_[i].contains_sync ? 1 : 0;
  const std::vector<char> reach = dataflow::reach_closure(graph_, sync_seed);
  sync_reaching_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i)
    if (reach[i]) sync_reaching_.insert(functions_[i].base);

  // Placeholder lock ids ("$N" = the callee's N-th parameter) resolve to
  // the caller's argument identity at each call site; a site that does not
  // expose the argument falls back to a stable per-callee name so distinct
  // helpers never conflate.
  const auto is_placeholder = [](const std::string& id) {
    return !id.empty() && id[0] == '$';
  };
  const auto subst = [&](const FunctionInfo& callee, const CallSite& c,
                         const std::string& id) -> std::string {
    if (!is_placeholder(id)) return id;
    const std::size_t n =
        static_cast<std::size_t>(std::stoul(id.substr(1)));
    if (n < c.arg_lock_ids.size() && !c.arg_lock_ids[n].empty())
      return c.arg_lock_ids[n];  // may itself be the caller's placeholder
    return callee.base + "::#param" + std::to_string(n);
  };
  // The externally visible name of a lock id still parametric in function
  // `fn` (no caller resolved it).
  const auto fallback = [&](const FunctionInfo& fn, const std::string& id) {
    return is_placeholder(id) ? fn.base + "::#param" + id.substr(1) : id;
  };

  // Transitive lock sets per function (then folded per base name, matching
  // the over-approximate call resolution): a set closure whose per-edge
  // substitution resolves positional placeholders. Placeholders are
  // function-local: they are substituted whenever a set crosses a call
  // edge, so `$0` of one helper never aliases `$0` of another.
  std::vector<std::set<std::string>> locks(functions_.size());
  for (std::size_t i = 0; i < functions_.size(); ++i)
    for (const LockSite& l : functions_[i].locks) locks[i].insert(l.lock_id);
  locks = dataflow::set_closure(
      graph_, std::move(locks),
      [&](const dataflow::Edge& e, const std::string& id) {
        // A name-only fallback binding to a std-colliding method name is
        // far more likely `v.insert(...)` on a container than a call into
        // the project method; letting its lock set cross the edge invents
        // acquires-while-holding witnesses out of thin air.
        if (e.weak && dataflow::generic_method_name(functions_[e.to].base))
          return std::string();
        return subst(functions_[e.to], functions_[e.from].calls[e.site], id);
      });
  lock_closure_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i)
    for (const std::string& id : locks[i])
      lock_closure_[functions_[i].base].insert(fallback(functions_[i], id));

  // Acquires-while-holding edges: lock L held (within its scope) when lock
  // M is taken directly, or when a call is made whose (transitive) lock set
  // contains M. Edges with a placeholder on either side are parametric —
  // held back as per-function summaries and instantiated at call sites
  // below, where the arguments give the locks their real identities.
  lock_edges_.clear();
  auto suppressed_at = [this](const std::string& path, int line) {
    const auto it = lock_order_ok_.find(path);
    return it != lock_order_ok_.end() && it->second.count(line) != 0;
  };
  struct ParamEdge {
    std::string a, b;   // at least one side is a "$N" placeholder
    std::string via;    // qualified name of the function that takes them
    bool suppressed = false;
  };
  std::vector<std::vector<ParamEdge>> pedges(functions_.size());
  const auto add_edge = [&](const FunctionInfo& owner, std::size_t owner_ix,
                            const std::string& a, const std::string& b,
                            int line, const std::string& detail,
                            bool sup) {
    if (a == b) return;
    if (is_placeholder(a) || is_placeholder(b)) {
      for (const ParamEdge& pe : pedges[owner_ix])
        if (pe.a == a && pe.b == b) return;
      pedges[owner_ix].push_back({a, b, owner.qualified, sup});
      return;
    }
    LockEdgeWitness w;
    w.path = owner.path;
    w.line = line;
    w.function = owner.qualified;
    w.detail = detail;
    w.suppressed = sup;
    lock_edges_[{a, b}].push_back(std::move(w));
  };
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    if (!fn.is_definition) continue;
    for (const LockSite& l : fn.locks) {
      const bool l_ok = suppressed_at(fn.path, l.line);
      for (const LockSite& m : fn.locks) {
        if (m.token <= l.token || m.token >= l.scope_end) continue;
        if (m.lock_id == l.lock_id) continue;
        add_edge(fn, i, l.lock_id, m.lock_id, m.line,
                 "'" + l.lock_id + "' held when '" + m.lock_id +
                     "' is acquired",
                 l_ok || suppressed_at(fn.path, m.line));
      }
      for (const CallSite& c : fn.calls) {
        if (c.token <= l.token || c.token >= l.scope_end) continue;
        std::set<std::string> acquired;
        bool weak = false;
        for (std::size_t k : candidates(fn, c, &weak)) {
          if (weak && dataflow::generic_method_name(functions_[k].base))
            continue;
          for (const std::string& id : locks[k])
            acquired.insert(subst(functions_[k], c, id));
        }
        for (const std::string& id : acquired) {
          if (id == l.lock_id) continue;
          add_edge(fn, i, l.lock_id, id, c.line,
                   "'" + l.lock_id + "' held across call to '" + c.name +
                       "' which (transitively) acquires '" + id + "'",
                   l_ok || suppressed_at(fn.path, c.line));
        }
      }
    }
  }

  // Instantiate parametric summaries at their call sites. A substitution
  // that lands on the caller's own mutex parameter stays parametric and
  // propagates another level; fully concrete edges are emitted with the
  // call site as witness. Unresolvable placeholders keep the per-callee
  // fallback name, so an order violation inside one helper still surfaces.
  // The worklist driver revisits a caller whenever a callee's summary set
  // grows (witness emission is idempotent, so re-running a node is safe).
  dataflow::solve(
      functions_.size(),
      [&](std::size_t i) {
        const FunctionInfo& fn = functions_[i];
        if (!fn.is_definition) return false;
        bool changed = false;
        for (const dataflow::Edge& edge : graph_.out_edges(i)) {
          const CallSite& c = fn.calls[edge.site];
          const std::size_t k = edge.to;
          for (std::size_t e = 0; e < pedges[k].size(); ++e) {
            const ParamEdge pe = pedges[k][e];
            const std::string a = subst(functions_[k], c, pe.a);
            const std::string b = subst(functions_[k], c, pe.b);
            if (a == b) continue;
            const bool sup = pe.suppressed || suppressed_at(fn.path, c.line);
            if (is_placeholder(a) || is_placeholder(b)) {
              bool seen = false;
              for (const ParamEdge& own : pedges[i])
                if (own.a == a && own.b == b) seen = true;
              if (!seen) {
                pedges[i].push_back({a, b, pe.via, sup});
                changed = true;
              }
              continue;
            }
            LockEdgeWitness w;
            w.path = fn.path;
            w.line = c.line;
            w.function = fn.qualified;
            w.detail = "'" + a + "' then '" + b + "' through call to '" +
                       pe.via + "' (mutexes passed by reference)";
            w.suppressed = sup;
            auto& ws = lock_edges_[{a, b}];
            bool dup = false;
            for (const LockEdgeWitness& prev : ws)
              if (prev.function == w.function && prev.line == w.line)
                dup = true;
            if (!dup) ws.push_back(std::move(w));
          }
        }
        return changed;
      },
      [&](std::size_t i) {
        std::vector<std::size_t> deps;
        for (const dataflow::Edge& edge : graph_.in_edges(i))
          deps.push_back(edge.from);
        return deps;
      });

  // ---- Guard analysis (R10/R11) -------------------------------------------
  guard_findings_.clear();

  // Project mutex identities and whether each supports shared mode.
  std::map<std::string, bool> mutex_shared;
  for (const MutexMember& m : mutex_members_) {
    auto [it, ins] = mutex_shared.emplace(m.cls + "::" + m.name, m.shared);
    if (!ins) it->second = it->second || m.shared;
  }

  // Effective lock sites per function: body sites plus RAII handles
  // obtained from returns-lock callees (those live until the call's
  // enclosing scope closes). Persisted: the R13 held-set queries reuse it.
  eff_locks_.assign(functions_.size(), {});
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    eff_locks_[i] = functions_[i].locks;
    if (!functions_[i].is_definition) continue;
    for (const CallSite& c : functions_[i].calls) {
      std::set<std::pair<std::string, bool>> got;
      for (std::size_t k : candidates(functions_[i], c))
        for (const LockContract& r : functions_[k].returns_locks)
          got.emplace(r.lock_id, r.shared);
      for (const auto& [id, sh] : got) {
        LockSite ls;
        ls.lock_id = id;
        ls.shared = sh;
        ls.line = c.line;
        ls.token = c.token;
        ls.scope_end = c.scope_end;
        eff_locks_[i].push_back(std::move(ls));
      }
    }
  }

  // Held sets: lock id -> held in exclusive mode. `top` marks "everything"
  // (the greatest-fixpoint seed for functions whose entry context is still
  // unconstrained).
  using Held = HeldSet;
  const auto add_held = [](Held& h, const std::string& id, bool excl) {
    auto [it, ins] = h.ids.emplace(id, excl);
    if (!ins) it->second = it->second || excl;
  };
  const auto local_held = [&](std::size_t i, std::size_t tok) {
    Held h;
    for (const LockSite& l : eff_locks_[i])
      if (l.token < tok && tok < l.scope_end) add_held(h, l.lock_id, !l.shared);
    return h;
  };
  const auto meet_into = [](Held& dst, const Held& src) {
    if (src.top) return;
    if (dst.top) {
      dst = src;
      return;
    }
    for (auto it = dst.ids.begin(); it != dst.ids.end();) {
      const auto s = src.ids.find(it->first);
      if (s == src.ids.end()) {
        it = dst.ids.erase(it);
      } else {
        it->second = it->second && s->second;
        ++it;
      }
    }
  };

  // Visible call sites per callee, straight off the resolved graph.
  std::vector<std::vector<std::pair<std::size_t, const CallSite*>>> incoming(
      functions_.size());
  for (std::size_t k = 0; k < functions_.size(); ++k)
    for (const dataflow::Edge& e : graph_.in_edges(k))
      incoming[k].push_back({e.from, &functions_[e.from].calls[e.site]});

  // Exempt functions: constructors/destructors, explicit guard-ok bodies,
  // and functions whose every visible call site sits inside an exempt
  // function (single-threaded setup helpers). A call from a lambda body
  // never propagates exemption — the lambda may run on a thread later.
  exempt_.assign(functions_.size(), 0);
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    if (fn.guard_exempt || (!fn.cls.empty() && fn.base == fn.cls))
      exempt_[i] = 1;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (exempt_[i] || incoming[i].empty()) continue;
      bool all_exempt = true, any = false, from_lambda = false;
      for (const auto& [caller, site] : incoming[i]) {
        if (site->in_lambda) {
          from_lambda = true;
          break;
        }
        any = true;
        if (!exempt_[caller]) {
          all_exempt = false;
          break;
        }
      }
      if (!from_lambda && any && all_exempt) {
        exempt_[i] = 1;
        changed = true;
      }
    }
  }

  // Held-at-entry: the locks provably held at EVERY visible non-lambda call
  // site from a non-exempt caller; greatest fixpoint over the call graph so
  // contexts propagate through call chains. Functions with no such site
  // assume nothing at entry.
  const auto requires_of = [&](std::size_t i) {
    Held h;
    for (const LockContract& r : functions_[i].requires_locks)
      add_held(h, r.lock_id, !r.shared);
    return h;
  };
  std::vector<std::vector<std::pair<std::size_t, const CallSite*>>> counted(
      functions_.size());
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (!functions_[i].is_definition || exempt_[i]) continue;
    for (const dataflow::Edge& e : graph_.out_edges(i)) {
      const CallSite& c = functions_[i].calls[e.site];
      if (c.in_lambda) continue;
      counted[e.to].push_back({i, &c});
    }
  }
  entry_.assign(functions_.size(), Held{});
  for (std::size_t i = 0; i < functions_.size(); ++i)
    entry_[i].top = !counted[i].empty();
  const auto full_held = [&](std::size_t i, std::size_t tok) {
    Held h = local_held(i, tok);
    if (entry_[i].top) {
      h.top = true;
      return h;
    }
    for (const auto& [id, ex] : entry_[i].ids) add_held(h, id, ex);
    const Held req = requires_of(i);
    for (const auto& [id, ex] : req.ids) add_held(h, id, ex);
    return h;
  };
  // Greatest fixpoint: entry contexts only ever shrink under the meet, so
  // the chaotic worklist converges from the `top` seed in any order. When a
  // function's entry context changes, its (non-deferred) callees must be
  // revisited — their meets read it through full_held.
  dataflow::solve(
      functions_.size(),
      [&](std::size_t k) {
        if (counted[k].empty()) return false;
        Held nh;
        nh.top = true;
        for (const auto& [i, c] : counted[k])
          meet_into(nh, full_held(i, c->token));
        if (nh.top != entry_[k].top || nh.ids != entry_[k].ids) {
          entry_[k] = std::move(nh);
          return true;
        }
        return false;
      },
      [&](std::size_t k) {
        std::vector<std::size_t> deps;
        for (const dataflow::Edge& e : graph_.out_edges(k))
          if (!functions_[k].calls[e.site].in_lambda) deps.push_back(e.to);
        return deps;
      });

  if (std::getenv("GPTC_LINT_DEBUG_GUARD") != nullptr) {
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (!functions_[i].is_definition) continue;
      std::fprintf(stderr, "fn %s exempt=%d entry.top=%d entry={",
                   functions_[i].qualified.c_str(), int(exempt_[i]),
                   int(entry_[i].top));
      for (const auto& [id, ex] : entry_[i].ids)
        std::fprintf(stderr, "%s%s ", id.c_str(), ex ? "!" : "~");
      std::fprintf(stderr, "} counted=%zu\n", counted[i].size());
    }
  }

  const auto guard_of = [&](const std::string& cls,
                            const std::string& member) -> const std::string* {
    const auto ci = guarded_by_.find(cls);
    if (ci == guarded_by_.end()) return nullptr;
    const auto mi = ci->second.find(member);
    return mi == ci->second.end() ? nullptr : &mi->second;
  };
  const auto excluded_member = [&](const std::string& cls,
                                   const std::string& member) {
    const auto ci = member_type_ids_.find(cls);
    if (ci == member_type_ids_.end()) return true;
    const auto mi = ci->second.find(member);
    if (mi == ci->second.end()) return true;
    for (const std::string& id : mi->second)
      if (guard_exempt_type_id(id)) return true;
    return false;
  };
  const auto line_ok = [&](const std::string& path, int line) {
    const auto it = guard_ok_.find(path);
    return it != guard_ok_.end() && it->second.count(line) != 0;
  };
  std::set<std::tuple<std::string, int, std::string, std::string>> emitted;
  const auto emit = [&](const std::string& path, int line, const char* rule,
                        std::string msg) {
    if (emitted.emplace(path, line, rule, msg).second)
      guard_findings_.push_back({path, line, rule, std::move(msg)});
  };

  // Per-access checks (annotated members) and evidence collection for
  // inference (unannotated ones). Accesses inside lambda bodies only trust
  // locks whose scope textually contains them — the lambda runs later.
  struct InferAcc {
    Held held;
    bool write = false;
    std::string path;
    int line = 0;
  };
  std::map<std::string, std::vector<InferAcc>> infer;
  std::map<std::string, std::string> infer_cls;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    if (!fn.is_definition || exempt_[i]) continue;
    for (const MemberAccess& a : fn.accesses) {
      std::vector<std::tuple<std::string, std::string, bool>> links;
      std::string type;
      if (a.root_is_var) {
        type = a.root_type;
      } else {
        if (fn.cls.empty() || !has_member(fn.cls, a.root)) continue;
        links.emplace_back(fn.cls, a.root, a.segments.empty() && a.is_write);
        type = member_type_of(fn.cls, a.root);
      }
      for (std::size_t si = 0; si < a.segments.size(); ++si) {
        if (type.empty() || type == "!" || !has_member(type, a.segments[si]))
          break;
        const bool last = si + 1 == a.segments.size();
        links.emplace_back(type, a.segments[si], last && a.is_write);
        type = member_type_of(type, a.segments[si]);
      }
      if (links.empty() || line_ok(fn.path, a.line)) continue;
      const Held held =
          a.in_lambda ? local_held(i, a.token) : full_held(i, a.token);
      for (const auto& [cls, member, wr] : links) {
        const std::string key = cls + "::" + member;
        if (member_guard_ok_.count(key) != 0 || excluded_member(cls, member))
          continue;
        if (const std::string* g = guard_of(cls, member)) {
          if (held.top) continue;
          const auto hit = held.ids.find(*g);
          if (hit == held.ids.end()) {
            emit(fn.path, a.line, "R10",
                 "'" + key + "' " + (wr ? "written" : "read") +
                     " without holding its guard '" + *g + "' (in " +
                     fn.qualified + ")");
          } else if (wr && !hit->second) {
            const auto ms = mutex_shared.find(*g);
            if (ms != mutex_shared.end() && ms->second)
              emit(fn.path, a.line, "R11",
                   "'" + key + "' written while its guard '" + *g +
                       "' is held only in shared mode (in " + fn.qualified +
                       ")");
          }
        } else {
          infer_cls.emplace(key, cls);
          infer[key].push_back({held, wr, fn.path, a.line});
        }
      }
    }
  }

  // Inference: an unannotated member whose every visible access holds the
  // same project mutex is bound to it. By construction this can only add
  // R11 evidence (a write where that mutex is held merely shared) — it can
  // never invent an R10.
  for (const auto& [key, accs] : infer) {
    const std::string& cls = infer_cls[key];
    Held inter = accs.front().held;
    for (std::size_t n = 1; n < accs.size(); ++n) meet_into(inter, accs[n].held);
    if (inter.top) continue;
    std::string g;
    const std::string own_prefix = cls + "::";
    for (const auto& [id, ex] : inter.ids) {
      if (mutex_shared.count(id) == 0) continue;
      if (id.compare(0, own_prefix.size(), own_prefix) == 0) {
        g = id;
        break;
      }
      if (g.empty()) g = id;
    }
    if (g.empty() || !mutex_shared[g]) continue;
    for (const InferAcc& acc : accs) {
      if (!acc.write) continue;
      const auto hit = acc.held.ids.find(g);
      if (hit != acc.held.ids.end() && !hit->second)
        emit(acc.path, acc.line, "R11",
             "'" + key + "' written while '" + g +
                 "' (its inferred guard) is held only in shared mode");
    }
  }

  // Calls into requires-lock functions: the contract must hold at the call
  // site. Calls from lambda bodies are skipped (deferred execution).
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    if (!fn.is_definition || exempt_[i]) continue;
    for (const CallSite& c : fn.calls) {
      if (c.in_lambda) continue;
      std::set<std::pair<std::string, bool>> contracts;
      for (std::size_t k : candidates(fn, c))
        for (const LockContract& r : functions_[k].requires_locks)
          contracts.emplace(r.lock_id, r.shared);
      if (contracts.empty() || line_ok(fn.path, c.line)) continue;
      const Held held = full_held(i, c.token);
      if (held.top) continue;
      for (const auto& [id, shared_ok] : contracts) {
        const auto hit = held.ids.find(id);
        if (hit == held.ids.end()) {
          emit(fn.path, c.line, "R10",
               "call to '" + c.name + "' requires '" + id +
                   "' which is not held (in " + fn.qualified + ")");
        } else if (!shared_ok && !hit->second) {
          emit(fn.path, c.line, "R11",
               "call to '" + c.name + "' requires '" + id +
                   "' in exclusive mode but it is held only shared (in " +
                   fn.qualified + ")");
        }
      }
    }
  }

  std::sort(guard_findings_.begin(), guard_findings_.end(),
            [](const GuardFinding& x, const GuardFinding& y) {
              return std::tie(x.path, x.line, x.rule, x.message) <
                     std::tie(y.path, y.line, y.rule, y.message);
            });
}

std::set<std::string> ProjectIndex::declared_guards() const {
  std::set<std::string> out;
  for (const auto& [cls, members] : guarded_by_)
    for (const auto& [member, id] : members) out.insert(id);
  return out;
}

std::set<std::string> ProjectIndex::held_exclusive_at(std::size_t fn,
                                                      std::size_t tok,
                                                      bool local_only) const {
  std::set<std::string> out;
  if (fn >= eff_locks_.size()) return out;
  for (const LockSite& l : eff_locks_[fn])
    if (l.token < tok && tok < l.scope_end && !l.shared) out.insert(l.lock_id);
  if (local_only) return out;
  if (fn < entry_.size() && !entry_[fn].top)
    for (const auto& [id, ex] : entry_[fn].ids)
      if (ex) out.insert(id);
  for (const LockContract& r : functions_[fn].requires_locks)
    if (!r.shared) out.insert(r.lock_id);
  return out;
}

std::string ProjectIndex::innermost_held_at(std::size_t fn,
                                            std::size_t tok) const {
  if (fn >= eff_locks_.size()) return "";
  std::size_t best_tok = 0;
  std::string best;
  for (const LockSite& l : eff_locks_[fn])
    if (l.token < tok && tok < l.scope_end && l.token >= best_tok) {
      best_tok = l.token;
      best = l.lock_id;
    }
  return best;
}

const std::vector<std::string>* ProjectIndex::member_decl_type_ids(
    const std::string& cls, const std::string& member) const {
  const auto ci = member_type_ids_.find(cls);
  if (ci == member_type_ids_.end()) return nullptr;
  const auto mi = ci->second.find(member);
  return mi == ci->second.end() ? nullptr : &mi->second;
}

bool ProjectIndex::blocking_ok_at(const std::string& path, int line) const {
  const auto it = blocking_ok_.find(path);
  return it != blocking_ok_.end() && it->second.count(line) != 0;
}

bool ProjectIndex::taint_ok_at(const std::string& path, int line) const {
  const auto it = taint_ok_.find(path);
  return it != taint_ok_.end() && it->second.count(line) != 0;
}

}  // namespace gptc::lint
