#include "project_index.hpp"

#include <algorithm>
#include <filesystem>

namespace gptc::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_id(const Token& t, std::string_view s) {
  return t.kind == TokKind::Identifier && t.text == s;
}

bool is_p(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

bool is_expr_keyword(std::string_view s) {
  static const std::set<std::string_view> kw = {
      "return", "co_return", "co_yield", "co_await", "throw", "case",
      "else",   "do",        "goto",     "new",      "delete", "sizeof",
      "alignof", "typeid",   "not",      "and",      "or",     "xor",
      "if",     "while",     "for",      "switch",   "catch",  "constexpr",
      "static_assert",
  };
  return kw.count(s) != 0;
}

bool is_cv_ref(const Token& t) {
  return is_id(t, "const") || is_id(t, "volatile") || is_p(t, "&") ||
         is_p(t, "*") || is_p(t, "&&");
}

std::size_t find_matching(const Tokens& t, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_p(t[i], open_text)) ++depth;
    else if (is_p(t[i], close_text)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return t.size();
}

const std::set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string_view> kMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex"};

const std::set<std::string_view> kLockWrappers = {
    "lock_guard", "unique_lock", "shared_lock", "scoped_lock"};

}  // namespace

/// All the pass-1 extraction for one file; owns the transient state (class
/// stack, brace matching) the walk needs.
class IndexBuilder {
 public:
  IndexBuilder(ProjectIndex& index, const ScannedFile& file)
      : ix_(index), f_(file), t_(file.tokens) {
    stem_ = std::filesystem::path(file.path).stem().string();
  }

  void run() {
    record_directives();
    std::vector<std::pair<std::string, std::size_t>> class_stack;
    for (std::size_t i = 0; i < t_.size(); ++i) {
      while (!class_stack.empty() && i >= class_stack.back().second)
        class_stack.pop_back();
      if ((is_id(t_[i], "class") || is_id(t_[i], "struct")) &&
          (i == 0 || !is_id(t_[i - 1], "enum"))) {
        if (std::size_t body = enter_class(i, class_stack); body != 0) {
          // Keep walking *into* the body (member functions are defined
          // there); members themselves were extracted by enter_class.
          i = body;  // position on '{'; loop advances past it
          continue;
        }
      }
      if (is_p(t_[i], "(")) {
        const std::string cls =
            class_stack.empty() ? std::string() : class_stack.back().first;
        try_function(i, cls);
      }
    }
  }

 private:
  /// Copies the file's `lock-order-ok` directives into the index (R7 needs
  /// them at finalize time, when the per-file directive list is gone).
  void record_directives() {
    for (const Directive& d : f_.directives) {
      if (d.name == "lock-order-ok") {
        ix_.lock_order_ok_[f_.path].insert(d.line);
        ix_.lock_order_ok_[f_.path].insert(d.line + 1);
      }
    }
  }

  /// Handles `class`/`struct` at `i`. Returns the body-'{' index when a
  /// definition was entered (class recorded, members extracted), 0 when it
  /// was a forward declaration or unrecognized.
  std::size_t enter_class(
      std::size_t i,
      std::vector<std::pair<std::string, std::size_t>>& class_stack) {
    if (i + 1 >= t_.size() || t_[i + 1].kind != TokKind::Identifier) return 0;
    const std::string name = t_[i + 1].text;
    // Find the body '{' or the ';' of a forward declaration. A base-clause
    // may contain template args but never braces or semicolons.
    for (std::size_t j = i + 2; j < t_.size(); ++j) {
      if (is_p(t_[j], ";")) {
        ix_.classes_.insert(name);
        return 0;
      }
      if (is_p(t_[j], "(") || is_p(t_[j], ")") || is_p(t_[j], "=")) return 0;
      if (is_p(t_[j], "{")) {
        ix_.classes_.insert(name);
        const std::size_t close = find_matching(t_, j, "{", "}");
        class_stack.emplace_back(name, close);
        extract_members(name, j + 1, close);
        return j;
      }
    }
    return 0;
  }

  /// Scans a class body's top level (nested braces skipped) for data-member
  /// declarations, recording unordered containers, mutexes, std::thread
  /// containers, and every member's type identifiers.
  void extract_members(const std::string& cls, std::size_t begin,
                       std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
      // One declaration run: up to the next top-level ';'. Brace/paren
      // regions (inline method bodies, default member initializers) are
      // skipped whole.
      std::size_t run_begin = i;
      std::size_t j = i;
      bool has_paren_after_ident = false;
      std::size_t last_ident = t_.size();
      while (j < end) {
        if (is_p(t_[j], "{")) {
          j = find_matching(t_, j, "{", "}");
          if (j >= end) return;
          // An inline method body ends the declaration without ';'.
          has_paren_after_ident = true;  // treat as non-member
          break;
        }
        if (is_p(t_[j], "(")) {
          if (j > run_begin && t_[j - 1].kind == TokKind::Identifier)
            has_paren_after_ident = true;
          j = find_matching(t_, j, "(", ")");
          if (j >= end) return;
        } else if (is_p(t_[j], ";")) {
          break;
        } else if (t_[j].kind == TokKind::Identifier) {
          last_ident = j;
        }
        ++j;
      }
      if (!has_paren_after_ident && last_ident < t_.size() &&
          last_ident > run_begin) {
        // Member variable: `<type tokens> name ;` or `... name = init ;`.
        // The declarator name is the identifier right before the first
        // top-level '=' (if any), else the last identifier of the run.
        std::size_t name_tok = last_ident;
        for (std::size_t k = run_begin; k < j; ++k) {
          if (is_p(t_[k], "=")) {
            name_tok = t_.size();
            for (std::size_t m = run_begin; m < k; ++m)
              if (t_[m].kind == TokKind::Identifier) name_tok = m;
            break;
          }
          if (is_p(t_[k], "<")) k = find_matching(t_, k, "<", ">");
        }
        if (name_tok < t_.size()) record_member(cls, run_begin, name_tok);
      }
      i = j + 1;
    }
  }

  void record_member(const std::string& cls, std::size_t type_begin,
                     std::size_t name_tok) {
    const std::string& name = t_[name_tok].text;
    std::vector<std::string> type_ids;
    bool is_unordered = false, is_mutex = false, is_thread = false;
    std::string container;
    for (std::size_t k = type_begin; k < name_tok; ++k) {
      if (t_[k].kind != TokKind::Identifier) continue;
      const std::string& s = t_[k].text;
      if (s == "static" || s == "mutable" || s == "const" || s == "inline")
        continue;
      type_ids.push_back(s);
      if (kUnorderedContainers.count(s) != 0) {
        is_unordered = true;
        container = s;
      }
      if (kMutexTypes.count(s) != 0) is_mutex = true;
      if (s == "thread" || s == "jthread") is_thread = true;
    }
    if (type_ids.empty()) return;
    ix_.member_type_ids_[cls][name] = type_ids;
    if (is_unordered)
      ix_.unordered_members_.push_back(
          {cls, name, container, f_.path, t_[name_tok].line});
    if (is_mutex)
      ix_.mutex_members_.push_back({cls, name, f_.path, t_[name_tok].line});
    if (is_thread) ix_.thread_members_.insert(name);
  }

  // --- function extraction -------------------------------------------------

  /// Parses the qualified name chain ending just before the '(' at `paren`.
  /// Returns false when the tokens before it cannot name a function.
  bool parse_name(std::size_t paren, std::string& qualified, std::string& base,
                  std::string& cls_out, std::size_t& chain_begin) {
    if (paren == 0 || t_[paren - 1].kind != TokKind::Identifier) return false;
    std::vector<std::string> parts = {t_[paren - 1].text};
    std::size_t k = paren - 1;
    bool dtor = false;
    if (k >= 1 && is_p(t_[k - 1], "~")) {
      dtor = true;
      --k;
    }
    while (k >= 2 && is_p(t_[k - 1], "::") &&
           t_[k - 2].kind == TokKind::Identifier) {
      parts.insert(parts.begin(), t_[k - 2].text);
      k -= 2;
    }
    base = parts.back();
    if (is_expr_keyword(base) || base == "operator") return false;
    qualified.clear();
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (p != 0) qualified += "::";
      if (p + 1 == parts.size() && dtor) qualified += "~";
      qualified += parts[p];
    }
    cls_out = parts.size() >= 2 ? parts[parts.size() - 2] : std::string();
    chain_begin = k;
    return true;
  }

  /// Attempts to recognize the '(' at `i` as a function definition or
  /// declaration; records it (with full body analysis for definitions).
  void try_function(std::size_t i, const std::string& enclosing_cls) {
    std::string qualified, base, name_cls;
    std::size_t chain_begin = 0;
    if (!parse_name(i, qualified, base, name_cls, chain_begin)) return;
    const std::size_t close = find_matching(t_, i, "(", ")");
    if (close >= t_.size()) return;

    // Qualifiers between the parameter list and the body/terminator.
    bool marked_noexcept = false;
    std::size_t j = close + 1;
    bool is_def = false;
    while (j < t_.size()) {
      if (is_id(t_[j], "const") || is_id(t_[j], "override") ||
          is_id(t_[j], "final") || is_id(t_[j], "mutable") ||
          is_p(t_[j], "&") || is_p(t_[j], "&&")) {
        ++j;
      } else if (is_id(t_[j], "noexcept")) {
        marked_noexcept = true;
        ++j;
        if (j < t_.size() && is_p(t_[j], "("))
          j = find_matching(t_, j, "(", ")") + 1;
      } else if (is_p(t_[j], "->")) {
        // Trailing return type: scan to the body '{' or a ';'.
        ++j;
        int pdepth = 0;
        while (j < t_.size()) {
          if (is_p(t_[j], "(")) ++pdepth;
          else if (is_p(t_[j], ")")) --pdepth;
          else if (pdepth == 0 && (is_p(t_[j], "{") || is_p(t_[j], ";")))
            break;
          ++j;
        }
      } else if (is_p(t_[j], ":")) {
        // Constructor init list: `name (args)` / `name {args}` entries.
        ++j;
        while (j < t_.size()) {
          if (t_[j].kind == TokKind::Identifier) {
            ++j;
            while (j < t_.size() && (is_p(t_[j], "::") || is_p(t_[j], "<"))) {
              if (is_p(t_[j], "<")) j = find_matching(t_, j, "<", ">") + 1;
              else j += 2;  // ':: ident'
            }
            if (j < t_.size() && is_p(t_[j], "("))
              j = find_matching(t_, j, "(", ")") + 1;
            else if (j < t_.size() && is_p(t_[j], "{"))
              j = find_matching(t_, j, "{", "}") + 1;
            if (j < t_.size() && is_p(t_[j], ",")) {
              ++j;
              continue;
            }
          }
          break;
        }
        if (j < t_.size() && is_p(t_[j], "{")) is_def = true;
        break;
      } else if (is_p(t_[j], "{")) {
        is_def = true;
        break;
      } else if (is_p(t_[j], ";")) {
        break;
      } else {
        return;  // ',' (declarator list), '=', operators: not a function
      }
    }
    if (j >= t_.size()) return;

    const bool qualified_chain = qualified.find("::") != std::string::npos;
    const bool ctor_dtor = !enclosing_cls.empty() &&
                           (base == enclosing_cls || qualified[0] == '~');
    if (!qualified_chain && !ctor_dtor) {
      // Require a type token before the name: separates declarations and
      // definitions from plain call statements (`sync_parent_dir(dir_);`).
      if (chain_begin == 0) {
        if (!is_def) return;
      } else {
        const Token& before = t_[chain_begin - 1];
        const bool typed =
            (before.kind == TokKind::Identifier &&
             !is_expr_keyword(before.text)) ||
            is_p(before, ">") || is_p(before, "*") || is_p(before, "&");
        if (!typed) return;
      }
    }

    FunctionInfo fn;
    fn.base = base;
    fn.cls = !name_cls.empty()
                 ? name_cls
                 : (!enclosing_cls.empty() ? enclosing_cls : std::string());
    fn.qualified = (!name_cls.empty() || enclosing_cls.empty())
                       ? qualified
                       : enclosing_cls + "::" + qualified;
    fn.path = f_.path;
    fn.line = t_[i].line;
    fn.is_noexcept = marked_noexcept;
    fn.is_definition = is_def;
    if (is_def) {
      fn.body_begin = j;
      fn.body_end = find_matching(t_, j, "{", "}");
      if (fn.body_end >= t_.size()) return;
      analyze_body(fn, i, close);
    }
    ix_.functions_.push_back(std::move(fn));
  }

  /// Parses `(params)` into an ordered (name, type) list — type is the last
  /// type identifier before the parameter name. Unrecognized parameters keep
  /// their slot as ("", "") so positions line up with call-site arguments.
  std::vector<std::pair<std::string, std::string>> parse_params(
      std::size_t open, std::size_t close) {
    std::vector<std::pair<std::string, std::string>> params;
    std::size_t start = open + 1;
    int depth = 0;
    for (std::size_t j = open + 1; j <= close; ++j) {
      if (is_p(t_[j], "(") || is_p(t_[j], "<") || is_p(t_[j], "[")) ++depth;
      else if (is_p(t_[j], ")") || is_p(t_[j], ">") || is_p(t_[j], "]"))
        --depth;
      if ((j == close && depth < 0) || (depth == 0 && is_p(t_[j], ","))) {
        if (j == start) {
          start = j + 1;
          continue;  // empty list `()`
        }
        // One parameter in [start, j): name = last identifier, type = last
        // identifier before the name (skipping cv/ref tokens).
        std::size_t name_tok = t_.size(), type_tok = t_.size();
        std::size_t eq = j;
        for (std::size_t k = start; k < j; ++k)
          if (is_p(t_[k], "=")) {
            eq = k;
            break;
          }
        for (std::size_t k = start; k < eq; ++k)
          if (t_[k].kind == TokKind::Identifier) {
            type_tok = name_tok;
            name_tok = k;
          }
        if (name_tok < t_.size() && type_tok < t_.size())
          params.emplace_back(t_[name_tok].text, t_[type_tok].text);
        else
          params.emplace_back("", "");
        start = j + 1;
      }
    }
    return params;
  }

  /// Walks backwards from `tok` (an identifier) over a `a.b->c` chain;
  /// fills root/segments (segments exclude both root and the identifier at
  /// `tok`). Returns false for non-chain owners (call results, parens).
  bool walk_chain(std::size_t tok, std::string& root,
                  std::vector<std::string>& segments) {
    std::vector<std::string> rev;
    std::size_t k = tok;
    while (k >= 2 && (is_p(t_[k - 1], ".") || is_p(t_[k - 1], "->"))) {
      if (t_[k - 2].kind != TokKind::Identifier) return false;
      rev.push_back(t_[k - 2].text);
      k -= 2;
    }
    if (rev.empty()) return true;  // bare identifier: no owner chain
    root = rev.back();
    segments.assign(rev.rbegin() + 1, rev.rend());
    return true;
  }

  void analyze_body(FunctionInfo& fn, std::size_t params_open,
                    std::size_t params_close) {
    const std::size_t begin = fn.body_begin, end = fn.body_end;
    const auto params = parse_params(params_open, params_close);
    std::map<std::string, std::string> var_types;
    for (std::size_t p = 0; p < params.size(); ++p) {
      if (params[p].first.empty()) continue;
      var_types.emplace(params[p].first, params[p].second);
      if (kMutexTypes.count(params[p].second) != 0)
        fn.mutex_params.emplace(params[p].first, p);
    }

    // Local declarations: `Type [cv/ref] name (=|;|(|{)`.
    for (std::size_t j = begin + 1; j + 1 < end; ++j) {
      if (t_[j].kind != TokKind::Identifier || is_expr_keyword(t_[j].text))
        continue;
      const std::string& ty = t_[j].text;
      if (ty == "auto") continue;  // unresolvable, leave unknown
      std::size_t k = j + 1;
      while (k < end && is_cv_ref(t_[k])) ++k;
      if (k < end && t_[k].kind == TokKind::Identifier && k + 1 < end &&
          (is_p(t_[k + 1], "=") || is_p(t_[k + 1], ";") ||
           is_p(t_[k + 1], "(") || is_p(t_[k + 1], "{"))) {
        var_types.emplace(t_[k].text, ty);
      }
    }

    // Scope stack for lock lifetimes.
    std::vector<std::size_t> scope_close;
    auto enclosing_close = [&](void) -> std::size_t {
      return scope_close.empty() ? end : scope_close.back();
    };

    for (std::size_t j = begin + 1; j < end; ++j) {
      const Token& tok = t_[j];
      if (is_p(tok, "{")) {
        scope_close.push_back(find_matching(t_, j, "{", "}"));
        continue;
      }
      while (!scope_close.empty() && j >= scope_close.back())
        scope_close.pop_back();
      if (tok.kind != TokKind::Identifier) continue;
      const std::string& s = tok.text;

      // Lock wrapper: lock_guard/unique_lock/shared_lock/scoped_lock.
      if (kLockWrappers.count(s) != 0) {
        std::size_t k = j + 1;
        if (k < end && is_p(t_[k], "<")) k = find_matching(t_, k, "<", ">") + 1;
        if (k < end && t_[k].kind == TokKind::Identifier) ++k;  // var name
        if (k < end && is_p(t_[k], "(")) {
          const std::size_t args_close = find_matching(t_, k, "(", ")");
          // scoped_lock with several mutexes acquires atomically
          // (deadlock-free): skip. Detect a top-level ','.
          int depth = 0;
          bool multi = false;
          std::size_t arg_end = args_close;
          for (std::size_t m = k + 1; m < args_close; ++m) {
            if (is_p(t_[m], "(")) ++depth;
            else if (is_p(t_[m], ")")) --depth;
            else if (depth == 0 && is_p(t_[m], ",")) {
              multi = true;
              arg_end = m;
              break;
            }
          }
          if (!(multi && s == "scoped_lock")) {
            record_lock(fn, var_types, k + 1, arg_end, tok.line, j,
                        enclosing_close());
          }
          j = args_close;
          continue;
        }
      }

      // Manual `m.lock()` / `m.lock_shared()`.
      if ((s == "lock" || s == "lock_shared") && j >= 2 &&
          (is_p(t_[j - 1], ".") || is_p(t_[j - 1], "->")) &&
          j + 2 < end && is_p(t_[j + 1], "(") && is_p(t_[j + 2], ")")) {
        // Owner chain ends at j-2; reuse record_lock over [chain_begin, j-1).
        std::size_t cb = j - 2;
        while (cb >= 2 && (is_p(t_[cb - 1], ".") || is_p(t_[cb - 1], "->")) &&
               t_[cb - 2].kind == TokKind::Identifier)
          cb -= 2;
        record_lock(fn, var_types, cb, j - 1, tok.line, j, enclosing_close());
        j += 2;
        continue;
      }

      // Durability markers and file-creation sites.
      const bool called = j + 1 < end && is_p(t_[j + 1], "(");
      if (called &&
          (s == "fsync" || s == "fdatasync" || s == "sync_parent_dir"))
        fn.contains_sync = true;
      if (called && s == "open") {
        const std::size_t close = find_matching(t_, j + 1, "(", ")");
        for (std::size_t m = j + 2; m < close; ++m)
          if (is_id(t_[m], "O_CREAT")) {
            fn.creates.push_back({"open(O_CREAT)", tok.line});
            break;
          }
      }
      if (called && s == "rename")
        fn.creates.push_back({"rename", tok.line});
      if (called && s == "create_directories")
        fn.creates.push_back({"create_directories", tok.line});

      // try blocks and catch-all handlers.
      if (s == "try" && j + 1 < end && is_p(t_[j + 1], "{")) {
        TryRange tr;
        tr.begin = j + 1;
        tr.end = find_matching(t_, j + 1, "{", "}");
        std::size_t k = tr.end + 1;
        while (k + 1 < end && is_id(t_[k], "catch") && is_p(t_[k + 1], "(")) {
          const std::size_t cc = find_matching(t_, k + 1, "(", ")");
          if (cc == k + 3 && is_p(t_[k + 2], "...")) tr.catch_all = true;
          if (cc + 1 < end && is_p(t_[cc + 1], "{"))
            k = find_matching(t_, cc + 1, "{", "}") + 1;
          else
            break;
        }
        if (tr.catch_all) fn.has_catch_all = true;
        fn.tries.push_back(tr);
        // Do NOT skip the block: calls/locks inside it still matter.
        continue;
      }

      // Generic call sites.
      if (called && !is_expr_keyword(s) && kLockWrappers.count(s) == 0) {
        CallSite c;
        c.name = s;
        c.line = tok.line;
        c.token = j;
        c.member_call = j >= 1 && (is_p(t_[j - 1], ".") || is_p(t_[j - 1], "->"));
        if (c.member_call) {
          std::string root;
          std::vector<std::string> segs;
          if (walk_chain(j, root, segs) && !root.empty()) {
            c.owner_root = root;
            c.owner_segments = std::move(segs);
            if (root == "this") {
              c.owner_root = "";
              c.owner_root_type = fn.cls.empty() ? "!" : fn.cls;
            } else if (auto it = var_types.find(root); it != var_types.end()) {
              c.owner_root_type = it->second;
            }
          }
        }
        // Argument lock identities, position-aligned: if the callee locks a
        // mutex parameter ($N), finalize() substitutes arg_lock_ids[N].
        const std::size_t args_close = find_matching(t_, j + 1, "(", ")");
        if (args_close < end && args_close > j + 2) {
          std::size_t arg_begin = j + 2;
          int adepth = 0;
          for (std::size_t m = j + 2; m <= args_close; ++m) {
            if (is_p(t_[m], "(") || is_p(t_[m], "[") || is_p(t_[m], "{"))
              ++adepth;
            else if (is_p(t_[m], ")") || is_p(t_[m], "]") || is_p(t_[m], "}"))
              --adepth;
            if ((m == args_close && adepth < 0) ||
                (adepth == 0 && is_p(t_[m], ","))) {
              c.arg_lock_ids.push_back(
                  lock_expr_id(fn, var_types, arg_begin, m));
              arg_begin = m + 1;
            }
          }
        }
        fn.calls.push_back(std::move(c));
      }
    }
  }

  /// Normalizes the mutex expression spanning [expr_begin, expr_end) to a
  /// lock identity: "$N" for a bare mutex-typed parameter (position N),
  /// "Class::member" otherwise. Returns "" for unrecognizable expressions.
  std::string lock_expr_id(const FunctionInfo& fn,
                           const std::map<std::string, std::string>& var_types,
                           std::size_t expr_begin, std::size_t expr_end) {
    // Strip leading dereference/address-of tokens.
    std::size_t b = expr_begin;
    while (b < expr_end && (is_p(t_[b], "*") || is_p(t_[b], "&"))) ++b;
    std::vector<std::string> segments;
    for (std::size_t k = b; k < expr_end; ++k) {
      if (t_[k].kind == TokKind::Identifier) {
        if (t_[k].text == "this") continue;
        segments.push_back(t_[k].text);
      } else if (!is_p(t_[k], ".") && !is_p(t_[k], "->") &&
                 !is_p(t_[k], "(") && !is_p(t_[k], ")") && !is_p(t_[k], "*")) {
        return "";  // complex expression: not a recognizable mutex chain
      }
    }
    if (segments.empty()) return "";
    const std::string& member = segments.back();
    std::string owner_cls;
    if (segments.size() == 1) {
      // A mutex received by reference is not this function's lock: its
      // identity belongs to whoever passed it. Emit a positional
      // placeholder for finalize() to substitute per call site.
      if (const auto it = fn.mutex_params.find(member);
          it != fn.mutex_params.end())
        return "$" + std::to_string(it->second);
      // Bare member (or a local mutex). If the enclosing class is known,
      // qualify with it; a local mutex in a member function is rare enough
      // that the over-approximation is acceptable.
      owner_cls = fn.cls;
    } else {
      const std::string& root = segments.front();
      if (auto it = var_types.find(root); it != var_types.end())
        owner_cls = it->second;
    }
    return (owner_cls.empty() ? stem_ : owner_cls) + "::" + member;
  }

  /// Records one lock acquisition whose mutex expression spans tokens
  /// [expr_begin, expr_end).
  void record_lock(FunctionInfo& fn,
                   const std::map<std::string, std::string>& var_types,
                   std::size_t expr_begin, std::size_t expr_end, int line,
                   std::size_t site_tok, std::size_t scope_end) {
    const std::string id = lock_expr_id(fn, var_types, expr_begin, expr_end);
    if (id.empty()) return;
    LockSite ls;
    ls.lock_id = id;
    ls.line = line;
    ls.token = site_tok;
    ls.scope_end = scope_end;
    fn.locks.push_back(std::move(ls));
  }

  ProjectIndex& ix_;
  const ScannedFile& f_;
  const Tokens& t_;
  std::string stem_;
};

void ProjectIndex::add_file(const ScannedFile& file) {
  IndexBuilder(*this, file).run();
}

std::vector<const FunctionInfo*> ProjectIndex::functions_in(
    const std::string& path) const {
  std::vector<const FunctionInfo*> out;
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return out;
  for (std::size_t i : it->second) out.push_back(&functions_[i]);
  return out;
}

std::vector<const FunctionInfo*> ProjectIndex::functions_named(
    const std::string& base) const {
  std::vector<const FunctionInfo*> out;
  const auto it = by_base_.find(base);
  if (it == by_base_.end()) return out;
  for (std::size_t i : it->second) out.push_back(&functions_[i]);
  return out;
}

bool ProjectIndex::is_noexcept(const std::string& qualified) const {
  for (const FunctionInfo& fn : functions_)
    if (fn.qualified == qualified && fn.is_noexcept) return true;
  return false;
}

bool ProjectIndex::has_catch_all(const std::string& qualified) const {
  for (const FunctionInfo& fn : functions_)
    if (fn.qualified == qualified && fn.has_catch_all) return true;
  return false;
}

bool ProjectIndex::reaches_sync(const std::string& base) const {
  return sync_reaching_.count(base) != 0;
}

std::set<std::string> ProjectIndex::locks_of(const std::string& base) const {
  const auto it = lock_closure_.find(base);
  return it == lock_closure_.end() ? std::set<std::string>() : it->second;
}

void ProjectIndex::finalize() {
  // Resolve member types against the complete class list.
  member_types_.clear();
  for (const auto& [cls, members] : member_type_ids_) {
    for (const auto& [name, ids] : members) {
      std::string resolved = "!";
      for (const std::string& id : ids)
        if (classes_.count(id) != 0) resolved = id;
      member_types_[cls][name] = resolved;
    }
  }

  by_base_.clear();
  by_path_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    by_base_[functions_[i].base].push_back(i);
    by_path_[functions_[i].path].push_back(i);
  }

  // Candidate definitions for a call site. Member calls with a fully
  // resolved owner chain bind to that class only (so `shards_.find(...)` on
  // a std::map member resolves to nothing, not to Collection::find); calls
  // with unresolvable owners fall back to every same-named definition.
  auto candidates = [this](const FunctionInfo& fn,
                           const CallSite& c) -> std::vector<std::size_t> {
    std::vector<std::size_t> out;
    const auto it = by_base_.find(c.name);
    if (it == by_base_.end()) return out;
    std::string type;
    bool resolved = false;
    if (c.member_call) {
      type = c.owner_root_type;
      if (type.empty() && !c.owner_root.empty()) {
        // Maybe a data member of the enclosing class.
        const auto ci = member_types_.find(fn.cls);
        if (ci != member_types_.end()) {
          const auto mi = ci->second.find(c.owner_root);
          if (mi != ci->second.end()) type = mi->second;
        }
      }
      if (!type.empty()) {
        resolved = true;
        for (const std::string& seg : c.owner_segments) {
          if (type == "!" || classes_.count(type) == 0) {
            type = "!";
            break;
          }
          const auto ci = member_types_.find(type);
          std::string next = "!";
          if (ci != member_types_.end()) {
            const auto mi = ci->second.find(seg);
            if (mi != ci->second.end()) next = mi->second;
          }
          type = next;
        }
        // A type name we know but that is not a project class (std::string,
        // std::map, ...) binds to nothing — falling back to every same-named
        // definition here would invent call edges like `text.find(...)` ->
        // Collection::find and, from them, false lock-order cycles.
        if (classes_.count(type) == 0) type = "!";
      }
    }
    for (std::size_t i : it->second) {
      if (!functions_[i].is_definition) continue;
      if (c.member_call && resolved) {
        if (type == "!" || functions_[i].cls != type) continue;
      }
      out.push_back(i);
    }
    return out;
  };

  // Fixpoint 1: functions that transitively reach a durability call.
  std::vector<char> reach(functions_.size(), 0);
  for (std::size_t i = 0; i < functions_.size(); ++i)
    reach[i] = functions_[i].contains_sync ? 1 : 0;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (reach[i] || !functions_[i].is_definition) continue;
      for (const CallSite& c : functions_[i].calls) {
        for (std::size_t k : candidates(functions_[i], c))
          if (reach[k]) {
            reach[i] = 1;
            changed = true;
            break;
          }
        if (reach[i]) break;
      }
    }
  }
  sync_reaching_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i)
    if (reach[i]) sync_reaching_.insert(functions_[i].base);

  // Placeholder lock ids ("$N" = the callee's N-th parameter) resolve to
  // the caller's argument identity at each call site; a site that does not
  // expose the argument falls back to a stable per-callee name so distinct
  // helpers never conflate.
  const auto is_placeholder = [](const std::string& id) {
    return !id.empty() && id[0] == '$';
  };
  const auto subst = [&](const FunctionInfo& callee, const CallSite& c,
                         const std::string& id) -> std::string {
    if (!is_placeholder(id)) return id;
    const std::size_t n =
        static_cast<std::size_t>(std::stoul(id.substr(1)));
    if (n < c.arg_lock_ids.size() && !c.arg_lock_ids[n].empty())
      return c.arg_lock_ids[n];  // may itself be the caller's placeholder
    return callee.base + "::#param" + std::to_string(n);
  };
  // The externally visible name of a lock id still parametric in function
  // `fn` (no caller resolved it).
  const auto fallback = [&](const FunctionInfo& fn, const std::string& id) {
    return is_placeholder(id) ? fn.base + "::#param" + id.substr(1) : id;
  };

  // Fixpoint 2: transitive lock sets per function (then folded per base
  // name, matching the over-approximate call resolution). Placeholders are
  // function-local: they are substituted whenever a set crosses a call
  // edge, so `$0` of one helper never aliases `$0` of another.
  std::vector<std::set<std::string>> locks(functions_.size());
  for (std::size_t i = 0; i < functions_.size(); ++i)
    for (const LockSite& l : functions_[i].locks) locks[i].insert(l.lock_id);
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (!functions_[i].is_definition) continue;
      for (const CallSite& c : functions_[i].calls) {
        for (std::size_t k : candidates(functions_[i], c)) {
          for (const std::string& id : locks[k])
            if (locks[i].insert(subst(functions_[k], c, id)).second)
              changed = true;
        }
      }
    }
  }
  lock_closure_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i)
    for (const std::string& id : locks[i])
      lock_closure_[functions_[i].base].insert(fallback(functions_[i], id));

  // Acquires-while-holding edges: lock L held (within its scope) when lock
  // M is taken directly, or when a call is made whose (transitive) lock set
  // contains M. Edges with a placeholder on either side are parametric —
  // held back as per-function summaries and instantiated at call sites
  // below, where the arguments give the locks their real identities.
  lock_edges_.clear();
  auto suppressed_at = [this](const std::string& path, int line) {
    const auto it = lock_order_ok_.find(path);
    return it != lock_order_ok_.end() && it->second.count(line) != 0;
  };
  struct ParamEdge {
    std::string a, b;   // at least one side is a "$N" placeholder
    std::string via;    // qualified name of the function that takes them
    bool suppressed = false;
  };
  std::vector<std::vector<ParamEdge>> pedges(functions_.size());
  const auto add_edge = [&](const FunctionInfo& owner, std::size_t owner_ix,
                            const std::string& a, const std::string& b,
                            int line, const std::string& detail,
                            bool sup) {
    if (a == b) return;
    if (is_placeholder(a) || is_placeholder(b)) {
      for (const ParamEdge& pe : pedges[owner_ix])
        if (pe.a == a && pe.b == b) return;
      pedges[owner_ix].push_back({a, b, owner.qualified, sup});
      return;
    }
    LockEdgeWitness w;
    w.path = owner.path;
    w.line = line;
    w.function = owner.qualified;
    w.detail = detail;
    w.suppressed = sup;
    lock_edges_[{a, b}].push_back(std::move(w));
  };
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    if (!fn.is_definition) continue;
    for (const LockSite& l : fn.locks) {
      const bool l_ok = suppressed_at(fn.path, l.line);
      for (const LockSite& m : fn.locks) {
        if (m.token <= l.token || m.token >= l.scope_end) continue;
        if (m.lock_id == l.lock_id) continue;
        add_edge(fn, i, l.lock_id, m.lock_id, m.line,
                 "'" + l.lock_id + "' held when '" + m.lock_id +
                     "' is acquired",
                 l_ok || suppressed_at(fn.path, m.line));
      }
      for (const CallSite& c : fn.calls) {
        if (c.token <= l.token || c.token >= l.scope_end) continue;
        std::set<std::string> acquired;
        for (std::size_t k : candidates(fn, c))
          for (const std::string& id : locks[k])
            acquired.insert(subst(functions_[k], c, id));
        for (const std::string& id : acquired) {
          if (id == l.lock_id) continue;
          add_edge(fn, i, l.lock_id, id, c.line,
                   "'" + l.lock_id + "' held across call to '" + c.name +
                       "' which (transitively) acquires '" + id + "'",
                   l_ok || suppressed_at(fn.path, c.line));
        }
      }
    }
  }

  // Instantiate parametric summaries at their call sites. A substitution
  // that lands on the caller's own mutex parameter stays parametric and
  // propagates another level; fully concrete edges are emitted with the
  // call site as witness. Unresolvable placeholders keep the per-callee
  // fallback name, so an order violation inside one helper still surfaces.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      const FunctionInfo& fn = functions_[i];
      if (!fn.is_definition) continue;
      for (const CallSite& c : fn.calls) {
        for (std::size_t k : candidates(fn, c)) {
          for (std::size_t e = 0; e < pedges[k].size(); ++e) {
            const ParamEdge pe = pedges[k][e];
            const std::string a = subst(functions_[k], c, pe.a);
            const std::string b = subst(functions_[k], c, pe.b);
            if (a == b) continue;
            const bool sup = pe.suppressed || suppressed_at(fn.path, c.line);
            if (is_placeholder(a) || is_placeholder(b)) {
              bool seen = false;
              for (const ParamEdge& own : pedges[i])
                if (own.a == a && own.b == b) seen = true;
              if (!seen) {
                pedges[i].push_back({a, b, pe.via, sup});
                changed = true;
              }
              continue;
            }
            LockEdgeWitness w;
            w.path = fn.path;
            w.line = c.line;
            w.function = fn.qualified;
            w.detail = "'" + a + "' then '" + b + "' through call to '" +
                       pe.via + "' (mutexes passed by reference)";
            w.suppressed = sup;
            auto& ws = lock_edges_[{a, b}];
            bool dup = false;
            for (const LockEdgeWitness& prev : ws)
              if (prev.function == w.function && prev.line == w.line)
                dup = true;
            if (!dup) ws.push_back(std::move(w));
          }
        }
      }
    }
  }
}

}  // namespace gptc::lint
