// Table V + Figure 7: sensitivity analysis and reduced-space tuning of
// Hypre (GMRES + BoomerAMG) on one Cori Haswell node, nx=ny=nz=100.
//
// Table V: Sobol S1/ST of the 12-parameter space from 1000 pre-collected
// samples. Expected shape: smooth_type / agg_num_levels /
// smooth_num_levels on top; Px, strong_threshold, trunc_factor,
// P_max_elmts, coarsen_type, relax_type, interp_type near zero.
//
// Fig. 7: tune with 20 evaluations on the reduced space — the 3 most
// sensitive parameters [smooth_type, smooth_num_levels, agg_num_levels] —
// freezing the parameters with known defaults and fixing Px/Py/Nproc at
// random values (their defaults are unknown, as in the paper). Paper:
// 1.35x better at 10 evaluations.
//
//   $ ./bench_fig7_hypre [--only=table|figure] [--seeds=5] [--budget=20]
#include "apps/hypre.hpp"
#include "bench_common.hpp"
#include "gp/gaussian_process.hpp"
#include "sa/sobol.hpp"

using namespace gptc;
using bench::BenchConfig;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::parse(argc, argv);

  const auto machine = hpcsim::MachineModel::cori_haswell();
  const auto problem = apps::make_hypre_problem(machine);
  const space::Config task = {space::Value(std::int64_t{100}),
                              space::Value(std::int64_t{100}),
                              space::Value(std::int64_t{100})};

  if (config.only.empty() || config.only == "table") {
    const int n_samples = config.full ? 1000 : 500;
    std::printf("Table V: %d samples on nx=ny=nz=100...\n", n_samples);
    const core::TaskHistory samples =
        core::collect_random_samples(problem, task, n_samples, 111);
    core::TrainingData data = samples.valid_data(problem.param_space);
    rng::Rng cap_rng(1);
    // ~450 GP training points is where the surrogate's Sobol ranking of
    // this 12-parameter space becomes stable (O(n^3) fit above that).
    data = core::subsample_training_data(data, 450, cap_rng);

    gp::GaussianProcess surrogate(problem.param_space.dim());
    rng::Rng fit_rng(2);
    surrogate.fit(data.x, data.y, fit_rng);

    sa::SobolOptions sa_options;
    sa_options.base_samples = config.full ? 1024 : 512;
    rng::Rng sa_rng(3);
    const sa::SobolResult result = sa::analyze_surrogate(
        surrogate, problem.param_space, sa_rng, sa_options);
    std::printf("\n== Table V: Hypre Sobol indices (nx=ny=nz=100) ==\n%s\n",
                result.to_table().c_str());
    std::printf(
        "paper shape: smooth_type (S1 .11/ST .71), agg_num_levels "
        "(.11/.56),\n  smooth_num_levels (.05/.35) on top; Px, thresholds, "
        "coarsen/relax/interp ~0\n");
  }

  if (config.only.empty() || config.only == "figure") {
    json::Json frozen = json::Json::parse(R"({
      "strong_threshold": 0.25, "trunc_factor": 0.0, "P_max_elmts": 4,
      "coarsen_type": "Falgout", "relax_type": "hybrid-GS",
      "interp_type": "classical"
    })");
    // Px, Py, Nproc are intentionally NOT frozen: reduce_problem fixes them
    // at random values (paper Fig. 7 caption).
    const space::TuningProblem reduced = sa::reduce_problem(
        problem, {"smooth_type", "smooth_num_levels", "agg_num_levels"},
        frozen, /*seed=*/12);

    const std::vector<core::TlaKind> tuner = {core::TlaKind::NoTLA};
    const auto full_series = bench::run_comparison(
        problem, task, {}, tuner, config, /*seed_base=*/7100);
    const auto reduced_series = bench::run_comparison(
        reduced, task, {}, tuner, config, /*seed_base=*/7100);

    std::printf("\n== Fig. 7: Hypre tuning (mean best-so-far) ==\n");
    std::printf("%5s  %15s  %14s\n", "eval", "original(12p)", "reduced(3p)");
    for (int i = 0; i < config.budget; ++i) {
      const auto& f = full_series.at(core::TlaKind::NoTLA);
      const auto& r = reduced_series.at(core::TlaKind::NoTLA);
      std::printf("%5d  %8.4g +-%5.2g  %7.4g +-%5.2g\n", i + 1,
                  f.mean[static_cast<std::size_t>(i)],
                  f.stddev[static_cast<std::size_t>(i)],
                  r.mean[static_cast<std::size_t>(i)],
                  r.stddev[static_cast<std::size_t>(i)]);
    }
    const auto at = static_cast<std::size_t>(std::min(config.budget, 10) - 1);
    const double vf = full_series.at(core::TlaKind::NoTLA).mean[at];
    const double vr = reduced_series.at(core::TlaKind::NoTLA).mean[at];
    std::printf(
        "headline [fig7] at eval %zu: reduced %.4g vs original %.4g -> "
        "%.2fx (%.1f%% improvement; paper: 1.35x)\n",
        at + 1, vr, vf, vf / vr, 100.0 * (vf - vr) / vf);
  }
  return 0;
}
