// Shared harness for the figure/table benchmarks.
//
// Each bench binary reproduces one figure or table of the paper: it runs a
// set of tuners over a transfer scenario for several seeds and prints the
// paper's series — mean and standard deviation of the best-so-far output
// per function evaluation — as an aligned table plus the headline ratios
// the paper quotes.
//
// Flags (shared by every bench): --seeds=N --budget=N --fast --full
// `--fast` shrinks model-fit budgets for smoke runs; `--full` uses the
// paper's sample counts everywhere (slower).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace gptc::bench {

struct BenchConfig {
  int seeds = 3;
  int budget = 20;
  bool fast = false;
  bool full = false;
  std::string only;  // run a single scenario / table selector

  static BenchConfig parse(int argc, char** argv) {
    BenchConfig c;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--seeds=", 0) == 0) c.seeds = std::stoi(arg.substr(8));
      else if (arg.rfind("--budget=", 0) == 0)
        c.budget = std::stoi(arg.substr(9));
      else if (arg == "--fast") c.fast = true;
      else if (arg == "--full") c.full = true;
      else if (arg.rfind("--only=", 0) == 0) c.only = arg.substr(7);
      else if (arg == "--help") {
        std::printf(
            "flags: --seeds=N --budget=N --fast --full --only=<scenario>\n");
        std::exit(0);
      }
    }
    return c;
  }

  /// Tuner options tuned for bench throughput (or fidelity with --full).
  core::TunerOptions tuner_options(core::TlaKind kind,
                                   std::uint64_t seed) const {
    core::TunerOptions o;
    o.budget = budget;
    o.algorithm = kind;
    o.seed = seed;
    if (fast) {
      o.tla.gp.fit_restarts = 1;
      o.tla.gp.fit_evaluations = 60;
      o.tla.lcm.fit_restarts = 0;
      o.tla.lcm.fit_evaluations = 80;
      o.tla.lcm.max_samples_per_task = 40;
      o.tla.max_source_samples = 60;
      o.tla.acquisition.de_population = 16;
      o.tla.acquisition.de_generations = 15;
    } else if (!full) {
      o.tla.gp.fit_restarts = 1;
      o.tla.gp.fit_evaluations = 100;
      o.tla.lcm.fit_restarts = 0;
      o.tla.lcm.fit_evaluations = 140;
      o.tla.lcm.max_samples_per_task = 80;
      o.tla.max_source_samples = 100;
    }
    return o;
  }
};

/// mean/std series of best-so-far values for one tuner (NaN-aware: failed
/// prefixes are skipped, like the paper's Fig. 5(c) plots).
struct Series {
  std::vector<double> mean;
  std::vector<double> stddev;
};

/// Runs `kinds` x `seeds` tuning runs and aggregates best-so-far series.
inline std::map<core::TlaKind, Series> run_comparison(
    const space::TuningProblem& problem, const space::Config& target_task,
    const std::vector<core::TaskHistory>& sources,
    const std::vector<core::TlaKind>& kinds, const BenchConfig& config,
    std::uint64_t seed_base = 1000) {
  std::map<core::TlaKind, Series> result;
  for (const core::TlaKind kind : kinds) {
    std::vector<std::vector<double>> runs;
    for (int s = 0; s < config.seeds; ++s) {
      const auto options =
          config.tuner_options(kind, seed_base + static_cast<std::uint64_t>(s));
      const core::TuningResult r =
          core::Tuner(problem, options).tune(target_task, sources);
      runs.push_back(r.best_so_far);
      std::fprintf(stderr, "  %-22s seed %d/%d best %.4g\n",
                   std::string(core::to_string(kind)).c_str(), s + 1,
                   config.seeds,
                   r.best_output() ? *r.best_output()
                                   : std::numeric_limits<double>::quiet_NaN());
    }
    Series series;
    for (int i = 0; i < config.budget; ++i) {
      double sum = 0.0, sum2 = 0.0;
      int n = 0;
      for (const auto& run : runs) {
        const double v = run[static_cast<std::size_t>(i)];
        if (!std::isfinite(v)) continue;  // all-failed prefix: skip
        sum += v;
        sum2 += v * v;
        ++n;
      }
      if (n == 0) {
        series.mean.push_back(std::numeric_limits<double>::quiet_NaN());
        series.stddev.push_back(0.0);
      } else {
        const double m = sum / n;
        series.mean.push_back(m);
        series.stddev.push_back(std::sqrt(std::max(sum2 / n - m * m, 0.0)));
      }
    }
    result[kind] = series;
  }
  return result;
}

/// Prints the aggregated series as the paper's figure data: one row per
/// evaluation count, one column pair (mean, std) per tuner.
inline void print_series_table(
    const std::string& title,
    const std::map<core::TlaKind, Series>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%5s", "eval");
  for (const auto& [kind, s] : series) {
    (void)s;
    std::printf("  %21s", std::string(core::to_string(kind)).c_str());
  }
  std::printf("\n");
  const std::size_t budget =
      series.empty() ? 0 : series.begin()->second.mean.size();
  for (std::size_t i = 0; i < budget; ++i) {
    std::printf("%5zu", i + 1);
    for (const auto& [kind, s] : series) {
      (void)kind;
      if (std::isfinite(s.mean[i]))
        std::printf("  %12.4g +-%6.2g", s.mean[i], s.stddev[i]);
      else
        std::printf("  %21s", "-");
    }
    std::printf("\n");
  }
}

/// Prints the paper's headline comparison: mean best at evaluation `at`
/// for `better` vs `baseline` ("X.XXx speedup, YY.Y% improvement").
inline void print_headline(const std::map<core::TlaKind, Series>& series,
                           core::TlaKind better, core::TlaKind baseline,
                           int at, const char* what) {
  const auto b = series.find(better);
  const auto n = series.find(baseline);
  if (b == series.end() || n == series.end()) return;
  const auto idx = static_cast<std::size_t>(at - 1);
  if (idx >= b->second.mean.size()) return;
  const double vb = b->second.mean[idx];
  const double vn = n->second.mean[idx];
  if (!std::isfinite(vb) || !std::isfinite(vn) || vb <= 0.0) return;
  std::printf(
      "headline [%s] at eval %d: %s %.4g vs %s %.4g -> %.2fx (%.1f%% "
      "improvement)\n",
      what, at, std::string(core::to_string(better)).c_str(), vb,
      std::string(core::to_string(baseline)).c_str(), vn, vn / vb,
      100.0 * (vn - vb) / vn);
}

}  // namespace gptc::bench
