// google-benchmark microbenchmarks of the storage engine
// (src/db/engine/): indexed point/range queries vs. full collection scans
// at 10^3..10^6 records, and WAL append latency with and without group
// commit (fsync batching).
//
//   $ ./bench_store [--benchmark_filter=...] [--json]
//
// --json is shorthand for --benchmark_format=json (machine-readable
// results on stdout, same flag spelling as bench_server --json).
//
// The ISSUE acceptance bar: an indexed $eq at 1e5 records must beat the
// scan by >= 10x — compare BM_QueryIndexed/100000 vs BM_QueryScan/100000.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "db/document_store.hpp"
#include "db/engine/engine.hpp"
#include "json/json.hpp"

using namespace gptc;
using json::Json;

namespace {

/// One synthetic function-evaluation-shaped record. `key` is drawn from a
/// 256-value space so selective queries hit ~n/256 documents.
Json make_record(std::int64_t i) {
  Json d = Json::object();
  d["key"] = i % 256;
  d["runtime"] = static_cast<double>(i % 977) * 0.25;
  Json task = Json::object();
  task["m"] = i % 64;
  d["task_parameters"] = std::move(task);
  return d;
}

/// Builds (once per size, cached) a collection of n records, optionally
/// indexed on "key" and "task_parameters.m".
db::Collection& collection_of(std::int64_t n, bool indexed) {
  static std::map<std::pair<std::int64_t, bool>, db::DocumentStore> stores;
  const auto key = std::make_pair(n, indexed);
  auto it = stores.find(key);
  if (it == stores.end()) {
    it = stores.emplace(key, db::DocumentStore()).first;
    auto& c = it->second.collection("samples");
    if (indexed) {
      c.create_index("key");
      c.create_index("task_parameters.m");
    }
    for (std::int64_t i = 0; i < n; ++i) c.insert(make_record(i));
  }
  return it->second.collection("samples");
}

void BM_QueryScan(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/false);
  const Json q = Json::parse(R"({"key":17})");
  for (auto _ : state) benchmark::DoNotOptimize(c.find(q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QueryScan)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Complexity();

void BM_QueryIndexed(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/true);
  const Json q = Json::parse(R"({"key":17})");
  for (auto _ : state) benchmark::DoNotOptimize(c.find(q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QueryIndexed)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Complexity();

void BM_RangeScan(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/false);
  const Json q = Json::parse(R"({"task_parameters.m":{"$gte":10,"$lt":14}})");
  for (auto _ : state) benchmark::DoNotOptimize(c.count(q));
}
BENCHMARK(BM_RangeScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RangeIndexed(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/true);
  const Json q = Json::parse(R"({"task_parameters.m":{"$gte":10,"$lt":14}})");
  for (auto _ : state) benchmark::DoNotOptimize(c.count(q));
}
BENCHMARK(BM_RangeIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

/// WAL append latency. Arg is the group-commit batch size: 1 fsyncs every
/// append; 64 amortizes one fsync over the batch.
void BM_WalAppend(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("gptc_bench_wal_" + std::to_string(state.range(0)));
  std::filesystem::remove_all(dir);
  db::engine::EngineOptions opts;
  opts.group_commit = static_cast<std::size_t>(state.range(0));
  opts.checkpoint_wal_bytes = ~std::uint64_t{0};  // never checkpoint
  auto store = db::DocumentStore::open_durable(dir, opts);
  auto& c = store.collection("samples");
  std::int64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(c.insert(make_record(i++)));
  state.SetItemsProcessed(state.iterations());
  state.counters["wal_bytes"] = static_cast<double>(
      store.storage_engine()->wal_bytes("samples"));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Multi-writer append throughput vs. shard count. Arg0 is the shard
/// count, arg1 the group-commit batch (1 = fsync inside every append, the
/// durability-bound regime; 64 = fsyncs amortized, the lock-bound regime);
/// ->Threads(T) supplies the writer count. One shard serializes every
/// writer on a single shard mutex + WAL; N shards spread the writers over
/// N independent WAL/mutex pairs (inserts land on shard _id % N, so
/// concurrent writers hit different shards almost every append) — at
/// group_commit=1 that also means N fsyncs overlapping in the kernel
/// instead of queueing behind one lock.
void BM_ShardedAppend(benchmark::State& state) {
  static db::DocumentStore* store = nullptr;
  static std::filesystem::path dir;
  if (state.thread_index() == 0) {
    dir = std::filesystem::temp_directory_path() /
          ("gptc_bench_shards_" + std::to_string(state.range(0)) + "_" +
           std::to_string(state.range(1)));
    std::filesystem::remove_all(dir);
    db::engine::EngineOptions opts;
    opts.group_commit = static_cast<std::size_t>(state.range(1));
    opts.shards = static_cast<std::size_t>(state.range(0));
    opts.checkpoint_wal_bytes = ~std::uint64_t{0};  // never checkpoint
    store = new db::DocumentStore(db::DocumentStore::open_durable(dir, opts));
    store->collection("samples");  // create before the other threads look
  }
  // `store` is only guaranteed visible after the framework barrier at loop
  // entry, so the collection lookup has to happen inside the loop (it is a
  // read-only map find once thread 0 created the entry above).
  std::int64_t i = state.thread_index() * 1000003;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        store->collection("samples").insert(make_record(i++)));
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
    std::filesystem::remove_all(dir);
  }
}
BENCHMARK(BM_ShardedAppend)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 64}})
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Cold-start recovery of an n-record store: restore per-shard snapshots
/// and replay per-shard WAL tails, serially or on a thread pool. Arg0 is
/// the shard count, arg1 the recovery thread count.
void BM_ParallelRecovery(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("gptc_bench_recover_" + std::to_string(state.range(0)) + "_" +
       std::to_string(state.range(1)));
  std::filesystem::remove_all(dir);
  constexpr std::int64_t kDocs = 20000;
  {
    db::engine::EngineOptions opts;
    opts.shards = static_cast<std::size_t>(state.range(0));
    opts.checkpoint_wal_bytes = ~std::uint64_t{0};  // recover pure WAL tails
    auto store = db::DocumentStore::open_durable(dir, opts);
    auto& c = store.collection("samples");
    for (std::int64_t i = 0; i < kDocs; ++i) c.insert(make_record(i));
  }
  db::engine::EngineOptions opts;
  opts.shards = static_cast<std::size_t>(state.range(0));
  opts.recovery_threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto store = db::DocumentStore::open_durable(dir, opts);
    benchmark::DoNotOptimize(store.collection("samples").size());
  }
  state.SetItemsProcessed(state.iterations() * kDocs);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ParallelRecovery)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN(), plus a --json alias so both bench binaries speak the
// same flag for machine-readable output.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char json_flag[] = "--benchmark_format=json";
  for (char*& arg : args) {
    if (std::string_view(arg) == "--json") arg = json_flag;
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
