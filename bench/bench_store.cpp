// google-benchmark microbenchmarks of the storage engine
// (src/db/engine/): indexed point/range queries vs. full collection scans
// at 10^3..10^6 records, and WAL append latency with and without group
// commit (fsync batching).
//
//   $ ./bench_store [--benchmark_filter=...]
//
// The ISSUE acceptance bar: an indexed $eq at 1e5 records must beat the
// scan by >= 10x — compare BM_QueryIndexed/100000 vs BM_QueryScan/100000.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "db/document_store.hpp"
#include "db/engine/engine.hpp"
#include "json/json.hpp"

using namespace gptc;
using json::Json;

namespace {

/// One synthetic function-evaluation-shaped record. `key` is drawn from a
/// 256-value space so selective queries hit ~n/256 documents.
Json make_record(std::int64_t i) {
  Json d = Json::object();
  d["key"] = i % 256;
  d["runtime"] = static_cast<double>(i % 977) * 0.25;
  Json task = Json::object();
  task["m"] = i % 64;
  d["task_parameters"] = std::move(task);
  return d;
}

/// Builds (once per size, cached) a collection of n records, optionally
/// indexed on "key" and "task_parameters.m".
db::Collection& collection_of(std::int64_t n, bool indexed) {
  static std::map<std::pair<std::int64_t, bool>, db::DocumentStore> stores;
  const auto key = std::make_pair(n, indexed);
  auto it = stores.find(key);
  if (it == stores.end()) {
    it = stores.emplace(key, db::DocumentStore()).first;
    auto& c = it->second.collection("samples");
    if (indexed) {
      c.create_index("key");
      c.create_index("task_parameters.m");
    }
    for (std::int64_t i = 0; i < n; ++i) c.insert(make_record(i));
  }
  return it->second.collection("samples");
}

void BM_QueryScan(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/false);
  const Json q = Json::parse(R"({"key":17})");
  for (auto _ : state) benchmark::DoNotOptimize(c.find(q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QueryScan)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Complexity();

void BM_QueryIndexed(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/true);
  const Json q = Json::parse(R"({"key":17})");
  for (auto _ : state) benchmark::DoNotOptimize(c.find(q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QueryIndexed)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Complexity();

void BM_RangeScan(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/false);
  const Json q = Json::parse(R"({"task_parameters.m":{"$gte":10,"$lt":14}})");
  for (auto _ : state) benchmark::DoNotOptimize(c.count(q));
}
BENCHMARK(BM_RangeScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RangeIndexed(benchmark::State& state) {
  auto& c = collection_of(state.range(0), /*indexed=*/true);
  const Json q = Json::parse(R"({"task_parameters.m":{"$gte":10,"$lt":14}})");
  for (auto _ : state) benchmark::DoNotOptimize(c.count(q));
}
BENCHMARK(BM_RangeIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

/// WAL append latency. Arg is the group-commit batch size: 1 fsyncs every
/// append; 64 amortizes one fsync over the batch.
void BM_WalAppend(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("gptc_bench_wal_" + std::to_string(state.range(0)));
  std::filesystem::remove_all(dir);
  db::engine::EngineOptions opts;
  opts.group_commit = static_cast<std::size_t>(state.range(0));
  opts.checkpoint_wal_bytes = ~std::uint64_t{0};  // never checkpoint
  auto store = db::DocumentStore::open_durable(dir, opts);
  auto& c = store.collection("samples");
  std::int64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(c.insert(make_record(i++)));
  state.SetItemsProcessed(state.iterations());
  state.counters["wal_bytes"] = static_cast<double>(
      store.storage_engine()->wal_bytes("samples"));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
