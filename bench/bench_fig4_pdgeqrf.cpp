// Figure 4: transfer learning on ScaLAPACK's PDGEQRF, 8 Cori Haswell nodes
// (256 cores).
//
//   (a) one source task  (m=n=10000, 100 random samples)
//   (b) three source tasks (m=n=10000, 8000, 6000; 100 samples each)
//
// The target task is a new matrix size (m=n=12000) not present in the
// crowd data. (The paper does not state the target size explicitly; both
// panels share the same NoTLA curve, so a single fixed target is used —
// see EXPERIMENTS.md.) Paper: 3 repetitions, 10 evaluations; Table II
// parameter space.
//
//   $ ./bench_fig4_pdgeqrf [--only=a|b] [--seeds=3] [--budget=10]
#include "apps/pdgeqrf.hpp"
#include "bench_common.hpp"

using namespace gptc;
using bench::BenchConfig;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::parse(argc, argv);
  if (config.budget == 20) config.budget = 10;  // the paper uses 10 here
  // The paper averages 3 repetitions; this landscape's seed variance is
  // large relative to the transfer gain, so default to 6 for a stable mean.
  if (config.seeds == 3 && !config.full) config.seeds = 6;

  const auto machine = hpcsim::MachineModel::cori_haswell();
  const auto problem = apps::make_pdgeqrf_problem(machine, 8);

  std::printf("Table II parameter space:\n");
  for (const auto& p : problem.param_space.params())
    std::printf("  %-12s integer [%g, %g)\n", p.name().c_str(), p.lower(),
                p.upper());

  const std::vector<std::int64_t> source_sizes = {10000, 8000, 6000};
  std::vector<core::TaskHistory> sources;
  for (std::size_t i = 0; i < source_sizes.size(); ++i) {
    const space::Config task = {space::Value(source_sizes[i]),
                                space::Value(source_sizes[i])};
    sources.push_back(
        core::collect_random_samples(problem, task, 100, 77 + i));
  }
  const space::Config target = {space::Value(std::int64_t{12000}),
                                space::Value(std::int64_t{12000})};

  const std::vector<core::TlaKind> tuners = {
      core::TlaKind::NoTLA,          core::TlaKind::MultitaskTS,
      core::TlaKind::WeightedSumDynamic, core::TlaKind::Stacking,
      core::TlaKind::EnsembleProposed,
  };

  if (config.only.empty() || config.only == "a") {
    const auto series = bench::run_comparison(
        problem, target, {sources[0]}, tuners, config, /*seed_base=*/4100);
    bench::print_series_table(
        "Fig. 4(a) PDGEQRF, 1 source (m=n=10000, 100 samples)", series);
    bench::print_headline(series, core::TlaKind::EnsembleProposed,
                          core::TlaKind::NoTLA, config.budget,
                          "fig4-a (paper: 1.19x)");
  }
  if (config.only.empty() || config.only == "b") {
    const auto series = bench::run_comparison(problem, target, sources,
                                              tuners, config,
                                              /*seed_base=*/4200);
    bench::print_series_table(
        "Fig. 4(b) PDGEQRF, 3 sources (m=n=10000/8000/6000)", series);
    bench::print_headline(series, core::TlaKind::EnsembleProposed,
                          core::TlaKind::NoTLA, config.budget,
                          "fig4-b (paper: 1.57x)");
  }
  return 0;
}
