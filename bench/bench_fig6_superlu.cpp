// Table IV + Figure 6: sensitivity analysis and reduced-space tuning of
// SuperLU_DIST on 4 Cori Haswell nodes.
//
// Table IV: Sobol S1/ST of [COLPERM, LOOKAHEAD, nprows, NSUP, NREL] from
// 500 samples on the Si5H12-like matrix. Expected shape: COLPERM dominant,
// nprows second, NSUP moderate, LOOKAHEAD/NREL weak.
//
// Fig. 6: tune the H2O-like matrix (same sparsity family) on the original
// 5-parameter space vs the reduced space that freezes LOOKAHEAD and NREL
// at their defaults (10 and 20). Paper: 1.17x better at 10 evaluations.
//
//   $ ./bench_fig6_superlu [--only=table|figure] [--seeds=3] [--budget=10]
#include "apps/superlu.hpp"
#include "bench_common.hpp"
#include "gp/gaussian_process.hpp"
#include "sa/sobol.hpp"

using namespace gptc;
using bench::BenchConfig;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::parse(argc, argv);
  if (config.budget == 20) config.budget = 10;

  hpcsim::Allocation alloc;
  alloc.machine = hpcsim::MachineModel::cori_haswell();
  alloc.nodes = 4;
  alloc.ranks_per_node = 32;
  const auto problem = apps::make_superlu_problem(alloc);
  const space::Config si5h12 = {space::Value("si5h12")};
  const space::Config h2o = {space::Value("h2o")};

  if (config.only.empty() || config.only == "table") {
    const int n_samples = config.full ? 500 : 300;
    std::printf("Table IV: %d samples on the Si5H12-like matrix...\n",
                n_samples);
    const core::TaskHistory samples =
        core::collect_random_samples(problem, si5h12, n_samples, 99);
    core::TrainingData data = samples.valid_data(problem.param_space);
    rng::Rng cap_rng(1);
    data = core::subsample_training_data(data, 250, cap_rng);

    gp::GaussianProcess surrogate(problem.param_space.dim());
    rng::Rng fit_rng(2);
    surrogate.fit(data.x, data.y, fit_rng);

    sa::SobolOptions sa_options;
    sa_options.base_samples = config.full ? 1024 : 512;
    rng::Rng sa_rng(3);
    const sa::SobolResult result = sa::analyze_surrogate(
        surrogate, problem.param_space, sa_rng, sa_options);
    std::printf("\n== Table IV: SuperLU_DIST Sobol indices (Si5H12) ==\n%s\n",
                result.to_table().c_str());
    std::printf("paper shape: COLPERM highest, then nprows; NSUP moderate; "
                "LOOKAHEAD and NREL low\n");
  }

  if (config.only.empty() || config.only == "figure") {
    // Reduced problem: tune COLPERM, nprows, NSUP; freeze LOOKAHEAD=10,
    // NREL=20 (the library defaults, as in the paper).
    json::Json frozen = json::Json::object();
    frozen["LOOKAHEAD"] = std::int64_t{10};
    frozen["NREL"] = std::int64_t{20};
    const space::TuningProblem reduced = sa::reduce_problem(
        problem, {"COLPERM", "nprows", "NSUP"}, frozen);

    const std::vector<core::TlaKind> tuner = {core::TlaKind::NoTLA};
    const auto full_series = bench::run_comparison(
        problem, h2o, {}, tuner, config, /*seed_base=*/6100);
    const auto reduced_series = bench::run_comparison(
        reduced, h2o, {}, tuner, config, /*seed_base=*/6100);

    std::printf("\n== Fig. 6: SuperLU_DIST tuning on H2O (mean best-so-far) ==\n");
    std::printf("%5s  %14s  %14s\n", "eval", "original(5p)", "reduced(3p)");
    for (int i = 0; i < config.budget; ++i) {
      const auto& f = full_series.at(core::TlaKind::NoTLA);
      const auto& r = reduced_series.at(core::TlaKind::NoTLA);
      std::printf("%5d  %7.4g +-%5.2g  %7.4g +-%5.2g\n", i + 1,
                  f.mean[static_cast<std::size_t>(i)],
                  f.stddev[static_cast<std::size_t>(i)],
                  r.mean[static_cast<std::size_t>(i)],
                  r.stddev[static_cast<std::size_t>(i)]);
    }
    const auto at = static_cast<std::size_t>(config.budget - 1);
    const double vf = full_series.at(core::TlaKind::NoTLA).mean[at];
    const double vr = reduced_series.at(core::TlaKind::NoTLA).mean[at];
    std::printf(
        "headline [fig6] at eval %d: reduced %.4g vs original %.4g -> %.2fx "
        "(%.1f%% improvement; paper: 1.17x)\n",
        config.budget, vr, vf, vf / vr, 100.0 * (vf - vr) / vf);
  }
  return 0;
}
