// Figure 3: comparison of the TLA algorithm pool on the demo and Branin
// synthetic functions.
//
// Scenarios (paper Fig. 3):
//   (a) demo,   source t=0.8 -> target t=1.0, 1 source, 200 samples
//   (b) demo,   source t=0.8 -> target t=1.2
//   (c,d) Branin, 1 random source task -> 2 random target tasks
//   (e,f) Branin, 3 random source tasks -> the same 2 target tasks
// All 9 tuners of the paper run on every scenario, 5 seeds by default in
// the paper (3 here; use --seeds=5 --full to match).
//
//   $ ./bench_fig3_synthetic [--only=a] [--seeds=5] [--budget=20]
#include "apps/synthetic.hpp"
#include "bench_common.hpp"

using namespace gptc;
using bench::BenchConfig;

namespace {

const std::vector<core::TlaKind> kAllTuners = {
    core::TlaKind::NoTLA,
    core::TlaKind::MultitaskPS,
    core::TlaKind::MultitaskTS,
    core::TlaKind::WeightedSumEqual,
    core::TlaKind::WeightedSumDynamic,
    core::TlaKind::Stacking,
    core::TlaKind::EnsembleProposed,
    core::TlaKind::EnsembleToggling,
    core::TlaKind::EnsembleProb,
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::parse(argc, argv);
  // Paper fidelity: 5 seeds, 200 source samples (use --full --seeds=5).
  // Default: 2 seeds so the full 6-scenario x 9-tuner sweep stays fast.
  if (config.seeds == 3 && !config.full) config.seeds = 2;
  const int source_samples = config.full ? 200 : 120;

  const auto demo = apps::make_demo_problem();
  const auto branin = apps::make_branin_problem();

  // Random source/target Branin tasks (the paper's S1–S3, T1–T2).
  rng::Rng task_rng(20230001);
  std::vector<space::Config> branin_sources;
  for (int i = 0; i < 3; ++i)
    branin_sources.push_back(branin.task_space.sample(task_rng));
  std::vector<space::Config> branin_targets;
  for (int i = 0; i < 2; ++i)
    branin_targets.push_back(branin.task_space.sample(task_rng));

  struct Scenario {
    std::string id;
    const space::TuningProblem* problem;
    space::Config target;
    std::vector<space::Config> sources;
  };
  std::vector<Scenario> scenarios = {
      {"a", &demo, {space::Value(1.0)}, {{space::Value(0.8)}}},
      {"b", &demo, {space::Value(1.2)}, {{space::Value(0.8)}}},
      {"c", &branin, branin_targets[0], {branin_sources[0]}},
      {"d", &branin, branin_targets[1], {branin_sources[0]}},
      {"e", &branin, branin_targets[0], branin_sources},
      {"f", &branin, branin_targets[1], branin_sources},
  };

  for (const auto& sc : scenarios) {
    if (!config.only.empty() && config.only != sc.id) continue;
    std::vector<core::TaskHistory> histories;
    for (std::size_t s = 0; s < sc.sources.size(); ++s)
      histories.push_back(core::collect_random_samples(
          *sc.problem, sc.sources[s], source_samples, 42 + s));

    const auto series = bench::run_comparison(
        *sc.problem, sc.target, histories, kAllTuners, config,
        /*seed_base=*/3000 + static_cast<std::uint64_t>(sc.id[0]));
    bench::print_series_table(
        "Fig. 3(" + sc.id + ") " + sc.problem->name + ", " +
            std::to_string(sc.sources.size()) + " source task(s), " +
            std::to_string(source_samples) + " samples each",
        series);
    bench::print_headline(series, core::TlaKind::EnsembleProposed,
                          core::TlaKind::NoTLA, std::min(config.budget, 20),
                          ("fig3-" + sc.id).c_str());
  }
  return 0;
}
