// Microbenchmarks of the application simulators: the cost of one
// objective evaluation, and of the one-time symbolic analyses that feed
// them. These bound the evaluation throughput of the figure benches.
#include <benchmark/benchmark.h>

#include "apps/hypre.hpp"
#include "apps/nimrod.hpp"
#include "apps/pdgeqrf.hpp"
#include "apps/superlu.hpp"
#include "sparse/symbolic.hpp"

using namespace gptc;

namespace {

void BM_PdgeqrfEval(benchmark::State& state) {
  const auto machine = hpcsim::MachineModel::cori_haswell();
  apps::PdgeqrfConfig config;
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::pdgeqrf_time(machine, 8, n, n, config, 1));
  }
}
BENCHMARK(BM_PdgeqrfEval)->Arg(10000)->Arg(40000)->Unit(benchmark::kMicrosecond);

void BM_SuperluFactorEval(benchmark::State& state) {
  hpcsim::Allocation alloc{hpcsim::MachineModel::cori_haswell(), 4, 32};
  apps::SuperluDistSim sim(sparse::si5h12_like(), 1);
  apps::SuperluConfig config;
  config.nprows = 8;
  sim.factor_time(config, alloc);  // warm the symbolic cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.factor_time(config, alloc));
  }
}
BENCHMARK(BM_SuperluFactorEval)->Unit(benchmark::kMicrosecond);

void BM_SuperluSymbolic(benchmark::State& state) {
  const auto pattern = sparse::si5h12_like();
  for (auto _ : state) {
    const auto perm = sparse::rcm_ordering(pattern);
    benchmark::DoNotOptimize(sparse::symbolic_factorize(pattern, perm));
  }
}
BENCHMARK(BM_SuperluSymbolic)->Unit(benchmark::kMillisecond);

void BM_MinimumDegreeOrdering(benchmark::State& state) {
  const auto pattern = sparse::parsec_like(
      static_cast<std::size_t>(state.range(0)), 15, 1.0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::minimum_degree_ordering(pattern));
  }
}
BENCHMARK(BM_MinimumDegreeOrdering)
    ->Arg(300)
    ->Arg(600)
    ->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_NimrodEval(benchmark::State& state) {
  apps::NimrodSim sim(hpcsim::MachineModel::cori_haswell(), 32);
  apps::NimrodTask task{5, 7, 1};
  apps::NimrodConfig config;
  sim.run_time(task, config);  // warm the per-task solver cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_time(task, config));
  }
}
BENCHMARK(BM_NimrodEval)->Unit(benchmark::kMicrosecond);

void BM_HypreEval(benchmark::State& state) {
  const auto machine = hpcsim::MachineModel::cori_haswell();
  apps::HypreConfig config;
  config.smooth_type = "ParaSails";
  config.smooth_num_levels = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::hypre_time(machine, 100, 100, 100, config, 1));
  }
}
BENCHMARK(BM_HypreEval)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
