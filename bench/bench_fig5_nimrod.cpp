// Figure 5: transfer learning on NIMROD. One crowd source dataset — 500
// random samples for task {mx:5, my:7, lphi:1} on 32 Cori Haswell nodes —
// transferred to three target settings:
//
//   (a) 64 Haswell nodes, same task            (across node counts)
//   (b) 32 KNL nodes,   {mx:5, my:4, lphi:1}   (across architectures)
//   (c) 64 Haswell nodes, {mx:6, my:8, lphi:1} (across problem sizes;
//       bad npz configurations fail with OOM, as in the paper)
//
// Paper: 3 repetitions, 10 evaluations, Table III parameter space.
//
//   $ ./bench_fig5_nimrod [--only=a|b|c] [--seeds=3] [--budget=10]
#include "apps/nimrod.hpp"
#include "bench_common.hpp"

using namespace gptc;
using bench::BenchConfig;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::parse(argc, argv);
  if (config.budget == 20) config.budget = 10;

  const auto haswell = hpcsim::MachineModel::cori_haswell();
  const auto knl = hpcsim::MachineModel::cori_knl();

  const auto src_problem = apps::make_nimrod_problem(haswell, 32);
  std::printf("Table III parameter space:\n");
  for (const auto& p : src_problem.param_space.params())
    std::printf("  %-6s integer [%g, %g)\n", p.name().c_str(), p.lower(),
                p.upper());

  const space::Config src_task = {space::Value(std::int64_t{5}),
                                  space::Value(std::int64_t{7}),
                                  space::Value(std::int64_t{1})};
  const int n_src = config.full ? 500 : 250;
  std::printf("collecting %d source samples on 32 Haswell nodes...\n", n_src);
  const core::TaskHistory source =
      core::collect_random_samples(src_problem, src_task, n_src, 88);

  const std::vector<core::TlaKind> tuners = {
      core::TlaKind::NoTLA,          core::TlaKind::MultitaskTS,
      core::TlaKind::WeightedSumDynamic, core::TlaKind::Stacking,
      core::TlaKind::EnsembleProposed,
  };

  struct Scenario {
    std::string id;
    space::TuningProblem problem;
    space::Config target;
    const char* label;
    const char* paper;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"a", apps::make_nimrod_problem(haswell, 64),
                       src_task,
                       "Fig. 5(a) 64 Haswell nodes, same task",
                       "fig5-a (paper: 1.16x ensemble, 1.20x TS)"});
  scenarios.push_back({"b", apps::make_nimrod_problem(knl, 32),
                       {space::Value(std::int64_t{5}),
                        space::Value(std::int64_t{4}),
                        space::Value(std::int64_t{1})},
                       "Fig. 5(b) 32 KNL nodes, {mx:5,my:4,lphi:1}",
                       "fig5-b (paper: 1.10x)"});
  scenarios.push_back({"c", apps::make_nimrod_problem(haswell, 64),
                       {space::Value(std::int64_t{6}),
                        space::Value(std::int64_t{8}),
                        space::Value(std::int64_t{1})},
                       "Fig. 5(c) 64 Haswell nodes, {mx:6,my:8,lphi:1}",
                       "fig5-c (paper: 2.97x)"});

  for (auto& sc : scenarios) {
    if (!config.only.empty() && config.only != sc.id) continue;
    const auto series = bench::run_comparison(
        sc.problem, sc.target, {source}, tuners, config,
        /*seed_base=*/5000 + static_cast<std::uint64_t>(sc.id[0]));
    bench::print_series_table(sc.label, series);
    bench::print_headline(series, core::TlaKind::EnsembleProposed,
                          core::TlaKind::NoTLA, config.budget, sc.paper);
    bench::print_headline(series, core::TlaKind::MultitaskTS,
                          core::TlaKind::NoTLA, config.budget, sc.paper);
  }
  return 0;
}
