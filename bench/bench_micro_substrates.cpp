// google-benchmark microbenchmarks of the library substrates: dense
// kernels, GP fit/predict scaling, LCM fit, acquisition search, Sobol
// estimators, JSON parsing and document-store queries.
//
//   $ ./bench_micro_substrates [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "core/acquisition.hpp"
#include "db/document_store.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/lcm.hpp"
#include "json/json.hpp"
#include "la/matrix.hpp"
#include "opt/optimize.hpp"
#include "sa/sobol.hpp"

using namespace gptc;

namespace {

la::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  rng::Rng rng(seed);
  la::Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.normal();
  return m;
}

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix a = random_matrix(n, n, 1);
  la::Matrix spd = la::matmul(a, a.transposed());
  spd.add_diagonal(static_cast<double>(n));
  for (auto _ : state) {
    la::Cholesky chol(spd);
    benchmark::DoNotOptimize(chol.log_det());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cholesky)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_matrix(n, n, 2);
  const la::Matrix b = random_matrix(n, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::matmul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  const auto pts = opt::latin_hypercube(n, 4, rng);
  la::Vector y;
  for (const auto& p : pts) y.push_back(std::sin(5.0 * p[0]) + p[1]);
  const la::Matrix x = la::Matrix::from_rows(
      std::vector<la::Vector>(pts.begin(), pts.end()));
  for (auto _ : state) {
    gp::GaussianProcess model(4);
    rng::Rng fit_rng(5);
    model.fit(x, y, fit_rng);
    benchmark::DoNotOptimize(model.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_GpPredict(benchmark::State& state) {
  rng::Rng rng(6);
  const auto pts = opt::latin_hypercube(100, 4, rng);
  la::Vector y;
  for (const auto& p : pts) y.push_back(std::sin(5.0 * p[0]) + p[1]);
  gp::GaussianProcess model(4);
  rng::Rng fit_rng(7);
  model.fit(la::Matrix::from_rows({pts.begin(), pts.end()}), y, fit_rng);
  la::Vector q = {0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(q));
  }
}
BENCHMARK(BM_GpPredict);

void BM_LcmFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(8);
  std::vector<gp::TaskData> tasks(2);
  for (int t = 0; t < 2; ++t) {
    const auto pts = opt::latin_hypercube(n, 2, rng);
    la::Vector y;
    for (const auto& p : pts)
      y.push_back((t + 1.0) * std::sin(4.0 * p[0]) + p[1]);
    tasks[static_cast<std::size_t>(t)] =
        gp::TaskData{la::Matrix::from_rows({pts.begin(), pts.end()}), y};
  }
  for (auto _ : state) {
    gp::LcmModel model(2, 2);
    rng::Rng fit_rng(9);
    model.fit(tasks, fit_rng);
    benchmark::DoNotOptimize(model.predict(1, {0.5, 0.5}));
  }
}
BENCHMARK(BM_LcmFit)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

// Threads-vs-speedup: GP fit with several restarts, at 0 (serial path),
// 1, 2, 4 and 8 pool workers. Results are bitwise identical across the
// sweep (see tests/test_determinism.cpp); only wall time should change.
void BM_GpFitThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  const auto pts = opt::latin_hypercube(80, 4, rng);
  la::Vector y;
  for (const auto& p : pts) y.push_back(std::sin(5.0 * p[0]) + p[1]);
  const la::Matrix x = la::Matrix::from_rows({pts.begin(), pts.end()});
  gp::GpOptions opt;
  opt.fit_restarts = 8;
  if (threads > 0) opt.pool = std::make_shared<parallel::ThreadPool>(threads);
  for (auto _ : state) {
    gp::GaussianProcess model(4, opt);
    rng::Rng fit_rng(5);
    model.fit(x, y, fit_rng);
    benchmark::DoNotOptimize(model.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFitThreads)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AcquisitionSearch(benchmark::State& state) {
  rng::Rng rng(10);
  const auto pts = opt::latin_hypercube(60, 4, rng);
  la::Vector y;
  for (const auto& p : pts) y.push_back(std::cos(4.0 * p[0]) + p[2]);
  gp::GaussianProcess model(4);
  rng::Rng fit_rng(11);
  model.fit(la::Matrix::from_rows({pts.begin(), pts.end()}), y, fit_rng);
  for (auto _ : state) {
    rng::Rng search_rng(12);
    benchmark::DoNotOptimize(
        core::maximize_ei(model, 0.0, search_rng));
  }
}
BENCHMARK(BM_AcquisitionSearch)->Unit(benchmark::kMillisecond);

// Threads-vs-speedup for the acquisition DE search: the population
// evaluations (GP predictions) batch across the pool.
void BM_DeSearchThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(10);
  const auto pts = opt::latin_hypercube(60, 4, rng);
  la::Vector y;
  for (const auto& p : pts) y.push_back(std::cos(4.0 * p[0]) + p[2]);
  gp::GaussianProcess model(4);
  rng::Rng fit_rng(11);
  model.fit(la::Matrix::from_rows({pts.begin(), pts.end()}), y, fit_rng);
  core::AcquisitionOptions opt;
  if (threads > 0) opt.pool = std::make_shared<parallel::ThreadPool>(threads);
  for (auto _ : state) {
    rng::Rng search_rng(12);
    benchmark::DoNotOptimize(core::maximize_ei(model, 0.0, search_rng, {}, opt));
  }
}
BENCHMARK(BM_DeSearchThreads)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SobolAnalysis(benchmark::State& state) {
  const sa::CubeFn f = [](const la::Vector& u) {
    return std::sin(6.0 * u[0]) + 0.5 * u[1] * u[2];
  };
  sa::SobolOptions opt;
  opt.base_samples = static_cast<std::size_t>(state.range(0));
  opt.bootstrap = 50;
  for (auto _ : state) {
    rng::Rng rng(13);
    benchmark::DoNotOptimize(
        sa::analyze_function(f, 3, {"a", "b", "c"}, rng, opt));
  }
}
BENCHMARK(BM_SobolAnalysis)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_JsonParse(benchmark::State& state) {
  json::Json doc = json::Json::object();
  for (int i = 0; i < 64; ++i) {
    json::Json rec = json::Json::object();
    rec["task"] = i;
    rec["runtime"] = 0.5 * i;
    rec["params"] = json::Json::parse(R"({"mb":4,"nb":8,"p":16})");
    doc["r" + std::to_string(i)] = std::move(rec);
  }
  const std::string text = doc.dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::Json::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParse);

void BM_DbQuery(benchmark::State& state) {
  db::Collection coll("func_eval");
  rng::Rng rng(14);
  for (int i = 0; i < 2000; ++i) {
    json::Json rec = json::Json::object();
    rec["problem"] = (i % 3 == 0) ? "pdgeqrf" : "hypre";
    json::Json task = json::Json::object();
    task["m"] = rng.uniform_int(1000, 20000);
    rec["task_parameters"] = std::move(task);
    coll.insert(std::move(rec));
  }
  const json::Json query = json::Json::parse(
      R"({"problem":"pdgeqrf","task_parameters.m":{"$gte":5000,"$lt":15000}})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll.find(query));
  }
}
BENCHMARK(BM_DbQuery)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
