// Ablation benches for the design choices DESIGN.md calls out:
//
//   1. Ensemble selection policy: Algorithm 1 (exploration + PDF) vs the
//      naive toggling and PDF-only ensembles (paper Sec. V-E) and vs the
//      individual pool members.
//   2. LCM source-sample cap: tuned quality vs the per-task subsample cap
//      that keeps the O((sum n)^3) LCM fit affordable (DESIGN.md).
//   3. First-evaluation rule: WeightedSum(equal) proposal vs a random
//      first point (paper Sec. VI-A note).
//
//   $ ./bench_ablation_ensemble [--only=ensemble|lcmcap|firsteval]
#include "apps/synthetic.hpp"
#include "bench_common.hpp"

using namespace gptc;
using bench::BenchConfig;

namespace {

double mean_best(const space::TuningProblem& problem,
                 const space::Config& target,
                 const std::vector<core::TaskHistory>& sources,
                 core::TunerOptions options, int seeds) {
  double sum = 0.0;
  for (int s = 0; s < seeds; ++s) {
    options.seed = 9000 + static_cast<std::uint64_t>(s);
    sum += core::Tuner(problem, options)
               .tune(target, sources)
               .best_output()
               .value();
  }
  return sum / seeds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::parse(argc, argv);
  if (config.budget == 20 && !config.full) config.budget = 12;
  if (config.seeds == 3 && !config.full) config.seeds = 2;
  const auto problem = apps::make_branin_problem();

  rng::Rng task_rng(20230001);
  std::vector<core::TaskHistory> sources;
  for (int i = 0; i < 3; ++i)
    sources.push_back(core::collect_random_samples(
        problem, problem.task_space.sample(task_rng), 120,
        55 + static_cast<std::uint64_t>(i)));
  const space::Config target = problem.task_space.sample(task_rng);

  if (config.only.empty() || config.only == "ensemble") {
    std::printf("== Ablation 1: ensemble policy (Branin, 3 sources, %d "
                "evals, %d seeds) ==\n",
                config.budget, config.seeds);
    for (const core::TlaKind kind :
         {core::TlaKind::EnsembleProposed, core::TlaKind::EnsembleToggling,
          core::TlaKind::EnsembleProb, core::TlaKind::MultitaskTS,
          core::TlaKind::WeightedSumDynamic, core::TlaKind::Stacking,
          core::TlaKind::NoTLA}) {
      const double v = mean_best(problem, target, sources,
                                 config.tuner_options(kind, 0), config.seeds);
      std::printf("  %-22s mean best = %.4f\n",
                  std::string(core::to_string(kind)).c_str(), v);
    }
  }

  if (config.only.empty() || config.only == "lcmcap") {
    std::printf("\n== Ablation 2: LCM source-sample cap (Multitask(TS)) ==\n");
    for (const std::size_t cap : {20u, 40u, 80u, 120u}) {
      auto options = config.tuner_options(core::TlaKind::MultitaskTS, 0);
      options.tla.lcm.max_samples_per_task = cap;
      const double v =
          mean_best(problem, target, sources, options, config.seeds);
      std::printf("  cap=%3zu  mean best = %.4f\n", cap, v);
    }
    std::printf("  (quality saturates once the cap covers the landscape; "
                "cost grows cubically)\n");
  }

  if (config.only.empty() || config.only == "firsteval") {
    std::printf("\n== Ablation 3: first-evaluation rule ==\n");
    // The WeightedSum(equal) first proposal is implemented in the Tuner;
    // compare a 1-evaluation budget (TLA first eval) against 1 random
    // evaluation (NoTLA first eval) across many seeds.
    auto tla1 = config.tuner_options(core::TlaKind::MultitaskTS, 0);
    tla1.budget = 1;
    auto rnd1 = config.tuner_options(core::TlaKind::NoTLA, 0);
    rnd1.budget = 1;
    const int many = std::max(config.seeds * 4, 8);
    const double v_tla = mean_best(problem, target, sources, tla1, many);
    const double v_rnd = mean_best(problem, target, {}, rnd1, many);
    std::printf("  first eval via WeightedSum(equal) argmin: %.4f\n", v_tla);
    std::printf("  first eval random:                        %.4f\n", v_rnd);
  }
  return 0;
}
