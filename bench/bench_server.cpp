// bench_server — load generator for the crowd-repo server (src/net).
//
// Starts an in-process CrowdServer on an ephemeral port over a durable
// repository with async group commit (the production serving mode), then
// drives it with N client connections:
//
//   closed-loop (default): every connection issues its next request the
//     moment the previous response lands — measures peak throughput;
//   open-loop (--rate R): requests are paced to a target aggregate rate
//     and latency is measured from the *intended* send time, so queueing
//     delay is charged to the server (no coordinated omission).
//
// Modes: write (batched uploads, durability-acked), read (indexed
// query_evaluations), mixed (half the connections each).
//
//   bench_server [--seconds S] [--connections N] [--workers W]
//                [--mode write|read|mixed] [--batch B] [--rate R]
//                [--shards K] [--dir PATH] [--smoke] [--json]
//
// Prints ops/s, records/s, and p50/p90/p99 latency per op class.
// --json instead emits one machine-readable JSON object on stdout (config,
// elapsed time, per-class ops/records/errors/throughput/percentiles) for
// baseline tracking (BENCH_read_path.json) and CI comparisons; the human
// banner moves to stderr. --smoke exits nonzero when any request errored
// or throughput was zero — CI runs a short smoke against the sanitizer
// build.
//
// This is a benchmark harness, not library code: it lives outside the
// lint perimeter and uses wall clocks and OS randomness freely.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "crowd/repo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace gptc;
using Clock = std::chrono::steady_clock;

namespace {

struct Args {
  double seconds = 5.0;
  std::size_t connections = 8;
  std::size_t workers = 8;
  std::string mode = "write";
  std::size_t batch = 16;
  double rate = 0.0;  // aggregate ops/s; 0 = closed loop
  std::size_t shards = 0;  // per-collection WAL/snapshot shards; 0 = keep
  std::string dir;
  bool smoke = false;
  bool json = false;  // one machine-readable result object on stdout
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_server: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seconds") a.seconds = std::stod(next());
    else if (arg == "--connections") a.connections = std::stoul(next());
    else if (arg == "--workers") a.workers = std::stoul(next());
    else if (arg == "--mode") a.mode = next();
    else if (arg == "--batch") a.batch = std::stoul(next());
    else if (arg == "--rate") a.rate = std::stod(next());
    else if (arg == "--shards") a.shards = std::stoul(next());
    else if (arg == "--dir") a.dir = next();
    else if (arg == "--smoke") a.smoke = true;
    else if (arg == "--json") a.json = true;
    else {
      std::fprintf(stderr, "bench_server: unknown arg %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (a.mode != "write" && a.mode != "read" && a.mode != "mixed") {
    std::fprintf(stderr, "bench_server: --mode must be write|read|mixed\n");
    std::exit(2);
  }
  if (a.connections == 0) a.connections = 1;
  if (a.batch == 0) a.batch = 1;
  return a;
}

struct ThreadResult {
  std::vector<double> latencies_us;
  std::uint64_t ops = 0;
  std::uint64_t records = 0;
  std::uint64_t errors = 0;
};

crowd::EvalUpload make_eval(std::uint64_t i) {
  crowd::EvalUpload e;
  e.task_parameters = json::Json::object();
  e.task_parameters["m"] = static_cast<std::int64_t>(1000 + i % 7);
  e.task_parameters["n"] = static_cast<std::int64_t>(1000 + i % 5);
  e.tuning_parameters = json::Json::object();
  e.tuning_parameters["mb"] = static_cast<std::int64_t>(i % 32);
  e.tuning_parameters["nb"] = static_cast<std::int64_t>((i / 32) % 32);
  e.output = 1.0 + static_cast<double>(i % 100) / 100.0;
  e.machine_configuration = json::Json::object();
  e.machine_configuration["machine_name"] = "cori";
  return e;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// One op class (write / read) aggregated across its worker threads.
struct ClassStats {
  std::uint64_t ops = 0;
  std::uint64_t records = 0;
  std::uint64_t errors = 0;
  double ops_per_s = 0.0;
  double records_per_s = 0.0;
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0;
  bool any() const { return ops != 0 || errors != 0; }
};

ClassStats summarize(std::vector<ThreadResult>& results, double elapsed_s) {
  std::vector<double> lat;
  ClassStats s;
  for (ThreadResult& r : results) {
    lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
    s.ops += r.ops;
    s.records += r.records;
    s.errors += r.errors;
  }
  s.ops_per_s = static_cast<double>(s.ops) / elapsed_s;
  s.records_per_s = static_cast<double>(s.records) / elapsed_s;
  s.p50_us = percentile(lat, 0.50);
  s.p90_us = percentile(lat, 0.90);
  s.p99_us = percentile(lat, 0.99);
  return s;
}

void report(const char* label, const ClassStats& s) {
  if (!s.any()) return;
  std::printf(
      "%-6s ops=%llu records=%llu errors=%llu throughput=%.0f ops/s "
      "records/s=%.0f p50=%.0fus p90=%.0fus p99=%.0fus\n",
      label, static_cast<unsigned long long>(s.ops),
      static_cast<unsigned long long>(s.records),
      static_cast<unsigned long long>(s.errors), s.ops_per_s, s.records_per_s,
      s.p50_us, s.p90_us, s.p99_us);
}

json::Json class_json(const ClassStats& s) {
  json::Json j = json::Json::object();
  j["ops"] = static_cast<std::int64_t>(s.ops);
  j["records"] = static_cast<std::int64_t>(s.records);
  j["errors"] = static_cast<std::int64_t>(s.errors);
  j["ops_per_s"] = s.ops_per_s;
  j["records_per_s"] = s.records_per_s;
  j["p50_us"] = s.p50_us;
  j["p90_us"] = s.p90_us;
  j["p99_us"] = s.p99_us;
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // Repository directory: --dir or a fresh temp dir (removed on success).
  std::string dir = args.dir;
  bool own_dir = false;
  if (dir.empty()) {
    char tmpl[] = "/tmp/bench_server.XXXXXX";
    if (!mkdtemp(tmpl)) {
      std::perror("bench_server: mkdtemp");
      return 1;
    }
    dir = tmpl;
    own_dir = true;
  }

  db::engine::EngineOptions eo;
  eo.async_commit = true;
  // The 1 MiB default checkpoint threshold is tuned for CLI workloads; at
  // server ingest rates it would snapshot (O(collection size)) every few
  // batches and turn the run quadratic. Checkpoint at 256 MiB instead.
  eo.checkpoint_wal_bytes = 256u << 20;
  eo.shards = args.shards;
  crowd::SharedRepo repo = crowd::SharedRepo::open_durable(dir, 42, eo);
  const std::string api_key = repo.register_user("bench", "bench@local");
  repo.add_machine_alias("Cori", {"cori"});

  // Seed records so read-mode queries have an indexed partition to hit.
  {
    std::vector<crowd::EvalUpload> seed;
    for (std::uint64_t i = 0; i < 256; ++i) seed.push_back(make_eval(i));
    const auto receipt = repo.upload_batch(api_key, "bench_problem", seed);
    repo.wait_uploads_durable(receipt);
  }

  net::ServerOptions so;
  so.port = 0;
  so.workers = args.workers;
  so.max_connections = args.connections + 8;
  net::CrowdServer server(repo, so);
  server.start();
  // In --json mode stdout carries only the result object.
  std::fprintf(
      args.json ? stderr : stdout,
      "bench_server: port=%u mode=%s connections=%zu workers=%zu batch=%zu "
      "rate=%.0f shards=%zu seconds=%.1f\n",
      server.port(), args.mode.c_str(), args.connections, args.workers,
      args.batch, args.rate, args.shards, args.seconds);

  std::atomic<bool> stop{false};
  std::vector<ThreadResult> write_results(args.connections);
  std::vector<ThreadResult> read_results(args.connections);
  std::vector<std::thread> threads;

  const Clock::time_point t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(args.seconds));

  for (std::size_t t = 0; t < args.connections; ++t) {
    const bool writer =
        args.mode == "write" || (args.mode == "mixed" && t % 2 == 0);
    threads.emplace_back([&, t, writer] {
      ThreadResult& out = writer ? write_results[t] : read_results[t];
      try {
        net::CrowdClient client("127.0.0.1", server.port());
        // Open-loop pacing: this thread owns every rate/connections-th slot.
        const double per_thread_rate =
            args.rate > 0.0 ? args.rate / static_cast<double>(args.connections)
                            : 0.0;
        const auto interval =
            per_thread_rate > 0.0
                ? std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(1.0 / per_thread_rate))
                : Clock::duration::zero();
        Clock::time_point next_send = Clock::now();
        std::uint64_t i = t * 1000003;  // de-correlate threads' records

        while (!stop.load(std::memory_order_relaxed)) {
          if (interval != Clock::duration::zero()) {
            std::this_thread::sleep_until(next_send);
          } else {
            next_send = Clock::now();
          }
          const Clock::time_point intended = next_send;
          try {
            if (writer) {
              std::vector<crowd::EvalUpload> batch;
              batch.reserve(args.batch);
              for (std::size_t b = 0; b < args.batch; ++b) {
                batch.push_back(make_eval(i++));
              }
              client.upload(api_key, "bench_problem", batch);
              out.records += batch.size();
            } else {
              const auto recs = client.query(
                  api_key, "bench_problem",
                  "tuning_parameters.mb = " + std::to_string(i++ % 32) +
                      " AND tuning_parameters.nb = 7");
              out.records += recs.size();
            }
            out.ops += 1;
            const double us =
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          intended)
                    .count();
            out.latencies_us.push_back(us);
          } catch (const std::exception& e) {
            out.errors += 1;
            if (out.errors == 1) {
              std::fprintf(stderr, "bench_server: request error: %s\n",
                           e.what());
            }
          }
          next_send += interval;
        }
      } catch (const std::exception& e) {
        out.errors += 1;
        std::fprintf(stderr, "bench_server: connection error: %s\n", e.what());
      }
    });
  }

  std::this_thread::sleep_until(deadline);
  stop.store(true);
  for (std::thread& th : threads) th.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const ClassStats write_stats = summarize(write_results, elapsed_s);
  const ClassStats read_stats = summarize(read_results, elapsed_s);
  if (args.json) {
    json::Json config = json::Json::object();
    config["mode"] = args.mode;
    config["seconds"] = args.seconds;
    config["connections"] = static_cast<std::int64_t>(args.connections);
    config["workers"] = static_cast<std::int64_t>(args.workers);
    config["batch"] = static_cast<std::int64_t>(args.batch);
    config["rate"] = args.rate;
    config["shards"] = static_cast<std::int64_t>(args.shards);
    json::Json classes = json::Json::object();
    if (write_stats.any()) classes["write"] = class_json(write_stats);
    if (read_stats.any()) classes["read"] = class_json(read_stats);
    json::Json out = json::Json::object();
    out["benchmark"] = "bench_server";
    out["config"] = std::move(config);
    out["elapsed_s"] = elapsed_s;
    out["classes"] = std::move(classes);
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    report("write", write_stats);
    report("read", read_stats);
  }

  const std::uint64_t total_ops = write_stats.ops + read_stats.ops;
  const std::uint64_t total_errors = write_stats.errors + read_stats.errors;

  server.stop();
  repo.sync();
  if (own_dir) std::filesystem::remove_all(dir);

  if (args.smoke && (total_ops == 0 || total_errors != 0)) {
    std::fprintf(stderr,
                 "bench_server: SMOKE FAILED (ops=%llu errors=%llu)\n",
                 static_cast<unsigned long long>(total_ops),
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (args.smoke) {
    std::fprintf(args.json ? stderr : stdout, "bench_server: smoke ok\n");
  }
  return 0;
}
