// Concurrency tests for the crowd-repo server: many client threads mix
// durability-acked batch uploads with indexed queries against one server
// and the suite proves three properties under TSan:
//
//   1. no record is lost or duplicated — every acked batch is stored
//      exactly once, and the final count is exact;
//   2. snapshot isolation — a reader never observes part of a batch:
//      every marker query returns 0 or the full batch size;
//   3. clean shutdown drains — stop() lets in-flight requests finish, and
//      every upload that was acked before the connection broke is present
//      exactly once afterwards.
//
// Threads only write to their own slots; all assertions on shared state
// happen on the main thread after joining (keeps the test itself
// TSan-clean).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crowd/repo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace gptc::net {
namespace {

namespace fs = std::filesystem;
using json::Json;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

crowd::EvalUpload marked_eval(int writer, int batch, int k) {
  crowd::EvalUpload e;
  e.task_parameters = Json::object();
  e.task_parameters["w"] = static_cast<std::int64_t>(writer);
  e.task_parameters["b"] = static_cast<std::int64_t>(batch);
  e.task_parameters["k"] = static_cast<std::int64_t>(k);
  e.tuning_parameters = Json::object();
  e.tuning_parameters["mb"] = static_cast<std::int64_t>(k);
  e.output = 1.0 + 0.001 * static_cast<double>(k);
  return e;
}

struct ServerUnderTest {
  explicit ServerUnderTest(const fs::path& dir, std::size_t workers,
                           std::size_t max_connections) {
    db::engine::EngineOptions eo;
    eo.async_commit = true;
    repo = std::make_unique<crowd::SharedRepo>(
        crowd::SharedRepo::open_durable(dir, 11, eo));
    api_key = repo->register_user("crowd", "crowd@example.org");
    ServerOptions so;
    so.port = 0;
    so.workers = workers;
    so.max_connections = max_connections;
    server = std::make_unique<CrowdServer>(*repo, so);
    server->start();
  }

  std::unique_ptr<crowd::SharedRepo> repo;
  std::unique_ptr<CrowdServer> server;
  std::string api_key;
};

// 32 client threads (16 writers, 16 readers) against one server. Writers
// upload kBatches batches of kBatchSize marker records each; readers
// continuously query one (writer, batch) marker pair and record any
// partially-visible batch. Verified after join: atomicity held, nothing
// was lost, nothing was duplicated.
TEST(NetConcurrency, MixedUploadsAndQueriesKeepBatchesAtomic) {
  constexpr int kWriters = 16;
  constexpr int kReaders = 16;
  constexpr int kBatches = 12;
  constexpr int kBatchSize = 5;

  TempDir dir("gptc_net_conc_mixed");
  ServerUnderTest sut(dir.path(), /*workers=*/8, /*max_connections=*/64);
  const std::uint16_t port = sut.server->port();
  const std::string key = sut.api_key;

  std::atomic<bool> writers_done{false};
  std::vector<std::vector<std::int64_t>> acked_ids(kWriters);
  std::vector<std::string> writer_errors(kWriters);
  std::vector<std::string> reader_errors(kReaders);
  std::vector<std::uint64_t> partial_batches_seen(kReaders, 0);
  std::vector<std::uint64_t> reader_queries(kReaders, 0);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      try {
        CrowdClient client("127.0.0.1", port);
        for (int b = 0; b < kBatches; ++b) {
          std::vector<crowd::EvalUpload> batch;
          for (int k = 0; k < kBatchSize; ++k) {
            batch.push_back(marked_eval(w, b, k));
          }
          const auto ids = client.upload(key, "conc", batch);
          acked_ids[w].insert(acked_ids[w].end(), ids.begin(), ids.end());
        }
      } catch (const std::exception& e) {
        writer_errors[w] = e.what();
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      try {
        CrowdClient client("127.0.0.1", port);
        std::uint64_t i = static_cast<std::uint64_t>(r) * 7919;
        while (!writers_done.load(std::memory_order_relaxed)) {
          const int w = static_cast<int>(i % kWriters);
          const int b = static_cast<int>((i / kWriters) % kBatches);
          ++i;
          const auto records = client.query(
              key, "conc",
              "task_parameters.w = " + std::to_string(w) +
                  " AND task_parameters.b = " + std::to_string(b));
          ++reader_queries[r];
          // Snapshot isolation: a batch is visible whole or not at all.
          if (records.size() != 0 &&
              records.size() != static_cast<std::size_t>(kBatchSize)) {
            ++partial_batches_seen[r];
          }
        }
      } catch (const std::exception& e) {
        reader_errors[r] = e.what();
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  writers_done.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(writer_errors[w], "") << "writer " << w;
  }
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(reader_errors[r], "") << "reader " << r;
    EXPECT_EQ(partial_batches_seen[r], 0u)
        << "reader " << r << " observed a half-applied batch";
    EXPECT_GT(reader_queries[r], 0u) << "reader " << r << " never ran";
  }

  // No lost or duplicated acks.
  std::set<std::int64_t> unique_ids;
  std::size_t total_acked = 0;
  for (const auto& ids : acked_ids) {
    total_acked += ids.size();
    unique_ids.insert(ids.begin(), ids.end());
  }
  EXPECT_EQ(total_acked,
            static_cast<std::size_t>(kWriters * kBatches * kBatchSize));
  EXPECT_EQ(unique_ids.size(), total_acked) << "duplicate record ids acked";

  // Exact final state: every (w, b) marker pair is present exactly
  // kBatchSize times, and the total count matches.
  CrowdClient verify("127.0.0.1", port);
  EXPECT_EQ(verify.query(key, "conc", "").size(), total_acked);
  for (int w = 0; w < kWriters; ++w) {
    for (int b = 0; b < kBatches; ++b) {
      const auto records = verify.query(
          key, "conc",
          "task_parameters.w = " + std::to_string(w) +
              " AND task_parameters.b = " + std::to_string(b));
      EXPECT_EQ(records.size(), static_cast<std::size_t>(kBatchSize))
          << "writer " << w << " batch " << b;
    }
  }

  sut.server->stop();
}

// stop() during a write storm: whatever was acked before each client's
// connection broke must be present exactly once after the drain — and the
// server must come down cleanly with requests still in flight.
TEST(NetConcurrency, CleanShutdownDrainsInFlightUploads) {
  constexpr int kWriters = 8;

  TempDir dir("gptc_net_conc_drain");
  ServerUnderTest sut(dir.path(), /*workers=*/4, /*max_connections=*/32);
  const std::uint16_t port = sut.server->port();
  const std::string key = sut.api_key;

  std::atomic<int> batches_acked{0};
  std::vector<std::vector<std::int64_t>> acked_ids(kWriters);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      try {
        CrowdClient client("127.0.0.1", port);
        for (int b = 0;; ++b) {
          const auto ids =
              client.upload(key, "drain",
                            {marked_eval(w, b, 0), marked_eval(w, b, 1)});
          acked_ids[w].insert(acked_ids[w].end(), ids.begin(), ids.end());
          batches_acked.fetch_add(1);
        }
      } catch (const std::exception&) {
        // Expected eventually: shutting_down error or broken transport.
      }
    });
  }

  // Let the storm run until real work happened, then pull the plug while
  // requests are still in flight.
  while (batches_acked.load() < 50) std::this_thread::yield();
  sut.server->stop();
  for (std::thread& t : threads) t.join();

  // Every acked id exists exactly once in the store; nothing acked was
  // dropped by the drain, nothing was applied twice.
  std::set<std::int64_t> acked;
  std::size_t total_acked = 0;
  for (const auto& ids : acked_ids) {
    total_acked += ids.size();
    acked.insert(ids.begin(), ids.end());
  }
  ASSERT_EQ(acked.size(), total_acked) << "duplicate ids acked";
  ASSERT_GE(total_acked, 100u);

  std::map<std::int64_t, int> stored_count;
  for (const Json& r :
       sut.repo->query_where(key, "drain", "task_parameters.k >= 0")) {
    stored_count[r.at("_id").as_int()] += 1;
  }
  for (const std::int64_t id : acked) {
    auto it = stored_count.find(id);
    ASSERT_NE(it, stored_count.end()) << "acked id " << id << " lost";
    EXPECT_EQ(it->second, 1) << "acked id " << id << " duplicated";
  }
  for (const auto& [id, count] : stored_count) {
    EXPECT_EQ(count, 1) << "stored id " << id << " appears " << count
                        << " times";
  }
}

// The server cap admits exactly max_connections concurrent clients; the
// rest get typed overloaded rejections and the accept loop never wedges.
TEST(NetConcurrency, OverloadRejectionsUnderConnectionStorm) {
  TempDir dir("gptc_net_conc_storm");
  ServerUnderTest sut(dir.path(), /*workers=*/4, /*max_connections=*/4);
  const std::uint16_t port = sut.server->port();
  const std::string key = sut.api_key;

  constexpr int kClients = 24;
  std::vector<int> ok(kClients, 0), overloaded(kClients, 0), other(kClients, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        try {
          CrowdClient client("127.0.0.1", port);
          client.upload(key, "storm", {marked_eval(t, i, 0)});
          ++ok[t];
        } catch (const RpcError& e) {
          if (e.code() == ErrorCode::Overloaded) {
            ++overloaded[t];
          } else {
            ++other[t];
          }
        } catch (const TransportError&) {
          // Connection raced the admission reply; also an orderly refusal.
          ++overloaded[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  int total_ok = 0, total_other = 0;
  for (int t = 0; t < kClients; ++t) {
    total_ok += ok[t];
    total_other += other[t];
  }
  EXPECT_GT(total_ok, 0) << "no client ever got through";
  EXPECT_EQ(total_other, 0) << "unexpected non-overload errors";

  // The server is still healthy after the storm.
  CrowdClient client("127.0.0.1", port);
  EXPECT_EQ(client.health().at("status").as_string(), "ok");
  EXPECT_EQ(client.query(key, "storm", "").size(),
            static_cast<std::size_t>(total_ok));
  sut.server->stop();
}

}  // namespace
}  // namespace gptc::net
