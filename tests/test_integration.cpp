// End-to-end integration test: the full crowd-tuning workflow of Fig. 1
// across modules — simulate apps -> upload with environment metadata ->
// persist the repository -> reload -> query via meta description -> feed
// the TLA tuner -> sync new evaluations back.
#include <gtest/gtest.h>

#include <filesystem>

#include "apps/pdgeqrf.hpp"
#include "core/tuner.hpp"
#include "crowd/envparse.hpp"
#include "crowd/repo.hpp"

namespace gptc {
namespace {

using json::Json;
using space::Config;
using space::Value;

class CrowdWorkflowTest : public ::testing::Test {
 protected:
  CrowdWorkflowTest()
      : machine_(hpcsim::MachineModel::cori_haswell()),
        problem_(apps::make_pdgeqrf_problem(machine_, 8)),
        dir_(std::filesystem::temp_directory_path() / "gptc_workflow") {
    std::filesystem::remove_all(dir_);
  }
  ~CrowdWorkflowTest() override { std::filesystem::remove_all(dir_); }

  crowd::MetaDescription make_meta(const std::string& key) const {
    crowd::MetaDescription meta;
    meta.api_key = key;
    meta.tuning_problem_name = "pdgeqrf";
    meta.input_space = problem_.task_space;
    meta.parameter_space = problem_.param_space;
    crowd::MachineFilter f;
    f.machine_name = "Cori";
    f.partition = "haswell";
    meta.machine_filters.push_back(f);
    return meta;
  }

  void upload_history(crowd::SharedRepo& repo, const std::string& key,
                      const Config& task, const core::TaskHistory& history) {
    const Json machine_config = crowd::parse_slurm_env({
        {"SLURM_CLUSTER_NAME", "cori"},
        {"SLURM_JOB_PARTITION", "haswell"},
        {"SLURM_JOB_NUM_NODES", "8"},
        {"SLURM_CPUS_ON_NODE", "32"},
    });
    const Json software =
        crowd::parse_spack_manifest("scalapack@2.1.0%gcc@8.3.0\n");
    for (const auto& eval : history.evals()) {
      crowd::EvalUpload upload;
      upload.task_parameters = problem_.task_space.config_to_json(task);
      upload.tuning_parameters =
          problem_.param_space.config_to_json(eval.params);
      upload.output = eval.output;
      upload.machine_configuration = machine_config;
      upload.software_configuration = software;
      repo.upload(key, "pdgeqrf", upload);
    }
  }

  hpcsim::MachineModel machine_;
  space::TuningProblem problem_;
  std::filesystem::path dir_;
};

TEST_F(CrowdWorkflowTest, FullRoundTrip) {
  const Config source_task = {Value(std::int64_t{10000}),
                              Value(std::int64_t{10000})};
  const Config target_task = {Value(std::int64_t{13000}),
                              Value(std::int64_t{13000})};

  // --- Phase 1: Alice contributes crowd data and the repo is persisted ----
  std::string alice_key;
  {
    crowd::SharedRepo repo(42);
    alice_key = repo.register_user("alice", "alice@lab.gov");
    const core::TaskHistory samples =
        core::collect_random_samples(problem_, source_task, 50, 9);
    upload_history(repo, alice_key, source_task, samples);
    ASSERT_EQ(repo.num_records("pdgeqrf"), 50u);
    repo.save(dir_);
  }

  // --- Phase 2: Bob loads the repo, queries, and tunes with TLA ------------
  crowd::SharedRepo repo = crowd::SharedRepo::load(dir_);
  EXPECT_EQ(repo.authenticate(alice_key).value(), "alice");
  const std::string bob_key = repo.register_user("bob", "bob@uni.edu");

  const crowd::MetaDescription meta = make_meta(bob_key);
  const auto records = repo.query_function_evaluations(meta);
  EXPECT_EQ(records.size(), 50u);
  // Tag normalization happened on upload ("cori" -> "Cori").
  EXPECT_EQ(records[0]
                .at("machine_configuration")
                .at("machine_name")
                .as_string(),
            "Cori");

  const auto sources = repo.query_source_histories(meta);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0].num_valid(), 50u);

  core::TunerOptions options;
  options.budget = 6;
  options.algorithm = core::TlaKind::EnsembleProposed;
  options.seed = 5;
  options.tla.gp.fit_evaluations = 60;
  options.tla.lcm.fit_evaluations = 80;
  options.tla.lcm.max_samples_per_task = 40;
  options.tla.max_source_samples = 40;
  const core::TuningResult result =
      core::Tuner(problem_, options).tune(target_task, sources);
  ASSERT_TRUE(result.best_output().has_value());
  EXPECT_TRUE(std::isfinite(*result.best_output()));
  EXPECT_EQ(result.proposed_by.front(), "WeightedSum(equal)");

  // --- Phase 3: Bob syncs his new evaluations back --------------------------
  upload_history(repo, bob_key, target_task, result.history);
  EXPECT_EQ(repo.num_records("pdgeqrf"), 56u);
  const auto histories = repo.query_source_histories(make_meta(bob_key));
  ASSERT_EQ(histories.size(), 2u);  // two tasks in the crowd now
  EXPECT_EQ(histories[0].num_valid(), 50u);

  // The surrogate utilities work on the merged crowd data.
  const auto surrogate = repo.query_surrogate_model(make_meta(bob_key), 3);
  EXPECT_EQ(surrogate->dim(), problem_.param_space.dim());
}

TEST_F(CrowdWorkflowTest, AccessControlSurvivesPersistence) {
  std::string alice_key, bob_key;
  {
    crowd::SharedRepo repo(43);
    alice_key = repo.register_user("alice", "a@x");
    bob_key = repo.register_user("bob", "b@x");
    const Config task = {Value(std::int64_t{10000}),
                         Value(std::int64_t{10000})};
    crowd::EvalUpload priv;
    priv.task_parameters = problem_.task_space.config_to_json(task);
    // Note lg2npernode in [0, 5) per Table II: 4 is the maximum.
    priv.tuning_parameters = problem_.param_space.config_to_json(
        {Value(std::int64_t{4}), Value(std::int64_t{4}),
         Value(std::int64_t{4}), Value(std::int64_t{16})});
    priv.output = 1.0;
    priv.machine_configuration = machine_.machine_configuration(8);
    priv.accessibility.level = crowd::Accessibility::Level::Private;
    repo.upload(alice_key, "pdgeqrf", priv);
    repo.save(dir_);
  }
  const crowd::SharedRepo repo = crowd::SharedRepo::load(dir_);
  EXPECT_EQ(repo.query_function_evaluations(make_meta(alice_key)).size(), 1u);
  EXPECT_EQ(repo.query_function_evaluations(make_meta(bob_key)).size(), 0u);
}

}  // namespace
}  // namespace gptc
